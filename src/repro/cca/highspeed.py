"""HighSpeed TCP [Floyd, RFC 3649].

HighSpeed TCP replaces Reno's fixed AIMD gains with window-dependent
``a(w)`` (additive segments per RTT) and ``b(w)`` (decrease fraction),
defined by a logarithmic schedule that the kernel implements as a 73-row
lookup table.  This port embeds a condensed version of that table; the
log-table indirection is what places HighSpeed outside the DSL's reach
(paper §5.5).
"""

from __future__ import annotations

import bisect

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["HighSpeed"]

# Condensed RFC 3649 schedule: (window in segments, a(w) segments/RTT,
# b(w) decrease fraction).  Entries follow the kernel's hstcp_aimd_vals.
_AIMD_TABLE: tuple[tuple[float, float, float], ...] = (
    (38, 1, 0.50),
    (118, 2, 0.44),
    (221, 3, 0.41),
    (347, 4, 0.38),
    (495, 5, 0.37),
    (663, 6, 0.35),
    (851, 7, 0.34),
    (1058, 8, 0.33),
    (1284, 9, 0.32),
    (1529, 10, 0.31),
    (2113, 12, 0.30),
    (2826, 14, 0.28),
    (3670, 16, 0.27),
    (4651, 18, 0.26),
    (5777, 20, 0.25),
    (7057, 22, 0.24),
    (8502, 24, 0.23),
    (10123, 26, 0.22),
    (11933, 28, 0.21),
    (13943, 30, 0.21),
    (16170, 32, 0.20),
    (20329, 36, 0.19),
    (25281, 40, 0.18),
    (31131, 44, 0.17),
    (38000, 48, 0.16),
    (46016, 52, 0.16),
    (55322, 56, 0.15),
    (66071, 60, 0.14),
    (78432, 64, 0.14),
    (92592, 68, 0.13),
    (100000, 71, 0.13),
)
_THRESHOLDS = tuple(row[0] for row in _AIMD_TABLE)


def aimd_gains(window_segments: float) -> tuple[float, float]:
    """Return (a(w), b(w)) for a window of *window_segments* segments."""
    index = bisect.bisect_left(_THRESHOLDS, window_segments)
    if index >= len(_AIMD_TABLE):
        index = len(_AIMD_TABLE) - 1
    _, additive, decrease = _AIMD_TABLE[index]
    return additive, decrease


class HighSpeed(CongestionControl):
    """HighSpeed TCP: table-driven window-dependent AIMD."""

    name = "highspeed"

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            self.slow_start_ack(ack)
            return
        additive, _ = aimd_gains(self.cwnd / self.mss)
        self.reno_ca_ack(ack, scale=additive)

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
            return
        _, decrease = aimd_gains(self.cwnd / self.mss)
        self.multiplicative_decrease(1.0 - decrease)
