"""Scalable TCP [Kelly, CCR '03].

Scalable TCP makes the increase *multiplicative*: each ACK grows the
window by a fixed 0.01 segments (so recovery time after a loss is
constant in the window size), and losses cut the window by only 1/8.
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Scalable"]


class Scalable(CongestionControl):
    """Scalable TCP: MIMD with a = 0.01/ack, b = 0.125."""

    name = "scalable"

    #: Per-acked-segment additive constant (kernel: cwnd/100 per ack).
    AI = 0.01
    #: Multiplicative decrease factor on loss.
    MD = 0.875

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            self.slow_start_ack(ack)
        else:
            self.cwnd += self.AI * ack.acked_bytes

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(self.MD)
