"""TCP-LP (Low Priority) [Kuzmanovic, Knightly; ToN '06].

TCP-LP behaves like Reno but yields to cross traffic: it infers early
congestion from one-way delay crossing a threshold inside the
min/max-delay envelope and, on such an *early congestion indication*,
halves the window (and backs off to the minimum if a second indication
arrives within an inference window).
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["LowPriority"]


class LowPriority(CongestionControl):
    """TCP-LP: Reno with delay-threshold early backoff."""

    name = "lp"

    #: Position of the early-congestion threshold within the delay
    #: envelope (kernel: 15%).
    DELAY_THRESHOLD = 0.15
    #: Inference window, in RTTs, for the double-backoff rule.
    INFERENCE_RTTS = 3.0

    def __init__(self, mss: int = 1500, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self._last_indication = float("-inf")

    def _delay_fraction(self) -> float:
        if (
            self.latest_rtt is None
            or self.min_rtt == float("inf")
            or self.max_rtt <= self.min_rtt
        ):
            return 0.0
        return (self.latest_rtt - self.min_rtt) / (self.max_rtt - self.min_rtt)

    def _on_ack(self, ack: AckEvent) -> None:
        if self._delay_fraction() > self.DELAY_THRESHOLD and not self.in_slow_start:
            self._early_congestion(ack.now)
            return
        if self.in_slow_start:
            self.slow_start_ack(ack)
        else:
            self.reno_ca_ack(ack)

    def _early_congestion(self, now: float) -> None:
        rtt = self.latest_rtt or 0.0
        if now - self._last_indication < self.INFERENCE_RTTS * rtt:
            # Second indication inside the inference window: full yield.
            self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.mss)
            self.cwnd = float(self.mss)
        else:
            self.multiplicative_decrease(0.5)
        self._last_indication = now

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(0.5)
