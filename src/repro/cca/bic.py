"""BIC [Xu, Harfoush, Rhee; INFOCOM '04].

Binary Increase Congestion control searches for the capacity between the
window at the last loss (``last_max``) and the current window: while far
below ``last_max`` it jumps by half the gap (capped at ``S_MAX``
segments); close to ``last_max`` it creeps; above ``last_max`` it probes
linearly then increasingly fast ("max probing").
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Bic"]


class Bic(CongestionControl):
    """BIC-TCP binary-search window growth."""

    name = "bic"

    #: Maximum binary-search step, segments.
    S_MAX = 16.0
    #: Minimum step, segments.
    S_MIN = 0.01
    #: Multiplicative decrease factor (kernel: 819/1024 ~ 0.8).
    BETA = 0.8
    #: Windows below this many segments use plain Reno (kernel low_window).
    LOW_WINDOW = 14.0

    def __init__(self, mss: int = 1500, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self.last_max: float = 0.0

    def _increment_segments(self) -> float:
        """Per-RTT window increment, in segments (kernel bictcp_update)."""
        cwnd_seg = self.cwnd / self.mss
        if cwnd_seg <= self.LOW_WINDOW:
            return 1.0
        if self.last_max <= 0:
            return self.S_MAX  # no target yet: max probing
        last_max_seg = self.last_max / self.mss
        if cwnd_seg < last_max_seg:
            gap = last_max_seg - cwnd_seg
            step = gap / 2.0  # binary search toward last_max
        else:
            # Max probing past the old maximum: slow start-like ramp.
            step = cwnd_seg - last_max_seg + 1.0
        return min(max(step, self.S_MIN), self.S_MAX)

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            self.slow_start_ack(ack)
            return
        increment = self._increment_segments()
        self.cwnd += (
            increment * self.mss * ack.acked_bytes / max(self.cwnd, 1.0)
        )

    def _on_loss(self, loss: LossEvent) -> None:
        cwnd_seg = self.cwnd / self.mss
        if cwnd_seg < self.last_max / self.mss:
            # Loss before reaching the old max: the capacity shrank;
            # remember a point below the current window (fast convergence).
            self.last_max = self.cwnd * (1.0 + self.BETA) / 2.0
        else:
            self.last_max = self.cwnd
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(self.BETA)
