"""TCP New Vegas (NV) [Brakmo, Linux Plumbers '10].

NV modernizes Vegas for data centers: it estimates the number of queued
packets from the measured *rate* (rather than per-packet RTT deltas),
smooths its measurements over an interval, and adjusts the window at most
once per RTT.  The fundamental logic is Vegas's (paper §5.4: "the CCAs
Vegas and NV use the same fundamental logic; their differences are only
in the way they measure the number of packets in the queue").
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["NewVegas"]


class NewVegas(CongestionControl):
    """TCP-NV: rate-measured Vegas with per-RTT updates."""

    name = "nv"

    #: Target backlog bounds, packets.
    ALPHA = 2.0
    BETA = 6.0

    def __init__(self, mss: int = 1500, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self._next_update = 0.0
        self._rate_ewma = 0.0

    def _backlog(self) -> float:
        """Queued packets estimated from the smoothed delivery rate."""
        if self.min_rtt == float("inf") or self._rate_ewma <= 0:
            return 0.0
        # cwnd worth of data at the measured rate occupies
        # cwnd/rate seconds; the excess over min_rtt is queueing.
        queueing_time = self.cwnd / self._rate_ewma - self.min_rtt
        return max(queueing_time, 0.0) * self._rate_ewma / self.mss

    def _on_ack(self, ack: AckEvent) -> None:
        # NV smooths the rate itself (moving average of the delay /
        # delivery measurements) — the hidden state the paper mentions.
        if self.ack_rate > 0:
            if self._rate_ewma == 0:
                self._rate_ewma = self.ack_rate
            else:
                self._rate_ewma += 0.5 * (self.ack_rate - self._rate_ewma)
        if self.in_slow_start:
            self.slow_start_ack(ack)
            if self._backlog() > self.BETA:
                self.ssthresh = self.cwnd
            return
        if ack.now < self._next_update or self.latest_rtt is None:
            return
        self._next_update = ack.now + self.latest_rtt
        diff = self._backlog()
        if diff < self.ALPHA:
            self.cwnd += self.mss
        elif diff > self.BETA:
            self.cwnd -= 2.0 * self.mss

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(0.7)
