"""TCP (New)Reno [Hoe, SIGCOMM '96].

The classical AIMD baseline: slow start doubles the window every RTT;
congestion avoidance adds one MSS per RTT (``mss * acked / cwnd`` per
ACK); a fast-retransmit loss halves the window; an RTO resets it.
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Reno"]


class Reno(CongestionControl):
    """TCP NewReno congestion control."""

    name = "reno"

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            self.slow_start_ack(ack)
        else:
            self.reno_ca_ack(ack)

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(0.5)
