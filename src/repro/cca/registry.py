"""Registry of every CCA in the zoo, keyed by its kernel-style name."""

from __future__ import annotations

from repro.cca.base import CongestionControl
from repro.cca.bbr import Bbr
from repro.cca.bic import Bic
from repro.cca.cdg import Cdg
from repro.cca.cubic import Cubic
from repro.cca.highspeed import HighSpeed
from repro.cca.htcp import Htcp
from repro.cca.hybla import Hybla
from repro.cca.illinois import Illinois
from repro.cca.lp import LowPriority
from repro.cca.nv import NewVegas
from repro.cca.reno import Reno
from repro.cca.scalable import Scalable
from repro.cca.student import STUDENT_CCAS
from repro.cca.vegas import Vegas
from repro.cca.veno import Veno
from repro.cca.westwood import Westwood
from repro.cca.yeah import Yeah
from repro.errors import ReproError

__all__ = [
    "KERNEL_CCAS",
    "STUDENT_NAMES",
    "ALL_CCAS",
    "make_cca",
    "cca_names",
]

#: The 16 CCAs distributed with the Linux kernel (paper §5), by name.
KERNEL_CCAS: dict[str, type[CongestionControl]] = {
    cls.name: cls
    for cls in (
        Bbr,
        Bic,
        Cdg,
        Cubic,
        HighSpeed,
        Htcp,
        Hybla,
        Illinois,
        LowPriority,
        NewVegas,
        Reno,
        Scalable,
        Vegas,
        Veno,
        Westwood,
        Yeah,
    )
}

#: The seven synthetic student CCAs (paper §5.6), by name.
STUDENT_NAMES: tuple[str, ...] = tuple(cls.name for cls in STUDENT_CCAS)

#: Every registered CCA.
ALL_CCAS: dict[str, type[CongestionControl]] = {
    **KERNEL_CCAS,
    **{cls.name: cls for cls in STUDENT_CCAS},
}


def make_cca(name: str, *, mss: int = 1500, **kwargs) -> CongestionControl:
    """Instantiate a CCA by registry name."""
    try:
        cls = ALL_CCAS[name]
    except KeyError:
        raise ReproError(
            f"unknown CCA {name!r}; known: {sorted(ALL_CCAS)}"
        ) from None
    return cls(mss=mss, **kwargs)


def cca_names(*, kernel_only: bool = False) -> tuple[str, ...]:
    """Names of the registered CCAs, sorted."""
    source = KERNEL_CCAS if kernel_only else ALL_CCAS
    return tuple(sorted(source))
