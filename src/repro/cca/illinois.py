"""TCP-Illinois [Liu, Basar, Srikant; Perform. Eval. '08].

A loss-delay hybrid: losses still drive the window down, but the
*pace* of both increase and decrease adapts to queueing delay.  The
additive gain ``alpha`` falls from ``ALPHA_MAX`` (10) toward
``ALPHA_MIN`` (0.3) as the average queueing delay grows, and the backoff
factor ``beta`` grows from 1/8 to 1/2 with delay.
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Illinois"]


class Illinois(CongestionControl):
    """TCP-Illinois: delay-adaptive AIMD gains."""

    name = "illinois"

    ALPHA_MIN = 0.3
    ALPHA_MAX = 10.0
    BETA_MIN = 0.125
    BETA_MAX = 0.5
    #: Fraction of the max queueing delay below which alpha is maximal.
    D1 = 0.01

    def _queueing_delay(self) -> tuple[float, float]:
        """Return (current, maximum) queueing delay, seconds."""
        if (
            self.srtt is None
            or self.min_rtt == float("inf")
            or self.max_rtt <= self.min_rtt
        ):
            return 0.0, 0.0
        return self.srtt - self.min_rtt, self.max_rtt - self.min_rtt

    def _alpha(self) -> float:
        da, dm = self._queueing_delay()
        if dm <= 0 or da <= self.D1 * dm:
            return self.ALPHA_MAX
        # Hyperbolic decay from ALPHA_MAX toward ALPHA_MIN with delay.
        d1 = self.D1 * dm
        kappa1 = (dm - d1) * self.ALPHA_MIN * self.ALPHA_MAX
        kappa2 = (dm - d1) * self.ALPHA_MIN / (
            self.ALPHA_MAX - self.ALPHA_MIN
        )
        return kappa1 / (self.ALPHA_MAX * (kappa2 + (da - d1)))

    def _beta(self) -> float:
        da, dm = self._queueing_delay()
        if dm <= 0:
            return self.BETA_MIN
        fraction = min(max(da / dm, 0.0), 1.0)
        return self.BETA_MIN + (self.BETA_MAX - self.BETA_MIN) * fraction

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            self.slow_start_ack(ack)
        else:
            self.reno_ca_ack(ack, scale=self._alpha())

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(1.0 - self._beta())
