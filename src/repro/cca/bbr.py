"""BBR v1 [Cardwell et al., ACM Queue '16], simplified.

BBR is rate-based: it estimates the bottleneck bandwidth (windowed max of
the delivery rate) and the path's minimum RTT, and sets
``cwnd = cwnd_gain * BDP``.  In PROBE_BW it cycles through pacing gains
``[1.25, 0.75, 1, 1, 1, 1, 1, 1]`` — the periodic pulses visible in
packet traces — advancing one phase per min-RTT.  This port keeps the
cwnd-driven skeleton (gain cycling, bandwidth filter, startup/drain) and
omits pacing and PROBE_RTT refinements; the externally visible pulse
dynamics match what the paper's traces show (§5.2).
"""

from __future__ import annotations

from collections import deque

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Bbr"]


class Bbr(CongestionControl):
    """Simplified BBRv1: bandwidth-probing gain cycle on a BDP window."""

    name = "bbr"

    #: PROBE_BW pacing-gain cycle.
    GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    #: Steady-state cwnd gain (two BDPs absorbs delayed/stretched ACKs).
    CWND_GAIN = 2.0
    #: Startup gain (2/ln2).
    STARTUP_GAIN = 2.885
    #: Bandwidth filter length, in gain-cycle phases.
    BW_FILTER_LEN = 10

    def __init__(self, mss: int = 1500, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self._bw_samples: deque[float] = deque(maxlen=self.BW_FILTER_LEN)
        self._phase = 0
        self._phase_start = 0.0
        self._in_startup = True
        self._full_bw = 0.0
        self._full_bw_count = 0

    @property
    def _max_bw(self) -> float:
        return max(self._bw_samples, default=0.0)

    def _on_ack(self, ack: AckEvent) -> None:
        if self.ack_rate > 0:
            self._bw_samples.append(self.ack_rate)
        if self.min_rtt == float("inf"):
            return
        bdp = self._max_bw * self.min_rtt
        if self._in_startup:
            self._check_full_pipe()
            self.cwnd = max(
                self.STARTUP_GAIN * bdp, self.cwnd + ack.acked_bytes
            )
            return
        self._advance_phase(ack.now)
        gain = self.GAIN_CYCLE[self._phase]
        self.cwnd = max(self.CWND_GAIN * gain * bdp, 4.0 * self.mss)

    def _check_full_pipe(self) -> None:
        """Leave startup once the bandwidth estimate plateaus (3 rounds)."""
        bw = self._max_bw
        if bw > self._full_bw * 1.25:
            self._full_bw = bw
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= 3:
            self._in_startup = False
            self._phase_start = 0.0

    def _advance_phase(self, now: float) -> None:
        phase_len = max(self.min_rtt, 1e-4)
        if now - self._phase_start >= phase_len:
            self._phase = (self._phase + 1) % len(self.GAIN_CYCLE)
            self._phase_start = now

    def _on_loss(self, loss: LossEvent) -> None:
        # BBRv1 mostly ignores individual losses; an RTO still restarts
        # the bandwidth hunt.
        if loss.kind == "timeout":
            self._in_startup = True
            self._full_bw = 0.0
            self._full_bw_count = 0
            self.cwnd = 4.0 * self.mss
