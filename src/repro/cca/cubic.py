"""CUBIC [Ha, Rhee, Xu; SIGOPS OSR '08].

The window grows as a cubic function of the time since the last loss:
``W(t) = C * (t - K)^3 + Wmax`` where ``Wmax`` is the window at the last
loss and ``K = cbrt(Wmax * beta / C)`` is the time at which the cubic
re-reaches ``Wmax``.  A TCP-friendliness term keeps CUBIC at least as
aggressive as Reno at small windows.
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Cubic"]


class Cubic(CongestionControl):
    """CUBIC congestion control (kernel-default since 2.6.19)."""

    name = "cubic"

    #: Cubic's scaling constant, in segments/sec^3 (kernel default 0.4).
    C = 0.4
    #: Multiplicative decrease factor (kernel: 717/1024 ~ 0.7).
    BETA = 0.7

    def __init__(self, mss: int = 1500, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self.wmax: float = self.cwnd
        self._epoch_start: float | None = None
        self._k: float = 0.0
        self._tcp_cwnd: float = self.cwnd

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            self.slow_start_ack(ack)
            return
        if self._epoch_start is None:
            self._begin_epoch(ack.now)
        t = ack.now - self._epoch_start
        # Target window from the cubic curve, computed in segments so the
        # constant C has its kernel meaning, then converted back to bytes.
        wmax_seg = self.wmax / self.mss
        target_seg = self.C * (t - self._k) ** 3 + wmax_seg
        target = target_seg * self.mss
        if target > self.cwnd:
            # Approach the target over one RTT's worth of ACKs.
            self.cwnd += (
                (target - self.cwnd) * ack.acked_bytes / max(self.cwnd, 1.0)
            )
        else:
            # Mild probing while at/above the curve.
            self.cwnd += (
                0.01 * self.mss * ack.acked_bytes / max(self.cwnd, 1.0)
            )
        # TCP-friendliness: emulate Reno's window and never fall below it.
        self._tcp_cwnd += (
            3.0
            * (1.0 - self.BETA)
            / (1.0 + self.BETA)
            * self.mss
            * ack.acked_bytes
            / max(self._tcp_cwnd, 1.0)
        )
        self.cwnd = max(self.cwnd, self._tcp_cwnd)

    def _begin_epoch(self, now: float) -> None:
        self._epoch_start = now
        wmax_seg = self.wmax / self.mss
        cwnd_seg = self.cwnd / self.mss
        if wmax_seg > cwnd_seg:
            self._k = ((wmax_seg - cwnd_seg) / self.C) ** (1.0 / 3.0)
        else:
            self._k = 0.0

    def _on_loss(self, loss: LossEvent) -> None:
        self.wmax = self.cwnd
        self._epoch_start = None
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(self.BETA)
        self._tcp_cwnd = self.cwnd
