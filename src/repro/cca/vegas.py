"""TCP Vegas [Brakmo, O'Malley, Peterson; SIGCOMM '94].

Vegas compares the *expected* throughput (``cwnd / base_rtt``) with the
*actual* throughput (``cwnd / rtt``); the difference, scaled by the base
RTT, estimates how many packets the flow keeps queued at the bottleneck.
The window grows when the estimate is below ``alpha`` packets, shrinks
when above ``beta``, and holds in between — once per RTT.
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Vegas"]


class Vegas(CongestionControl):
    """TCP Vegas delay-based congestion avoidance."""

    name = "vegas"

    #: Lower/upper bounds on estimated queued packets (kernel: 2 and 4).
    ALPHA = 2.0
    BETA = 4.0

    def __init__(self, mss: int = 1500, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self._next_update = 0.0

    def queue_estimate(self) -> float:
        """Estimated packets held in the bottleneck queue (Vegas diff)."""
        if self.latest_rtt is None or self.min_rtt == float("inf"):
            return 0.0
        expected = self.cwnd / self.min_rtt
        actual = self.cwnd / self.latest_rtt
        return (expected - actual) * self.min_rtt / self.mss

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            # Vegas slows its exponential growth: every other RTT.
            self.cwnd += min(ack.acked_bytes, self.mss) / 2.0
            if self.queue_estimate() > self.BETA:
                self.ssthresh = self.cwnd
            return
        # One window adjustment per RTT.
        if self.latest_rtt is None or ack.now < self._next_update:
            return
        self._next_update = ack.now + self.latest_rtt
        diff = self.queue_estimate()
        if diff < self.ALPHA:
            self.cwnd += self.mss
        elif diff > self.BETA:
            self.cwnd -= self.mss

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(0.75)
