"""TCP Westwood(+) [Mascolo et al., MobiCom '01].

Westwood keeps Reno's linear increase but replaces blind halving with
*bandwidth-estimate* backoff: on loss the window is set to the estimated
achievable pipe, ``bw_est * min_rtt`` — "faster recovery".  The bandwidth
estimate is an EWMA of the ACK delivery rate.
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Westwood"]


class Westwood(CongestionControl):
    """TCP Westwood+: Reno increase, bandwidth-estimate decrease."""

    name = "westwood"

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            self.slow_start_ack(ack)
        else:
            self.reno_ca_ack(ack)

    def _on_loss(self, loss: LossEvent) -> None:
        pipe = self.ack_rate * (
            self.min_rtt if self.min_rtt != float("inf") else 0.0
        )
        if loss.kind == "timeout":
            self.ssthresh = max(pipe, 2.0 * self.mss)
            self.cwnd = float(self.mss)
        else:
            self.ssthresh = max(pipe, 2.0 * self.mss)
            self.cwnd = self.ssthresh
