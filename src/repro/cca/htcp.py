"""H-TCP [Leith, Shorten; PFLDNet '04].

H-TCP scales its additive increase with the time since the last loss:
for the first ``DELTA_L`` second it behaves like Reno (alpha = 1); past
that, ``alpha = 1 + 10 (d - DELTA_L) + ((d - DELTA_L) / 2)^2``, so long
loss-free periods probe increasingly fast.  The decrease factor adapts to
the RTT envelope: ``beta = min_rtt / max_rtt`` bounded to [0.5, 0.8].
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Htcp"]


class Htcp(CongestionControl):
    """H-TCP: loss-age-scaled increase, RTT-ratio decrease."""

    name = "htcp"

    #: Low-speed regime duration after a loss, seconds.
    DELTA_L = 1.0

    def _alpha(self, now: float) -> float:
        delta = now - self.last_loss_time
        if delta <= self.DELTA_L:
            return 1.0
        excess = delta - self.DELTA_L
        return 1.0 + 10.0 * excess + (excess / 2.0) ** 2

    def _beta(self) -> float:
        if self.max_rtt <= 0 or self.min_rtt == float("inf"):
            return 0.5
        return min(max(self.min_rtt / self.max_rtt, 0.5), 0.8)

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            self.slow_start_ack(ack)
        else:
            self.reno_ca_ack(ack, scale=self._alpha(ack.now))

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(self._beta())
