"""TCP Veno [Fu, Liew; JSAC '03].

Veno grafts Vegas's queue estimate onto Reno to distinguish random
(wireless) loss from congestive loss: when the estimated backlog is below
``beta`` packets the network is uncongested, so losses cut the window by
only 20%; when congested, Reno's halving applies.  The increase is also
tempered: in the congested regime Veno grows every *other* ACK.
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Veno"]


class Veno(CongestionControl):
    """TCP Veno: Reno with a Vegas-style congestion discriminator."""

    name = "veno"

    #: Backlog threshold (packets) separating random from congestive loss.
    BETA = 3.0

    def __init__(self, mss: int = 1500, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self._hold = False  # skip-every-other-ack flag in congested regime

    def _backlog(self) -> float:
        if self.latest_rtt is None or self.min_rtt == float("inf"):
            return 0.0
        expected = self.cwnd / self.min_rtt
        actual = self.cwnd / self.latest_rtt
        return (expected - actual) * self.min_rtt / self.mss

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            self.slow_start_ack(ack)
            return
        if self._backlog() < self.BETA:
            self.reno_ca_ack(ack)
        else:
            # Congested: increase at half Reno's pace.
            self._hold = not self._hold
            if not self._hold:
                self.reno_ca_ack(ack)

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
        elif self._backlog() < self.BETA:
            self.multiplicative_decrease(0.8)  # likely random loss
        else:
            self.multiplicative_decrease(0.5)  # congestive loss
