"""Synthetic "student" CCAs.

The paper's second dataset is seven novel CCAs written by students in a
graduate networking course (50–150 lines of C++ each, UDP transport).
That dataset is not redistributable, so this module provides seven
stand-in algorithms with the behavioral signatures the paper reports
(§5.6, Table 2): most are Vegas-flavoured delay-threshold schemes, two
are degenerate fixed-window senders, one is rate-based and one reacts to
the delay gradient.  Each class documents which Table 2 row it mirrors.
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = [
    "Student1",
    "Student2",
    "Student3",
    "Student4",
    "Student5",
    "Student6",
    "Student7",
    "STUDENT_CCAS",
]


class _StudentBase(CongestionControl):
    """Shared plumbing: students mostly ignore losses (UDP transport)."""

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.cwnd = 2.0 * self.mss

    def _queued_packets(self) -> float:
        """The vegas-diff estimate students commonly implement."""
        if self.latest_rtt is None or self.min_rtt == float("inf"):
            return 0.0
        return (
            (self.latest_rtt - self.min_rtt) * self.ack_rate / self.mss
        )


class Student1(_StudentBase):
    """Delay-threshold triangle: ramp until queued, then hard reset.

    Mirrors the Table 2 row whose best handler needed the Vegas-11 DSL to
    capture a triangular cwnd pattern (Figure 6a).
    """

    name = "student1"
    TARGET_PACKETS = 6.0

    def _on_ack(self, ack: AckEvent) -> None:
        if self._queued_packets() < self.TARGET_PACKETS:
            self.cwnd += 0.5 * self.mss
        else:
            self.cwnd = 8.0 * self.mss


class Student2(_StudentBase):
    """Additive increase with a delay-triggered collapse to one MSS.

    Mirrors ``(vegas_diff / min_rtt < 5) ? cwnd + mss : mss``.
    """

    name = "student2"
    THRESHOLD = 5.0

    def _on_ack(self, ack: AckEvent) -> None:
        if self._queued_packets() < self.THRESHOLD:
            self.cwnd += float(self.mss)
        else:
            self.cwnd = float(self.mss)


class Student3(_StudentBase):
    """Rate-based: window pinned to a fraction of the measured BDP.

    Mirrors ``0.8 * acked / min_rtt`` — a handler with no dependence on
    the previous window at all.
    """

    name = "student3"
    GAIN = 0.8

    def _on_ack(self, ack: AckEvent) -> None:
        if self.min_rtt == float("inf") or self.ack_rate <= 0:
            self.cwnd += ack.acked_bytes  # still probing
            return
        self.cwnd = max(
            self.GAIN * self.ack_rate * self.min_rtt, 2.0 * self.mss
        )


class Student4(_StudentBase):
    """Stop-and-wait: one segment outstanding, always (handler: ``mss``)."""

    name = "student4"

    def _on_ack(self, ack: AckEvent) -> None:
        self.cwnd = float(self.mss)


class Student5(_StudentBase):
    """Fixed two-segment window (handler: ``2 * mss``)."""

    name = "student5"

    def _on_ack(self, ack: AckEvent) -> None:
        self.cwnd = 2.0 * self.mss


class Student6(_StudentBase):
    """Gradient-damped growth: expands while the RTT is flat, contracts
    sharply when the RTT rises (handler: ``(cwnd + 150 mss) / gradient``).
    """

    name = "student6"
    BOOST = 0.02  # fraction of 150 MSS added per flat-RTT ack

    def __init__(self, mss: int = 1500, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self._prev_rtt: float | None = None
        self._gradient = 0.0

    def _on_ack(self, ack: AckEvent) -> None:
        if ack.rtt_sample is not None:
            if self._prev_rtt is not None:
                sample = (ack.rtt_sample - self._prev_rtt) / max(
                    ack.rtt_sample, 1e-6
                )
                self._gradient += 0.25 * (sample - self._gradient)
            self._prev_rtt = ack.rtt_sample
        damping = 1.0 + max(self._gradient, 0.0) * 50.0
        target = (self.cwnd + self.BOOST * 150.0 * self.mss) / damping
        self.cwnd = max(target, 2.0 * self.mss)


class Student7(_StudentBase):
    """Delay-tempered AIMD (handler: ``cwnd + 2 * acked / rtt``): the
    increase shrinks as queueing inflates the RTT above its floor.
    """

    name = "student7"

    def _on_ack(self, ack: AckEvent) -> None:
        if self.latest_rtt is None or self.latest_rtt <= 0:
            self.cwnd += ack.acked_bytes
            return
        ratio = (
            self.min_rtt / self.latest_rtt
            if self.min_rtt != float("inf")
            else 1.0
        )
        self.cwnd += 2.0 * ack.acked_bytes * ratio * self.mss / max(
            self.cwnd, 1.0
        )


#: The seven student algorithms, in Table 2 order.
STUDENT_CCAS: tuple[type[CongestionControl], ...] = (
    Student1,
    Student2,
    Student3,
    Student4,
    Student5,
    Student6,
    Student7,
)
