"""Congestion-control algorithm interface.

Every CCA in the zoo subclasses :class:`CongestionControl` and implements
two event handlers, mirroring the kernel module interface the paper
targets (§3, "Model"):

``_on_ack``
    called for every new cumulative acknowledgment, with the ACK metadata
    in an :class:`AckEvent`; updates ``self.cwnd``.

``_on_loss``
    called when the sender infers a loss (triple-dupack fast retransmit
    or an RTO), with a :class:`LossEvent`.

The base class maintains the bookkeeping almost every CCA needs — RTT
statistics (latest/EWMA/min/max), a delivery-rate estimate, slow-start
state, and the time of the last loss — so concrete algorithms stay close
to the ~50–500 line kernel modules they reproduce.

Window arithmetic is done in *bytes* throughout (kernel code uses
segments; bytes keep the DSL's unit checking meaningful).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import ClassVar

__all__ = ["AckEvent", "LossEvent", "CongestionControl"]

#: Smoothing factor for the RTT EWMA (RFC 6298's 1/8).
RTT_EWMA_ALPHA = 0.125
#: Delivery-rate window length, in smoothed RTTs.
RATE_WINDOW_RTTS = 2.0
#: Minimum delivery-rate window, seconds.
RATE_WINDOW_MIN = 0.05


@dataclass(slots=True)
class AckEvent:
    """Metadata for one new cumulative acknowledgment."""

    now: float
    acked_bytes: int
    rtt_sample: float | None
    inflight_bytes: int


@dataclass(slots=True)
class LossEvent:
    """Metadata for one inferred loss."""

    now: float
    kind: str  # "dupack" or "timeout"
    inflight_bytes: int


class CongestionControl(ABC):
    """Base class for every congestion control algorithm in the zoo."""

    #: Registry name, e.g. ``"reno"``; set by each subclass.
    name: ClassVar[str] = "abstract"

    def __init__(self, mss: int = 1500, initial_cwnd_segments: int = 10):
        self.mss = mss
        self.cwnd: float = float(initial_cwnd_segments * mss)
        self.ssthresh: float = float("inf")
        # RTT statistics.
        self.latest_rtt: float | None = None
        self.srtt: float | None = None
        self.min_rtt: float = float("inf")
        self.max_rtt: float = 0.0
        # Delivery-rate estimate (bytes/sec) over a sliding window of ACK
        # history; robust to the bursty cumulative jumps SACK recovery
        # produces (an instantaneous per-ack rate can spike by orders of
        # magnitude and would poison Westwood/BBR bandwidth estimates).
        self.ack_rate: float = 0.0
        self._rate_history: deque[tuple[float, int]] = deque()
        self._last_ack_time: float | None = None
        # Loss bookkeeping.
        self.last_loss_time: float = 0.0
        self.losses_seen: int = 0
        # Total bytes delivered, for rate estimation.
        self.delivered_bytes: int = 0

    # ------------------------------------------------------------------
    # Event entry points (called by the simulator)
    # ------------------------------------------------------------------

    def on_ack(self, ack: AckEvent) -> None:
        """Update shared statistics, then dispatch to the algorithm."""
        if ack.rtt_sample is not None and ack.rtt_sample > 0:
            self.latest_rtt = ack.rtt_sample
            self.min_rtt = min(self.min_rtt, ack.rtt_sample)
            self.max_rtt = max(self.max_rtt, ack.rtt_sample)
            if self.srtt is None:
                self.srtt = ack.rtt_sample
            else:
                self.srtt += RTT_EWMA_ALPHA * (ack.rtt_sample - self.srtt)
        self.delivered_bytes += ack.acked_bytes
        self._update_ack_rate(ack.now)
        self._last_ack_time = ack.now
        self._on_ack(ack)
        self._clamp()

    def on_loss(self, loss: LossEvent) -> None:
        """Record the loss, then dispatch to the algorithm."""
        self.last_loss_time = loss.now
        self.losses_seen += 1
        self._on_loss(loss)
        self._clamp()

    def _update_ack_rate(self, now: float) -> None:
        """Recompute ``ack_rate`` over a sliding window of delivery history.

        The window spans a few smoothed RTTs (at least
        :data:`RATE_WINDOW_MIN` seconds) so the estimate reflects an RTT's
        worth of progress, not a single ACK's arrival spacing.
        """
        self._rate_history.append((now, self.delivered_bytes))
        window = max(
            RATE_WINDOW_RTTS * (self.srtt or 0.0), RATE_WINDOW_MIN
        )
        while (
            len(self._rate_history) > 2
            and now - self._rate_history[0][0] > window
        ):
            self._rate_history.popleft()
        oldest_time, oldest_delivered = self._rate_history[0]
        elapsed = now - oldest_time
        if elapsed > 0:
            self.ack_rate = (
                self.delivered_bytes - oldest_delivered
            ) / elapsed

    # ------------------------------------------------------------------
    # Algorithm hooks
    # ------------------------------------------------------------------

    @abstractmethod
    def _on_ack(self, ack: AckEvent) -> None:
        """Algorithm-specific window update on a new acknowledgment."""

    @abstractmethod
    def _on_loss(self, loss: LossEvent) -> None:
        """Algorithm-specific reaction to an inferred loss."""

    # ------------------------------------------------------------------
    # Shared helpers used by many algorithms
    # ------------------------------------------------------------------

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def slow_start_ack(self, ack: AckEvent) -> None:
        """Exponential growth: one MSS per acked segment."""
        self.cwnd += min(ack.acked_bytes, self.mss)

    def reno_ca_ack(self, ack: AckEvent, scale: float = 1.0) -> None:
        """Reno congestion avoidance: ``scale`` MSS per cwnd of ACKs."""
        self.cwnd += scale * self.mss * ack.acked_bytes / max(self.cwnd, 1.0)

    def multiplicative_decrease(self, factor: float) -> None:
        """Cut the window to ``factor * cwnd`` and track ssthresh."""
        self.ssthresh = max(self.cwnd * factor, 2.0 * self.mss)
        self.cwnd = self.ssthresh

    def timeout_reset(self) -> None:
        """RTO reaction shared by loss-based CCAs: back to one segment."""
        self.ssthresh = max(self.cwnd / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)

    def _clamp(self) -> None:
        self.cwnd = max(self.cwnd, float(self.mss))

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} cwnd={self.cwnd:.0f}B "
            f"ssthresh={self.ssthresh:.0f}>"
        )
