"""The congestion-control algorithm zoo.

Python ports of the 16 CCAs distributed with the Linux kernel plus seven
synthetic "student" CCAs (paper §5).  All share the
:class:`~repro.cca.base.CongestionControl` event interface consumed by
the simulator.
"""

from repro.cca.base import AckEvent, CongestionControl, LossEvent
from repro.cca.bbr import Bbr
from repro.cca.bic import Bic
from repro.cca.cdg import Cdg
from repro.cca.cubic import Cubic
from repro.cca.highspeed import HighSpeed
from repro.cca.htcp import Htcp
from repro.cca.hybla import Hybla
from repro.cca.illinois import Illinois
from repro.cca.lp import LowPriority
from repro.cca.nv import NewVegas
from repro.cca.registry import (
    ALL_CCAS,
    KERNEL_CCAS,
    STUDENT_NAMES,
    cca_names,
    make_cca,
)
from repro.cca.reno import Reno
from repro.cca.scalable import Scalable
from repro.cca.student import (
    STUDENT_CCAS,
    Student1,
    Student2,
    Student3,
    Student4,
    Student5,
    Student6,
    Student7,
)
from repro.cca.vegas import Vegas
from repro.cca.veno import Veno
from repro.cca.westwood import Westwood
from repro.cca.yeah import Yeah

__all__ = [
    "AckEvent",
    "CongestionControl",
    "LossEvent",
    "Bbr",
    "Bic",
    "Cdg",
    "Cubic",
    "HighSpeed",
    "Htcp",
    "Hybla",
    "Illinois",
    "LowPriority",
    "NewVegas",
    "Reno",
    "Scalable",
    "Vegas",
    "Veno",
    "Westwood",
    "Yeah",
    "Student1",
    "Student2",
    "Student3",
    "Student4",
    "Student5",
    "Student6",
    "Student7",
    "STUDENT_CCAS",
    "ALL_CCAS",
    "KERNEL_CCAS",
    "STUDENT_NAMES",
    "cca_names",
    "make_cca",
]
