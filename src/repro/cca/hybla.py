"""TCP Hybla [Caini, Firrincieli; IJSCN '04].

Hybla equalizes throughput across RTTs: with ``rho = rtt / rtt0``
(``rtt0`` = 25 ms reference), slow start grows by ``2^rho - 1`` segments
per ACK and congestion avoidance by ``rho^2`` Reno increments, so a
high-delay (e.g. satellite) flow ramps as fast as a 25 ms flow.
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Hybla"]


class Hybla(CongestionControl):
    """TCP Hybla: RTT-compensated Reno."""

    name = "hybla"

    #: Reference round-trip time, seconds (kernel default 25 ms).
    RTT0 = 0.025

    @property
    def rho(self) -> float:
        """RTT normalization factor, floored at 1 like the kernel."""
        if self.latest_rtt is None:
            return 1.0
        return max(self.latest_rtt / self.RTT0, 1.0)

    def _on_ack(self, ack: AckEvent) -> None:
        rho = self.rho
        segments = ack.acked_bytes / self.mss
        if self.in_slow_start:
            self.cwnd += (2.0**rho - 1.0) * self.mss * segments
        else:
            self.cwnd += (
                rho**2 * self.mss * self.mss * segments / max(self.cwnd, 1.0)
            )

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(0.5)
