"""YeAH-TCP [Baiocchi, Castellani, Vacirca; PFLDnet '07].

"Yet Another Highspeed" TCP runs in two modes decided by the estimated
bottleneck backlog ``Q = (rtt - min_rtt) * cwnd / rtt``: *Fast* mode uses
a Scalable-TCP increase while the queue is short; *Slow* mode falls back
to Reno and performs precautionary decongestion (shedding the estimated
queue) when ``Q`` exceeds ``Q_MAX``.
"""

from __future__ import annotations

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Yeah"]


class Yeah(CongestionControl):
    """YeAH-TCP: Scalable when the queue is short, Reno otherwise."""

    name = "yeah"

    #: Maximum tolerated backlog, packets (kernel: 80).
    Q_MAX = 80.0
    #: Scalable-style per-acked-byte gain in fast mode.
    FAST_GAIN = 0.01
    #: min_rtt/rtt ratio below which the path counts as congested.
    PHY = 0.8

    def __init__(self, mss: int = 1500, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self._next_decongestion = 0.0

    def _queue_packets(self) -> float:
        if self.latest_rtt is None or self.min_rtt == float("inf"):
            return 0.0
        queue_bytes = (
            (self.latest_rtt - self.min_rtt) * self.cwnd / self.latest_rtt
        )
        return max(queue_bytes, 0.0) / self.mss

    def _on_ack(self, ack: AckEvent) -> None:
        if self.in_slow_start:
            self.slow_start_ack(ack)
            return
        queue = self._queue_packets()
        rtt_ratio = (
            self.min_rtt / self.latest_rtt
            if self.latest_rtt
            else 1.0
        )
        if queue < self.Q_MAX and rtt_ratio > self.PHY:
            # Fast mode: Scalable-TCP increase.
            self.cwnd += self.FAST_GAIN * ack.acked_bytes
        else:
            # Slow mode: Reno increase plus precautionary decongestion.
            self.reno_ca_ack(ack)
            if (
                queue > self.Q_MAX
                and self.latest_rtt is not None
                and ack.now >= self._next_decongestion
            ):
                self.cwnd -= min(queue * self.mss / 2.0, self.cwnd / 2.0)
                self.ssthresh = self.cwnd
                self._next_decongestion = ack.now + self.latest_rtt

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
            return
        queue = self._queue_packets()
        if queue > 0 and queue < self.Q_MAX:
            # Shed exactly the estimated queue.
            decrease = max(
                1.0 - queue * self.mss / max(self.cwnd, 1.0), 0.5
            )
            self.multiplicative_decrease(decrease)
        else:
            self.multiplicative_decrease(0.5)
