"""CAIA Delay-Gradient (CDG) [Hayes, Armitage; Networking '11].

CDG backs off *probabilistically* based on the gradient of the RTT
envelope: with smoothed gradients ``g_min`` (of the per-RTT minimum) and
``g_max`` (of the per-RTT maximum), the flow backs off with probability
``1 - exp(-g / G)``.  The randomness puts CDG outside Abagnale's DSL
(paper §5.5) — it is implemented here for trace generation and
classification, but the synthesizer is not expected to recover it.
"""

from __future__ import annotations

import math
import random

from repro.cca.base import AckEvent, CongestionControl, LossEvent

__all__ = ["Cdg"]


class Cdg(CongestionControl):
    """CDG: probabilistic delay-gradient backoff (non-deterministic)."""

    name = "cdg"

    #: Gradient scale parameter G (kernel default: 3 RTT-units).
    G = 3.0
    #: Smoothing window for gradients, samples.
    WINDOW = 8

    def __init__(
        self,
        mss: int = 1500,
        initial_cwnd_segments: int = 10,
        seed: int = 42,
    ):
        super().__init__(mss, initial_cwnd_segments)
        self._rng = random.Random(seed)
        self._rtt_min_prev: float | None = None
        self._round_min = float("inf")
        self._round_end = 0.0
        self._gradient = 0.0
        self._backoff_hold = 0.0

    def _on_ack(self, ack: AckEvent) -> None:
        if ack.rtt_sample is not None:
            self._round_min = min(self._round_min, ack.rtt_sample)
        if ack.now >= self._round_end and self.latest_rtt is not None:
            self._finish_round(ack.now)
        if self.in_slow_start:
            self.slow_start_ack(ack)
        else:
            self.reno_ca_ack(ack)

    def _finish_round(self, now: float) -> None:
        if self._round_min != float("inf"):
            if self._rtt_min_prev is not None:
                sample = self._round_min - self._rtt_min_prev
                self._gradient += (sample - self._gradient) / self.WINDOW
            self._rtt_min_prev = self._round_min
        self._round_min = float("inf")
        self._round_end = now + (self.latest_rtt or 0.05)
        # Probabilistic backoff on a positive (rising-delay) gradient.
        if self._gradient > 0 and now >= self._backoff_hold:
            rtt_unit = max(self.min_rtt, 1e-3)
            probability = 1.0 - math.exp(
                -(self._gradient / rtt_unit) / self.G
            )
            if self._rng.random() < probability:
                self.multiplicative_decrease(0.7)
                self._backoff_hold = now + 5 * (self.latest_rtt or 0.05)

    def _on_loss(self, loss: LossEvent) -> None:
        if loss.kind == "timeout":
            self.timeout_reset()
        else:
            self.multiplicative_decrease(0.5)
