"""Testbed environment matrix.

The paper collects traces on a controlled testbed "with RTTs ranging
between 10 to 100ms and bandwidth between 5 and 15Mbps" (§3.2).  An
:class:`Environment` captures one network configuration; the default
matrix spans the same ranges so that trace diversity — which the paper
shows is necessary to synthesize Cubic at all — is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Environment", "default_matrix", "DEFAULT_MSS"]

#: Maximum segment size used throughout the testbed, in bytes.
DEFAULT_MSS = 1500


@dataclass(frozen=True, slots=True)
class Environment:
    """A single virtual-network configuration.

    ``bandwidth_mbps`` is the bottleneck rate; ``rtt_ms`` the base
    (propagation-only) round-trip time; ``queue_bdp`` sizes the droptail
    buffer as a multiple of the bandwidth-delay product.
    """

    bandwidth_mbps: float
    rtt_ms: float
    queue_bdp: float = 1.0
    mss: int = DEFAULT_MSS

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0 or self.rtt_ms <= 0 or self.queue_bdp <= 0:
            raise ValueError("environment parameters must be positive")

    @property
    def bandwidth_bytes_per_sec(self) -> float:
        return self.bandwidth_mbps * 1e6 / 8.0

    @property
    def base_rtt_sec(self) -> float:
        return self.rtt_ms / 1e3

    @property
    def bdp_bytes(self) -> int:
        """Bandwidth-delay product in bytes."""
        return int(self.bandwidth_bytes_per_sec * self.base_rtt_sec)

    @property
    def queue_capacity_bytes(self) -> int:
        """Droptail buffer size: ``queue_bdp`` BDPs, at least 4 segments."""
        return max(int(self.queue_bdp * self.bdp_bytes), 4 * self.mss)

    @property
    def max_cwnd_bytes(self) -> int:
        """Sender buffer cap, the kernel-sndbuf equivalent.

        A real sender cannot hold more than its socket buffer in flight;
        without this cap, aggressive CCAs (e.g. Hybla over long paths)
        would grow nominal windows orders of magnitude past the pipe
        before the first loss is even detected.
        """
        return 4 * (self.bdp_bytes + self.queue_capacity_bytes)

    @property
    def label(self) -> str:
        return f"{self.bandwidth_mbps:g}mbps-{self.rtt_ms:g}ms"


def default_matrix(
    *,
    bandwidths_mbps: tuple[float, ...] = (5.0, 10.0, 15.0),
    rtts_ms: tuple[float, ...] = (10.0, 25.0, 50.0, 75.0, 100.0),
    queue_bdp: float = 1.0,
) -> list[Environment]:
    """The cross-product environment matrix used for trace collection.

    Defaults span the paper's testbed ranges (5–15 Mbps × 10–100 ms).
    """
    return [
        Environment(bandwidth_mbps=bw, rtt_ms=rtt, queue_bdp=queue_bdp)
        for bw in bandwidths_mbps
        for rtt in rtts_ms
    ]
