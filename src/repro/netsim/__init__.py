"""Discrete-event network simulation substrate.

Replaces the paper's virtual-network testbed: a single flow driven by a
:class:`~repro.cca.base.CongestionControl` over a droptail bottleneck,
with configurable bandwidth, base RTT and buffer depth, plus measurement
noise injection for robustness experiments.
"""

from repro.netsim.environments import DEFAULT_MSS, Environment, default_matrix
from repro.netsim.packet import Ack, Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.multiflow import (
    MultiFlowSimulator,
    fairness_report,
    simulate_competition,
)
from repro.netsim.simulator import Simulator, simulate

# Re-exported last: the noise model lives in repro.trace (it operates on
# traces) but is part of the simulation substrate's public surface.
from repro.trace.noise import NoiseModel, apply_noise  # noqa: E402

__all__ = [
    "DEFAULT_MSS",
    "Environment",
    "default_matrix",
    "NoiseModel",
    "apply_noise",
    "Ack",
    "Packet",
    "DropTailQueue",
    "Simulator",
    "simulate",
    "MultiFlowSimulator",
    "fairness_report",
    "simulate_competition",
]
