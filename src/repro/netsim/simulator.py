"""Discrete-event simulation of one flow over a droptail bottleneck.

This module is the substitute for the paper's virtual-network testbed
(§3.2): it runs a CCA over a configurable bottleneck (bandwidth, base
RTT, droptail buffer) and records the per-ACK trace a sender-side
measurement vantage point would see.

Topology::

    sender --> [droptail queue | bottleneck link] --> receiver
       ^                                                 |
       +------------------ ACK path (delay only) --------+

The sender implements cumulative ACKs, triple-dupack fast retransmit with
SACK-style recovery (on entering recovery the sender learns the exact set
of holes, as a kernel sender with SACK would, and repairs them without
waiting one RTT per hole), and an RFC 6298-style retransmission timer;
the attached :class:`~repro.cca.base.CongestionControl` decides the
window.
Losses happen only by queue overflow, which is what drives the sawtooth
and pulsing dynamics the synthesizer learns from.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.cca.base import AckEvent, CongestionControl, LossEvent
from repro.errors import SimulationError
from repro.netsim.environments import Environment
from repro.netsim.packet import Ack, Packet
from repro.netsim.queues import DropTailQueue
from repro.trace.model import AckRecord, LossRecord, Trace

__all__ = ["Simulator", "simulate"]

#: Minimum retransmission timeout, seconds (lowered from RFC 6298's 1 s so
#: short simulations recover quickly from full-window losses).
MIN_RTO = 0.2
#: RTT-variance multiplier in the RTO formula.
RTO_VAR_GAIN = 4.0


@dataclass(order=True)
class _Event:
    time: float
    order: int
    action: Callable[[], None] = field(compare=False)


class Simulator:
    """One flow, one bottleneck, one CCA; produces a :class:`Trace`."""

    def __init__(
        self,
        cca: CongestionControl,
        env: Environment,
        *,
        duration: float = 30.0,
        max_acks: int | None = None,
    ):
        if cca.mss != env.mss:
            raise SimulationError(
                f"CCA mss ({cca.mss}) differs from environment mss ({env.mss})"
            )
        self.cca = cca
        self.env = env
        self.duration = duration
        self.max_acks = max_acks
        self.now = 0.0

        # Event queue.
        self._events: list[_Event] = []
        self._order = itertools.count()

        # Bottleneck.
        self.queue = DropTailQueue(env.queue_capacity_bytes)
        self._link_busy = False
        self._rate = env.bandwidth_bytes_per_sec
        self._one_way = env.base_rtt_sec / 2.0

        # Sender state.
        self.snd_una = 0  # first unacknowledged byte
        self.snd_nxt = 0  # next byte to send
        self._dupacks = 0
        self._in_recovery = False
        self._recover_point = 0
        self._rtx_sent: set[int] = set()
        self._timer_deadline: float | None = None
        self._srtt: float | None = None
        self._rttvar = 0.0

        # Receiver state: next expected byte + out-of-order segment starts.
        self._rcv_nxt = 0
        self._ooo: set[int] = set()

        # Trace under construction.
        self.trace = Trace(
            cca_name=cca.name,
            environment_label=env.label,
            mss=env.mss,
            meta={
                "bandwidth_mbps": env.bandwidth_mbps,
                "rtt_ms": env.rtt_ms,
                "queue_bytes": env.queue_capacity_bytes,
            },
        )

    # ------------------------------------------------------------------
    # Event machinery
    # ------------------------------------------------------------------

    def _schedule(self, delay: float, action: Callable[[], None]) -> None:
        heapq.heappush(
            self._events, _Event(self.now + delay, next(self._order), action)
        )

    def run(self) -> Trace:
        """Run the flow to ``duration`` sim-seconds and return its trace."""
        self._send_window()
        self._arm_timer()
        while self._events:
            event = heapq.heappop(self._events)
            if event.time > self.duration:
                break
            if (
                self.max_acks is not None
                and len(self.trace.acks) >= self.max_acks
            ):
                break
            self.now = event.time
            event.action()
        return self.trace

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------

    @property
    def _pipe(self) -> int:
        """Bytes believed to be in the network (SACK scoreboard estimate).

        Outstanding bytes minus those the receiver holds out-of-order
        (what SACK blocks would report).  Dropped originals keep counting
        until repaired, which keeps the estimate conservative and avoids
        bursting a full window into an already-overflowing queue.
        """
        outstanding = self.snd_nxt - self.snd_una
        sacked = len(self._ooo) * self.env.mss
        return max(outstanding - sacked, 0)

    @property
    def effective_cwnd(self) -> float:
        """The CCA's window clamped by the sender's buffer (sndbuf)."""
        return min(self.cca.cwnd, float(self.env.max_cwnd_bytes))

    def _send_window(self) -> None:
        """Transmit new segments while the window allows."""
        mss = self.env.mss
        while self._pipe + mss <= int(self.effective_cwnd):
            self._transmit(Packet(self.snd_nxt, mss, self.now))
            self.snd_nxt += mss

    def _transmit(self, packet: Packet) -> None:
        if not self.queue.offer(packet):
            # Tail drop; the loss surfaces later as dupacks/RTO.  A dropped
            # retransmission becomes eligible for retransmission again.
            if packet.retransmit:
                self._rtx_sent.discard(packet.seq)
            return
        if not self._link_busy:
            self._start_service()

    def _start_service(self) -> None:
        packet = self.queue.pop()
        self._link_busy = True
        service_time = packet.size / self._rate
        self._schedule(service_time, lambda: self._finish_service(packet))

    def _finish_service(self, packet: Packet) -> None:
        self._link_busy = False
        self._schedule(self._one_way, lambda: self._deliver(packet))
        if not self.queue.is_empty:
            self._start_service()

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------

    def _deliver(self, packet: Packet) -> None:
        if packet.seq == self._rcv_nxt:
            self._rcv_nxt = packet.end
            # Absorb any buffered contiguous segments.
            while self._rcv_nxt in self._ooo:
                self._ooo.discard(self._rcv_nxt)
                self._rcv_nxt += self.env.mss
        elif packet.seq > self._rcv_nxt:
            self._ooo.add(packet.seq)
        # Duplicate (seq < rcv_nxt): pure ACK refresh.
        sample_time = None if packet.retransmit else packet.send_time
        ack = Ack(self._rcv_nxt, self.now, sample_time)
        self._schedule(self._one_way, lambda: self._handle_ack(ack))

    # ------------------------------------------------------------------
    # ACK processing at the sender
    # ------------------------------------------------------------------

    def _handle_ack(self, ack: Ack) -> None:
        if ack.ack > self.snd_una:
            self._process_new_ack(ack)
        else:
            self._process_dupack(ack)
        self._send_window()

    def _process_new_ack(self, ack: Ack) -> None:
        acked = ack.ack - self.snd_una
        self.snd_una = ack.ack
        rtt_sample = (
            self.now - ack.for_send_time
            if ack.for_send_time is not None
            else None
        )
        self._update_rto(rtt_sample)
        self._rtx_sent = {seq for seq in self._rtx_sent if seq >= ack.ack}
        if self._in_recovery:
            if ack.ack >= self._recover_point:
                self._in_recovery = False
                self._dupacks = 0
            else:
                # Partial ACK: more holes remain; repair them (SACK view).
                self._retransmit_missing()
        else:
            self._dupacks = 0
        event = AckEvent(
            now=self.now,
            acked_bytes=acked,
            rtt_sample=rtt_sample,
            inflight_bytes=self.snd_nxt - self.snd_una,
        )
        self.cca.on_ack(event)
        self.trace.acks.append(
            AckRecord(
                time=self.now,
                ack_seq=ack.ack,
                acked_bytes=acked,
                rtt_sample=rtt_sample,
                cwnd_bytes=self.effective_cwnd,
                inflight_bytes=self.snd_nxt - self.snd_una,
                dupack=False,
            )
        )
        self._arm_timer()

    def _process_dupack(self, ack: Ack) -> None:
        self._dupacks += 1
        self.trace.acks.append(
            AckRecord(
                time=self.now,
                ack_seq=ack.ack,
                acked_bytes=0,
                rtt_sample=None,
                cwnd_bytes=self.effective_cwnd,
                inflight_bytes=self.snd_nxt - self.snd_una,
                dupack=True,
            )
        )
        if self._dupacks == 3 and not self._in_recovery:
            self._enter_recovery()

    def _enter_recovery(self) -> None:
        self._in_recovery = True
        self._recover_point = self.snd_nxt
        self.cca.on_loss(
            LossEvent(
                now=self.now,
                kind="dupack",
                inflight_bytes=self.snd_nxt - self.snd_una,
            )
        )
        self.trace.losses.append(LossRecord(self.now, "dupack"))
        self._retransmit_missing()

    def _retransmit_head(self) -> None:
        self._rtx_sent.add(self.snd_una)
        self._transmit(
            Packet(self.snd_una, self.env.mss, self.now, retransmit=True)
        )

    def _retransmit_missing(self, limit: int = 64) -> None:
        """Retransmit every unrepaired hole (SACK-informed recovery).

        The sender consults the receiver's out-of-order set — the
        information SACK blocks would carry — and resends the segments the
        receiver is actually missing, at most *limit* per invocation.
        """
        mss = self.env.mss
        sent = 0
        for seq in range(self.snd_una, self.snd_nxt, mss):
            if seq in self._ooo or seq in self._rtx_sent:
                continue
            self._rtx_sent.add(seq)
            self._transmit(Packet(seq, mss, self.now, retransmit=True))
            sent += 1
            if sent >= limit:
                break

    # ------------------------------------------------------------------
    # Retransmission timer (RFC 6298, simplified)
    # ------------------------------------------------------------------

    def _update_rto(self, rtt_sample: float | None) -> None:
        if rtt_sample is None:
            return
        if self._srtt is None:
            self._srtt = rtt_sample
            self._rttvar = rtt_sample / 2.0
        else:
            self._rttvar += 0.25 * (abs(self._srtt - rtt_sample) - self._rttvar)
            self._srtt += 0.125 * (rtt_sample - self._srtt)

    @property
    def _rto(self) -> float:
        if self._srtt is None:
            return max(4 * self.env.base_rtt_sec, MIN_RTO)
        return max(self._srtt + RTO_VAR_GAIN * self._rttvar, MIN_RTO)

    def _arm_timer(self) -> None:
        deadline = self.now + self._rto
        self._timer_deadline = deadline
        snapshot = self.snd_una
        self._schedule(self._rto, lambda: self._timer_fired(deadline, snapshot))

    def _timer_fired(self, deadline: float, una_snapshot: int) -> None:
        if self._timer_deadline != deadline:
            return  # superseded by a later re-arm
        if self.snd_una == una_snapshot and self.snd_nxt > self.snd_una:
            # No progress for a full RTO with data outstanding: timeout.
            self.cca.on_loss(
                LossEvent(
                    now=self.now,
                    kind="timeout",
                    inflight_bytes=self.snd_nxt - self.snd_una,
                )
            )
            self.trace.losses.append(LossRecord(self.now, "timeout"))
            self._in_recovery = False
            self._dupacks = 0
            self._rtx_sent.clear()
            self._retransmit_head()
            self._send_window()
        self._arm_timer()


def simulate(
    cca: CongestionControl,
    env: Environment,
    *,
    duration: float = 30.0,
    max_acks: int | None = None,
) -> Trace:
    """Convenience wrapper: build a :class:`Simulator`, run it, return the trace."""
    return Simulator(cca, env, duration=duration, max_acks=max_acks).run()
