"""Multi-flow simulation: several CCAs sharing one bottleneck.

The paper's motivation (§2.1) is understanding how unknown CCAs affect
*fairness, utilization and latency* when they compete.  The single-flow
simulator collects synthesis traces; this module runs N senders through
one shared droptail queue so reproduced handlers can be studied in
competition (e.g. the BBR-vs-Reno share imbalance of Ware et al., which
the paper cites as prior analysis it wants to enable).

Each flow keeps private sender/receiver state (sequence spaces are
per-flow); the queue, link and event clock are shared.  Per-flow traces
come back in the same :class:`~repro.trace.model.Trace` format.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.cca.base import AckEvent, CongestionControl, LossEvent
from repro.errors import SimulationError
from repro.netsim.environments import Environment
from repro.netsim.queues import DropTailQueue
from repro.trace.model import AckRecord, LossRecord, Trace

__all__ = ["MultiFlowSimulator", "simulate_competition", "fairness_report"]

MIN_RTO = 0.2
RTO_VAR_GAIN = 4.0


@dataclass(slots=True)
class _FlowPacket:
    flow: int
    seq: int
    size: int
    send_time: float
    retransmit: bool = False

    @property
    def end(self) -> int:
        return self.seq + self.size


@dataclass(order=True)
class _Event:
    time: float
    order: int
    action: Callable[[], None] = field(compare=False)


class _FlowState:
    """Sender + receiver state for one flow."""

    def __init__(self, cca: CongestionControl, trace: Trace):
        self.cca = cca
        self.trace = trace
        self.snd_una = 0
        self.snd_nxt = 0
        self.dupacks = 0
        self.in_recovery = False
        self.recover_point = 0
        self.rtx_sent: set[int] = set()
        self.rcv_nxt = 0
        self.ooo: set[int] = set()
        self.srtt: float | None = None
        self.rttvar = 0.0
        self.timer_deadline: float | None = None


class MultiFlowSimulator:
    """N flows, one droptail bottleneck, per-flow traces."""

    def __init__(
        self,
        ccas: list[CongestionControl],
        env: Environment,
        *,
        duration: float = 30.0,
        start_times: list[float] | None = None,
    ):
        if not ccas:
            raise SimulationError("need at least one flow")
        for cca in ccas:
            if cca.mss != env.mss:
                raise SimulationError(
                    f"CCA mss ({cca.mss}) differs from environment ({env.mss})"
                )
        if start_times is not None and len(start_times) != len(ccas):
            raise SimulationError("one start time per flow required")
        self.env = env
        self.duration = duration
        self.now = 0.0
        self.start_times = start_times or [0.0] * len(ccas)
        self._events: list[_Event] = []
        self._order = itertools.count()
        self.queue = DropTailQueue(env.queue_capacity_bytes)
        self._link_busy = False
        self._rate = env.bandwidth_bytes_per_sec
        self._one_way = env.base_rtt_sec / 2.0
        self.flows = [
            _FlowState(
                cca,
                Trace(
                    cca_name=cca.name,
                    environment_label=env.label,
                    mss=env.mss,
                    meta={"flow": float(index)},
                ),
            )
            for index, cca in enumerate(ccas)
        ]

    # -- event machinery ----------------------------------------------

    def _schedule(self, delay: float, action: Callable[[], None]) -> None:
        heapq.heappush(
            self._events, _Event(self.now + delay, next(self._order), action)
        )

    def run(self) -> list[Trace]:
        for index, start in enumerate(self.start_times):
            self._schedule(start, lambda i=index: self._start_flow(i))
        while self._events:
            event = heapq.heappop(self._events)
            if event.time > self.duration:
                break
            self.now = event.time
            event.action()
        return [flow.trace for flow in self.flows]

    def _start_flow(self, index: int) -> None:
        self._send_window(index)
        self._arm_timer(index)

    # -- sender ---------------------------------------------------------

    def _pipe(self, index: int) -> int:
        flow = self.flows[index]
        outstanding = flow.snd_nxt - flow.snd_una
        sacked = len(flow.ooo) * self.env.mss
        return max(outstanding - sacked, 0)

    def _send_window(self, index: int) -> None:
        flow = self.flows[index]
        mss = self.env.mss
        cap = float(self.env.max_cwnd_bytes)
        while self._pipe(index) + mss <= int(min(flow.cca.cwnd, cap)):
            self._transmit(
                _FlowPacket(index, flow.snd_nxt, mss, self.now)
            )
            flow.snd_nxt += mss

    def _transmit(self, packet: _FlowPacket) -> None:
        if not self.queue.offer(packet):  # type: ignore[arg-type]
            if packet.retransmit:
                self.flows[packet.flow].rtx_sent.discard(packet.seq)
            return
        if not self._link_busy:
            self._start_service()

    def _start_service(self) -> None:
        packet = self.queue.pop()
        self._link_busy = True
        self._schedule(
            packet.size / self._rate, lambda: self._finish_service(packet)
        )

    def _finish_service(self, packet) -> None:
        self._link_busy = False
        self._schedule(self._one_way, lambda: self._deliver(packet))
        if not self.queue.is_empty:
            self._start_service()

    # -- receiver + ACK path ---------------------------------------------

    def _deliver(self, packet: _FlowPacket) -> None:
        flow = self.flows[packet.flow]
        if packet.seq == flow.rcv_nxt:
            flow.rcv_nxt = packet.end
            while flow.rcv_nxt in flow.ooo:
                flow.ooo.discard(flow.rcv_nxt)
                flow.rcv_nxt += self.env.mss
        elif packet.seq > flow.rcv_nxt:
            flow.ooo.add(packet.seq)
        sample = None if packet.retransmit else packet.send_time
        ack_value = flow.rcv_nxt
        self._schedule(
            self._one_way,
            lambda: self._handle_ack(packet.flow, ack_value, sample),
        )

    def _handle_ack(
        self, index: int, ack: int, sent_at: float | None
    ) -> None:
        flow = self.flows[index]
        if ack > flow.snd_una:
            self._new_ack(index, ack, sent_at)
        else:
            self._dupack(index, ack)
        self._send_window(index)

    def _new_ack(self, index: int, ack: int, sent_at: float | None) -> None:
        flow = self.flows[index]
        acked = ack - flow.snd_una
        flow.snd_una = ack
        flow.rtx_sent = {seq for seq in flow.rtx_sent if seq >= ack}
        rtt = self.now - sent_at if sent_at is not None else None
        self._update_rto(flow, rtt)
        if flow.in_recovery:
            if ack >= flow.recover_point:
                flow.in_recovery = False
                flow.dupacks = 0
            else:
                self._retransmit_missing(index)
        else:
            flow.dupacks = 0
        flow.cca.on_ack(
            AckEvent(
                now=self.now,
                acked_bytes=acked,
                rtt_sample=rtt,
                inflight_bytes=flow.snd_nxt - flow.snd_una,
            )
        )
        flow.trace.acks.append(
            AckRecord(
                time=self.now,
                ack_seq=ack,
                acked_bytes=acked,
                rtt_sample=rtt,
                cwnd_bytes=min(flow.cca.cwnd, float(self.env.max_cwnd_bytes)),
                inflight_bytes=flow.snd_nxt - flow.snd_una,
            )
        )
        self._arm_timer(index)

    def _dupack(self, index: int, ack: int) -> None:
        flow = self.flows[index]
        flow.dupacks += 1
        flow.trace.acks.append(
            AckRecord(
                time=self.now,
                ack_seq=ack,
                acked_bytes=0,
                rtt_sample=None,
                cwnd_bytes=min(flow.cca.cwnd, float(self.env.max_cwnd_bytes)),
                inflight_bytes=flow.snd_nxt - flow.snd_una,
                dupack=True,
            )
        )
        if flow.dupacks == 3 and not flow.in_recovery:
            flow.in_recovery = True
            flow.recover_point = flow.snd_nxt
            flow.cca.on_loss(
                LossEvent(
                    now=self.now,
                    kind="dupack",
                    inflight_bytes=flow.snd_nxt - flow.snd_una,
                )
            )
            flow.trace.losses.append(LossRecord(self.now, "dupack"))
            self._retransmit_missing(index)

    def _retransmit_missing(self, index: int, limit: int = 64) -> None:
        flow = self.flows[index]
        mss = self.env.mss
        sent = 0
        for seq in range(flow.snd_una, flow.snd_nxt, mss):
            if seq in flow.ooo or seq in flow.rtx_sent:
                continue
            flow.rtx_sent.add(seq)
            self._transmit(
                _FlowPacket(index, seq, mss, self.now, retransmit=True)
            )
            sent += 1
            if sent >= limit:
                break

    # -- timer -----------------------------------------------------------

    def _update_rto(self, flow: _FlowState, rtt: float | None) -> None:
        if rtt is None:
            return
        if flow.srtt is None:
            flow.srtt = rtt
            flow.rttvar = rtt / 2.0
        else:
            flow.rttvar += 0.25 * (abs(flow.srtt - rtt) - flow.rttvar)
            flow.srtt += 0.125 * (rtt - flow.srtt)

    def _rto(self, flow: _FlowState) -> float:
        if flow.srtt is None:
            return max(4 * self.env.base_rtt_sec, MIN_RTO)
        return max(flow.srtt + RTO_VAR_GAIN * flow.rttvar, MIN_RTO)

    def _arm_timer(self, index: int) -> None:
        flow = self.flows[index]
        deadline = self.now + self._rto(flow)
        flow.timer_deadline = deadline
        snapshot = flow.snd_una
        self._schedule(
            self._rto(flow),
            lambda: self._timer_fired(index, deadline, snapshot),
        )

    def _timer_fired(self, index: int, deadline: float, snapshot: int) -> None:
        flow = self.flows[index]
        if flow.timer_deadline != deadline:
            return
        if flow.snd_una == snapshot and flow.snd_nxt > flow.snd_una:
            flow.cca.on_loss(
                LossEvent(
                    now=self.now,
                    kind="timeout",
                    inflight_bytes=flow.snd_nxt - flow.snd_una,
                )
            )
            flow.trace.losses.append(LossRecord(self.now, "timeout"))
            flow.in_recovery = False
            flow.dupacks = 0
            flow.rtx_sent.clear()
            self._transmit(
                _FlowPacket(
                    index, flow.snd_una, self.env.mss, self.now, retransmit=True
                )
            )
            self._send_window(index)
        self._arm_timer(index)


def simulate_competition(
    ccas: list[CongestionControl],
    env: Environment,
    *,
    duration: float = 30.0,
    start_times: list[float] | None = None,
) -> list[Trace]:
    """Run *ccas* in competition; return one trace per flow."""
    return MultiFlowSimulator(
        ccas, env, duration=duration, start_times=start_times
    ).run()


def fairness_report(
    traces: list[Trace], *, window: tuple[float, float] | None = None
) -> dict[str, float]:
    """Summarize a competition: per-flow goodput shares + Jain index.

    ``window`` restricts accounting to a time interval (e.g. the second
    half, once late-starting flows have converged).
    """
    rates: list[float] = []
    for trace in traces:
        rows = [ack for ack in trace.acks if not ack.dupack]
        if window is not None:
            lo, hi = window
            rows = [ack for ack in rows if lo <= ack.time <= hi]
        if len(rows) < 2:
            rates.append(0.0)
            continue
        delivered = rows[-1].ack_seq - rows[0].ack_seq
        elapsed = rows[-1].time - rows[0].time
        rates.append(delivered / elapsed if elapsed > 0 else 0.0)
    total = sum(rates)
    shares = [rate / total if total > 0 else 0.0 for rate in rates]
    squares = sum(rate**2 for rate in rates)
    jain = (total**2) / (len(rates) * squares) if squares > 0 else 0.0
    report = {"jain_index": jain, "total_rate": total}
    for index, (trace, share) in enumerate(zip(traces, shares)):
        report[f"share_{index}_{trace.cca_name}"] = share
    return report
