"""Packet and ACK records used by the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class Packet:
    """A data segment in flight from sender to receiver.

    ``seq`` is the byte offset of the segment's first byte; ``end``
    (seq + size) is the cumulative ACK value the segment produces once
    every earlier byte has also arrived.
    """

    seq: int
    size: int
    send_time: float
    retransmit: bool = False

    @property
    def end(self) -> int:
        return self.seq + self.size


@dataclass(slots=True)
class Ack:
    """A cumulative acknowledgment travelling back to the sender.

    ``ack`` is the next byte the receiver expects.  ``for_send_time`` is
    the send timestamp of the segment that triggered this ACK, used for
    RTT sampling (Karn's rule: retransmitted segments produce ACKs with
    ``for_send_time = None`` and are not sampled).
    """

    ack: int
    recv_time: float
    for_send_time: float | None
