"""Droptail bottleneck queue.

The queue holds packets awaiting transmission on the bottleneck link.  It
is byte-capacitated: a packet whose size would push the backlog past
``capacity_bytes`` is dropped (tail drop), which is the loss process that
drives every loss-based CCA in the zoo.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.netsim.packet import Packet


@dataclass
class DropTailQueue:
    """A FIFO, byte-limited droptail queue."""

    capacity_bytes: int
    _items: deque[Packet] = field(default_factory=deque, repr=False)
    _backlog: int = 0
    drops: int = 0

    def offer(self, packet: Packet) -> bool:
        """Enqueue *packet*; return False (and count a drop) on overflow."""
        if self._backlog + packet.size > self.capacity_bytes:
            self.drops += 1
            return False
        self._items.append(packet)
        self._backlog += packet.size
        return True

    def pop(self) -> Packet:
        packet = self._items.popleft()
        self._backlog -= packet.size
        return packet

    def __len__(self) -> int:
        return len(self._items)

    @property
    def backlog_bytes(self) -> int:
        return self._backlog

    @property
    def is_empty(self) -> bool:
        return not self._items
