"""Expert handler expressions from the paper's Table 2.

Two collections, both written in the DSL's textual syntax and parsed on
demand:

* ``SYNTHESIZED_TEXT`` — the expressions Abagnale's search returned in
  the paper (column 2 of Table 2); useful as regression references and as
  known-good handlers for the distance-metric study.
* ``FINETUNED_TEXT`` — the domain expert's hand-written handlers
  (column 3): same depth, same DSL, written from knowledge of each CCA's
  implementation.  These are the "ground truth" that §6.2's accuracy
  analysis measures the search against.

``PAPER_FAMILY`` records which sub-DSL the paper searched per CCA (as
hinted by the classifier outputs in Table 3).
"""

from __future__ import annotations

from repro.dsl import ast
from repro.dsl.parser import parse
from repro.errors import ReproError

__all__ = [
    "SYNTHESIZED_TEXT",
    "FINETUNED_TEXT",
    "PAPER_FAMILY",
    "synthesized_reference",
    "finetuned_handler",
]

SYNTHESIZED_TEXT: dict[str, str] = {
    "bbr": "2 * ack_rate * min_rtt + ((cwnd % 2.7 == 0) ? 2.05 * cwnd : mss)",
    "reno": "cwnd + 0.7 * reno_inc",
    "westwood": "cwnd + reno_inc",
    "scalable": "cwnd + 0.37 * reno_inc",
    "lp": "cwnd + 0.68 * reno_inc",
    "hybla": "cwnd + 8 * rtt * reno_inc",
    "htcp": "cwnd + reno_inc",
    "illinois": "cwnd + 1.3 * reno_inc",
    "vegas": "cwnd + ((vegas_diff < 1) ? 0.7 * reno_inc : 0)",
    "veno": "cwnd + reno_inc * ((vegas_diff < 0.7) ? 0.35 : 0.16)",
    "nv": "cwnd + ((vegas_diff < 1) ? 0.7 * reno_inc : 0)",
    "yeah": "cwnd + reno_inc * ((vegas_diff > 5) ? 0.3 : 1)",
    "cubic": "cwnd + cube(time_since_loss)",
    "student1": "88",
    "student2": "((vegas_diff / min_rtt < 5) ? cwnd + mss : mss)",
    "student3": "0.8 * acked_bytes / min_rtt",
    "student4": "mss",
    "student5": "2 * mss",
    "student6": "(cwnd + 150 * mss) / delay_gradient",
    "student7": "cwnd + 2 * acked_bytes / rtt",
}

FINETUNED_TEXT: dict[str, str] = {
    "bbr": "min_rtt * ack_rate * ((rtts_since_loss % 8 == 0) ? 2.6 : 2.05)",
    "reno": "cwnd + 0.7 * reno_inc",
    "westwood": "cwnd + 0.68 * reno_inc",
    "scalable": "cwnd + 0.37 * reno_inc",
    "lp": "cwnd * ((htcp_diff > 0.5) ? 0.5 : 1) + 0.68 * reno_inc",
    "hybla": "cwnd + 8 * rtt * reno_inc",
    "htcp": "cwnd + reno_inc * ((htcp_diff < 0.25) ? 1 : 0.2)",
    "illinois": "cwnd + 0.3 * reno_inc + 5 * reno_inc * htcp_diff",
    "vegas": (
        "cwnd + ((vegas_diff < 1) ? 0.7 * reno_inc"
        " : ((vegas_diff > 5) ? -0.7 * reno_inc : 0))"
    ),
    "veno": "cwnd + reno_inc * ((vegas_diff < 0.7) ? 0.35 : 0.16)",
    "nv": (
        "cwnd + ((vegas_diff > 1) ? 0.7 * reno_inc"
        " : ((vegas_diff > 5) ? -0.7 * reno_inc : 0))"
    ),
    "yeah": "cwnd + reno_inc * ((vegas_diff > 5) ? 0.3 : 1)",
    "cubic": "wmax + cube(8 * time_since_loss - cbrt(24 * wmax))",
}

#: The sub-DSL the paper searched per CCA (Table 3 classifier hints).
PAPER_FAMILY: dict[str, str] = {
    "bbr": "delay",
    "reno": "reno",
    "westwood": "reno",
    "scalable": "reno",
    "lp": "vegas",
    "hybla": "delay",
    "htcp": "vegas",
    "illinois": "vegas",
    "vegas": "vegas",
    "veno": "vegas",
    "nv": "vegas",
    "yeah": "vegas",
    "cubic": "cubic",
    "bic": "cubic",
    "student1": "vegas",
    "student2": "vegas",
    "student3": "delay",
    "student4": "vegas",
    "student5": "vegas",
    "student6": "vegas",
    "student7": "delay",
}


def synthesized_reference(name: str) -> ast.NumExpr:
    """The paper-reported synthesized handler for *name*, parsed."""
    try:
        return parse(SYNTHESIZED_TEXT[name])
    except KeyError:
        raise ReproError(
            f"no synthesized reference handler for {name!r}"
        ) from None


def finetuned_handler(name: str) -> ast.NumExpr:
    """The expert fine-tuned handler for *name*, parsed."""
    try:
        return parse(FINETUNED_TEXT[name])
    except KeyError:
        raise ReproError(f"no fine-tuned handler for {name!r}") from None
