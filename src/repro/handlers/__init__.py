"""Expert handler expressions (paper Table 2)."""

from repro.handlers.expressions import (
    FINETUNED_TEXT,
    PAPER_FAMILY,
    SYNTHESIZED_TEXT,
    finetuned_handler,
    synthesized_reference,
)

__all__ = [
    "FINETUNED_TEXT",
    "PAPER_FAMILY",
    "SYNTHESIZED_TEXT",
    "finetuned_handler",
    "synthesized_reference",
]
