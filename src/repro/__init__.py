"""Abagnale: reverse-engineering congestion control algorithm behavior.

A full reproduction of the IMC '24 paper's system: a program-synthesis
pipeline that recovers a simple cwnd-ack handler expression from packet
traces of an unknown congestion control algorithm, plus every substrate
it needs -- a discrete-event network simulator, the Linux-kernel CCA zoo,
trace processing, DSLs, distance metrics, and CCA classifiers.

Quick start::

    from repro import reverse_engineer_cca

    report = reverse_engineer_cca("reno")
    print(report.summary())

Subpackages
-----------
``repro.dsl``      the handler DSL: AST, families, evaluation, parsing
``repro.netsim``   discrete-event bottleneck simulator (testbed substitute)
``repro.cca``      16 kernel CCAs + 7 synthetic student CCAs
``repro.trace``    collection, segmentation, signals, noise, serialization
``repro.distance`` DTW and the other distance metrics of the paper's 4.3
``repro.synth``    enumeration, concretization, replay, refinement loop
``repro.classify`` Gordon / CCAnalyzer-style sub-DSL hints
``repro.handlers`` the paper's Table 2 expert expressions
"""

from repro.pipeline import (
    PipelineReport,
    reverse_engineer,
    reverse_engineer_cca,
)
from repro.synth.refinement import SynthesisConfig, synthesize
from repro.version import __version__

__all__ = [
    "PipelineReport",
    "reverse_engineer",
    "reverse_engineer_cca",
    "SynthesisConfig",
    "synthesize",
    "__version__",
]
