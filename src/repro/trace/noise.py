"""Measurement-noise injection for collected traces.

A central premise of the paper (§2.2) is that real packet traces are
*noisy*: the vantage point sees a jittered, incomplete view of the ground
truth, so an exact-match (decision-problem) synthesizer fails where an
optimization-based one succeeds.  This module produces noisy copies of
clean simulator traces so that the robustness claims can be exercised:

* **timestamp jitter** — Gaussian perturbation of ACK arrival times,
* **observation dropout** — a fraction of ACK records never reach the
  vantage point,
* **cwnd observation error** — multiplicative noise on the visible
  window (the vantage point estimates bytes-in-flight imperfectly),
* **unobserved losses** — a fraction of loss records are deleted, so
  ``time_since_loss`` is measured against the wrong epoch.

All perturbations are seeded and pure: the input trace is not mutated.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace as dc_replace

from repro.trace.model import AckRecord, LossRecord, Trace

__all__ = ["NoiseModel", "apply_noise"]


@dataclass(frozen=True)
class NoiseModel:
    """Noise intensities; all default to zero (no-op)."""

    jitter_std: float = 0.0  # seconds
    dropout: float = 0.0  # fraction of ack records dropped
    cwnd_error: float = 0.0  # std of multiplicative cwnd noise
    loss_dropout: float = 0.0  # fraction of loss records hidden
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if not 0.0 <= self.loss_dropout <= 1.0:
            raise ValueError("loss_dropout must be in [0, 1]")
        if self.jitter_std < 0 or self.cwnd_error < 0:
            raise ValueError("noise magnitudes must be non-negative")

    @property
    def is_noop(self) -> bool:
        return (
            self.jitter_std == 0.0
            and self.dropout == 0.0
            and self.cwnd_error == 0.0
            and self.loss_dropout == 0.0
        )


def apply_noise(trace: Trace, model: NoiseModel) -> Trace:
    """Return a noisy copy of *trace* according to *model*."""
    if model.is_noop:
        return trace
    # zlib.crc32, not hash(): string hashing is randomized per process and
    # would make "deterministic" noise differ between runs.
    label_hash = zlib.crc32(trace.environment_label.encode())
    rng = random.Random(model.seed ^ (label_hash & 0xFFFF))

    acks: list[AckRecord] = []
    previous_time = float("-inf")
    for record in trace.acks:
        if model.dropout and rng.random() < model.dropout:
            continue
        time = record.time
        if model.jitter_std:
            time += rng.gauss(0.0, model.jitter_std)
        # Jitter must not reorder the trace; clamp to be non-decreasing.
        time = max(time, previous_time)
        previous_time = time
        cwnd = record.cwnd_bytes
        if model.cwnd_error:
            cwnd *= max(1.0 + rng.gauss(0.0, model.cwnd_error), 0.05)
        acks.append(dc_replace(record, time=time, cwnd_bytes=cwnd))

    losses: list[LossRecord] = [
        loss
        for loss in trace.losses
        if not (model.loss_dropout and rng.random() < model.loss_dropout)
    ]

    noisy = Trace(
        cca_name=trace.cca_name,
        environment_label=trace.environment_label,
        mss=trace.mss,
        acks=acks,
        losses=losses,
        meta=dict(trace.meta, noisy=1.0),
    )
    return noisy
