"""Trace serialization: JSON round-trips and CSV export.

Traces are plain-data, so a JSON representation supports archiving
collection campaigns and shipping fixtures into tests.  CSV export gives
one row per ACK for ad-hoc plotting.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import IO

from repro.errors import TraceError
from repro.trace.model import AckRecord, LossRecord, Trace

__all__ = [
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
    "save_traces",
    "load_traces",
    "export_csv",
]

_FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> dict:
    """Convert *trace* to a JSON-serializable dict."""
    return {
        "version": _FORMAT_VERSION,
        "cca_name": trace.cca_name,
        "environment_label": trace.environment_label,
        "mss": trace.mss,
        "meta": dict(trace.meta),
        "acks": [
            [
                ack.time,
                ack.ack_seq,
                ack.acked_bytes,
                ack.rtt_sample,
                ack.cwnd_bytes,
                ack.inflight_bytes,
                int(ack.dupack),
            ]
            for ack in trace.acks
        ],
        "losses": [[loss.time, loss.kind] for loss in trace.losses],
    }


def trace_from_dict(data: dict) -> Trace:
    """Rebuild a :class:`Trace` from :func:`trace_to_dict` output."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise TraceError(f"unsupported trace format version {version!r}")
    return Trace(
        cca_name=data["cca_name"],
        environment_label=data["environment_label"],
        mss=data["mss"],
        meta=dict(data.get("meta", {})),
        acks=[
            AckRecord(
                time=row[0],
                ack_seq=row[1],
                acked_bytes=row[2],
                rtt_sample=row[3],
                cwnd_bytes=row[4],
                inflight_bytes=row[5],
                dupack=bool(row[6]),
            )
            for row in data["acks"]
        ],
        losses=[LossRecord(time=row[0], kind=row[1]) for row in data["losses"]],
    )


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write one trace as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> Trace:
    """Read one trace from JSON."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def save_traces(traces: list[Trace], path: str | Path) -> None:
    """Write a list of traces as one JSON document."""
    Path(path).write_text(
        json.dumps(
            {
                "version": _FORMAT_VERSION,
                "traces": [trace_to_dict(trace) for trace in traces],
            }
        )
    )


def load_traces(path: str | Path) -> list[Trace]:
    """Read a list of traces written by :func:`save_traces`."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != _FORMAT_VERSION:
        raise TraceError("unsupported trace bundle version")
    return [trace_from_dict(item) for item in data["traces"]]


def export_csv(trace: Trace, sink: IO[str] | str | Path) -> None:
    """Write one row per ACK: time, ack, acked, rtt, cwnd, inflight, dup."""
    own = isinstance(sink, (str, Path))
    handle = open(sink, "w", newline="") if own else sink
    try:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "time",
                "ack_seq",
                "acked_bytes",
                "rtt_sample",
                "cwnd_bytes",
                "inflight_bytes",
                "dupack",
            ]
        )
        for ack in trace.acks:
            writer.writerow(
                [
                    f"{ack.time:.6f}",
                    ack.ack_seq,
                    ack.acked_bytes,
                    "" if ack.rtt_sample is None else f"{ack.rtt_sample:.6f}",
                    f"{ack.cwnd_bytes:.1f}",
                    ack.inflight_bytes,
                    int(ack.dupack),
                ]
            )
    finally:
        if own:
            handle.close()
