"""Trace serialization: JSON round-trips and CSV export.

Traces are plain-data, so a JSON representation supports archiving
collection campaigns and shipping fixtures into tests.  CSV export gives
one row per ACK for ad-hoc plotting.

Deserialization is the first line of the ingestion guard
(:mod:`repro.trace.triage` is the second): every structural problem —
unknown format version, malformed record arity, type-confused cells,
impossible MSS, a document that is not JSON at all — raises a
:class:`~repro.errors.TraceError` whose message carries the source path
and offending record index, instead of an ``IndexError``/``KeyError``
surfacing from deep inside construction.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import IO

from repro.errors import TraceError
from repro.trace.model import AckRecord, LossRecord, Trace

__all__ = [
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
    "save_traces",
    "load_traces",
    "load_trace_file",
    "export_csv",
]

_FORMAT_VERSION = 1
#: Cells of one serialized ack row, in order.
_ACK_FIELDS = (
    "time",
    "ack_seq",
    "acked_bytes",
    "rtt_sample",
    "cwnd_bytes",
    "inflight_bytes",
    "dupack",
)


def trace_to_dict(trace: Trace) -> dict:
    """Convert *trace* to a JSON-serializable dict."""
    return {
        "version": _FORMAT_VERSION,
        "cca_name": trace.cca_name,
        "environment_label": trace.environment_label,
        "mss": trace.mss,
        "meta": dict(trace.meta),
        "acks": [
            [
                ack.time,
                ack.ack_seq,
                ack.acked_bytes,
                ack.rtt_sample,
                ack.cwnd_bytes,
                ack.inflight_bytes,
                int(ack.dupack),
            ]
            for ack in trace.acks
        ],
        "losses": [[loss.time, loss.kind] for loss in trace.losses],
    }


def _where(source: str | None) -> str:
    return f"{source}: " if source else ""


def _require_number(
    value: object, *, what: str, source: str | None, nullable: bool = False
) -> float | int | None:
    """A numeric cell, or a :class:`TraceError` naming the bad cell.

    ``bool`` is rejected despite being an ``int`` subclass — a ``true``
    in a timestamp cell is type confusion, not a number.
    """
    if value is None and nullable:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TraceError(
            f"{_where(source)}{what} must be a number, got "
            f"{type(value).__name__} {value!r}"
        )
    return value


def _ack_from_row(row: object, index: int, source: str | None) -> AckRecord:
    if not isinstance(row, (list, tuple)):
        raise TraceError(
            f"{_where(source)}acks[{index}] must be an array of "
            f"{len(_ACK_FIELDS)} cells, got {type(row).__name__}"
        )
    if len(row) != len(_ACK_FIELDS):
        raise TraceError(
            f"{_where(source)}acks[{index}] has {len(row)} cell(s), "
            f"expected {len(_ACK_FIELDS)} ({', '.join(_ACK_FIELDS)})"
        )
    cell = f"acks[{index}]"
    dupack = row[6]
    if not isinstance(dupack, (bool, int)):
        raise TraceError(
            f"{_where(source)}{cell}.dupack must be 0/1, got {dupack!r}"
        )
    # Numeric cells are kept verbatim (no int() coercion): value repair
    # is triage's job, and coercing a NaN would crash where a structured
    # defect report is wanted.
    return AckRecord(
        time=_require_number(row[0], what=f"{cell}.time", source=source),
        ack_seq=_require_number(
            row[1], what=f"{cell}.ack_seq", source=source
        ),
        acked_bytes=_require_number(
            row[2], what=f"{cell}.acked_bytes", source=source
        ),
        rtt_sample=_require_number(
            row[3], what=f"{cell}.rtt_sample", source=source, nullable=True
        ),
        cwnd_bytes=_require_number(
            row[4], what=f"{cell}.cwnd_bytes", source=source
        ),
        inflight_bytes=_require_number(
            row[5], what=f"{cell}.inflight_bytes", source=source
        ),
        dupack=bool(dupack),
    )


def _loss_from_row(row: object, index: int, source: str | None) -> LossRecord:
    if not isinstance(row, (list, tuple)) or len(row) != 2:
        raise TraceError(
            f"{_where(source)}losses[{index}] must be a [time, kind] pair"
        )
    kind = row[1]
    if not isinstance(kind, str):
        raise TraceError(
            f"{_where(source)}losses[{index}].kind must be a string, "
            f"got {kind!r}"
        )
    return LossRecord(
        time=_require_number(
            row[0], what=f"losses[{index}].time", source=source
        ),
        kind=kind,
    )


def trace_from_dict(data: dict, *, source: str | None = None) -> Trace:
    """Rebuild a :class:`Trace` from :func:`trace_to_dict` output.

    *source* (usually a file path) is woven into every error message so
    a failing record in a collection campaign is locatable.
    """
    if not isinstance(data, dict):
        raise TraceError(
            f"{_where(source)}trace document must be a JSON object, "
            f"got {type(data).__name__}"
        )
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise TraceError(
            f"{_where(source)}unsupported trace format version {version!r} "
            f"(this reader speaks version {_FORMAT_VERSION})"
        )
    missing = [
        key
        for key in ("cca_name", "environment_label", "mss", "acks", "losses")
        if key not in data
    ]
    if missing:
        raise TraceError(
            f"{_where(source)}trace document lacks required key(s): "
            f"{', '.join(missing)}"
        )
    mss = data["mss"]
    if isinstance(mss, bool) or not isinstance(mss, int) or mss <= 0:
        raise TraceError(
            f"{_where(source)}mss must be a positive integer, got {mss!r}"
        )
    acks_data = data["acks"]
    losses_data = data["losses"]
    if not isinstance(acks_data, list) or not isinstance(losses_data, list):
        raise TraceError(
            f"{_where(source)}'acks' and 'losses' must be arrays"
        )
    return Trace(
        cca_name=str(data["cca_name"]),
        environment_label=str(data["environment_label"]),
        mss=mss,
        meta=dict(data.get("meta", {})),
        acks=[
            _ack_from_row(row, index, source)
            for index, row in enumerate(acks_data)
        ],
        losses=[
            _loss_from_row(row, index, source)
            for index, row in enumerate(losses_data)
        ],
    )


def _parse_json(text: str, source: str | None) -> object:
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceError(
            f"{_where(source)}not valid JSON (truncated or corrupt "
            f"document): {exc}"
        ) from exc


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write one trace as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> Trace:
    """Read one trace from JSON."""
    source = str(path)
    return trace_from_dict(
        _parse_json(Path(path).read_text(), source), source=source
    )


def save_traces(traces: list[Trace], path: str | Path) -> None:
    """Write a list of traces as one JSON document."""
    Path(path).write_text(
        json.dumps(
            {
                "version": _FORMAT_VERSION,
                "traces": [trace_to_dict(trace) for trace in traces],
            }
        )
    )


def load_traces(path: str | Path) -> list[Trace]:
    """Read a list of traces written by :func:`save_traces`."""
    source = str(path)
    data = _parse_json(Path(path).read_text(), source)
    if not isinstance(data, dict):
        raise TraceError(f"{source}: trace bundle must be a JSON object")
    if data.get("version") != _FORMAT_VERSION:
        raise TraceError(
            f"{source}: unsupported trace bundle version "
            f"{data.get('version')!r}"
        )
    items = data.get("traces")
    if not isinstance(items, list):
        raise TraceError(f"{source}: bundle lacks a 'traces' array")
    return [
        trace_from_dict(item, source=f"{source}[{index}]")
        for index, item in enumerate(items)
    ]


def load_trace_file(path: str | Path) -> list[Trace]:
    """Read either a single-trace file or a bundle, as a list.

    Sniffs the document shape: a ``traces`` key means a
    :func:`save_traces` bundle, otherwise the document is a single
    :func:`save_trace` trace.  The validate CLI and collection tooling
    accept both formats through this one entry point.
    """
    source = str(path)
    data = _parse_json(Path(path).read_text(), source)
    if isinstance(data, dict) and "traces" in data:
        if data.get("version") != _FORMAT_VERSION:
            raise TraceError(
                f"{source}: unsupported trace bundle version "
                f"{data.get('version')!r}"
            )
        items = data["traces"]
        if not isinstance(items, list):
            raise TraceError(f"{source}: bundle 'traces' must be an array")
        return [
            trace_from_dict(item, source=f"{source}[{index}]")
            for index, item in enumerate(items)
        ]
    return [trace_from_dict(data, source=source)]


def export_csv(trace: Trace, sink: IO[str] | str | Path) -> None:
    """Write one row per ACK: time, ack, acked, rtt, cwnd, inflight, dup.

    An empty trace produces a header-only file — collection campaigns
    export whatever they gathered, including nothing.
    """
    own = isinstance(sink, (str, Path))
    handle = open(sink, "w", newline="") if own else sink
    try:
        writer = csv.writer(handle)
        writer.writerow(list(_ACK_FIELDS))
        for ack in trace.acks:
            writer.writerow(
                [
                    f"{ack.time:.6f}",
                    ack.ack_seq,
                    ack.acked_bytes,
                    "" if ack.rtt_sample is None else f"{ack.rtt_sample:.6f}",
                    f"{ack.cwnd_bytes:.1f}",
                    ack.inflight_bytes,
                    int(ack.dupack),
                ]
            )
    finally:
        if own:
            handle.close()
