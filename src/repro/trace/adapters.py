"""Adapters: building :class:`Trace` objects from external packet logs.

Abagnale's input "in the wild" is a packet capture, not our simulator's
records.  This module converts the two log shapes a measurement vantage
point realistically produces:

* :func:`from_packet_log` — separate *data* events ``(time, seq_end)``
  and *ack* events ``(time, ack)`` as captured at/near the sender.  The
  visible congestion window is estimated per ACK as bytes in flight
  (highest sequence sent so far minus the cumulative ACK), which is
  exactly how classifier tools like Gordon estimate the window from taps.
  RTT samples are matched by sequence: an ACK's RTT is measured from the
  send time of the segment whose end equals the ACK value.
* :func:`from_ack_log` — a pre-digested per-ACK table (time, ack, rtt)
  with an optional explicit window column, for tools that already export
  one row per ACK.

Both mark duplicate ACKs, so the standard segmentation/loss-inference
pipeline applies unchanged.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import TraceError
from repro.trace.model import AckRecord, Trace

__all__ = ["from_packet_log", "from_ack_log"]


def from_packet_log(
    data_events: Iterable[tuple[float, int]],
    ack_events: Iterable[tuple[float, int]],
    *,
    mss: int = 1500,
    cca_name: str = "unknown",
    label: str = "imported",
) -> Trace:
    """Build a trace from raw data/ACK capture events.

    ``data_events`` are ``(send_time, segment_end_seq)`` per transmitted
    segment; ``ack_events`` are ``(arrival_time, cumulative_ack)``.  Both
    must be time-sorted.
    """
    data = sorted(data_events)
    acks = sorted(ack_events)
    if not data or not acks:
        raise TraceError("packet log needs both data and ack events")

    send_time_by_end: dict[int, float] = {}
    records: list[AckRecord] = []
    data_index = 0
    highest_sent = 0
    last_ack = 0
    for time, ack in acks:
        while data_index < len(data) and data[data_index][0] <= time:
            send_time, end = data[data_index]
            send_time_by_end.setdefault(end, send_time)
            highest_sent = max(highest_sent, end)
            data_index += 1
        acked = ack - last_ack
        dupack = acked <= 0
        rtt = None
        if not dupack:
            sent_at = send_time_by_end.get(ack)
            if sent_at is not None and time > sent_at:
                rtt = time - sent_at
        inflight = max(highest_sent - ack, 0)
        records.append(
            AckRecord(
                time=time,
                ack_seq=ack,
                acked_bytes=max(acked, 0),
                rtt_sample=rtt,
                cwnd_bytes=float(max(inflight, mss)),
                inflight_bytes=inflight,
                dupack=dupack,
            )
        )
        last_ack = max(last_ack, ack)
    return Trace(
        cca_name=cca_name, environment_label=label, mss=mss, acks=records
    )


def from_ack_log(
    rows: Sequence[tuple[float, int, float | None]],
    *,
    mss: int = 1500,
    cwnd: Sequence[float] | None = None,
    cca_name: str = "unknown",
    label: str = "imported",
) -> Trace:
    """Build a trace from per-ACK rows ``(time, cumulative_ack, rtt)``.

    When *cwnd* (one visible-window value per row) is omitted, the window
    is approximated by the delivery rate over the latest RTT — the best a
    purely ACK-side log can do.
    """
    if not rows:
        raise TraceError("ack log is empty")
    if cwnd is not None and len(cwnd) != len(rows):
        raise TraceError("cwnd column length must match the rows")
    records: list[AckRecord] = []
    last_ack = 0
    for index, (time, ack, rtt) in enumerate(rows):
        acked = ack - last_ack
        dupack = acked <= 0
        if cwnd is not None:
            window = float(cwnd[index])
        else:
            window = _rate_window(rows, index, mss)
        records.append(
            AckRecord(
                time=time,
                ack_seq=ack,
                acked_bytes=max(acked, 0),
                rtt_sample=rtt if not dupack else None,
                cwnd_bytes=max(window, float(mss)),
                inflight_bytes=int(max(window, mss)),
                dupack=dupack,
            )
        )
        last_ack = max(last_ack, ack)
    return Trace(
        cca_name=cca_name, environment_label=label, mss=mss, acks=records
    )


def _rate_window(
    rows: Sequence[tuple[float, int, float | None]], index: int, mss: int
) -> float:
    """Delivery-rate x RTT window estimate at *index*."""
    time, ack, rtt = rows[index]
    if rtt is None or rtt <= 0:
        return float(mss)
    start = time - rtt
    earlier_ack = 0
    for t_prev, a_prev, _ in reversed(rows[: index + 1]):
        if t_prev <= start:
            earlier_ack = a_prev
            break
    return float(max(ack - earlier_ack, mss))
