"""Trace data model: what a measurement vantage point records.

A :class:`Trace` is the per-ACK time series collected for one flow — the
raw material both for classifiers and for Abagnale's synthesis.  Each
:class:`AckRecord` holds what is observable at the sender-side vantage
point: arrival time, cumulative ACK, bytes newly acknowledged, an RTT
sample, the visible congestion window, and bytes in flight.

:class:`TraceSegment` is a slice of a trace between loss events; the
synthesizer scores candidate handlers per segment (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import TraceError

__all__ = ["AckRecord", "LossRecord", "Trace", "TraceSegment"]


@dataclass(slots=True)
class AckRecord:
    """One processed acknowledgment at the vantage point."""

    time: float
    ack_seq: int
    acked_bytes: int
    rtt_sample: float | None
    cwnd_bytes: float
    inflight_bytes: int
    dupack: bool = False


@dataclass(slots=True)
class LossRecord:
    """A loss event inferred or observed at the vantage point.

    ``kind`` is ``"dupack"`` for fast-retransmit losses or ``"timeout"``
    for RTO expirations.
    """

    time: float
    kind: str = "dupack"


@dataclass
class Trace:
    """A full per-flow packet trace."""

    cca_name: str
    environment_label: str
    mss: int
    acks: list[AckRecord] = field(default_factory=list)
    losses: list[LossRecord] = field(default_factory=list)
    meta: dict[str, float | str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise TraceError("mss must be positive")

    def __len__(self) -> int:
        return len(self.acks)

    @property
    def duration(self) -> float:
        if not self.acks:
            return 0.0
        return self.acks[-1].time - self.acks[0].time

    def times(self) -> np.ndarray:
        return np.array([ack.time for ack in self.acks], dtype=float)

    def cwnd_series(self) -> np.ndarray:
        """The visible congestion window over time, in bytes."""
        return np.array([ack.cwnd_bytes for ack in self.acks], dtype=float)

    def rtt_series(self) -> np.ndarray:
        """Per-ack RTT samples; gaps (dupacks) carry the previous sample."""
        out = np.empty(len(self.acks), dtype=float)
        last = float("nan")
        for index, ack in enumerate(self.acks):
            if ack.rtt_sample is not None:
                last = ack.rtt_sample
            out[index] = last
        # Back-fill any leading NaNs with the first real sample.
        if len(out) and np.isnan(out[0]):
            real = out[~np.isnan(out)]
            if real.size == 0:
                raise TraceError("trace has no RTT samples")
            out[np.isnan(out)] = real[0]
        return out

    def loss_times(self) -> np.ndarray:
        return np.array([loss.time for loss in self.losses], dtype=float)


@dataclass
class TraceSegment:
    """A slice of a trace between two loss events (§3.2).

    ``start``/``stop`` index into ``trace.acks``; the segment covers
    ``acks[start:stop]``.  ``preceding_loss_time`` is the timestamp of the
    loss event that opened the segment (or the flow start), from which the
    ``time_since_loss`` signal is measured.
    """

    trace: Trace
    start: int
    stop: int
    preceding_loss_time: float

    def __post_init__(self) -> None:
        if not (0 <= self.start < self.stop <= len(self.trace.acks)):
            raise TraceError(
                f"segment bounds [{self.start}, {self.stop}) out of range "
                f"for trace of {len(self.trace.acks)} acks"
            )

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def acks(self) -> list[AckRecord]:
        return self.trace.acks[self.start : self.stop]

    @property
    def mss(self) -> int:
        return self.trace.mss

    @property
    def label(self) -> str:
        return (
            f"{self.trace.cca_name}/{self.trace.environment_label}"
            f"[{self.start}:{self.stop}]"
        )

    def times(self) -> np.ndarray:
        return np.array([ack.time for ack in self.acks], dtype=float)

    def cwnd_series(self) -> np.ndarray:
        return np.array([ack.cwnd_bytes for ack in self.acks], dtype=float)

    def iter_acks(self) -> Iterator[AckRecord]:
        return iter(self.acks)
