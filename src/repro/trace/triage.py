"""Trace triage: validate → repair → admit (the input-side guard).

The paper's premise (§2.2) is that vantage-point traces are noisy and
incomplete; the execution runtime already survives *worker* faults
(``docs/RESILIENCE.md``), and this module hardens the *input* side.  A
hostile trace — non-monotonic timestamps, duplicated ACKs, NaN windows,
clock jumps — must never silently poison segmentation, signal tables, or
the final ranking.  Triage runs in three stages:

1. **Validate** — a declarative invariant checker walks the trace and
   produces structured :class:`TraceDefect` records (one per offending
   record, capped per class) instead of raising on the first error.
2. **Repair** — pure, deterministic repair passes fix what can be fixed
   (timestamp de-skew and stable re-sort, duplicate-ACK dedup, NaN/inf
   interpolation or excision, trailing-garbage truncation, loss-record
   hygiene).  Every pass reports how many records it touched; the
   aggregate becomes the trace's **quality score**
   (``1 - touched/total``) stored in ``Trace.meta`` together with the
   defect histogram.
3. **Admit** — a :class:`TriagePolicy` decides what survives:
   ``strict`` refuses any defective trace, ``repair`` (the default)
   accepts traces whose defects were all repaired, ``permissive``
   accepts repaired traces even with residual (unrepairable but
   non-fatal) defects.  Fatal defects — no ACKs, no RTT samples — are
   refused under every policy: no downstream stage can use such a trace.

Clean traces take a fast path: when validation finds nothing, triage
returns the *same* ``Trace`` object, untouched — which is what makes
rankings bit-identical with triage on or off for well-formed input (the
differential harness in ``tests/integration`` enforces this).

All repairs are pure (the input trace is never mutated) and
deterministic: no randomness is involved, so the same hostile trace
always repairs to the same bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Iterator

from repro.errors import TraceError
from repro.trace.model import AckRecord, LossRecord, Trace

__all__ = [
    "TraceDefect",
    "DefectReport",
    "RepairAction",
    "TriagePolicy",
    "TriageResult",
    "TriageSummary",
    "POLICY_MODES",
    "DEFECT_CLASSES",
    "FATAL_DEFECTS",
    "REPAIRABLE_DEFECTS",
    "validate_trace",
    "repair_trace",
    "triage_trace",
    "triage_traces",
    "trace_quality",
]

#: Recognized policy modes, in increasing order of tolerance.
POLICY_MODES = ("strict", "repair", "permissive")

#: Forward time discontinuity (seconds) treated as a clock jump: far
#: beyond any plausible inter-ACK gap at the RTTs the paper studies.
CLOCK_JUMP_SECONDS = 60.0
#: A post-jump suffix shorter than this fraction of the trace is
#: truncated as trailing garbage instead of de-skewed back into place.
TRAILING_GARBAGE_FRACTION = 0.02
#: Two loss records closer than this (seconds) are duplicated epochs.
LOSS_EPOCH_EPSILON = 1e-9
#: Loss records may precede the first ACK / trail the last by this much
#: (seconds) before they count as outside the ack span.
LOSS_SPAN_MARGIN = 1.0
#: At most this many per-record defects are materialized per class;
#: the report still carries exact counts.
MAX_DEFECTS_PER_CLASS = 32


# ---------------------------------------------------------------------------
# Defect records


@dataclass(frozen=True)
class TraceDefect:
    """One detected invariant violation.

    ``code`` names the defect class (a key of :data:`DEFECT_CLASSES`),
    ``index`` the offending ack/loss record where that is meaningful.
    """

    code: str
    message: str
    index: int | None = None


@dataclass
class DefectReport:
    """Structured validation outcome for one trace."""

    trace_label: str
    defects: list[TraceDefect] = field(default_factory=list)
    #: Exact per-class counts (defect records are capped per class).
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def is_clean(self) -> bool:
        return not self.counts

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def has(self, code: str) -> bool:
        return code in self.counts

    @property
    def fatal(self) -> tuple[str, ...]:
        return tuple(sorted(set(self.counts) & FATAL_DEFECTS))

    @property
    def unrepairable(self) -> tuple[str, ...]:
        return tuple(
            sorted(set(self.counts) - REPAIRABLE_DEFECTS - FATAL_DEFECTS)
        )

    def render(self) -> str:
        """One line per defect class: ``code xN`` plus a sample message."""
        if self.is_clean:
            return f"{self.trace_label}: clean"
        lines = [f"{self.trace_label}: {self.total} defect(s)"]
        samples: dict[str, str] = {}
        for defect in self.defects:
            samples.setdefault(defect.code, defect.message)
        for code in sorted(self.counts):
            lines.append(
                f"  {code} x{self.counts[code]}: {samples.get(code, '')}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class RepairAction:
    """One repair pass's effect on a trace."""

    repair: str
    touched: int
    detail: str = ""


# ---------------------------------------------------------------------------
# Stage 1: validation


def _finite(value: float | int | None) -> bool:
    return value is not None and math.isfinite(value)


def _check_nonfinite_fields(trace: Trace) -> Iterator[TraceDefect]:
    for index, ack in enumerate(trace.acks):
        bad = [
            name
            for name, value in (
                ("time", ack.time),
                ("acked_bytes", ack.acked_bytes),
                ("cwnd_bytes", ack.cwnd_bytes),
                ("inflight_bytes", ack.inflight_bytes),
            )
            if not _finite(value)
        ]
        if ack.rtt_sample is not None and not math.isfinite(ack.rtt_sample):
            bad.append("rtt_sample")
        if bad:
            yield TraceDefect(
                "nonfinite_field",
                f"ack[{index}] has non-finite {'/'.join(bad)}",
                index,
            )
    for index, loss in enumerate(trace.losses):
        if not _finite(loss.time):
            yield TraceDefect(
                "nonfinite_field", f"loss[{index}] has non-finite time", index
            )


def _check_negative_fields(trace: Trace) -> Iterator[TraceDefect]:
    for index, ack in enumerate(trace.acks):
        bad = [
            name
            for name, value in (
                ("acked_bytes", ack.acked_bytes),
                ("cwnd_bytes", ack.cwnd_bytes),
                ("inflight_bytes", ack.inflight_bytes),
            )
            if _finite(value) and value < 0
        ]
        if (
            ack.rtt_sample is not None
            and math.isfinite(ack.rtt_sample)
            and ack.rtt_sample <= 0
        ):
            bad.append("rtt_sample")
        if bad:
            yield TraceDefect(
                "negative_field",
                f"ack[{index}] has negative {'/'.join(bad)}",
                index,
            )


def _check_monotonic_time(trace: Trace) -> Iterator[TraceDefect]:
    previous = float("-inf")
    for index, ack in enumerate(trace.acks):
        if not _finite(ack.time):
            continue  # reported by nonfinite_field
        if ack.time < previous:
            yield TraceDefect(
                "non_monotonic_time",
                f"ack[{index}] time {ack.time:.6f} precedes "
                f"{previous:.6f}",
                index,
            )
        else:
            previous = ack.time


def _check_clock_jump(trace: Trace) -> Iterator[TraceDefect]:
    previous: float | None = None
    for index, ack in enumerate(trace.acks):
        if not _finite(ack.time):
            continue
        if previous is not None and ack.time - previous > CLOCK_JUMP_SECONDS:
            yield TraceDefect(
                "clock_jump",
                f"ack[{index}] jumps {ack.time - previous:.1f}s forward",
                index,
            )
        previous = ack.time


def _check_duplicate_acks(trace: Trace) -> Iterator[TraceDefect]:
    seen: set[tuple] = set()
    for index, ack in enumerate(trace.acks):
        key = (
            ack.time,
            ack.ack_seq,
            ack.acked_bytes,
            ack.rtt_sample,
            ack.cwnd_bytes,
            ack.inflight_bytes,
            ack.dupack,
        )
        if key in seen:
            yield TraceDefect(
                "duplicate_ack",
                f"ack[{index}] duplicates an earlier record "
                f"(seq {ack.ack_seq} at t={ack.time:.6f})",
                index,
            )
        else:
            seen.add(key)


def _check_ack_seq_regression(trace: Trace) -> Iterator[TraceDefect]:
    highest: int | None = None
    for index, ack in enumerate(trace.acks):
        if ack.dupack:
            continue
        if highest is not None and ack.ack_seq < highest:
            yield TraceDefect(
                "ack_seq_regression",
                f"ack[{index}] cumulative seq {ack.ack_seq} regresses "
                f"below {highest}",
                index,
            )
        else:
            highest = ack.ack_seq


def _ack_span(trace: Trace) -> tuple[float, float] | None:
    times = [ack.time for ack in trace.acks if _finite(ack.time)]
    if not times:
        return None
    return min(times), max(times)


def _check_loss_records(trace: Trace) -> Iterator[TraceDefect]:
    span = _ack_span(trace)
    previous: float | None = None
    for index, loss in enumerate(sorted(
        (l for l in trace.losses if _finite(l.time)), key=lambda l: l.time
    )):
        if span is not None and not (
            span[0] - LOSS_SPAN_MARGIN
            <= loss.time
            <= span[1] + LOSS_SPAN_MARGIN
        ):
            yield TraceDefect(
                "loss_outside_span",
                f"loss at t={loss.time:.6f} outside ack span "
                f"[{span[0]:.6f}, {span[1]:.6f}]",
                index,
            )
        if previous is not None and loss.time - previous <= LOSS_EPOCH_EPSILON:
            yield TraceDefect(
                "duplicate_loss",
                f"loss epoch at t={loss.time:.6f} duplicated",
                index,
            )
        previous = loss.time


def _check_empty(trace: Trace) -> Iterator[TraceDefect]:
    if not trace.acks:
        yield TraceDefect("empty_trace", "trace carries no ack records")


def _check_rtt_samples(trace: Trace) -> Iterator[TraceDefect]:
    if trace.acks and not any(
        ack.rtt_sample is not None and _finite(ack.rtt_sample)
        and ack.rtt_sample > 0
        for ack in trace.acks
    ):
        yield TraceDefect(
            "no_rtt_samples", "trace carries no finite positive RTT sample"
        )


#: The declarative checker table: defect class → validator.  Order is
#: the report's presentation order; each validator is independent.
DEFECT_CLASSES: dict[str, Callable[[Trace], Iterator[TraceDefect]]] = {
    "empty_trace": _check_empty,
    "no_rtt_samples": _check_rtt_samples,
    "nonfinite_field": _check_nonfinite_fields,
    "negative_field": _check_negative_fields,
    "non_monotonic_time": _check_monotonic_time,
    "clock_jump": _check_clock_jump,
    "duplicate_ack": _check_duplicate_acks,
    "ack_seq_regression": _check_ack_seq_regression,
    "loss_outside_span": _check_loss_records,
    "duplicate_loss": _check_loss_records,
}

#: Defects no policy can accept: the trace is unusable downstream.
FATAL_DEFECTS = frozenset({"empty_trace", "no_rtt_samples"})

#: Defects the repair stage fully resolves.
REPAIRABLE_DEFECTS = frozenset(
    {
        "nonfinite_field",
        "negative_field",
        "non_monotonic_time",
        "clock_jump",
        "duplicate_ack",
        "ack_seq_regression",
        "loss_outside_span",
        "duplicate_loss",
    }
)


def validate_trace(trace: Trace) -> DefectReport:
    """Run every invariant check; never raises on a defective trace."""
    report = DefectReport(
        trace_label=f"{trace.cca_name}/{trace.environment_label}"
    )
    seen_validators: set[Callable] = set()
    for code, check in DEFECT_CLASSES.items():
        if check in seen_validators:
            continue  # one validator may emit several classes
        seen_validators.add(check)
        for defect in check(trace):
            count = report.counts.get(defect.code, 0)
            report.counts[defect.code] = count + 1
            if count < MAX_DEFECTS_PER_CLASS:
                report.defects.append(defect)
    return report


# ---------------------------------------------------------------------------
# Stage 2: repair passes (pure, deterministic, each reports touch count)


def _repair_excise_unusable(acks: list[AckRecord]) -> tuple[list, int]:
    """Drop records whose time cannot be trusted at all (NaN/inf)."""
    kept = [ack for ack in acks if _finite(ack.time)]
    return kept, len(acks) - len(kept)


def _repair_nonfinite_values(acks: list[AckRecord]) -> tuple[list, int]:
    """Interpolate or excise non-finite payload fields.

    ``cwnd_bytes`` interpolates linearly between the nearest finite
    neighbors (window evolution is piecewise-smooth between losses);
    non-finite RTT samples become ``None`` (no sample); records whose
    byte counters are non-finite are dropped — there is nothing to
    interpolate a *count* from.
    """
    touched = 0
    kept: list[AckRecord] = []
    for ack in acks:
        if not _finite(ack.acked_bytes) or not _finite(ack.inflight_bytes):
            touched += 1
            continue
        if ack.rtt_sample is not None and not math.isfinite(ack.rtt_sample):
            ack = dc_replace(ack, rtt_sample=None)
            touched += 1
        kept.append(ack)
    # Interpolate non-finite cwnd from finite neighbors.
    finite_indices = [
        i for i, ack in enumerate(kept) if _finite(ack.cwnd_bytes)
    ]
    if finite_indices and len(finite_indices) < len(kept):
        for i, ack in enumerate(kept):
            if _finite(ack.cwnd_bytes):
                continue
            before = max(
                (j for j in finite_indices if j < i), default=None
            )
            after = min((j for j in finite_indices if j > i), default=None)
            if before is not None and after is not None:
                lo, hi = kept[before], kept[after]
                frac = (i - before) / (after - before)
                value = lo.cwnd_bytes + frac * (hi.cwnd_bytes - lo.cwnd_bytes)
            elif before is not None:
                value = kept[before].cwnd_bytes
            elif after is not None:
                value = kept[after].cwnd_bytes
            else:  # pragma: no cover - guarded by finite_indices truthiness
                continue
            kept[i] = dc_replace(ack, cwnd_bytes=value)
            touched += 1
    elif not finite_indices:
        touched += len(kept)
        kept = []
    return kept, touched


def _repair_negative_values(acks: list[AckRecord]) -> tuple[list, int]:
    """Excise records with negative counters or windows.

    A negative byte count or window is field corruption, not
    observation noise; the neighboring records are the trustworthy
    signal, so the corrupt record is removed rather than clamped to a
    fabricated value.
    """
    def bad(ack: AckRecord) -> bool:
        return (
            ack.acked_bytes < 0
            or ack.cwnd_bytes < 0
            or ack.inflight_bytes < 0
            or (ack.rtt_sample is not None and ack.rtt_sample <= 0)
        )

    kept = [ack for ack in acks if not bad(ack)]
    return kept, len(acks) - len(kept)


def _repair_clock_jump(acks: list[AckRecord]) -> tuple[list, int, str]:
    """De-skew forward clock jumps; truncate short trailing garbage.

    A forward discontinuity larger than :data:`CLOCK_JUMP_SECONDS`
    cannot be queueing delay.  When the post-jump suffix is a tiny tail
    (< :data:`TRAILING_GARBAGE_FRACTION` of the trace) it is dropped as
    trailing garbage; otherwise every subsequent timestamp shifts back
    so the gap collapses to the median inter-ACK spacing — preserving
    the suffix's internal timing.
    """
    if len(acks) < 2:
        return acks, 0, ""
    gaps = sorted(
        b.time - a.time
        for a, b in zip(acks, acks[1:])
        if 0 <= b.time - a.time <= CLOCK_JUMP_SECONDS
    )
    median_gap = gaps[len(gaps) // 2] if gaps else 0.0
    out = list(acks)
    touched = 0
    detail = ""
    index = 1
    while index < len(out):
        jump = out[index].time - out[index - 1].time
        if jump > CLOCK_JUMP_SECONDS:
            suffix = len(out) - index
            if suffix <= max(2, int(len(out) * TRAILING_GARBAGE_FRACTION)):
                touched += suffix
                detail = f"truncated {suffix} trailing record(s)"
                out = out[:index]
                break
            shift = jump - median_gap
            out[index:] = [
                dc_replace(ack, time=ack.time - shift)
                for ack in out[index:]
            ]
            # The corrupt datum is the one discontinuity; the shift
            # restores the timeline without losing any record, so the
            # quality-relevant touch count is 1 per jump, not the
            # suffix length.
            touched += 1
            detail = f"de-skewed {suffix} record(s) by {shift:.1f}s"
        index += 1
    return out, touched, detail


def _repair_resort_time(acks: list[AckRecord]) -> tuple[list, int]:
    """Stable re-sort by timestamp (jitter/shuffle de-skew).

    ``sorted`` is stable, so equal-time records keep their arrival
    order; touch count is the number of records whose position changed.
    """
    resorted = sorted(acks, key=lambda ack: ack.time)
    touched = sum(
        1 for before, after in zip(acks, resorted) if before is not after
    )
    return resorted, touched


def _repair_duplicate_acks(acks: list[AckRecord]) -> tuple[list, int]:
    """Drop exact-duplicate ack records, keeping first occurrences."""
    seen: set[tuple] = set()
    kept: list[AckRecord] = []
    for ack in acks:
        key = (
            ack.time,
            ack.ack_seq,
            ack.acked_bytes,
            ack.rtt_sample,
            ack.cwnd_bytes,
            ack.inflight_bytes,
            ack.dupack,
        )
        if key in seen:
            continue
        seen.add(key)
        kept.append(ack)
    return kept, len(acks) - len(kept)


def _repair_ack_seq_regression(acks: list[AckRecord]) -> tuple[list, int]:
    """Drop new-data records whose cumulative ACK regresses."""
    kept: list[AckRecord] = []
    highest: int | None = None
    for ack in acks:
        if not ack.dupack:
            if highest is not None and ack.ack_seq < highest:
                continue
            highest = ack.ack_seq
        kept.append(ack)
    return kept, len(acks) - len(kept)


def _repair_losses(
    losses: list[LossRecord], span: tuple[float, float] | None
) -> tuple[list, int]:
    """Sort losses, drop non-finite/out-of-span times, dedup epochs."""
    finite = sorted(
        (loss for loss in losses if _finite(loss.time)),
        key=lambda loss: loss.time,
    )
    kept: list[LossRecord] = []
    for loss in finite:
        if span is not None and not (
            span[0] - LOSS_SPAN_MARGIN
            <= loss.time
            <= span[1] + LOSS_SPAN_MARGIN
        ):
            continue
        if kept and loss.time - kept[-1].time <= LOSS_EPOCH_EPSILON:
            continue
        kept.append(loss)
    return kept, len(losses) - len(kept)


def repair_trace(trace: Trace) -> tuple[Trace, list[RepairAction]]:
    """Apply every repair pass; return the repaired copy and the log.

    Pure: *trace* is never mutated.  Passes run in dependency order —
    excision before de-skew (NaN times cannot be sorted), de-skew
    before dedup (duplicates are defined on final timestamps).
    """
    actions: list[RepairAction] = []
    acks = list(trace.acks)

    acks, touched = _repair_excise_unusable(acks)
    if touched:
        actions.append(
            RepairAction("excise_unusable", touched, "non-finite timestamps")
        )
    acks, touched = _repair_nonfinite_values(acks)
    if touched:
        actions.append(
            RepairAction(
                "nonfinite_values", touched, "interpolated/excised NaN-inf"
            )
        )
    acks, touched = _repair_negative_values(acks)
    if touched:
        actions.append(
            RepairAction("negative_values", touched, "excised negatives")
        )
    acks, touched = _repair_resort_time(acks)
    if touched:
        actions.append(
            RepairAction("resort_time", touched, "stable re-sort by time")
        )
    acks, touched, detail = _repair_clock_jump(acks)
    if touched:
        actions.append(RepairAction("clock_jump", touched, detail))
    acks, touched = _repair_duplicate_acks(acks)
    if touched:
        actions.append(
            RepairAction("duplicate_acks", touched, "exact-duplicate dedup")
        )
    acks, touched = _repair_ack_seq_regression(acks)
    if touched:
        actions.append(
            RepairAction(
                "ack_seq_regression", touched, "dropped regressing acks"
            )
        )

    span = None
    times = [ack.time for ack in acks]
    if times:
        span = (min(times), max(times))
    losses, touched = _repair_losses(list(trace.losses), span)
    if touched:
        actions.append(
            RepairAction("loss_records", touched, "span/dedup loss hygiene")
        )

    if not actions:
        return trace, []
    repaired = Trace(
        cca_name=trace.cca_name,
        environment_label=trace.environment_label,
        mss=trace.mss,
        acks=acks,
        losses=losses,
        meta=dict(trace.meta),
    )
    return repaired, actions


def trace_quality(
    original: Trace, actions: list[RepairAction]
) -> float:
    """Quality score: fraction of original records left untouched."""
    total = len(original.acks) + len(original.losses)
    if total == 0:
        return 0.0
    touched = min(sum(action.touched for action in actions), total)
    return 1.0 - touched / total


# ---------------------------------------------------------------------------
# Stage 3: policy + admission


@dataclass(frozen=True)
class TriagePolicy:
    """How much repair the ingestion guard is allowed to perform.

    ``strict``     — refuse any trace with defects (collection QA).
    ``repair``     — repair what is repairable; refuse traces whose
                     defects survive repair (the default).
    ``permissive`` — accept repaired traces even with residual
                     non-fatal defects (salvage campaigns).

    ``min_quality`` refuses traces whose post-repair quality score falls
    below the floor, under every mode: a trace where most records were
    touched is evidence, not data.
    """

    mode: str = "repair"
    min_quality: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in POLICY_MODES:
            raise TraceError(
                f"unknown triage policy {self.mode!r}; "
                f"expected one of {', '.join(POLICY_MODES)}"
            )
        if not 0.0 <= self.min_quality <= 1.0:
            raise TraceError("min_quality must be within [0, 1]")


@dataclass
class TriageResult:
    """Outcome of triaging one trace."""

    trace: Trace | None  #: the admitted trace (``None`` when refused)
    report: DefectReport  #: pre-repair validation findings
    repairs: list[RepairAction]
    quality: float
    action: str  #: ``"clean" | "repaired" | "rejected"``
    reason: str = ""  #: rejection reason (empty when admitted)

    @property
    def accepted(self) -> bool:
        return self.trace is not None


@dataclass
class TriageSummary:
    """Aggregate outcome of triaging a trace collection."""

    results: list[TriageResult] = field(default_factory=list)

    @property
    def traces(self) -> list[Trace]:
        return [r.trace for r in self.results if r.trace is not None]

    @property
    def accepted(self) -> int:
        return sum(1 for r in self.results if r.accepted)

    @property
    def repaired(self) -> int:
        return sum(1 for r in self.results if r.action == "repaired")

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.results if r.action == "rejected")

    @property
    def min_quality(self) -> float:
        qualities = [r.quality for r in self.results if r.accepted]
        return min(qualities) if qualities else 0.0


def _defect_histogram(counts: dict[str, int]) -> str:
    """Render a defect histogram as a stable ``code:count`` string."""
    return ",".join(f"{code}:{counts[code]}" for code in sorted(counts))


def triage_trace(
    trace: Trace, policy: TriagePolicy | None = None
) -> TriageResult:
    """Validate, optionally repair, and admit or refuse one trace.

    Clean traces are returned as the *same object* (bit-identical
    downstream behavior); repaired traces are fresh copies carrying
    ``quality``, ``triage_defects`` and ``triage_repairs`` in their
    ``meta``.
    """
    policy = policy or TriagePolicy()
    report = validate_trace(trace)
    if report.is_clean:
        return TriageResult(
            trace=trace,
            report=report,
            repairs=[],
            quality=1.0,
            action="clean",
        )
    if report.fatal:
        return TriageResult(
            trace=None,
            report=report,
            repairs=[],
            quality=0.0,
            action="rejected",
            reason=f"fatal defect(s): {', '.join(report.fatal)}",
        )
    if policy.mode == "strict":
        return TriageResult(
            trace=None,
            report=report,
            repairs=[],
            quality=0.0,
            action="rejected",
            reason=(
                "strict policy refuses defective trace "
                f"({_defect_histogram(report.counts)})"
            ),
        )

    repaired, actions = repair_trace(trace)
    quality = trace_quality(trace, actions)
    residual = validate_trace(repaired)
    if residual.fatal:
        return TriageResult(
            trace=None,
            report=report,
            repairs=actions,
            quality=quality,
            action="rejected",
            reason=(
                "repair left fatal defect(s): "
                f"{', '.join(residual.fatal)}"
            ),
        )
    if not residual.is_clean and policy.mode == "repair":
        return TriageResult(
            trace=None,
            report=report,
            repairs=actions,
            quality=quality,
            action="rejected",
            reason=(
                "defects survive repair: "
                f"{_defect_histogram(residual.counts)}"
            ),
        )
    if quality < policy.min_quality:
        return TriageResult(
            trace=None,
            report=report,
            repairs=actions,
            quality=quality,
            action="rejected",
            reason=(
                f"quality {quality:.2f} below policy floor "
                f"{policy.min_quality:.2f}"
            ),
        )
    repaired.meta["quality"] = quality
    repaired.meta["triage_defects"] = _defect_histogram(report.counts)
    repaired.meta["triage_repairs"] = ",".join(
        f"{action.repair}:{action.touched}" for action in actions
    )
    if not residual.is_clean:
        repaired.meta["triage_residual"] = _defect_histogram(residual.counts)
    return TriageResult(
        trace=repaired,
        report=report,
        repairs=actions,
        quality=quality,
        action="repaired",
    )


def triage_traces(
    traces: list[Trace],
    policy: TriagePolicy | None = None,
    *,
    context=None,
) -> TriageSummary:
    """Triage a collection, emitting telemetry per trace and per repair.

    *context* is a :class:`repro.runtime.context.RunContext` (kept
    duck-typed so ``repro.trace`` does not import ``repro.runtime`` at
    module level).  Raises :class:`TraceError` when every trace is
    refused — downstream has nothing to work with, and the structured
    reports ride on the exception message.
    """
    summary = TriageSummary()
    for trace in traces:
        result = triage_trace(trace, policy)
        summary.results.append(result)
        if context is not None:
            from repro.runtime.events import TraceRepairApplied, TraceTriaged

            for action in result.repairs:
                context.emit(
                    TraceRepairApplied(
                        trace=result.report.trace_label,
                        repair=action.repair,
                        touched=action.touched,
                        detail=action.detail,
                    )
                )
            context.emit(
                TraceTriaged(
                    trace=result.report.trace_label,
                    action=result.action,
                    quality=round(result.quality, 6),
                    defects=dict(result.report.counts),
                    reason=result.reason,
                )
            )
    if traces and not summary.traces:
        reasons = "; ".join(
            f"{r.report.trace_label}: {r.reason}" for r in summary.results
        )
        raise TraceError(f"triage refused every trace ({reasons})")
    return summary
