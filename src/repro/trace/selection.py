"""Diverse trace-segment selection (§3.2).

Scoring every packet of every trace is too costly, so Abagnale samples a
subset of segments per refinement iteration.  To avoid over-fitting to
one network condition, the sampler is diversity-seeking: it draws half
the requested segments uniformly at random, then for each drawn segment
adds the un-picked segment *farthest* from it (by a distance over
normalized cwnd shapes), so the working set spans many conditions.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

import numpy as np

from repro.trace.model import TraceSegment
from repro.trace.signals import extract_signals

__all__ = ["segment_shape", "shape_distance", "select_diverse_segments"]

#: Number of points segments are resampled to before shape comparison.
_SHAPE_POINTS = 64


def segment_shape(segment: TraceSegment) -> np.ndarray:
    """A scale-free shape signature of the segment's cwnd evolution.

    The cwnd series is resampled to a fixed length over normalized time
    and scaled by its mean, so segments from different bandwidths and
    durations are comparable.
    """
    table = extract_signals(segment)
    cwnd = table.observed_cwnd()
    times = table.times()
    if len(cwnd) < 2:
        return np.ones(_SHAPE_POINTS)
    t_norm = (times - times[0]) / max(times[-1] - times[0], 1e-9)
    grid = np.linspace(0.0, 1.0, _SHAPE_POINTS)
    resampled = np.interp(grid, t_norm, cwnd)
    mean = resampled.mean()
    return resampled / mean if mean > 0 else resampled


def shape_distance(left: np.ndarray, right: np.ndarray) -> float:
    """Euclidean distance between two shape signatures."""
    return float(np.linalg.norm(left - right))


def select_diverse_segments(
    segments: Sequence[TraceSegment],
    count: int,
    *,
    rng: random.Random | None = None,
    distance: Callable[[np.ndarray, np.ndarray], float] = shape_distance,
) -> list[TraceSegment]:
    """Pick *count* segments: half random, half farthest-from-picked.

    Follows the paper's §3.2 procedure: first randomly select half the
    desired number; then, for each sampled segment, add the remaining
    un-picked segment with the highest distance from it.
    """
    if count >= len(segments):
        return list(segments)
    rng = rng or random.Random(0)
    shapes = [segment_shape(segment) for segment in segments]
    indices = list(range(len(segments)))

    first_half = max(count // 2, 1)
    picked = rng.sample(indices, min(first_half, len(indices)))
    remaining = [index for index in indices if index not in picked]

    for anchor in list(picked):
        if len(picked) >= count or not remaining:
            break
        farthest = max(
            remaining, key=lambda index: distance(shapes[anchor], shapes[index])
        )
        picked.append(farthest)
        remaining.remove(farthest)

    # Top up randomly if the pairing loop finished early.
    while len(picked) < count and remaining:
        extra = rng.choice(remaining)
        picked.append(extra)
        remaining.remove(extra)

    return [segments[index] for index in picked]
