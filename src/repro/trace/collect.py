"""Trace-collection harness: run a CCA across the environment matrix.

The substitute for the paper's testbed campaign (§3.2): for each network
configuration in the matrix, simulate the CCA for a fixed duration and
(optionally) pass the result through the measurement-noise model.  The
harness also provides the segment pipeline — collect, segment, and select
a diverse working set — used by the synthesizer and the benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cca.registry import make_cca
from repro.netsim.environments import Environment, default_matrix
from repro.trace.noise import NoiseModel, apply_noise
from repro.trace.model import Trace, TraceSegment
from repro.trace.segmentation import segment_trace
from repro.trace.selection import select_diverse_segments

__all__ = ["CollectionConfig", "collect_traces", "collect_segments"]


@dataclass(frozen=True)
class CollectionConfig:
    """Parameters of one collection campaign."""

    duration: float = 20.0
    environments: tuple[Environment, ...] = field(
        default_factory=lambda: tuple(default_matrix())
    )
    noise: NoiseModel = field(default_factory=NoiseModel)
    max_acks_per_trace: int | None = 20_000

    def quick(self) -> "CollectionConfig":
        """A scaled-down campaign for tests and examples."""
        return CollectionConfig(
            duration=min(self.duration, 8.0),
            environments=tuple(self.environments[::4]) or self.environments,
            noise=self.noise,
            max_acks_per_trace=4_000,
        )


def collect_traces(
    cca_name: str, config: CollectionConfig | None = None
) -> list[Trace]:
    """Simulate *cca_name* across the environment matrix; return traces."""
    # Imported lazily: the simulator itself imports the trace data model,
    # and a module-level import here would close an import cycle.
    from repro.netsim.simulator import simulate

    config = config or CollectionConfig()
    traces: list[Trace] = []
    for env in config.environments:
        cca = make_cca(cca_name, mss=env.mss)
        trace = simulate(
            cca,
            env,
            duration=config.duration,
            max_acks=config.max_acks_per_trace,
        )
        if not config.noise.is_noop:
            trace = apply_noise(trace, config.noise)
        traces.append(trace)
    return traces


def collect_segments(
    cca_name: str,
    config: CollectionConfig | None = None,
    *,
    max_segments: int | None = None,
    seed: int = 0,
) -> list[TraceSegment]:
    """Collect traces, segment them, and pick a diverse working set."""
    segments: list[TraceSegment] = []
    for trace in collect_traces(cca_name, config):
        segments.extend(segment_trace(trace))
    if max_segments is not None and len(segments) > max_segments:
        segments = select_diverse_segments(
            segments, max_segments, rng=random.Random(seed)
        )
    return segments
