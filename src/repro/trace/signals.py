"""Congestion-signal extraction from trace segments.

Replaying a candidate handler (§3.1) needs, for every ACK in a segment,
the *signal environment* the DSL reads: RTT statistics, ACK rate,
time-since-loss, etc.  This module turns a :class:`TraceSegment` into a
:class:`SignalTable` of aligned numpy arrays.  All signals are derived
from information a sender-side vantage point has — cumulative running
minima/maxima start fresh at the beginning of the *trace* (not segment),
like a measurement tool that watched the whole flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.trace.model import TraceSegment

__all__ = ["SignalTable", "extract_signals", "SIGNAL_NAMES"]

#: Signals every table provides, aligned per new-data ACK.
SIGNAL_NAMES: tuple[str, ...] = (
    "time",
    "cwnd",
    "acked_bytes",
    "rtt",
    "min_rtt",
    "max_rtt",
    "ewma_rtt",
    "ack_rate",
    "rtt_gradient",
    "delay_gradient",
    "time_since_loss",
    "inflight",
)

#: EWMA gain for the smoothed-RTT signal.
_EWMA_GAIN = 0.125
#: Sliding window for the ACK-rate signal, seconds.
_RATE_WINDOW = 0.25


@dataclass
class SignalTable:
    """Aligned per-ACK signal arrays for one trace segment."""

    mss: float
    columns: dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-table memo of ``columns[name].tolist()`` — the replay loop
    #: binds columns as plain Python lists (scalar iteration is ~2x
    #: faster than over numpy arrays), and tables are replayed thousands
    #: of times per wave, so the conversion is hoisted out of the
    #: per-replay path.  Lazily built; never part of equality.
    _column_lists: dict[str, list[float]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.columns["time"]) if self.columns else 0

    def column_list(self, name: str) -> list[float]:
        """``columns[name].tolist()``, memoized per table instance."""
        values = self._column_lists.get(name)
        if values is None:
            values = self.columns[name].tolist()
            self._column_lists[name] = values
        return values

    def __getitem__(self, name: str) -> np.ndarray:
        return self.columns[name]

    def environment_at(self, index: int, cwnd: float) -> dict[str, float]:
        """The DSL evaluation environment for ACK *index*.

        ``cwnd`` is the *candidate's* window (its evolving state), not the
        trace's — that substitution is what makes replay stateful (§3.1).
        """
        columns = self.columns
        return {
            "mss": self.mss,
            "cwnd": cwnd,
            "acked_bytes": columns["acked_bytes"][index],
            "rtt": columns["rtt"][index],
            "min_rtt": columns["min_rtt"][index],
            "max_rtt": columns["max_rtt"][index],
            "ewma_rtt": columns["ewma_rtt"][index],
            "ack_rate": columns["ack_rate"][index],
            "rtt_gradient": columns["rtt_gradient"][index],
            "delay_gradient": columns["delay_gradient"][index],
            "time_since_loss": columns["time_since_loss"][index],
            "inflight": columns["inflight"][index],
            "wmax": self.wmax,
        }

    @property
    def wmax(self) -> float:
        """Window at the loss that opened this segment (Cubic's W_max).

        Approximated as the first observed window of the segment divided
        by a canonical 0.7 decrease when the segment follows a loss.
        """
        return float(self.columns["wmax"][0]) if "wmax" in self.columns else 0.0

    def observed_cwnd(self) -> np.ndarray:
        """The ground-truth visible window the synthesizer must match."""
        return self.columns["cwnd"]

    def times(self) -> np.ndarray:
        return self.columns["time"]

    def coalesce(self, max_rows: int) -> "SignalTable":
        """Merge consecutive ACK rows down to at most *max_rows*.

        Coalescing models delayed/stretched ACKs: within a group,
        ``acked_bytes`` sums (so additive handlers accrue the same total
        window growth) while every other signal takes the group's last
        value.  Replaying a handler over a coalesced table costs
        proportionally less with near-identical window trajectories.
        """
        n = len(self)
        if n <= max_rows:
            return self
        edges = np.linspace(0, n, max_rows + 1).round().astype(int)
        merged: dict[str, np.ndarray] = {}
        sums = np.add.reduceat(self.columns["acked_bytes"], edges[:-1])
        last_indices = np.clip(edges[1:] - 1, 0, n - 1)
        for name, column in self.columns.items():
            if name == "acked_bytes":
                merged[name] = sums.astype(float)
            else:
                merged[name] = column[last_indices]
        return SignalTable(mss=self.mss, columns=merged)


def _usable_rtt(ack) -> float | None:
    """The record's RTT sample, or ``None`` when absent or garbage.

    Non-finite and non-positive samples are treated as missing rather
    than poisoning every running statistic downstream (min/max/EWMA and
    the gradients are all cumulative — one ``inf`` would stick for the
    rest of the flow).
    """
    sample = ack.rtt_sample
    if sample is None or not math.isfinite(sample) or sample <= 0:
        return None
    return sample


def extract_signals(segment: TraceSegment) -> SignalTable:
    """Compute the :class:`SignalTable` for *segment*.

    Only new-data ACKs (``acked_bytes > 0``) contribute rows; dupacks
    carry no RTT sample and no window progress.  Guards keep garbage
    out of the table: non-finite RTT samples count as missing, a run of
    missing samples at the trace head back-fills from the first real
    sample (instead of fabricating a 1 ms RTT), and non-finite window
    observations carry the nearest finite neighbor.  A segment with no
    finite timestamps, windows, or RTT samples raises
    :class:`~repro.errors.TraceError` — that trace needs
    :mod:`repro.trace.triage` first.
    """
    trace = segment.trace
    rows = [
        (index, ack)
        for index, ack in enumerate(trace.acks[: segment.stop])
        if not ack.dupack
    ]
    prefix = [(i, a) for i, a in rows if i < segment.start]
    inside = [(i, a) for i, a in rows if i >= segment.start]
    if not inside:
        raise TraceError(f"segment {segment.label} has no new-data ACKs")
    if not all(math.isfinite(ack.time) for _, ack in inside):
        raise TraceError(
            f"segment {segment.label} has non-finite timestamps; "
            "run trace triage before extraction"
        )

    loss_times = trace.loss_times()

    # Warm the running statistics over the trace prefix, so min/max RTT and
    # the EWMA reflect the whole flow up to the segment, as a real vantage
    # point's would.
    min_rtt = float("inf")
    max_rtt = 0.0
    ewma = None
    prev_rtt = None
    prev_time = None
    gradient = 0.0
    for _, ack in prefix:
        rtt_sample = _usable_rtt(ack)
        if rtt_sample is not None:
            min_rtt = min(min_rtt, rtt_sample)
            max_rtt = max(max_rtt, rtt_sample)
            ewma = (
                rtt_sample
                if ewma is None
                else ewma + _EWMA_GAIN * (rtt_sample - ewma)
            )
            if prev_rtt is not None and ack.time > prev_time:
                sample = (rtt_sample - prev_rtt) / (ack.time - prev_time)
                gradient += _EWMA_GAIN * (sample - gradient)
            prev_rtt, prev_time = rtt_sample, ack.time

    n = len(inside)
    out = {name: np.zeros(n) for name in SIGNAL_NAMES}
    delivered: list[tuple[float, float]] = []  # (time, cumulative bytes)
    cumulative = 0.0
    last_rtt = prev_rtt
    if last_rtt is None:
        # A missing-sample run at the trace head: back-fill from the
        # first real sample in the segment (the way
        # :meth:`Trace.rtt_series` does) rather than fabricating a 1 ms
        # RTT that would poison min_rtt for the whole flow.
        last_rtt = next(
            (
                sample
                for sample in map(
                    lambda pair: _usable_rtt(pair[1]), inside
                )
                if sample is not None
            ),
            None,
        )
        if last_rtt is None:
            raise TraceError(
                f"segment {segment.label} has no usable RTT samples"
            )
    last_cwnd: float | None = None

    for row, (_, ack) in enumerate(inside):
        time = ack.time
        rtt_sample = _usable_rtt(ack)
        if rtt_sample is not None:
            last_rtt = rtt_sample
            min_rtt = min(min_rtt, rtt_sample)
            max_rtt = max(max_rtt, rtt_sample)
            ewma = (
                rtt_sample
                if ewma is None
                else ewma + _EWMA_GAIN * (rtt_sample - ewma)
            )
            if prev_rtt is not None and time > prev_time:
                sample = (rtt_sample - prev_rtt) / (time - prev_time)
                gradient += _EWMA_GAIN * (sample - gradient)
            prev_rtt, prev_time = rtt_sample, time
        rtt = last_rtt

        acked = (
            float(ack.acked_bytes)
            if math.isfinite(ack.acked_bytes)
            else 0.0
        )
        cumulative += acked
        delivered.append((time, cumulative))
        while len(delivered) > 2 and time - delivered[0][0] > _RATE_WINDOW:
            delivered.pop(0)
        span = time - delivered[0][0]
        if span > 0:
            rate = (cumulative - delivered[0][1]) / span
        else:
            rate = acked / max(rtt, 1e-6)

        earlier_losses = loss_times[loss_times <= time]
        since_loss = (
            time - earlier_losses[-1] if earlier_losses.size else time
        )

        if math.isfinite(ack.cwnd_bytes):
            last_cwnd = float(ack.cwnd_bytes)
        out["time"][row] = time
        # A non-finite window observation carries the previous finite
        # one (leading garbage back-fills below) instead of landing NaN
        # in the series the scorer matches against.
        out["cwnd"][row] = (
            last_cwnd if last_cwnd is not None else float("nan")
        )
        out["acked_bytes"][row] = acked
        out["rtt"][row] = rtt
        out["min_rtt"][row] = min_rtt if min_rtt != float("inf") else rtt
        out["max_rtt"][row] = max_rtt if max_rtt > 0 else rtt
        out["ewma_rtt"][row] = ewma if ewma is not None else rtt
        out["ack_rate"][row] = rate
        out["rtt_gradient"][row] = gradient
        out["delay_gradient"][row] = gradient
        out["time_since_loss"][row] = max(since_loss, 1e-6)
        out["inflight"][row] = (
            ack.inflight_bytes if math.isfinite(ack.inflight_bytes) else 0.0
        )

    # Back-fill a leading run of non-finite window observations from the
    # first finite one; refuse a segment with no finite window at all.
    cwnd_column = out["cwnd"]
    if not np.isfinite(cwnd_column).all():
        finite = cwnd_column[np.isfinite(cwnd_column)]
        if finite.size == 0:
            raise TraceError(
                f"segment {segment.label} has no finite cwnd observations"
            )
        cwnd_column[~np.isfinite(cwnd_column)] = finite[0]

    table = SignalTable(mss=float(trace.mss), columns=out)
    # W_max estimate: the window at segment start, undone by a canonical
    # 0.7 beta when the segment opens right after a loss.
    first_cwnd = out["cwnd"][0]
    table.columns["wmax"] = np.full(n, first_cwnd / 0.7)
    return table
