"""Loss inference and trace segmentation (§3.2).

Abagnale splits flow traces into *segments* between loss events, because
the cwnd-ack handler only governs the window between losses.  Losses are
inferred the way a passive observer would: a run of three duplicate ACKs
for the same sequence number signals a retransmission.  Explicit loss
records in the trace (when the vantage point has them) are merged with
the inferred ones.
"""

from __future__ import annotations

import math

from repro.errors import TraceError
from repro.trace.model import Trace, TraceSegment

__all__ = ["infer_loss_times", "segment_trace"]

#: Duplicate-ACK count that signals a loss, per standard fast retransmit.
DUPACK_THRESHOLD = 3
#: Segments shorter than this many new-data ACKs are discarded: they carry
#: too little window evolution to score against.
MIN_SEGMENT_ACKS = 12
#: Two loss signals closer than this (seconds) collapse into one event.
LOSS_MERGE_WINDOW = 0.05


def infer_loss_times(trace: Trace) -> list[float]:
    """Infer loss-event times from triple-duplicate-ACK runs.

    Returns merged, deduplicated timestamps, combining inference with any
    loss records the trace already carries.
    """
    inferred: list[float] = []
    dup_count = 0
    dup_seq: int | None = None
    for ack in trace.acks:
        if ack.dupack and ack.ack_seq == dup_seq:
            dup_count += 1
            if dup_count == DUPACK_THRESHOLD:
                inferred.append(ack.time)
        elif ack.dupack:
            dup_seq = ack.ack_seq
            dup_count = 1
        else:
            dup_seq = ack.ack_seq
            dup_count = 0

    merged: list[float] = []
    for time in sorted(inferred + [loss.time for loss in trace.losses]):
        if not merged or time - merged[-1] > LOSS_MERGE_WINDOW:
            merged.append(time)
    return merged


def segment_trace(
    trace: Trace, *, min_acks: int = MIN_SEGMENT_ACKS
) -> list[TraceSegment]:
    """Split *trace* into loss-delimited segments.

    Segment boundaries sit at inferred loss events; each segment starts at
    the first new-data ACK after a loss (when the CCA has reacted) and
    runs to the ACK preceding the next loss.  Segments with fewer than
    *min_acks* new-data ACKs are dropped.
    """
    # Segmentation assumes time-ordered, finite timestamps: the epoch
    # windows below are half-open time intervals, so an out-of-order or
    # NaN timestamp silently scatters ACKs across the wrong segments.
    # Refuse with an actionable error instead — repairable through
    # :mod:`repro.trace.triage`.
    previous = float("-inf")
    for index, ack in enumerate(trace.acks):
        if not math.isfinite(ack.time):
            raise TraceError(
                f"ack[{index}] has non-finite timestamp; run trace "
                "triage (or `repro validate`) before segmentation"
            )
        if ack.time < previous:
            raise TraceError(
                f"ack[{index}] time {ack.time:.6f} precedes its "
                f"predecessor ({previous:.6f}); run trace triage "
                "(or `repro validate`) before segmentation"
            )
        previous = ack.time

    losses = infer_loss_times(trace)
    boundaries = [float("-inf")] + losses + [float("inf")]
    segments: list[TraceSegment] = []
    for epoch_index in range(len(boundaries) - 1):
        lo, hi = boundaries[epoch_index], boundaries[epoch_index + 1]
        indices = [
            index
            for index, ack in enumerate(trace.acks)
            if lo < ack.time <= hi and not ack.dupack
        ]
        if len(indices) < min_acks:
            continue
        segments.append(
            TraceSegment(
                trace=trace,
                start=indices[0],
                stop=indices[-1] + 1,
                preceding_loss_time=lo if lo != float("-inf") else 0.0,
            )
        )
    return segments
