"""Trace collection, segmentation, signal extraction and serialization.

This package owns everything between the simulator and the synthesizer:
the trace data model, triple-dupack loss inference and segmentation
(S3.2), per-ACK congestion-signal extraction for handler replay (S3.1),
diversity-seeking segment selection, the collection harness over the
environment matrix, and JSON/CSV serialization.
"""

from repro.trace.adapters import from_ack_log, from_packet_log
from repro.trace.collect import (
    CollectionConfig,
    collect_segments,
    collect_traces,
)
from repro.trace.corrupt import (
    CORRUPTIONS,
    REFUSED,
    REPAIRABLE,
    CorruptSample,
    corrupt_trace,
    corruption_corpus,
)
from repro.trace.io import (
    export_csv,
    load_trace,
    load_trace_file,
    load_traces,
    save_trace,
    save_traces,
    trace_from_dict,
    trace_to_dict,
)
from repro.trace.model import AckRecord, LossRecord, Trace, TraceSegment
from repro.trace.noise import NoiseModel, apply_noise
from repro.trace.segmentation import infer_loss_times, segment_trace
from repro.trace.selection import (
    segment_shape,
    select_diverse_segments,
    shape_distance,
)
from repro.trace.signals import SIGNAL_NAMES, SignalTable, extract_signals
from repro.trace.stats import TraceStats, summarize
from repro.trace.triage import (
    DEFECT_CLASSES,
    FATAL_DEFECTS,
    REPAIRABLE_DEFECTS,
    DefectReport,
    RepairAction,
    TraceDefect,
    TriagePolicy,
    TriageResult,
    TriageSummary,
    repair_trace,
    trace_quality,
    triage_trace,
    triage_traces,
    validate_trace,
)

__all__ = [
    "CollectionConfig",
    "from_ack_log",
    "from_packet_log",
    "collect_segments",
    "collect_traces",
    "export_csv",
    "load_trace",
    "load_trace_file",
    "load_traces",
    "save_trace",
    "save_traces",
    "trace_from_dict",
    "trace_to_dict",
    "AckRecord",
    "NoiseModel",
    "apply_noise",
    "LossRecord",
    "Trace",
    "TraceSegment",
    "infer_loss_times",
    "segment_trace",
    "segment_shape",
    "select_diverse_segments",
    "shape_distance",
    "SIGNAL_NAMES",
    "TraceStats",
    "summarize",
    "SignalTable",
    "extract_signals",
    "CORRUPTIONS",
    "REPAIRABLE",
    "REFUSED",
    "CorruptSample",
    "corrupt_trace",
    "corruption_corpus",
    "DEFECT_CLASSES",
    "FATAL_DEFECTS",
    "REPAIRABLE_DEFECTS",
    "TraceDefect",
    "DefectReport",
    "RepairAction",
    "TriagePolicy",
    "TriageResult",
    "TriageSummary",
    "validate_trace",
    "repair_trace",
    "trace_quality",
    "triage_trace",
    "triage_traces",
]
