"""Adversarial trace corruption — the hostile sibling of ``noise.py``.

:mod:`repro.trace.noise` models *measurement* imperfection: jitter,
dropout, observation error.  This module models *corruption*: the
failure modes of real collection campaigns (clock steps, tooling bugs,
truncated uploads, schema drift) plus deliberately hostile input, in the
spirit of CC-Fuzz's adversarial stress-testing.  The triage layer
(:mod:`repro.trace.triage`) must either repair each class or refuse it
with a structured report — never crash, never silently mis-rank.

Each corruption class transforms the *serialized* JSON document (the
attack surface a service ingests), is deterministic per ``(class,
seed)``, and declares its expected triage outcome:

* ``"repairable"`` — ``load`` succeeds and the ``repair`` policy admits
  the trace after repair passes;
* ``"refused"`` — either the loader raises a structured
  :class:`~repro.errors.TraceError` (schema/type/truncation damage) or
  triage rejects the trace with a defect report.

The differential harness in ``tests/integration`` and the CI fuzz smoke
job iterate ``CORRUPTIONS`` so a newly added class is automatically
exercised.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass
from typing import Callable

from repro.trace.io import trace_to_dict
from repro.trace.model import Trace

__all__ = [
    "CorruptSample",
    "CORRUPTIONS",
    "REPAIRABLE",
    "REFUSED",
    "corrupt_trace",
    "corruption_corpus",
]


@dataclass(frozen=True)
class CorruptSample:
    """One corrupted serialized trace and its provenance."""

    corruption: str
    seed: int
    text: str  #: the (possibly unparseable) JSON document
    expectation: str  #: ``"repairable" | "refused"``


def _rng(name: str, seed: int) -> random.Random:
    return random.Random(seed ^ zlib.crc32(name.encode()))


# ---------------------------------------------------------------------------
# Dict-level corruptions (well-formed JSON, hostile content)


def _clock_jump(data: dict, rng: random.Random) -> dict:
    """A forward clock step mid-trace (NTP slew, VM migration)."""
    acks = data["acks"]
    if len(acks) < 4:
        return data
    pivot = rng.randrange(len(acks) // 4, 3 * len(acks) // 4)
    jump = rng.uniform(120.0, 600.0)
    for row in acks[pivot:]:
        row[0] += jump
    return data


def _record_shuffle(data: dict, rng: random.Random) -> dict:
    """A window of records written out of order (buffered logger race)."""
    acks = data["acks"]
    if len(acks) <= 8:  # randrange needs at least one valid window start
        return data
    start = rng.randrange(0, len(acks) - 8)
    window = acks[start : start + 8]
    rng.shuffle(window)
    acks[start : start + 8] = window
    return data


def _duplicate_acks(data: dict, rng: random.Random) -> dict:
    """Records duplicated in place (retried log flush)."""
    acks = data["acks"]
    for index in sorted(
        rng.sample(range(len(acks)), min(5, len(acks))), reverse=True
    ):
        acks.insert(index, list(acks[index]))
    return data


def _nonfinite_fields(data: dict, rng: random.Random) -> dict:
    """NaN/Infinity leaking into numeric cells (failed float parse)."""
    acks = data["acks"]
    for index in rng.sample(range(len(acks)), min(6, len(acks))):
        column = rng.choice((3, 4))  # rtt_sample or cwnd_bytes
        acks[index][column] = rng.choice(
            (float("nan"), float("inf"), -float("inf"))
        )
    return data


def _negative_cwnd(data: dict, rng: random.Random) -> dict:
    """Sign corruption on windows and byte counters."""
    acks = data["acks"]
    for index in rng.sample(range(len(acks)), min(5, len(acks))):
        acks[index][4] = -abs(acks[index][4]) - 1.0
    return data


def _duplicate_loss_epochs(data: dict, rng: random.Random) -> dict:
    """Loss records written multiple times (at-least-once delivery)."""
    losses = data["losses"]
    if not losses:
        losses.append([data["acks"][len(data["acks"]) // 2][0], "dupack"])
    for _ in range(3):
        losses.extend([list(row) for row in losses[: max(1, len(losses))]])
    return data


def _loss_outside_span(data: dict, rng: random.Random) -> dict:
    """Loss timestamps far outside the flow (epoch-zero, far future)."""
    data["losses"] = list(data["losses"]) + [
        [-1e6, "timeout"],
        [1e9, "dupack"],
    ]
    return data


def _trailing_garbage(data: dict, rng: random.Random) -> dict:
    """A few absurd far-future records appended at the tail."""
    acks = data["acks"]
    if not acks:
        return data
    last = acks[-1]
    base = last[0] + 1e5
    for offset in range(3):
        row = list(last)
        row[0] = base + offset
        acks.append(row)
    return data


# ---------------------------------------------------------------------------
# Schema/type corruptions (refused at the loader or by triage)


def _field_type_confusion(data: dict, rng: random.Random) -> dict:
    """Numeric cells replaced by strings (CSV→JSON conversion bug)."""
    acks = data["acks"]
    for index in rng.sample(range(len(acks)), min(4, len(acks))):
        column = rng.randrange(0, 6)
        acks[index][column] = str(acks[index][column])
    return data


def _malformed_arity(data: dict, rng: random.Random) -> dict:
    """Ack rows with missing cells (truncated writer)."""
    acks = data["acks"]
    for index in rng.sample(range(len(acks)), min(3, len(acks))):
        acks[index] = acks[index][: rng.randrange(1, 6)]
    return data


def _unknown_version(data: dict, rng: random.Random) -> dict:
    """Schema drift: a version this reader does not speak."""
    data["version"] = rng.choice((0, 99, "2.0", None))
    return data


def _negative_mss(data: dict, rng: random.Random) -> dict:
    """An impossible MSS (field corruption in the header)."""
    data["mss"] = rng.choice((0, -1460))
    return data


def _empty_acks(data: dict, rng: random.Random) -> dict:
    """A header with no records behind it."""
    data["acks"] = []
    data["losses"] = []
    return data


# ---------------------------------------------------------------------------
# Text-level corruptions (not even JSON)


def _truncated_json(text: str, rng: random.Random) -> str:
    """The document cut off mid-write (disk full, killed uploader)."""
    cut = rng.randrange(len(text) // 2, max(len(text) - 1, 1))
    return text[:cut]


@dataclass(frozen=True)
class _Corruption:
    expectation: str  #: "repairable" | "refused"
    dict_fn: Callable[[dict, random.Random], dict] | None = None
    text_fn: Callable[[str, random.Random], str] | None = None


#: Every corruption class, keyed by name.  Repairable classes damage the
#: content; refused classes damage the schema or the document itself.
CORRUPTIONS: dict[str, _Corruption] = {
    "clock_jump": _Corruption("repairable", _clock_jump),
    "record_shuffle": _Corruption("repairable", _record_shuffle),
    "duplicate_acks": _Corruption("repairable", _duplicate_acks),
    "nonfinite_fields": _Corruption("repairable", _nonfinite_fields),
    "negative_cwnd": _Corruption("repairable", _negative_cwnd),
    "duplicate_loss_epochs": _Corruption(
        "repairable", _duplicate_loss_epochs
    ),
    "loss_outside_span": _Corruption("repairable", _loss_outside_span),
    "trailing_garbage": _Corruption("repairable", _trailing_garbage),
    "field_type_confusion": _Corruption("refused", _field_type_confusion),
    "malformed_arity": _Corruption("refused", _malformed_arity),
    "unknown_version": _Corruption("refused", _unknown_version),
    "negative_mss": _Corruption("refused", _negative_mss),
    "empty_acks": _Corruption("refused", _empty_acks),
    "truncated_json": _Corruption("refused", text_fn=_truncated_json),
}

#: Names of classes triage is expected to repair / refuse.
REPAIRABLE = tuple(
    name for name, c in CORRUPTIONS.items() if c.expectation == "repairable"
)
REFUSED = tuple(
    name for name, c in CORRUPTIONS.items() if c.expectation == "refused"
)


def corrupt_trace(trace: Trace, corruption: str, seed: int = 0) -> CorruptSample:
    """Serialize *trace* and apply one named corruption class.

    Deterministic per ``(corruption, seed)``; the input trace is never
    mutated (the corruption operates on a fresh serialized copy).
    """
    spec = CORRUPTIONS[corruption]
    rng = _rng(corruption, seed)
    data = trace_to_dict(trace)  # fresh nested lists: safe to mutate
    if spec.dict_fn is not None:
        data = spec.dict_fn(data, rng)
    text = json.dumps(data)
    if spec.text_fn is not None:
        text = spec.text_fn(text, rng)
    return CorruptSample(
        corruption=corruption,
        seed=seed,
        text=text,
        expectation=spec.expectation,
    )


def corruption_corpus(
    trace: Trace, seeds: tuple[int, ...] = (0, 1)
) -> list[CorruptSample]:
    """Every corruption class applied to *trace* across *seeds*."""
    return [
        corrupt_trace(trace, name, seed)
        for name in CORRUPTIONS
        for seed in seeds
    ]
