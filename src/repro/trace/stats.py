"""Summary statistics over collected traces.

Measurement studies report flows by goodput, utilization, loss rate and
RTT inflation; these helpers compute those summaries from a
:class:`~repro.trace.model.Trace` so examples, the CLI and tests don't
re-derive them ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.trace.model import Trace

__all__ = ["TraceStats", "summarize"]


@dataclass(frozen=True)
class TraceStats:
    """Flow-level summary of one trace."""

    duration: float
    delivered_bytes: int
    goodput_bps: float
    loss_events: int
    loss_rate_per_sec: float
    rtt_min: float
    rtt_p50: float
    rtt_p95: float
    rtt_max: float
    cwnd_mean: float
    cwnd_p10: float
    cwnd_p90: float
    ack_count: int
    dupack_fraction: float

    def utilization(self, bandwidth_bps: float) -> float:
        """Fraction of *bandwidth_bps* the flow's goodput achieved."""
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        return min(self.goodput_bps / bandwidth_bps, 1.0)

    def rtt_inflation(self) -> float:
        """Median RTT relative to the observed floor (1.0 = no queueing)."""
        return self.rtt_p50 / self.rtt_min if self.rtt_min > 0 else float("inf")


def summarize(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for *trace*."""
    if not trace.acks:
        raise TraceError("cannot summarize an empty trace")
    new_acks = [ack for ack in trace.acks if not ack.dupack]
    if not new_acks:
        raise TraceError("trace has no new-data ACKs")
    times = np.array([ack.time for ack in new_acks])
    duration = float(times[-1] - times[0]) if len(times) > 1 else 0.0
    delivered = new_acks[-1].ack_seq - (new_acks[0].ack_seq - new_acks[0].acked_bytes)
    goodput = 8.0 * delivered / duration if duration > 0 else 0.0
    rtts = np.array(
        [ack.rtt_sample for ack in new_acks if ack.rtt_sample is not None]
    )
    if rtts.size == 0:
        raise TraceError("trace carries no RTT samples")
    cwnd = np.array([ack.cwnd_bytes for ack in new_acks])
    return TraceStats(
        duration=duration,
        delivered_bytes=int(delivered),
        goodput_bps=goodput,
        loss_events=len(trace.losses),
        loss_rate_per_sec=len(trace.losses) / duration if duration > 0 else 0.0,
        rtt_min=float(rtts.min()),
        rtt_p50=float(np.percentile(rtts, 50)),
        rtt_p95=float(np.percentile(rtts, 95)),
        rtt_max=float(rtts.max()),
        cwnd_mean=float(cwnd.mean()),
        cwnd_p10=float(np.percentile(cwnd, 10)),
        cwnd_p90=float(np.percentile(cwnd, 90)),
        ack_count=len(trace.acks),
        dupack_fraction=1.0 - len(new_acks) / len(trace.acks),
    )
