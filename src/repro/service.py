"""Synthesis-as-a-service: a JSONL spool directory + the scheduler.

The service layer is deliberately thin — files in, files out, no
daemon protocol.  A *spool* directory holds everything:

``queue/<job_id>.json``
    one job spec per file (written by :func:`submit_job` /
    ``repro submit``): where the traces come from, which DSL or
    classifier to use, and any
    :class:`~repro.synth.refinement.SynthesisConfig` overrides.
``results/<job_id>.jsonl``
    the job's anytime answer stream (a
    :class:`~repro.runtime.jobs.ResultStore`): the last line is always
    the current best handler + distance, appended at every iteration
    boundary and at completion.
``checkpoints/<job_id>.jsonl`` (+ ``.lease``)
    the job's refinement checkpoint and its scheduler lease.

``repro serve`` (:func:`serve`) loads every spec, skips jobs whose
result stream already says ``completed``, resumes jobs with a
checkpoint, and multiplexes the rest through one
:class:`~repro.runtime.scheduler.Scheduler`.  Because specs, results,
checkpoints, and leases are all files, "restart the service" is just
running ``repro serve`` again — the lease TTL (or ``--steal-leases``)
decides when a successor may take over in-flight jobs.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any

from repro.dsl.families import FAMILIES, family, with_budget
from repro.errors import SynthesisError
from repro.pipeline import reverse_engineer_core
from repro.runtime.checkpoint import DEFAULT_LEASE_TTL, load_checkpoint
from repro.runtime.context import RunContext
from repro.runtime.jobs import Job, ResultStore
from repro.runtime.scheduler import DEFAULT_QUANTUM_TASKS, Scheduler
from repro.synth.refinement import SynthesisConfig

__all__ = ["submit_job", "load_specs", "build_job", "serve"]

#: SynthesisConfig fields a spec may override.  Checkpoint/resume paths
#: are owned by the spool (every job checkpoints under ``checkpoints/``)
#: and fault plans are a test-harness feature, not a service input.
_CONFIG_FIELDS = {
    field.name
    for field in dataclasses.fields(SynthesisConfig)
    if field.name not in {"checkpoint_path", "resume_path", "fault_plan"}
}


def _spool_dir(spool: str, name: str) -> str:
    path = os.path.join(spool, name)
    os.makedirs(path, exist_ok=True)
    return path


def submit_job(
    spool: str,
    job_id: str,
    *,
    traces: str | None = None,
    cca: str | None = None,
    classifier: str = "gordon",
    dsl: str | None = None,
    max_depth: int | None = None,
    max_nodes: int | None = None,
    priority: int = 0,
    trace_policy: str | None = None,
    config: dict[str, Any] | None = None,
    collection: dict[str, Any] | None = None,
) -> str:
    """Write one job spec into the spool's queue; returns its path."""
    if (traces is None) == (cca is None):
        raise SynthesisError(
            "job spec needs exactly one trace source: 'traces' or 'cca'"
        )
    if dsl is not None and dsl not in FAMILIES:
        raise SynthesisError(f"unknown DSL family {dsl!r}")
    config = dict(config or {})
    unknown = sorted(set(config) - _CONFIG_FIELDS)
    if unknown:
        raise SynthesisError(
            f"unknown SynthesisConfig override(s): {', '.join(unknown)}"
        )
    spec: dict[str, Any] = {
        "job_id": job_id,
        "classifier": classifier,
        "priority": priority,
    }
    if traces is not None:
        spec["traces"] = traces
    if cca is not None:
        spec["cca"] = cca
    if dsl is not None:
        spec["dsl"] = dsl
    if max_depth is not None:
        spec["max_depth"] = max_depth
    if max_nodes is not None:
        spec["max_nodes"] = max_nodes
    if trace_policy is not None:
        spec["trace_policy"] = trace_policy
    if config:
        spec["config"] = config
    if collection:
        spec["collection"] = collection
    path = os.path.join(_spool_dir(spool, "queue"), f"{job_id}.json")
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(spec, handle, sort_keys=True, indent=2)
    os.replace(tmp, path)
    return path


def load_specs(spool: str) -> list[dict[str, Any]]:
    """Every parseable spec in the spool's queue, sorted by job id."""
    queue = _spool_dir(spool, "queue")
    specs = []
    for name in sorted(os.listdir(queue)):
        if not name.endswith(".json"):
            continue
        try:
            with open(
                os.path.join(queue, name), "r", encoding="utf-8"
            ) as handle:
                spec = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(spec, dict) and spec.get("job_id"):
            specs.append(spec)
    return specs


def _load_spec_traces(spec: dict[str, Any]):
    """Resolve the spec's trace source (deferred until the job starts)."""
    if "traces" in spec:
        from repro.trace.io import load_traces

        return load_traces(spec["traces"])
    from repro.trace.collect import CollectionConfig, collect_traces
    from repro.netsim.environments import Environment

    collection = spec.get("collection") or {}
    kwargs: dict[str, Any] = {}
    if "duration" in collection:
        kwargs["duration"] = float(collection["duration"])
    if "bandwidth" in collection or "rtt" in collection:
        kwargs["environments"] = tuple(
            Environment(bandwidth_mbps=float(bw), rtt_ms=float(rtt))
            for bw in collection.get("bandwidth", [5.0, 10.0, 15.0])
            for rtt in collection.get("rtt", [25.0, 50.0, 80.0])
        )
    return collect_traces(spec["cca"], CollectionConfig(**kwargs))


def build_job(
    spool: str, spec: dict[str, Any], context: RunContext | None = None
) -> Job:
    """One schedulable :class:`~repro.runtime.jobs.Job` from a spec.

    The checkpoint lives at ``checkpoints/<job_id>.jsonl``; when it
    already holds a boundary the job resumes from it (that is the whole
    crash-recovery path — a successor ``serve`` naturally picks up where
    the dead one left off).
    """
    job_id = str(spec["job_id"])
    checkpoint_path = os.path.join(
        _spool_dir(spool, "checkpoints"), f"{job_id}.jsonl"
    )
    overrides = dict(spec.get("config") or {})
    unknown = sorted(set(overrides) - _CONFIG_FIELDS)
    if unknown:
        raise SynthesisError(
            f"job {job_id!r}: unknown SynthesisConfig override(s): "
            f"{', '.join(unknown)}"
        )
    resumed = load_checkpoint(checkpoint_path) is not None
    config = dataclasses.replace(
        SynthesisConfig(**overrides),
        checkpoint_path=checkpoint_path,
        resume_path=checkpoint_path if resumed else None,
    )
    dsl_name = spec.get("dsl")
    dsl = (
        with_budget(
            family(dsl_name),
            max_depth=spec.get("max_depth"),
            max_nodes=spec.get("max_nodes"),
        )
        if dsl_name is not None
        else None
    )

    def source():
        return reverse_engineer_core(
            _load_spec_traces(spec),
            classifier=spec.get("classifier", "gordon"),
            dsl=dsl,
            config=config,
            max_depth=None if dsl_name else spec.get("max_depth"),
            max_nodes=None if dsl_name else spec.get("max_nodes"),
            context=context,
            trace_policy=spec.get("trace_policy"),
        )

    return Job(
        job_id=job_id,
        source=source,
        priority=int(spec.get("priority", 0)),
        checkpoint_path=checkpoint_path,
        resumed=resumed,
        metadata={"spec": spec},
    )


def serve(
    spool: str,
    *,
    workers: int = 1,
    steal_leases: bool = False,
    quantum_tasks: int = DEFAULT_QUANTUM_TASKS,
    lease_ttl_seconds: float = DEFAULT_LEASE_TTL,
    context: RunContext | None = None,
    exit_after_slices: int | None = None,
) -> dict[str, dict[str, Any]]:
    """Run every incomplete spooled job to completion; return the fleet's
    final snapshots (job id -> result-store snapshot).

    ``exit_after_slices`` is the fault-injection kill switch the smoke
    harness uses: after that many wave slices the process dies by
    ``os._exit`` — no cleanup, no lease release — exactly like a
    SIGKILLed scheduler.
    """
    store = ResultStore(_spool_dir(spool, "results"))
    scheduler = Scheduler(
        workers=workers,
        context=context,
        store=store,
        quantum_tasks=quantum_tasks,
        lease_ttl_seconds=lease_ttl_seconds,
        steal_leases=steal_leases,
    )
    for spec in load_specs(spool):
        snapshot = store.latest(str(spec["job_id"]))
        if snapshot is not None and snapshot.get("state") == "completed":
            continue  # already answered by a previous serve
        scheduler.submit(build_job(spool, spec, context))
    try:
        while scheduler.step():
            if (
                exit_after_slices is not None
                and scheduler.slices_dispatched >= exit_after_slices
            ):
                os._exit(70)  # simulated SIGKILL mid-fleet
    finally:
        scheduler.close()
    return store.all_latest()
