"""Synthesis-as-a-service: a JSONL spool directory + a server fleet.

The service layer is deliberately thin — files in, files out, no
daemon protocol.  A *spool* directory holds everything:

``queue/<job_id>.json``
    one job spec per file (written by :func:`submit_job` /
    ``repro submit``): where the traces come from, which DSL or
    classifier to use, and any
    :class:`~repro.synth.refinement.SynthesisConfig` overrides.
``results/<job_id>.jsonl``
    the job's anytime answer stream (a
    :class:`~repro.runtime.jobs.ResultStore`): the last line is always
    the current best handler + distance, appended at every iteration
    boundary and at completion.
``checkpoints/<job_id>.jsonl`` (+ ``.lease``)
    the job's refinement checkpoint and its owner's heartbeat lease.
``state/<job_id>.json``
    the job's :class:`JobLedger` record — the spool state machine
    (``queued -> claimed -> running -> done | failed | quarantined``)
    plus retry accounting, written atomically so any crash leaves a
    parseable record.

``repro serve`` (:func:`serve`) is a **claim-loop fleet server**: any
number of serve daemons may share one spool.  Each scans the queue,
claims eligible jobs through the
:class:`~repro.runtime.checkpoint.CheckpointLease` protocol (renewed as
a heartbeat on every wave slice), and multiplexes its claims through
one :class:`~repro.runtime.scheduler.Scheduler`.  A server that dies
stops heartbeating; survivors detect the expiry, wait a deterministic
per-(server, job) jitter so takeover never thunders, and resume the
dead peer's jobs from their checkpoints — results stay bit-identical
to a sequential run.  Jobs that repeatedly *kill* their server are
retried under an exponential-backoff budget and then quarantined with
a structured last-failure reason; ``repro fleet-status`` renders the
whole state machine without claiming anything.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Callable

from repro.dsl.families import FAMILIES, family, with_budget
from repro.errors import SynthesisError
from repro.pipeline import reverse_engineer_core
from repro.runtime.checkpoint import (
    DEFAULT_LEASE_TTL,
    CheckpointLease,
    lease_path,
    load_checkpoint,
    read_lease,
    takeover_delay,
)
from repro.runtime.context import RunContext
from repro.runtime.events import (
    HeartbeatMissed,
    JobFailed,
    JobQuarantined,
    JobRetried,
    JobTakenOver,
    LeaseStolen,
    ServerDrained,
    ServerStarted,
)
from repro.runtime.faults import ServiceFaultPlan
from repro.runtime.jobs import Job, ResultStore
from repro.runtime.scheduler import DEFAULT_QUANTUM_TASKS, Scheduler
from repro.synth.refinement import SynthesisConfig

__all__ = [
    "DEFAULT_CLAIM_INTERVAL",
    "DEFAULT_MAX_JOB_RETRIES",
    "DEFAULT_RETRY_BACKOFF",
    "TERMINAL_STATES",
    "JobRecord",
    "JobLedger",
    "FleetServer",
    "submit_job",
    "load_specs",
    "build_job",
    "serve",
    "fleet_status",
]

#: Seconds between claim scans while a server is busy (new submissions
#: and newly expired peer leases are noticed within one interval).
DEFAULT_CLAIM_INTERVAL = 1.0

#: Times a job that killed its server is restarted before quarantine.
DEFAULT_MAX_JOB_RETRIES = 3

#: Base of the exponential crash-retry backoff (seconds).  The first
#: takeover waits only TTL + jitter; after k prior crashes a restart
#: waits a further ``base * 2**(k-1)``.
DEFAULT_RETRY_BACKOFF = 2.0

#: Ledger states no server will ever claim again.
TERMINAL_STATES = frozenset({"done", "failed", "quarantined"})

#: SynthesisConfig fields a spec may override.  Checkpoint/resume paths
#: are owned by the spool (every job checkpoints under ``checkpoints/``)
#: and fault plans are a test-harness feature, not a service input.
_CONFIG_FIELDS = {
    field.name
    for field in dataclasses.fields(SynthesisConfig)
    if field.name not in {"checkpoint_path", "resume_path", "fault_plan"}
}


def _spool_dir(spool: str, name: str) -> str:
    path = os.path.join(spool, name)
    os.makedirs(path, exist_ok=True)
    return path


def submit_job(
    spool: str,
    job_id: str,
    *,
    traces: str | None = None,
    cca: str | None = None,
    classifier: str = "gordon",
    dsl: str | None = None,
    max_depth: int | None = None,
    max_nodes: int | None = None,
    priority: int = 0,
    trace_policy: str | None = None,
    config: dict[str, Any] | None = None,
    collection: dict[str, Any] | None = None,
) -> str:
    """Write one job spec into the spool's queue; returns its path."""
    if (traces is None) == (cca is None):
        raise SynthesisError(
            "job spec needs exactly one trace source: 'traces' or 'cca'"
        )
    if dsl is not None and dsl not in FAMILIES:
        raise SynthesisError(f"unknown DSL family {dsl!r}")
    config = dict(config or {})
    unknown = sorted(set(config) - _CONFIG_FIELDS)
    if unknown:
        raise SynthesisError(
            f"unknown SynthesisConfig override(s): {', '.join(unknown)}"
        )
    spec: dict[str, Any] = {
        "job_id": job_id,
        "classifier": classifier,
        "priority": priority,
    }
    if traces is not None:
        spec["traces"] = traces
    if cca is not None:
        spec["cca"] = cca
    if dsl is not None:
        spec["dsl"] = dsl
    if max_depth is not None:
        spec["max_depth"] = max_depth
    if max_nodes is not None:
        spec["max_nodes"] = max_nodes
    if trace_policy is not None:
        spec["trace_policy"] = trace_policy
    if config:
        spec["config"] = config
    if collection:
        spec["collection"] = collection
    path = os.path.join(_spool_dir(spool, "queue"), f"{job_id}.json")
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(spec, handle, sort_keys=True, indent=2)
    os.replace(tmp, path)
    return path


def load_specs(spool: str) -> list[dict[str, Any]]:
    """Every parseable spec in the spool's queue, sorted by job id."""
    queue = _spool_dir(spool, "queue")
    specs = []
    for name in sorted(os.listdir(queue)):
        if not name.endswith(".json"):
            continue
        try:
            with open(
                os.path.join(queue, name), "r", encoding="utf-8"
            ) as handle:
                spec = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(spec, dict) and spec.get("job_id"):
            specs.append(spec)
    return specs


def _load_spec_traces(spec: dict[str, Any]):
    """Resolve the spec's trace source (deferred until the job starts)."""
    if "traces" in spec:
        from repro.trace.io import load_traces

        return load_traces(spec["traces"])
    from repro.trace.collect import CollectionConfig, collect_traces
    from repro.netsim.environments import Environment

    collection = spec.get("collection") or {}
    kwargs: dict[str, Any] = {}
    if "duration" in collection:
        kwargs["duration"] = float(collection["duration"])
    if "bandwidth" in collection or "rtt" in collection:
        kwargs["environments"] = tuple(
            Environment(bandwidth_mbps=float(bw), rtt_ms=float(rtt))
            for bw in collection.get("bandwidth", [5.0, 10.0, 15.0])
            for rtt in collection.get("rtt", [25.0, 50.0, 80.0])
        )
    return collect_traces(spec["cca"], CollectionConfig(**kwargs))


def build_job(
    spool: str, spec: dict[str, Any], context: RunContext | None = None
) -> Job:
    """One schedulable :class:`~repro.runtime.jobs.Job` from a spec.

    The checkpoint lives at ``checkpoints/<job_id>.jsonl``; when it
    already holds a boundary the job resumes from it (that is the whole
    crash-recovery path — a successor ``serve`` naturally picks up where
    the dead one left off).
    """
    job_id = str(spec["job_id"])
    checkpoint_path = _checkpoint_path(spool, job_id)
    overrides = dict(spec.get("config") or {})
    unknown = sorted(set(overrides) - _CONFIG_FIELDS)
    if unknown:
        raise SynthesisError(
            f"job {job_id!r}: unknown SynthesisConfig override(s): "
            f"{', '.join(unknown)}"
        )
    resumed = load_checkpoint(checkpoint_path) is not None
    config = dataclasses.replace(
        SynthesisConfig(**overrides),
        checkpoint_path=checkpoint_path,
        resume_path=checkpoint_path if resumed else None,
    )
    dsl_name = spec.get("dsl")
    dsl = (
        with_budget(
            family(dsl_name),
            max_depth=spec.get("max_depth"),
            max_nodes=spec.get("max_nodes"),
        )
        if dsl_name is not None
        else None
    )

    def source():
        return reverse_engineer_core(
            _load_spec_traces(spec),
            classifier=spec.get("classifier", "gordon"),
            dsl=dsl,
            config=config,
            max_depth=None if dsl_name else spec.get("max_depth"),
            max_nodes=None if dsl_name else spec.get("max_nodes"),
            context=context,
            trace_policy=spec.get("trace_policy"),
        )

    return Job(
        job_id=job_id,
        source=source,
        priority=int(spec.get("priority", 0)),
        checkpoint_path=checkpoint_path,
        resumed=resumed,
        metadata={"spec": spec},
    )


def _checkpoint_path(spool: str, job_id: str) -> str:
    return os.path.join(_spool_dir(spool, "checkpoints"), f"{job_id}.jsonl")


# ----------------------------------------------------------------------
# The spool state machine: one crash-consistent record per job.


@dataclasses.dataclass(frozen=True)
class JobRecord:
    """One job's ledger entry (``state/<job_id>.json``).

    ``attempts`` counts lifetime starts; ``crashes`` counts the subset
    of restarts forced by a dead owner (takeover after heartbeat loss or
    an operator steal) — only crashes spend the retry budget, so a
    graceful drain/requeue never pushes a healthy job toward quarantine.
    """

    job_id: str
    state: str = "queued"
    attempts: int = 0
    crashes: int = 0
    owner: str | None = None
    updated_at: float = 0.0
    last_failure: dict[str, Any] | None = None


class JobLedger:
    """Atomic per-job state records under the spool's ``state/`` dir.

    Every write goes through a per-process temp file + ``os.replace``
    (the same crash-consistency dance as checkpoints and leases), so a
    SIGKILL at any instant leaves either the old record or the new one.
    A missing or corrupt record reads as a fresh ``queued`` entry — the
    ledger degrades toward re-running work, never toward losing it.
    """

    def __init__(
        self, root: str, *, clock: Callable[[], float] = time.time
    ) -> None:
        self.root = root
        self._clock = clock
        os.makedirs(root, exist_ok=True)

    def path(self, job_id: str) -> str:
        return os.path.join(self.root, f"{job_id}.json")

    def read(self, job_id: str) -> JobRecord:
        try:
            with open(self.path(job_id), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return JobRecord(job_id=job_id)
        if not isinstance(payload, dict):
            return JobRecord(job_id=job_id)
        last_failure = payload.get("last_failure")
        try:
            return JobRecord(
                job_id=job_id,
                state=str(payload.get("state", "queued")),
                attempts=int(payload.get("attempts", 0)),
                crashes=int(payload.get("crashes", 0)),
                owner=payload.get("owner"),
                updated_at=float(payload.get("updated_at", 0.0)),
                last_failure=(
                    last_failure if isinstance(last_failure, dict) else None
                ),
            )
        except (TypeError, ValueError):
            return JobRecord(job_id=job_id)

    def write(self, record: JobRecord) -> JobRecord:
        record = dataclasses.replace(record, updated_at=self._clock())
        path = self.path(record.job_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(dataclasses.asdict(record), handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return record

    def transition(self, job_id: str, state: str, **changes: Any) -> JobRecord:
        """Read-modify-write the record into *state* (plus *changes*)."""
        record = self.read(job_id)
        return self.write(
            dataclasses.replace(record, state=state, **changes)
        )


# ----------------------------------------------------------------------
# The claim-loop fleet server.


class FleetServer:
    """One serve daemon in a (possibly multi-server) fleet over a spool.

    The server alternates claim scans with scheduler turns:

    * **Claim** — walk the queue in ``(-priority, job_id)`` order and try
      to claim every non-terminal job: absent/expired leases are taken
      through :meth:`CheckpointLease.acquire` (whose lock serializes
      racing claimants), live foreign leases are respected unless
      ``steal_leases``.  An expired lease is a missed heartbeat; takeover
      waits a deterministic per-(server, job) jitter plus the job's
      crash backoff before acquiring, and a job whose crash count would
      exceed ``max_job_retries`` is quarantined instead of restarted.
      After winning a claim the server re-checks the result store and
      ledger *again* — a peer may have finished the job between the
      pre-claim read and the acquire — before charging an attempt.
    * **Serve** — claimed jobs run under one
      :class:`~repro.runtime.scheduler.Scheduler`, which renews each
      job's lease on every dispatched wave slice (the heartbeat).
    * **Drain** — :meth:`request_drain` (safe from a signal handler)
      lets the slice in flight finish, appends a ``pending`` snapshot
      for every in-flight job, hands them back to the queue, releases
      their leases, and exits cleanly.

    The run loop ends when every spec in the spool is terminal —
    ``done``, ``failed``, or ``quarantined`` — so N servers over one
    spool all exit together once the fleet's work is complete.
    """

    def __init__(
        self,
        spool: str,
        *,
        server_id: str | None = None,
        workers: int = 1,
        steal_leases: bool = False,
        quantum_tasks: int = DEFAULT_QUANTUM_TASKS,
        lease_ttl_seconds: float = DEFAULT_LEASE_TTL,
        claim_interval_seconds: float = DEFAULT_CLAIM_INTERVAL,
        max_job_retries: int = DEFAULT_MAX_JOB_RETRIES,
        retry_backoff_seconds: float = DEFAULT_RETRY_BACKOFF,
        use_shm: bool = True,
        context: RunContext | None = None,
        fault_plan: ServiceFaultPlan | None = None,
        drain: Any = None,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
        store: ResultStore | None = None,
        ledger: JobLedger | None = None,
    ) -> None:
        self.spool = spool
        self.server_id = server_id or f"serve-{os.getpid()}"
        self.workers = workers
        self.steal_leases = steal_leases
        self.quantum_tasks = quantum_tasks
        self.lease_ttl_seconds = lease_ttl_seconds
        self.claim_interval_seconds = claim_interval_seconds
        self.max_job_retries = max_job_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.use_shm = use_shm
        self.context = context
        self.fault_plan = fault_plan
        self.drain = drain  #: object with ``is_set()`` or zero-arg callable
        self.clock = clock
        self.sleep = sleep
        self.store = store or ResultStore(_spool_dir(spool, "results"))
        self.ledger = ledger or JobLedger(
            _spool_dir(spool, "state"), clock=clock
        )
        # Claim/retry telemetry (also surfaced as events).
        self.jobs_claimed = 0
        self.takeovers = 0
        self.retries = 0
        self.quarantined: list[str] = []
        self._missed_heartbeats: set[tuple[str, float]] = set()
        self._finalized: set[str] = set()
        self._drain_local = False
        self._scheduler: Scheduler | None = None

    # -- plumbing ------------------------------------------------------

    def _emit(self, event: Any) -> None:
        if self.context is not None:
            self.context.emit(event)

    def _checkpoint(self, job_id: str) -> str:
        return _checkpoint_path(self.spool, job_id)

    def request_drain(self) -> None:
        """Begin a graceful drain (signal-handler safe: sets flags only)."""
        self._drain_local = True
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler.request_drain()

    def _drain_requested(self) -> bool:
        if self._drain_local:
            return True
        probe = self.drain
        if probe is None:
            return False
        if hasattr(probe, "is_set"):
            return bool(probe.is_set())
        return bool(probe())

    def _backoff(self, crashes: int) -> float:
        """Extra takeover delay earned by prior crashes.

        The first takeover of a dead server's job waits only the TTL +
        jitter (a server crash is not the job's fault); from the second
        crash on, the job itself is suspect and each further restart
        doubles the wait: ``base * 2**(crashes - 1)``.
        """
        if crashes <= 0:
            return 0.0
        return self.retry_backoff_seconds * (2.0 ** (crashes - 1))

    # -- the claim scan ------------------------------------------------

    def _mark_done_if_completed(
        self, job_id: str, record: JobRecord
    ) -> bool:
        """Sync a store-side ``completed`` verdict into the ledger."""
        snapshot = self.store.latest(job_id)
        if snapshot is None or snapshot.get("state") != "completed":
            return False
        if record.state not in TERMINAL_STATES:
            self.ledger.transition(job_id, "done", owner=None)
        return True

    def _may_take_over(
        self, job_id: str, record: JobRecord, current: Any
    ) -> bool:
        """Is this server allowed to displace *current* (a foreign
        lease) right now?"""
        now = self.clock()
        if not current.expired(now):
            return self.steal_leases  # live peer; only an operator steals
        age = now - current.renewed_at
        key = (job_id, current.renewed_at)
        if key not in self._missed_heartbeats:
            self._missed_heartbeats.add(key)
            self._emit(
                HeartbeatMissed(
                    job_id=job_id,
                    owner=current.owner,
                    age_seconds=age,
                    ttl_seconds=current.ttl_seconds,
                )
            )
        if self.steal_leases:
            return True
        eligible_at = (
            current.renewed_at
            + current.ttl_seconds
            + takeover_delay(self.server_id, job_id, current.ttl_seconds)
            + self._backoff(record.crashes)
        )
        return now >= eligible_at

    def _quarantine(self, job_id: str, record: JobRecord, lease: Any) -> None:
        """Park a poison job: it has now killed its server more times
        than the retry budget allows."""
        crashes = record.crashes + 1
        previous = lease.displaced
        detail = (
            f"job killed its server {crashes} time(s); retry budget of "
            f"{self.max_job_retries} exhausted (last owner {previous!r})"
        )
        failure = {
            "reason": "retry-budget-exhausted",
            "detail": detail,
            "previous_owner": previous,
            "at": self.clock(),
        }
        self.ledger.transition(
            job_id,
            "quarantined",
            owner=None,
            crashes=crashes,
            last_failure=failure,
        )
        snapshot = self.store.latest(job_id) or {}
        self.store.record(
            {
                "job_id": job_id,
                "state": "quarantined",
                "best_expression": snapshot.get("best_expression"),
                "best_distance": snapshot.get("best_distance"),
                "iterations_done": snapshot.get("iterations_done", 0),
                "attempts": record.attempts,
                "crashes": crashes,
                "error": detail,
            }
        )
        self._emit(
            JobQuarantined(
                job_id=job_id,
                server=self.server_id,
                attempts=record.attempts,
                crashes=crashes,
                reason="retry-budget-exhausted",
                detail=detail,
            )
        )
        self.quarantined.append(job_id)
        lease.release()

    def _claim_one(self, spec: dict[str, Any], scheduler: Scheduler) -> bool:
        job_id = str(spec["job_id"])
        if job_id in scheduler.jobs:
            return False  # already ours (queued, active, or finished here)
        record = self.ledger.read(job_id)
        if record.state in TERMINAL_STATES:
            return False
        if self._mark_done_if_completed(job_id, record):
            return False
        checkpoint = self._checkpoint(job_id)
        current = read_lease(lease_path(checkpoint))
        if current is not None and current.owner != self.server_id:
            if not self._may_take_over(job_id, record, current):
                return False
        lease = CheckpointLease(
            checkpoint,
            self.server_id,
            self.lease_ttl_seconds,
            clock=self.clock,
        )
        if not lease.acquire(steal=self.steal_leases):
            return False  # lost the claim race; a peer owns it now
        # Re-check *after* winning the claim: a peer may have finished
        # (or quarantined) this job between the pre-claim read and the
        # acquire.  Skipping only on the stale pre-claim read is the
        # race this close exists to close.
        record = self.ledger.read(job_id)
        if record.state in TERMINAL_STATES or self._mark_done_if_completed(
            job_id, record
        ):
            lease.release()
            return False
        takeover = lease.displaced is not None and record.state in (
            "claimed",
            "running",
        )
        if lease.displaced is not None:
            self._emit(
                LeaseStolen(
                    job_id=job_id,
                    path=lease.path,
                    previous_owner=lease.displaced,
                )
            )
        crashes = record.crashes + (1 if takeover else 0)
        if takeover and crashes > self.max_job_retries:
            self._quarantine(job_id, record, lease)
            return False
        attempts = record.attempts + 1
        failure = record.last_failure
        if takeover:
            age = (
                self.clock() - current.renewed_at
                if current is not None
                else None
            )
            failure = {
                "reason": "server-died",
                "detail": (
                    f"owner {lease.displaced!r} stopped heartbeating; "
                    f"taken over by {self.server_id!r}"
                    + (f" {age:.1f}s after its last renewal" if age else "")
                ),
                "previous_owner": lease.displaced,
                "crashes": crashes,
                "at": self.clock(),
            }
        self.ledger.write(
            dataclasses.replace(
                record,
                state="claimed",
                owner=self.server_id,
                attempts=attempts,
                crashes=crashes,
                last_failure=failure,
            )
        )
        if takeover:
            self.takeovers += 1
            self._emit(
                JobTakenOver(
                    job_id=job_id,
                    server=self.server_id,
                    previous_owner=lease.displaced,
                    attempts=attempts,
                )
            )
            self.retries += 1
            self._emit(
                JobRetried(
                    job_id=job_id,
                    server=self.server_id,
                    attempts=attempts,
                    crashes=crashes,
                    backoff_seconds=self._backoff(record.crashes),
                )
            )
        try:
            job = build_job(self.spool, spec, self.context)
        except SynthesisError as exc:
            detail = str(exc)
            self.ledger.transition(
                job_id,
                "failed",
                owner=None,
                last_failure={
                    "reason": "bad-spec",
                    "detail": detail,
                    "at": self.clock(),
                },
            )
            self.store.record(
                {"job_id": job_id, "state": "failed", "error": detail}
            )
            self._emit(JobFailed(job_id=job_id, error=detail))
            self._finalized.add(job_id)
            lease.release()
            return False
        job.lease = lease
        scheduler.submit(job)
        self.ledger.transition(job_id, "running", owner=self.server_id)
        self.jobs_claimed += 1
        return True

    def _claim_pass(self, scheduler: Scheduler) -> int:
        claimed = 0
        specs = sorted(
            load_specs(self.spool),
            key=lambda s: (-int(s.get("priority", 0) or 0), str(s["job_id"])),
        )
        for spec in specs:
            if self._drain_requested():
                break
            if self._claim_one(spec, scheduler):
                claimed += 1
        return claimed

    # -- bookkeeping between scheduler turns ---------------------------

    def _sync_finished(self, scheduler: Scheduler) -> None:
        for job_id in list(scheduler.completed):
            if job_id not in self._finalized:
                self._finalized.add(job_id)
                self.ledger.transition(job_id, "done", owner=None)
        for job_id, job in list(scheduler.failed.items()):
            if job_id not in self._finalized:
                self._finalized.add(job_id)
                self.ledger.transition(
                    job_id,
                    "failed",
                    owner=None,
                    last_failure={
                        "reason": "job-error",
                        "detail": job.error or "",
                        "at": self.clock(),
                    },
                )

    def _spool_settled(self) -> bool:
        """True once every spec in the spool is terminal fleet-wide."""
        for spec in load_specs(self.spool):
            job_id = str(spec["job_id"])
            record = self.ledger.read(job_id)
            if record.state in TERMINAL_STATES:
                continue
            if self._mark_done_if_completed(job_id, record):
                continue
            return False
        return True

    def _drain_now(self, scheduler: Scheduler) -> None:
        released = list(scheduler.active_jobs)
        for job in released:
            snapshot = job.snapshot()
            snapshot["state"] = "pending"  # requeued, not lost
            self.store.record(snapshot)
            self.ledger.transition(job.job_id, "queued", owner=None)
        scheduler.close(release_leases=True)
        self._emit(
            ServerDrained(
                server=self.server_id,
                jobs_released=len(released),
                slices_dispatched=scheduler.slices_dispatched,
            )
        )

    # -- the run loop --------------------------------------------------

    def run(self) -> dict[str, dict[str, Any]]:
        """Serve until the spool settles (or a drain is requested);
        returns the store's final snapshots (job id -> snapshot)."""
        self._emit(
            ServerStarted(
                server=self.server_id, spool=self.spool, workers=self.workers
            )
        )
        scheduler = Scheduler(
            workers=self.workers,
            context=self.context,
            store=self.store,
            quantum_tasks=self.quantum_tasks,
            owner=self.server_id,
            lease_ttl_seconds=self.lease_ttl_seconds,
            steal_leases=self.steal_leases,
            use_shm=self.use_shm,
            service_fault_plan=self.fault_plan,
        )
        self._scheduler = scheduler
        drained = False
        try:
            next_scan = float("-inf")
            while True:
                if self._drain_requested():
                    self._drain_now(scheduler)
                    drained = True
                    break
                if self.clock() >= next_scan:
                    self._claim_pass(scheduler)
                    next_scan = self.clock() + self.claim_interval_seconds
                progressed = scheduler.step()
                self._sync_finished(scheduler)
                if self._drain_requested():
                    self._drain_now(scheduler)
                    drained = True
                    break
                if progressed:
                    continue
                if self._spool_settled():
                    break
                # Idle: nothing claimable yet (peers own the rest, or a
                # backoff window is open).  Sleep one claim interval and
                # rescan — this is also how concurrent submits and newly
                # expired peer leases are picked up.
                self.sleep(self.claim_interval_seconds)
                next_scan = float("-inf")
        finally:
            self._scheduler = None
            if not drained:
                scheduler.close()
        return self.store.all_latest()


def serve(
    spool: str,
    *,
    workers: int = 1,
    steal_leases: bool = False,
    quantum_tasks: int = DEFAULT_QUANTUM_TASKS,
    lease_ttl_seconds: float = DEFAULT_LEASE_TTL,
    context: RunContext | None = None,
    server_id: str | None = None,
    claim_interval_seconds: float = DEFAULT_CLAIM_INTERVAL,
    max_job_retries: int = DEFAULT_MAX_JOB_RETRIES,
    retry_backoff_seconds: float = DEFAULT_RETRY_BACKOFF,
    fault_plan: ServiceFaultPlan | None = None,
    exit_after_slices: int | None = None,
    drain: Any = None,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
) -> dict[str, dict[str, Any]]:
    """Run one fleet server over *spool* until every job is terminal;
    returns the final snapshots (job id -> result-store snapshot).

    ``exit_after_slices`` is kept as sugar for the chaos harnesses: it
    folds into a :class:`~repro.runtime.faults.ServiceFaultPlan` whose
    injected kill dies by ``os._exit`` — no cleanup, no lease release —
    exactly like a SIGKILLed server.
    """
    if exit_after_slices is not None:
        base = fault_plan or ServiceFaultPlan()
        fault_plan = dataclasses.replace(
            base, kill_after_slices=exit_after_slices
        )
    return FleetServer(
        spool,
        server_id=server_id,
        workers=workers,
        steal_leases=steal_leases,
        quantum_tasks=quantum_tasks,
        lease_ttl_seconds=lease_ttl_seconds,
        claim_interval_seconds=claim_interval_seconds,
        max_job_retries=max_job_retries,
        retry_backoff_seconds=retry_backoff_seconds,
        context=context,
        fault_plan=fault_plan,
        drain=drain,
        clock=clock,
        sleep=sleep,
    ).run()


def fleet_status(
    spool: str, *, clock: Callable[[], float] = time.time
) -> dict[str, Any]:
    """Read-only view of a spool's state machine (``repro fleet-status``).

    Inspects specs, ledger records, leases, and result snapshots without
    claiming anything, so it is safe to run next to a live fleet.
    """
    store = ResultStore(_spool_dir(spool, "results"))
    ledger = JobLedger(_spool_dir(spool, "state"), clock=clock)
    now = clock()
    jobs: dict[str, Any] = {}
    servers: dict[str, dict[str, Any]] = {}
    states: dict[str, int] = {}
    for spec in load_specs(spool):
        job_id = str(spec["job_id"])
        record = ledger.read(job_id)
        snapshot = store.latest(job_id) or {}
        state = record.state
        if state not in TERMINAL_STATES and snapshot.get("state") == (
            "completed"
        ):
            state = "done"
        lease = read_lease(lease_path(_checkpoint_path(spool, job_id)))
        lease_info = None
        if lease is not None:
            expired = lease.expired(now)
            lease_info = {
                "owner": lease.owner,
                "age_seconds": max(0.0, now - lease.renewed_at),
                "ttl_seconds": lease.ttl_seconds,
                "expired": expired,
            }
            server = servers.setdefault(
                lease.owner, {"jobs": [], "live": False}
            )
            server["jobs"].append(job_id)
            server["live"] = server["live"] or not expired
        states[state] = states.get(state, 0) + 1
        jobs[job_id] = {
            "state": state,
            "owner": record.owner,
            "attempts": record.attempts,
            "crashes": record.crashes,
            "priority": int(spec.get("priority", 0) or 0),
            "best_expression": snapshot.get("best_expression"),
            "best_distance": snapshot.get("best_distance"),
            "iterations_done": snapshot.get("iterations_done", 0),
            "last_failure": record.last_failure,
            "lease": lease_info,
        }
    return {"spool": spool, "jobs": jobs, "servers": servers, "states": states}
