"""The end-to-end Abagnale pipeline (paper Figure 1).

Given packet traces of an unknown CCA:

1. segment the traces at inferred loss events (§3.2);
2. run a classifier on the traces to pick a family sub-DSL (§3.3);
3. run the refinement-loop synthesis over that DSL (§4);
4. report the winning handler with its distance and search telemetry.

:func:`reverse_engineer` takes traces; :func:`reverse_engineer_cca` is the
"lab" entry point that collects fresh traces for a named CCA first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classify.base import ClassifierVerdict
from repro.classify.ccanalyzer import CcaAnalyzer
from repro.classify.gordon import GordonClassifier
from repro.dsl.families import DslSpec, dsl_for_classifier_label, with_budget
from repro.dsl.printer import to_text
from repro.dsl.simplify import simplify
from repro.errors import SynthesisError
from repro.runtime.context import RunContext
from repro.synth.refinement import SynthesisConfig, synthesize
from repro.synth.result import SynthesisResult
from repro.trace.collect import CollectionConfig, collect_traces
from repro.trace.model import Trace, TraceSegment
from repro.trace.segmentation import segment_trace

__all__ = ["PipelineReport", "reverse_engineer", "reverse_engineer_cca"]


@dataclass
class PipelineReport:
    """Everything one pipeline invocation produced."""

    #: ``None`` when the caller supplied an explicit DSL (no classification).
    verdict: ClassifierVerdict | None
    dsl: DslSpec
    result: SynthesisResult
    segment_count: int

    @property
    def expression(self) -> str:
        """The synthesized handler, arithmetically simplified for reading."""
        return to_text(simplify(self.result.best.handler))

    @property
    def distance(self) -> float:
        return self.result.distance

    def summary(self) -> str:
        label = self.verdict.render() if self.verdict else "(skipped)"
        text = (
            f"classifier: {label}  ->  DSL {self.dsl.name!r}\n"
            f"handler:    {self.expression}\n"
            f"distance:   {self.distance:.2f} over {self.segment_count} segments "
            f"({self.result.total_handlers_scored} handlers scored, "
            f"{self.result.elapsed_seconds:.1f}s)"
        )
        result = self.result
        if result.quarantined or result.pool_rebuilds or result.degraded:
            notes = [f"{len(result.quarantined)} quarantined"]
            if result.pool_rebuilds:
                notes.append(f"{result.pool_rebuilds} pool rebuild(s)")
            if result.degraded:
                notes.append("degraded to serial")
            text += f"\nfaults:     {', '.join(notes)}"
        return text


def _segments_from_traces(traces: list[Trace]) -> list[TraceSegment]:
    segments: list[TraceSegment] = []
    for trace in traces:
        segments.extend(segment_trace(trace))
    if not segments:
        raise SynthesisError(
            "no usable segments: traces are too short or carry no losses"
        )
    return segments


def reverse_engineer(
    traces: list[Trace],
    *,
    classifier: str = "gordon",
    dsl: DslSpec | None = None,
    config: SynthesisConfig | None = None,
    max_depth: int | None = None,
    max_nodes: int | None = None,
    context: RunContext | None = None,
) -> PipelineReport:
    """Reverse-engineer the CCA behind *traces*.

    ``classifier`` is ``"gordon"`` (TCP targets) or ``"ccanalyzer"``
    (any transport); pass ``dsl`` to skip classification and search a
    specific sub-DSL.  ``max_depth``/``max_nodes`` override the DSL's
    search budget (the paper's Delay-7/Delay-11/Vegas-11 variants).
    ``context`` (a :class:`~repro.runtime.context.RunContext`) receives
    the run's telemetry — classification and segmentation phase timers
    plus every synthesis event.
    """
    ctx = context if context is not None else RunContext()
    verdict: ClassifierVerdict | None = None
    if dsl is None:
        with ctx.timer("classify"):
            if classifier == "gordon":
                verdict = GordonClassifier().classify(traces)
            elif classifier == "ccanalyzer":
                verdict = CcaAnalyzer().classify(traces)
            else:
                raise SynthesisError(f"unknown classifier {classifier!r}")
        hint = verdict.label if not verdict.is_unknown else verdict.closest
        dsl = dsl_for_classifier_label(hint)
    if max_depth is not None or max_nodes is not None:
        dsl = with_budget(dsl, max_depth=max_depth, max_nodes=max_nodes)

    with ctx.timer("segment"):
        segments = _segments_from_traces(traces)
    result = synthesize(segments, dsl, config, context=ctx)
    return PipelineReport(
        verdict=verdict,
        dsl=dsl,
        result=result,
        segment_count=len(segments),
    )


def reverse_engineer_cca(
    cca_name: str,
    *,
    collection: CollectionConfig | None = None,
    **kwargs,
) -> PipelineReport:
    """Collect traces for a named CCA, then reverse-engineer them."""
    traces = collect_traces(cca_name, collection)
    return reverse_engineer(traces, **kwargs)
