"""The end-to-end Abagnale pipeline (paper Figure 1).

Given packet traces of an unknown CCA:

1. segment the traces at inferred loss events (§3.2);
2. run a classifier on the traces to pick a family sub-DSL (§3.3);
3. run the refinement-loop synthesis over that DSL (§4);
4. report the winning handler with its distance and search telemetry.

:func:`reverse_engineer` takes traces; :func:`reverse_engineer_cca` is the
"lab" entry point that collects fresh traces for a named CCA first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classify.base import ClassifierVerdict
from repro.classify.ccanalyzer import CcaAnalyzer
from repro.classify.gordon import GordonClassifier
from repro.dsl.families import DslSpec, dsl_for_classifier_label, with_budget
from repro.dsl.printer import to_text
from repro.dsl.simplify import simplify
from repro.errors import SynthesisError, TraceError
from repro.runtime.context import RunContext
from repro.runtime.events import DegradedInputs
from repro.synth.refinement import SynthesisConfig, drive, synthesize_core
from repro.synth.result import SynthesisResult
from repro.synth.scoring import QuorumConfig, QuorumDecision, quorum_filter
from repro.trace.collect import CollectionConfig, collect_traces
from repro.trace.model import Trace, TraceSegment
from repro.trace.segmentation import segment_trace
from repro.trace.triage import TriagePolicy, TriageSummary, triage_traces

__all__ = [
    "PipelineReport",
    "reverse_engineer",
    "reverse_engineer_core",
    "reverse_engineer_cca",
]


@dataclass
class PipelineReport:
    """Everything one pipeline invocation produced."""

    #: ``None`` when the caller supplied an explicit DSL (no classification).
    verdict: ClassifierVerdict | None
    dsl: DslSpec
    result: SynthesisResult
    segment_count: int
    #: ``None`` when input triage was disabled (``trace_policy=None``).
    triage: TriageSummary | None = None
    #: ``None`` when triage was disabled; otherwise the quorum guard's
    #: keep/exclude/backfill decision over the segmented working set.
    quorum: QuorumDecision | None = None

    @property
    def expression(self) -> str:
        """The synthesized handler, arithmetically simplified for reading."""
        return to_text(simplify(self.result.best.handler))

    @property
    def distance(self) -> float:
        return self.result.distance

    def summary(self) -> str:
        label = self.verdict.render() if self.verdict else "(skipped)"
        text = (
            f"classifier: {label}  ->  DSL {self.dsl.name!r}\n"
            f"handler:    {self.expression}\n"
            f"distance:   {self.distance:.2f} over {self.segment_count} segments "
            f"({self.result.total_handlers_scored} handlers scored, "
            f"{self.result.elapsed_seconds:.1f}s)"
        )
        result = self.result
        if result.quarantined or result.pool_rebuilds or result.degraded:
            notes = [f"{len(result.quarantined)} quarantined"]
            if result.pool_rebuilds:
                notes.append(f"{result.pool_rebuilds} pool rebuild(s)")
            if result.degraded:
                notes.append("degraded to serial")
            text += f"\nfaults:     {', '.join(notes)}"
        if self.triage is not None:
            summary = self.triage
            notes = [f"{summary.accepted} trace(s) accepted"]
            if summary.repaired:
                notes.append(f"{summary.repaired} repaired")
            if summary.rejected:
                notes.append(f"{summary.rejected} rejected")
            if summary.min_quality < 1.0:
                notes.append(f"min quality {summary.min_quality:.2f}")
            text += f"\ninputs:     {', '.join(notes)}"
        if self.quorum is not None and (
            self.quorum.excluded or self.quorum.backfilled
        ):
            text += (
                f"\nquorum:     {len(self.quorum.kept)} segment(s) kept, "
                f"{len(self.quorum.excluded)} excluded"
            )
            if self.quorum.degraded:
                text += (
                    f", {len(self.quorum.backfilled)} low-quality "
                    "backfilled (degraded inputs)"
                )
        return text


def _segments_from_traces(traces: list[Trace]) -> list[TraceSegment]:
    segments: list[TraceSegment] = []
    for trace in traces:
        segments.extend(segment_trace(trace))
    if not segments:
        raise SynthesisError(
            "no usable segments: traces are too short or carry no losses"
        )
    return segments


def reverse_engineer_core(
    traces: list[Trace],
    *,
    classifier: str = "gordon",
    dsl: DslSpec | None = None,
    config: SynthesisConfig | None = None,
    max_depth: int | None = None,
    max_nodes: int | None = None,
    context: RunContext | None = None,
    trace_policy: str | TriagePolicy | None = None,
    quorum: QuorumConfig | None = None,
):
    """The full pipeline as a re-entrant generator (wave protocol).

    Triage, classification, and segmentation run inline on the first
    ``send(None)``; the synthesis stage is delegated to
    :func:`~repro.synth.refinement.synthesize_core` via ``yield from``,
    so every executor interaction surfaces as a
    :mod:`repro.runtime.protocol` request for the driver — the blocking
    wrapper below, or a :class:`~repro.runtime.scheduler.Scheduler`
    multiplexing many pipelines over one pool.  The generator's return
    value is the :class:`PipelineReport`.
    """
    ctx = context if context is not None else RunContext()
    triage_summary: TriageSummary | None = None
    if trace_policy is not None:
        policy = (
            trace_policy
            if isinstance(trace_policy, TriagePolicy)
            else TriagePolicy(mode=trace_policy)
        )
        with ctx.timer("triage"):
            try:
                triage_summary = triage_traces(traces, policy, context=ctx)
            except TraceError as exc:
                raise SynthesisError(str(exc)) from exc
        traces = triage_summary.traces
    verdict: ClassifierVerdict | None = None
    if dsl is None:
        with ctx.timer("classify"):
            if classifier == "gordon":
                verdict = GordonClassifier().classify(traces)
            elif classifier == "ccanalyzer":
                verdict = CcaAnalyzer().classify(traces)
            else:
                raise SynthesisError(f"unknown classifier {classifier!r}")
        hint = verdict.label if not verdict.is_unknown else verdict.closest
        dsl = dsl_for_classifier_label(hint)
    if max_depth is not None or max_nodes is not None:
        dsl = with_budget(dsl, max_depth=max_depth, max_nodes=max_nodes)

    with ctx.timer("segment"):
        segments = _segments_from_traces(traces)
    decision: QuorumDecision | None = None
    if triage_summary is not None:
        decision = quorum_filter(segments, quorum)
        if decision.excluded or decision.backfilled:
            ctx.emit(
                DegradedInputs(
                    total_segments=len(segments),
                    usable=len(decision.kept) - len(decision.backfilled),
                    excluded=len(decision.excluded),
                    backfilled=len(decision.backfilled),
                    min_quorum=(quorum or QuorumConfig()).min_segments,
                )
            )
        segments = list(decision.kept)
        if not segments:
            raise SynthesisError(
                "no usable segments survived the quorum guard"
            )
    result = yield from synthesize_core(segments, dsl, config, context=ctx)
    return PipelineReport(
        verdict=verdict,
        dsl=dsl,
        result=result,
        segment_count=len(segments),
        triage=triage_summary,
        quorum=decision,
    )


def reverse_engineer(
    traces: list[Trace],
    *,
    classifier: str = "gordon",
    dsl: DslSpec | None = None,
    config: SynthesisConfig | None = None,
    max_depth: int | None = None,
    max_nodes: int | None = None,
    context: RunContext | None = None,
    trace_policy: str | TriagePolicy | None = None,
    quorum: QuorumConfig | None = None,
) -> PipelineReport:
    """Reverse-engineer the CCA behind *traces*.

    ``classifier`` is ``"gordon"`` (TCP targets) or ``"ccanalyzer"``
    (any transport); pass ``dsl`` to skip classification and search a
    specific sub-DSL.  ``max_depth``/``max_nodes`` override the DSL's
    search budget (the paper's Delay-7/Delay-11/Vegas-11 variants).
    ``context`` (a :class:`~repro.runtime.context.RunContext`) receives
    the run's telemetry — classification and segmentation phase timers
    plus every synthesis event.

    ``trace_policy`` switches on input triage
    (:mod:`repro.trace.triage`): a mode string (``"strict"`` /
    ``"repair"`` / ``"permissive"``) or a full
    :class:`~repro.trace.triage.TriagePolicy`.  With triage on, the
    segmented working set additionally passes the quorum guard
    (*quorum*, default :class:`~repro.synth.scoring.QuorumConfig`):
    segments from low-quality repaired traces are excluded unless
    exclusion would leave fewer than the quorum minimum, in which case
    the best low-quality segments are kept and a ``degraded_inputs``
    event is emitted.  ``trace_policy=None`` (the default) bypasses
    both stages — for clean traces the two configurations produce
    bit-identical rankings (see the triage differential harness).

    The blocking wrapper over :func:`reverse_engineer_core`: one private
    executor, one run, bit-identical to the historical inline pipeline.
    """
    return drive(
        reverse_engineer_core(
            traces,
            classifier=classifier,
            dsl=dsl,
            config=config,
            max_depth=max_depth,
            max_nodes=max_nodes,
            context=context,
            trace_policy=trace_policy,
            quorum=quorum,
        )
    )


def reverse_engineer_cca(
    cca_name: str,
    *,
    collection: CollectionConfig | None = None,
    **kwargs,
) -> PipelineReport:
    """Collect traces for a named CCA, then reverse-engineer them."""
    traces = collect_traces(cca_name, collection)
    return reverse_engineer(traces, **kwargs)
