"""Package version, single-sourced for pyproject and runtime."""

__version__ = "1.0.0"
