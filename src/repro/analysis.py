"""Post-synthesis analysis of handler expressions.

What the paper does *with* synthesized handlers (§5.3–§5.4): compare
variants within a family, "estimate each CCA's relative aggressiveness",
and check which congestion signals actually drive a handler's behavior.
These helpers make those analyses mechanical:

* :func:`response_curve` — sweep one signal, hold the rest;
* :func:`growth_per_rtt` — the window growth a handler produces over one
  RTT's worth of ACKs at a reference state (MSS units; Reno ≡ ~1);
* :func:`aggressiveness_ranking` — order handlers by that growth;
* :func:`signal_sensitivity` — numerically probe which signals move the
  output (Abagnale's structural insight: "the signals and structure a
  target CCA uses");
* :func:`handlers_equivalent` — behavioral equality over an environment
  grid, for deciding whether two expressions are the same algorithm.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

import numpy as np

from repro.dsl import ast
from repro.dsl.compiled import compile_handler

__all__ = [
    "REFERENCE_ENV",
    "response_curve",
    "growth_per_rtt",
    "aggressiveness_ranking",
    "signal_sensitivity",
    "handlers_equivalent",
]

#: A mid-path reference state: 10 Mbps bottleneck, 50 ms base RTT, a
#: half-full queue, window around one BDP.
REFERENCE_ENV: dict[str, float] = {
    "cwnd": 62_500.0,
    "mss": 1500.0,
    "acked_bytes": 1500.0,
    "rtt": 0.06,
    "min_rtt": 0.05,
    "max_rtt": 0.08,
    "ewma_rtt": 0.058,
    "ack_rate": 1_041_666.0,
    "rtt_gradient": 0.0,
    "delay_gradient": 0.0,
    "time_since_loss": 1.0,
    "inflight": 62_500.0,
    "wmax": 89_285.0,
}


def response_curve(
    handler: ast.NumExpr,
    signal: str,
    values: Sequence[float],
    *,
    base_env: Mapping[str, float] | None = None,
) -> np.ndarray:
    """Evaluate *handler* while sweeping *signal* over *values*."""
    compiled = compile_handler(handler)
    env = dict(base_env or REFERENCE_ENV)
    out = np.empty(len(values))
    for index, value in enumerate(values):
        env[signal] = float(value)
        out[index] = compiled.call_env(env)
    return out


def growth_per_rtt(
    handler: ast.NumExpr,
    *,
    env: Mapping[str, float] | None = None,
) -> float:
    """Window growth over one RTT of ACKs, in MSS units.

    Applies the handler once per MSS-sized ACK for a full window's worth
    of ACKs — one round trip — starting from the reference state, and
    returns ``(w_end - w_start) / mss``.  Classic Reno scores ~1; the
    paper's ``cwnd + .37 * reno_inc`` Scalable handler ~0.37; a
    rate-anchored BBR handler scores by how far its target sits from the
    reference window.
    """
    environment = dict(env or REFERENCE_ENV)
    compiled = compile_handler(handler)
    mss = environment["mss"]
    start = environment["cwnd"]
    acks = max(int(start / mss), 1)
    window = start
    for _ in range(acks):
        environment["cwnd"] = window
        window = compiled.call_env(environment)
    return (window - start) / mss


def aggressiveness_ranking(
    handlers: Mapping[str, ast.NumExpr],
    *,
    env: Mapping[str, float] | None = None,
) -> list[tuple[str, float]]:
    """Rank named handlers by :func:`growth_per_rtt`, most aggressive
    first (the §5.3 'relative aggressiveness' comparison)."""
    scored = [
        (name, growth_per_rtt(handler, env=env))
        for name, handler in handlers.items()
    ]
    scored.sort(key=lambda item: item[1], reverse=True)
    return scored


def signal_sensitivity(
    handler: ast.NumExpr,
    *,
    env: Mapping[str, float] | None = None,
    bump: float = 0.25,
) -> dict[str, float]:
    """Relative output change when each read signal is bumped by ±25%.

    Returns ``{signal: sensitivity}`` for every signal the handler reads
    (``max |Δoutput| / |output|`` across the two bumps); a sensitivity of
    zero means the signal appears syntactically but is behaviorally inert
    at this state (e.g. an untaken conditional branch).
    """
    compiled = compile_handler(handler)
    base_env = dict(env or REFERENCE_ENV)
    base = compiled.call_env(base_env)
    scale = max(abs(base), 1e-9)
    out: dict[str, float] = {}
    for signal in compiled.signals:
        worst = 0.0
        for direction in (1.0 + bump, 1.0 - bump):
            probe = dict(base_env)
            probe[signal] = base_env[signal] * direction
            worst = max(worst, abs(compiled.call_env(probe) - base) / scale)
        out[signal] = worst
    return out


def handlers_equivalent(
    first: ast.NumExpr,
    second: ast.NumExpr,
    *,
    tolerance: float = 0.02,
    growth_tolerance_mss: float = 0.2,
    grid_points: int = 3,
) -> bool:
    """Behavioral equality over a grid of plausible states.

    Sweeps window size, RTT inflation and loss age over a small grid; at
    each state the two handlers must agree on (a) the raw output within
    *tolerance* relative and (b) the per-RTT growth within
    *growth_tolerance_mss* MSS.  The growth check matters: per-ACK
    increments are tiny relative to the window, so a raw-output test
    alone cannot tell ``+0.7·reno_inc`` from ``+1.4·reno_inc``.

    This mechanizes the §5.4 claim "Abagnale's output given traces from
    NV is identical to its output for traces from Vegas".
    """
    a = compile_handler(first)
    b = compile_handler(second)
    cwnds = np.linspace(15_000, 250_000, grid_points)
    rtt_factors = np.linspace(1.0, 2.0, grid_points)
    loss_ages = np.linspace(0.1, 5.0, grid_points)
    for cwnd, factor, age in itertools.product(
        cwnds, rtt_factors, loss_ages
    ):
        env = dict(REFERENCE_ENV)
        env["cwnd"] = float(cwnd)
        env["inflight"] = float(cwnd)
        env["rtt"] = env["min_rtt"] * float(factor)
        env["ewma_rtt"] = env["rtt"]
        env["max_rtt"] = max(env["max_rtt"], env["rtt"])
        env["time_since_loss"] = float(age)
        env["ack_rate"] = cwnd / env["rtt"]
        left = a.call_env(env)
        right = b.call_env(env)
        scale = max(abs(left), abs(right), 1e-9)
        if abs(left - right) / scale > tolerance:
            return False
        growth_gap = abs(
            growth_per_rtt(first, env=env) - growth_per_rtt(second, env=env)
        )
        if growth_gap > growth_tolerance_mss:
            return False
    return True
