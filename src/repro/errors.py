"""Exception taxonomy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class UnitError(ReproError):
    """An expression combines quantities with incompatible physical units."""


class TypeCheckError(ReproError):
    """An expression is ill-typed (e.g. a boolean used where a number is needed)."""


class DslError(ReproError):
    """A DSL definition is inconsistent or references unknown components."""


class ParseError(ReproError):
    """A textual expression could not be parsed into a DSL AST."""


class EvaluationError(ReproError):
    """An expression could not be evaluated over a trace environment."""


class EnumerationError(ReproError):
    """The sketch enumerator was configured inconsistently."""


class SimulationError(ReproError):
    """The network simulator reached an inconsistent state."""


class TraceError(ReproError):
    """A trace is malformed or lacks the signals an operation requires."""


class SynthesisError(ReproError):
    """The synthesis pipeline could not produce a result."""


class ClassificationError(ReproError):
    """A classifier was asked to operate on unsupported input."""
