"""Gordon-style CCA classifier (Mishra et al., SIGMETRICS '20).

Gordon establishes multiple connections to a server and classifies each
connection as one of its known CCAs, reporting the majority label — or
"Unknown" when no label wins a majority of connections (paper §5.1,
Table 3).  This substitute classifies each probe trace by its nearest
reference signature, requires the winning vote to clear both a majority
and a per-connection distance threshold, and reports the runner-up hint
the way Table 3 does.
"""

from __future__ import annotations

from collections import Counter

from repro.classify.base import ClassifierVerdict, ReferenceLibrary
from repro.trace.model import Trace

__all__ = ["GordonClassifier", "GORDON_KNOWN_CCAS"]

#: The CCAs Gordon recognizes (paper §5.1).
GORDON_KNOWN_CCAS: tuple[str, ...] = (
    "bbr",
    "cubic",
    "bic",
    "htcp",
    "scalable",
    "yeah",
    "vegas",
    "veno",
    "reno",
    "illinois",
    "westwood",
)

#: A connection whose nearest-reference distance exceeds this does not
#: count as a confident vote.
DISTANCE_THRESHOLD = 0.08


class GordonClassifier:
    """Majority-vote nearest-reference classifier over probe connections."""

    def __init__(
        self,
        known_ccas: tuple[str, ...] = GORDON_KNOWN_CCAS,
        *,
        distance_threshold: float = DISTANCE_THRESHOLD,
    ):
        self.library = ReferenceLibrary(known_ccas)
        self.distance_threshold = distance_threshold

    def classify(self, traces: list[Trace]) -> ClassifierVerdict:
        """Classify a set of probe connections from one target server."""
        votes: Counter[str] = Counter()
        confident_votes: Counter[str] = Counter()
        best_overall = ("unknown", float("inf"))
        for trace in traces:
            name, distance = self.library.nearest(trace)
            votes[name] += 1
            if distance < best_overall[1]:
                best_overall = (name, distance)
            if distance <= self.distance_threshold:
                confident_votes[name] += 1

        closest = best_overall[0]
        if confident_votes:
            winner, count = confident_votes.most_common(1)[0]
            if count * 2 > len(traces):  # strict majority of connections
                return ClassifierVerdict(
                    label=winner,
                    closest=winner,
                    distance=best_overall[1],
                    votes=dict(votes),
                )
        return ClassifierVerdict(
            label="unknown",
            closest=closest,
            distance=best_overall[1],
            votes=dict(votes),
        )
