"""Shared classifier machinery: reference libraries and nearest-CCA votes.

Both classifier substitutes (Gordon-style and CCAnalyzer-style) follow
the same template the real tools do: build a library of reference
measurements of *known* CCAs under controlled probes, then label a target
flow by its nearest reference — with an "Unknown" verdict when nothing in
the library is close.  They differ in protocol (multiple test
connections + majority vote, vs. a single distance ranking) and in which
CCAs they know.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.classify.features import signature_distance, trace_signature
from repro.netsim.environments import Environment
from repro.trace.collect import CollectionConfig, collect_traces
from repro.trace.model import Trace

__all__ = [
    "ClassifierVerdict",
    "ReferenceLibrary",
    "PROBE_ENVIRONMENTS",
    "probe_config",
]

#: Probe environments shared by the reference library and target runs.
PROBE_ENVIRONMENTS: tuple[Environment, ...] = (
    Environment(bandwidth_mbps=5.0, rtt_ms=25.0),
    Environment(bandwidth_mbps=10.0, rtt_ms=50.0),
    Environment(bandwidth_mbps=15.0, rtt_ms=80.0),
)

#: Probe duration, seconds; long enough for several loss epochs.
PROBE_DURATION = 15.0


def probe_config() -> CollectionConfig:
    """Collection settings used for both reference and target probes."""
    return CollectionConfig(
        duration=PROBE_DURATION,
        environments=PROBE_ENVIRONMENTS,
        max_acks_per_trace=12_000,
    )


@dataclass(frozen=True)
class ClassifierVerdict:
    """The outcome of classifying one target.

    ``label`` is a CCA name, or ``"unknown"``.  ``closest`` always names
    the nearest known CCA (the parenthesized hint Table 3 reports for
    Unknown outputs).  ``votes`` maps candidate labels to the number of
    test connections that preferred them.
    """

    label: str
    closest: str
    distance: float
    votes: dict[str, int] = field(default_factory=dict)

    @property
    def is_unknown(self) -> bool:
        return self.label == "unknown"

    def render(self) -> str:
        """Table 3 presentation: 'Unknown (closest)' or the label."""
        if self.is_unknown:
            return f"Unknown ({self.closest})"
        return self.label


class ReferenceLibrary:
    """Signatures of known CCAs under the probe environments."""

    def __init__(self, known_ccas: tuple[str, ...]):
        self.known_ccas = known_ccas
        self._signatures: dict[str, list[np.ndarray]] = {}

    def _ensure_built(self) -> None:
        if self._signatures:
            return
        config = probe_config()
        for name in self.known_ccas:
            traces = collect_traces(name, config)
            self._signatures[name] = [
                trace_signature(trace) for trace in traces
            ]

    def nearest(self, trace: Trace) -> tuple[str, float]:
        """Nearest known CCA to *trace* and the distance to it.

        Comparison is restricted to the reference measured under the same
        environment (same position in the probe matrix) when available,
        falling back to the minimum over all references.
        """
        self._ensure_built()
        target = trace_signature(trace)
        best_name = self.known_ccas[0]
        best_distance = float("inf")
        for name, signatures in self._signatures.items():
            for signature in signatures:
                distance = signature_distance(target, signature)
                if distance < best_distance:
                    best_name, best_distance = name, distance
        return best_name, best_distance
