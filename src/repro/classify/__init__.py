"""CCA classifiers: sub-DSL hints for the synthesizer (paper §3.3, §5.1).

Abagnale consumes a classifier's label only to pick which family sub-DSL
to search.  Two substitutes are provided, mirroring the tools the paper
uses: a Gordon-style majority-vote classifier for TCP targets and a
CCAnalyzer-style distance ranker that also reports the closest known CCA
for Unknown targets.
"""

from repro.classify.base import (
    PROBE_ENVIRONMENTS,
    ClassifierVerdict,
    ReferenceLibrary,
    probe_config,
)
from repro.classify.ccanalyzer import CCANALYZER_KNOWN_CCAS, CcaAnalyzer
from repro.classify.features import (
    SIGNATURE_POINTS,
    signature_distance,
    trace_signature,
)
from repro.classify.gordon import GORDON_KNOWN_CCAS, GordonClassifier

__all__ = [
    "PROBE_ENVIRONMENTS",
    "ClassifierVerdict",
    "ReferenceLibrary",
    "probe_config",
    "CCANALYZER_KNOWN_CCAS",
    "CcaAnalyzer",
    "SIGNATURE_POINTS",
    "signature_distance",
    "trace_signature",
    "GORDON_KNOWN_CCAS",
    "GordonClassifier",
]
