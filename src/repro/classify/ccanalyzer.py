"""CCAnalyzer-style classifier (Ware et al., SIGCOMM '24).

CCAnalyzer compares a target's behavior against its known CCAs with a
distance metric and can always report the *closest* known algorithms even
when the verdict is "Unknown" — which is how the paper picks sub-DSLs for
the student CCAs (§5.1).  Unlike Gordon it is nearly passive and works
for arbitrary (e.g. UDP) transports, which here simply means it accepts
any trace.  This substitute ranks all known CCAs by mean signature
distance across the probe connections and applies an Unknown threshold.
"""

from __future__ import annotations

from collections import defaultdict

from repro.classify.base import ClassifierVerdict, ReferenceLibrary
from repro.classify.features import signature_distance, trace_signature
from repro.trace.model import Trace

__all__ = ["CcaAnalyzer", "CCANALYZER_KNOWN_CCAS"]

#: CCAnalyzer knows the full kernel zoo.
CCANALYZER_KNOWN_CCAS: tuple[str, ...] = (
    "bbr",
    "bic",
    "cdg",
    "cubic",
    "highspeed",
    "htcp",
    "hybla",
    "illinois",
    "lp",
    "nv",
    "reno",
    "scalable",
    "vegas",
    "veno",
    "westwood",
    "yeah",
)

#: Mean distance above which the verdict is Unknown.
DISTANCE_THRESHOLD = 0.08


class CcaAnalyzer:
    """Distance-ranking classifier with closest-CCA reporting."""

    def __init__(
        self,
        known_ccas: tuple[str, ...] = CCANALYZER_KNOWN_CCAS,
        *,
        distance_threshold: float = DISTANCE_THRESHOLD,
    ):
        self.library = ReferenceLibrary(known_ccas)
        self.distance_threshold = distance_threshold

    def rank(self, traces: list[Trace]) -> list[tuple[str, float]]:
        """All known CCAs ranked by mean distance to *traces* (best first)."""
        self.library._ensure_built()
        totals: dict[str, list[float]] = defaultdict(list)
        for trace in traces:
            target = trace_signature(trace)
            for name, signatures in self.library._signatures.items():
                totals[name].append(
                    min(
                        signature_distance(target, signature)
                        for signature in signatures
                    )
                )
        means = {
            name: sum(values) / len(values) for name, values in totals.items()
        }
        return sorted(means.items(), key=lambda item: item[1])

    def classify(self, traces: list[Trace]) -> ClassifierVerdict:
        """Label *traces*, or return Unknown with the closest known CCA."""
        ranking = self.rank(traces)
        closest, distance = ranking[0]
        if distance <= self.distance_threshold:
            label = closest
        else:
            label = "unknown"
        return ClassifierVerdict(
            label=label,
            closest=closest,
            distance=distance,
            votes={name: 0 for name, _ in ranking[:3]},
        )
