"""Trace signatures for classification.

Classifiers compare a target flow's visible-cwnd dynamics against
reference flows of known CCAs.  The signature concatenates two views:

* the cwnd-over-time *shape* (resampled to a fixed grid, scaled by its
  mean) — separates sawtooth (Reno), cubic-plateau (Cubic), pulsing
  (BBR) and flat (Vegas) families;
* the normalized *queueing-delay profile* (RTT above the path minimum)
  — separates delay-yielding CCAs from buffer-filling ones at similar
  window shapes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClassificationError
from repro.trace.model import Trace

__all__ = ["trace_signature", "signature_distance", "SIGNATURE_POINTS"]

#: Points per signature component.
SIGNATURE_POINTS = 96

#: Weight of the delay profile relative to the cwnd shape.
_DELAY_WEIGHT = 0.5


def trace_signature(trace: Trace) -> np.ndarray:
    """Compute the classification signature of *trace*."""
    rows = [ack for ack in trace.acks if not ack.dupack]
    if len(rows) < 8:
        raise ClassificationError(
            f"trace {trace.environment_label!r} too short to classify"
        )
    times = np.array([ack.time for ack in rows])
    cwnd = np.array([ack.cwnd_bytes for ack in rows])
    rtts = np.array(
        [ack.rtt_sample if ack.rtt_sample is not None else np.nan for ack in rows]
    )
    # Forward-fill missing RTT samples.
    mask = np.isnan(rtts)
    if mask.all():
        raise ClassificationError("trace carries no RTT samples")
    indices = np.where(~mask, np.arange(len(rtts)), 0)
    np.maximum.accumulate(indices, out=indices)
    rtts = rtts[indices]

    grid = np.linspace(times[0], times[-1], SIGNATURE_POINTS)
    cwnd_resampled = np.interp(grid, times, cwnd)
    rtt_resampled = np.interp(grid, times, rtts)

    cwnd_mean = cwnd_resampled.mean()
    shape = cwnd_resampled / cwnd_mean if cwnd_mean > 0 else cwnd_resampled

    rtt_floor = rtt_resampled.min()
    span = max(rtt_resampled.max() - rtt_floor, 1e-9)
    delay_profile = (rtt_resampled - rtt_floor) / span

    return np.concatenate([shape, _DELAY_WEIGHT * delay_profile])


def signature_distance(left: np.ndarray, right: np.ndarray) -> float:
    """Mean absolute difference between two signatures."""
    return float(np.mean(np.abs(left - right)))
