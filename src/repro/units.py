"""Physical-unit algebra for DSL expressions.

Abagnale constrains enumerated sketches so that the synthesized cwnd-ack
handler is *dimensionally consistent*: the output must be in bytes (§4.1).
Units are modeled as integer exponent vectors over two base dimensions,
``bytes`` and ``seconds`` — e.g. an ACK rate is bytes/second, i.e.
``Unit(bytes=1, seconds=-1)``.

Mirroring the paper, only integer exponents are representable; the cube
root of a non-cube unit (such as Cubic's ``time³ → bytes`` trick) is a
:class:`~repro.errors.UnitError`, which is exactly the limitation the paper
reports for Cubic (§5.5). Unit checking can therefore be disabled per-DSL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class Unit:
    """An integer-exponent unit vector over (bytes, seconds)."""

    bytes: int = 0
    seconds: int = 0

    def __mul__(self, other: "Unit") -> "Unit":
        return Unit(self.bytes + other.bytes, self.seconds + other.seconds)

    def __truediv__(self, other: "Unit") -> "Unit":
        return Unit(self.bytes - other.bytes, self.seconds - other.seconds)

    def __pow__(self, exponent: int) -> "Unit":
        return Unit(self.bytes * exponent, self.seconds * exponent)

    def root(self, degree: int) -> "Unit":
        """Return the unit of the degree-th root, or raise :class:`UnitError`.

        Only exact integer roots exist in this algebra; that restriction is
        what prevents the enumerator from unit-checking cube-root
        expressions over non-cubic units (paper §5.5, Cubic discussion).
        """
        if self.bytes % degree or self.seconds % degree:
            raise UnitError(
                f"unit {self} has no exact {degree}-th root "
                "(integer-exponent unit algebra)"
            )
        return Unit(self.bytes // degree, self.seconds // degree)

    @property
    def is_dimensionless(self) -> bool:
        return self.bytes == 0 and self.seconds == 0

    def __str__(self) -> str:
        if self.is_dimensionless:
            return "1"
        parts = []
        for name, exp in (("B", self.bytes), ("s", self.seconds)):
            if exp == 1:
                parts.append(name)
            elif exp:
                parts.append(f"{name}^{exp}")
        return "*".join(parts)


#: The unit of a congestion window and of MSS: plain bytes.
BYTES = Unit(bytes=1)
#: The unit of RTT measurements and of time-since-loss: seconds.
SECONDS = Unit(seconds=1)
#: The unit of an ACK rate or of estimated bandwidth: bytes per second.
BYTES_PER_SECOND = Unit(bytes=1, seconds=-1)
#: A pure number (constants, ratios such as vegas-diff).
DIMENSIONLESS = Unit()


def add_units(left: Unit, right: Unit, *, context: str = "+") -> Unit:
    """Unit of ``left ± right``; both sides must agree."""
    if left != right:
        raise UnitError(f"cannot apply '{context}' to units {left} and {right}")
    return left


def compare_units(left: Unit, right: Unit, *, context: str = "<") -> None:
    """Validate a comparison between two united quantities."""
    if left != right:
        raise UnitError(f"cannot compare ({context}) units {left} and {right}")
