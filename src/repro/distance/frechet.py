"""Additional alignment-based metrics: discrete Fréchet and lag distance.

The paper's §4.3 footnote notes it "additionally evaluated other distance
metrics" beyond the four it plots; these two are the natural candidates
for cwnd time series and round out the registry:

* **discrete Fréchet** — like DTW an alignment distance, but scored by
  the *maximum* ground cost along the best coupling rather than the sum:
  sensitive to the single worst excursion, which makes it stricter on
  pulse amplitude mismatches.
* **lag distance** — the minimum Euclidean distance over bounded integer
  shifts of one series against the other; a cheap shift-tolerant metric
  that (unlike DTW) cannot warp time non-uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.distance.preprocess import SERIES_BUDGET, align_pair, downsample

__all__ = ["frechet_distance", "lag_distance"]


def frechet_distance(
    left: np.ndarray,
    right: np.ndarray,
    *,
    budget: int = SERIES_BUDGET,
) -> float:
    """Discrete Fréchet distance with |.| ground cost.

    Classic Eiter-Mannila dynamic program, vectorized row-wise: the
    coupling cost is ``max`` along the path, minimized over couplings.
    """
    a = downsample(np.asarray(left, dtype=float), budget)
    b = downsample(np.asarray(right, dtype=float), budget)
    if a.size == 0 or b.size == 0:
        raise ValueError("Fréchet distance requires non-empty series")
    m = b.size
    previous = np.maximum.accumulate(np.abs(a[0] - b)).tolist()
    for i in range(1, a.size):
        cost = np.abs(a[i] - b).tolist()
        current = [max(previous[0], cost[0])]
        for j in range(1, m):
            reachable = min(previous[j], previous[j - 1], current[j - 1])
            current.append(max(cost[j], reachable))
        previous = current
    return float(previous[-1])


def lag_distance(
    left: np.ndarray,
    right: np.ndarray,
    *,
    budget: int = SERIES_BUDGET,
    max_lag_fraction: float = 0.2,
) -> float:
    """Minimum RMS difference over bounded integer shifts.

    The two series are aligned to a common length; one is slid against
    the other by up to ``max_lag_fraction`` of the length, and the best
    overlap's root-mean-square difference is returned.
    """
    a, b = align_pair(left, right, budget)
    n = a.size
    max_lag = max(int(max_lag_fraction * n), 1)
    best = float("inf")
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            left_part, right_part = a[lag:], b[: n - lag]
        else:
            left_part, right_part = a[: n + lag], b[-lag:]
        if left_part.size < max(n // 2, 1):
            continue
        rms = float(np.sqrt(np.mean((left_part - right_part) ** 2)))
        best = min(best, rms)
    return best
