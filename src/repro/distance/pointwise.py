"""Point-wise distance metrics: Euclidean, Manhattan, correlation.

These are the alternatives Abagnale evaluates against DTW in its
distance-metric study (§4.3, Figure 3).  Each aligns the two series to a
common length first; the Euclidean and Manhattan values are normalized by
series length so segment size does not dominate.
"""

from __future__ import annotations

import numpy as np

from repro.distance.preprocess import SERIES_BUDGET, align_pair

__all__ = ["euclidean_distance", "manhattan_distance", "correlation_distance"]


def euclidean_distance(
    left: np.ndarray, right: np.ndarray, *, budget: int = SERIES_BUDGET
) -> float:
    """Root-mean-square point-wise difference."""
    a, b = align_pair(left, right, budget)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def manhattan_distance(
    left: np.ndarray, right: np.ndarray, *, budget: int = SERIES_BUDGET
) -> float:
    """Mean absolute point-wise difference."""
    a, b = align_pair(left, right, budget)
    return float(np.mean(np.abs(a - b)))


def correlation_distance(
    left: np.ndarray, right: np.ndarray, *, budget: int = SERIES_BUDGET
) -> float:
    """``1 - Pearson correlation``, rescaled to [0, 2].

    Shape-only: invariant to affine scaling of either series, so it
    ignores constant-gain errors entirely but also cannot distinguish
    handlers that differ only in magnitude.
    """
    a, b = align_pair(left, right, budget)
    std_a = a.std()
    std_b = b.std()
    if std_a == 0.0 or std_b == 0.0:
        # A flat series correlates with nothing; maximal distance unless
        # both are flat at the same level.
        return 0.0 if np.allclose(a, b) else 2.0
    correlation = float(np.corrcoef(a, b)[0, 1])
    return 1.0 - correlation
