"""Trace-distance metrics (paper §4.3).

The optimization formulation needs a measurable distance between the
candidate's synthesized cwnd series and the observed one.  DTW is the
default; Euclidean, Manhattan and correlation distances back the §4.3
metric study (Figure 3).
"""

from repro.distance.base import (
    DEFAULT_METRIC,
    METRICS,
    DistanceMetric,
    get_metric,
)
from repro.distance.dtw import (
    band_width,
    dtw_distance,
    dtw_distance_batch,
    dtw_matrix,
    inflate_bound,
)
from repro.distance.frechet import frechet_distance, lag_distance
from repro.distance.lb import keogh_envelope, lb_keogh, lb_kim
from repro.distance.pointwise import (
    correlation_distance,
    euclidean_distance,
    manhattan_distance,
)
from repro.distance.preprocess import (
    SERIES_BUDGET,
    align_pair,
    downsample,
    normalize_scale,
)

__all__ = [
    "DEFAULT_METRIC",
    "METRICS",
    "DistanceMetric",
    "get_metric",
    "dtw_distance",
    "dtw_distance_batch",
    "dtw_matrix",
    "band_width",
    "inflate_bound",
    "lb_kim",
    "lb_keogh",
    "keogh_envelope",
    "frechet_distance",
    "lag_distance",
    "correlation_distance",
    "euclidean_distance",
    "manhattan_distance",
    "SERIES_BUDGET",
    "align_pair",
    "downsample",
    "normalize_scale",
]
