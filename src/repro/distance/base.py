"""Distance-metric registry.

A metric is any callable ``(left, right) -> float`` over two 1-D numpy
arrays.  The registry names the four metrics of the paper's §4.3 study so
that configuration (and Figure 3's sweep) can select them by string.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.distance.dtw import dtw_distance
from repro.distance.frechet import frechet_distance, lag_distance
from repro.distance.pointwise import (
    correlation_distance,
    euclidean_distance,
    manhattan_distance,
)
from repro.errors import ReproError

__all__ = ["DistanceMetric", "METRICS", "get_metric", "DEFAULT_METRIC"]


class DistanceMetric(Protocol):
    """Signature every distance metric satisfies."""

    def __call__(self, left: np.ndarray, right: np.ndarray) -> float: ...


#: The named metrics: the four of the §4.3 comparison plus the two
#: "additionally evaluated" alignment metrics (Fréchet, bounded-lag).
METRICS: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "dtw": dtw_distance,
    "euclidean": euclidean_distance,
    "manhattan": manhattan_distance,
    "correlation": correlation_distance,
    "frechet": frechet_distance,
    "lag": lag_distance,
}

#: The paper configures Abagnale with DTW "unless otherwise described".
DEFAULT_METRIC = "dtw"


def get_metric(name: str) -> Callable[[np.ndarray, np.ndarray], float]:
    """Look up a metric by name, raising on unknown names."""
    try:
        return METRICS[name]
    except KeyError:
        raise ReproError(
            f"unknown distance metric {name!r}; known: {sorted(METRICS)}"
        ) from None
