"""Series preprocessing shared by the distance metrics.

Distance metrics compare a *synthesized* cwnd series against the
*observed* one.  The two series are aligned per-ACK (replay produces one
value per trace ACK) but metrics such as Euclidean require equal lengths
and benefit from bounded size; DTW cost grows quadratically.  This module
provides down-sampling to a budget and scale normalization, both
deterministic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["downsample", "align_pair", "normalize_scale", "SERIES_BUDGET"]

#: Default maximum number of points a metric operates on.
SERIES_BUDGET = 256


def downsample(series: np.ndarray, budget: int = SERIES_BUDGET) -> np.ndarray:
    """Reduce *series* to at most *budget* points by uniform picking.

    Uniform index picking (rather than averaging) preserves the extremes
    of sawtooth and pulse patterns that distinguish CCAs.
    """
    series = np.asarray(series, dtype=float)
    if series.size <= budget:
        return series
    indices = np.linspace(0, series.size - 1, budget).round().astype(int)
    return series[indices]


def align_pair(
    left: np.ndarray, right: np.ndarray, budget: int = SERIES_BUDGET
) -> tuple[np.ndarray, np.ndarray]:
    """Down-sample both series to a common length (the smaller of the
    two lengths, capped at *budget*) for point-wise metrics."""
    target = min(len(left), len(right), budget)
    if target <= 0:
        raise ValueError("cannot align empty series")
    return downsample(np.asarray(left, float), target), downsample(
        np.asarray(right, float), target
    )


def normalize_scale(series: np.ndarray, mss: float) -> np.ndarray:
    """Express a cwnd series in segments (divide by MSS).

    Distances in segment units keep reported values in the same ballpark
    across environments, mirroring the paper's segment-scale plots.
    """
    return np.asarray(series, dtype=float) / float(mss)
