"""Dynamic Time Warping distance (Berndt & Clifford, KDD '94).

DTW is Abagnale's primary metric (§4.3): it is alignment-based, so the
temporal shifts that measurement noise introduces between a synthesized
trace and an observed one do not dominate the score.  The paper finds DTW
"remains correct for the widest range of constant error" among the
metrics considered.

The implementation is the classic O(n·m) dynamic program with an optional
Sakoe-Chiba band, vectorized row-by-row with numpy.  Cost is absolute
difference (L1 ground distance); the returned value is normalized by the
warping-path-length bound (n + m) so segments of different lengths are
comparable.

Storage is banded: the DP keeps two rolling length-(m+1) rows instead of
the full ``(n+1)×(m+1)`` matrix (:func:`dtw_matrix` can still materialize
the matrix for tests/debugging via ``return_matrix=True``), and
:func:`dtw_distance_batch` runs the same recurrence over a ``(K, n)``
stack of queries against one candidate in a single sweep, with per-lane
early abandonment — the kernel the batched scoring cascade feeds whole
replay matrices through.
"""

from __future__ import annotations

import numpy as np

from repro.distance.preprocess import SERIES_BUDGET, downsample

__all__ = [
    "dtw_distance",
    "dtw_distance_batch",
    "dtw_matrix",
    "band_width",
    "inflate_bound",
]

_INF = float("inf")

#: Slack applied by :func:`inflate_bound` — generous relative to the
#: float-summation error of a ~256-step DP (≈1e-10 relative), yet far
#: too small to let a genuinely worse candidate slip past a prune.
_BOUND_RELATIVE_SLACK = 1e-7
_BOUND_ABSOLUTE_SLACK = 1e-9


def band_width(n: int, m: int, band: float | None = 0.2) -> int:
    """Sakoe-Chiba half-width used by the DTW DP for sizes n, m.

    Also the contract the LB_Keogh envelope must honor: the DP only
    visits cells with ``|i - j| <= width``, so an envelope built with
    this reach lower-bounds the banded DTW.  The width always covers the
    diagonal slope difference (``abs(n - m) + 1``), which makes the
    ``(n, m)`` corner reachable — an infinite corner can then only mean
    the DP was abandoned by a ``bound``.
    """
    width = max(n, m) if band is None else max(int(band * max(n, m)), 2)
    return max(width, abs(n - m) + 1)


def inflate_bound(bound: float) -> float:
    """Add float-safety slack to an abandon threshold.

    Prunes compare *exact* quantities against thresholds derived from
    floating-point sums; inflating the threshold by far more than the
    accumulated rounding error guarantees a candidate that would tie or
    beat the incumbent is never abandoned (ranking identity), while a
    strictly worse one still prunes almost always.
    """
    return bound + abs(bound) * _BOUND_RELATIVE_SLACK + _BOUND_ABSOLUTE_SLACK


def _banded_cost(
    left: np.ndarray,
    right: np.ndarray,
    width: int,
    bound: float | None,
) -> float:
    """Corner total of the banded DP, storing only two rolling rows.

    Bit-identical to reading ``dtw_matrix(...)[n, m]``: each row is the
    same closed-form recurrence on the same floats; the only cells a row
    reads from its predecessor are ``[lo-1, hi]``, and the band edges
    ``lo`` / ``hi`` are non-decreasing in ``i``, so a two-buffer rotation
    with one explicit reset at ``curr[lo-1]`` (the cell a stale row
    ``i-2`` value could leak through) reproduces the full matrix's
    neighborhood exactly.  In the full matrix ``cost[i, lo-1]`` is never
    written for ``i >= 1`` (it sits left of the band), so the in-row
    ``min(running, cost[i, lo-1])`` term of the matrix recurrence is a
    no-op and is dropped here.
    """
    n, m = left.size, right.size
    prev = np.full(m + 1, _INF)
    prev[0] = 0.0
    curr = np.full(m + 1, _INF)
    with np.errstate(invalid="ignore"):
        for i in range(1, n + 1):
            lo = max(1, i - width)
            hi = min(m, i + width)
            row_cost = np.abs(left[i - 1] - right[lo - 1 : hi])
            best_prev = np.minimum(prev[lo - 1 : hi], prev[lo : hi + 1])
            prefix = np.add.accumulate(row_cost)
            shifted = np.empty_like(prefix)
            shifted[0] = 0.0
            shifted[1:] = prefix[:-1]
            running = np.minimum.accumulate(best_prev - shifted)
            row = prefix + running
            if i < n and bound is not None and not row.min() <= bound:
                # `not <=` rather than `>` so a NaN bound never abandons.
                # The final row is exempt: the matrix form writes the
                # corner before checking, so an abandonment there still
                # surfaces the exact corner value.
                return _INF
            curr[lo - 1] = _INF
            curr[lo : hi + 1] = row
            prev, curr = curr, prev
    return float(prev[m])


def dtw_matrix(
    left: np.ndarray,
    right: np.ndarray,
    *,
    band: float | None = 0.2,
    bound: float | None = None,
    return_matrix: bool = False,
):
    """Banded DTW DP: corner total, or the full cost matrix on request.

    By default returns the accumulated cost at the ``(n, m)`` corner as
    a float, computed with two rolling band rows — no ``(n+1)×(m+1)``
    allocation.  ``return_matrix=True`` materializes and returns the
    classic full matrix instead (tests and debugging only; the values
    are identical where the band visits).

    ``band`` is the Sakoe-Chiba band half-width as a fraction of the
    longer series; ``None`` disables banding.  When *bound* is given the
    DP is abandoned — the corner reported infinite — as soon as an
    entire row's running minimum exceeds it: every warping path visits
    at least one cell per row and costs are non-negative, so the row
    minimum lower-bounds the corner and abandonment is exact (a path
    with total cost ``<= bound`` is never lost).
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    n, m = left.size, right.size
    if n == 0 or m == 0:
        raise ValueError("DTW requires non-empty series")
    width = band_width(n, m, band)
    if not return_matrix:
        return _banded_cost(left, right, width, bound)

    cost = np.full((n + 1, m + 1), _INF)
    cost[0, 0] = 0.0
    with np.errstate(invalid="ignore"):
        for i in range(1, n + 1):
            lo = max(1, i - width)
            hi = min(m, i + width)
            row_cost = np.abs(left[i - 1] - right[lo - 1 : hi])
            diag = cost[i - 1, lo - 1 : hi]
            above = cost[i - 1, lo : hi + 1]
            best_prev = np.minimum(diag, above)
            # The row recurrence r_j = c_j + min(b_j, r_{j-1}) has the
            # closed form r_j = S_j + min(r_lo, min_{k<=j} (b_k -
            # S_{k-1})) with S the prefix sums of c — so the whole row
            # vectorizes as a cumulative sum plus a running minimum (no
            # Python inner loop).
            prefix = np.add.accumulate(row_cost)
            shifted = np.empty_like(prefix)
            shifted[0] = 0.0
            shifted[1:] = prefix[:-1]
            running = np.minimum.accumulate(best_prev - shifted)
            row = prefix + np.minimum(running, cost[i, lo - 1])
            cost[i, lo : hi + 1] = row
            if bound is not None and not row.min() <= bound:
                return cost
    return cost


def dtw_distance(
    left: np.ndarray,
    right: np.ndarray,
    *,
    band: float | None = 0.2,
    budget: int = SERIES_BUDGET,
    bound: float | None = None,
) -> float:
    """Normalized DTW distance between two series.

    Both series are down-sampled to *budget* points; the accumulated
    warping cost is divided by the path-length bound so different segment
    lengths score comparably.

    When *bound* is given (in normalized units), the DP may abandon once
    no path can finish within it, returning ``inf``; whenever the true
    distance is ``<= bound`` the exact distance is returned (the raw
    threshold is inflated by :func:`inflate_bound` so float rounding can
    never turn a would-be winner into a prune).
    """
    left = downsample(np.asarray(left, dtype=float), budget)
    right = downsample(np.asarray(right, dtype=float), budget)
    n, m = left.size, right.size
    if n == 0 or m == 0:
        raise ValueError("DTW requires non-empty series")
    width = band_width(n, m, band)
    if bound is not None and np.isfinite(bound):
        raw_bound = inflate_bound(bound * (n + m))
        total = _banded_cost(left, right, width, raw_bound)
        if total == _INF:
            # band_width keeps the corner reachable, so an infinite
            # corner here means the DP was abandoned: distance > bound.
            return _INF
        return float(total / (n + m))
    total = _banded_cost(left, right, width, None)
    if total == _INF:
        # Band too narrow for these lengths; fall back to an exact pass.
        total = _banded_cost(left, right, band_width(n, m, None), None)
    return float(total / (n + m))


def dtw_distance_batch(
    queries: np.ndarray,
    candidate: np.ndarray,
    *,
    band: float | None = 0.2,
    bounds: np.ndarray | None = None,
) -> np.ndarray:
    """Normalized DTW of every row of ``queries`` against ``candidate``.

    One banded DP sweep over a ``(K, n)`` lane stack: each row of the
    rolling ``(K, m+1)`` buffers evolves through exactly the float
    operations the scalar kernel applies to that lane alone (the
    accumulate/minimum ops act independently along ``axis=1``), so lane
    ``k``'s result is bit-identical to ``dtw_distance(queries[k],
    candidate, bound=bounds[k])`` on pre-downsampled inputs.

    *bounds* gives each lane its abandon threshold in normalized units
    (``inf`` lanes never abandon, matching the scalar no-bound path);
    abandoned lanes report ``inf`` and are compacted out of the sweep,
    so heavily pruned waves cost proportionally less.  Inputs are used
    as-is — callers downsample beforehand (the batched cascade already
    holds the downsampled replay matrix).
    """
    queries = np.asarray(queries, dtype=float)
    candidate = np.asarray(candidate, dtype=float)
    if queries.ndim != 2:
        raise ValueError("queries must be a (K, n) matrix")
    lanes, n = queries.shape
    m = candidate.size
    if lanes == 0:
        return np.empty(0)
    if n == 0 or m == 0:
        raise ValueError("DTW requires non-empty series")
    width = band_width(n, m, band)
    if bounds is None:
        raw = np.full(lanes, _INF)
    else:
        scaled = np.asarray(bounds, dtype=float) * (n + m)
        # Vectorized inflate_bound; non-finite thresholds stay inf.
        raw = np.where(
            np.isfinite(scaled),
            scaled
            + np.abs(scaled) * _BOUND_RELATIVE_SLACK
            + _BOUND_ABSOLUTE_SLACK,
            _INF,
        )
    result = np.full(lanes, _INF)
    alive = np.arange(lanes)
    prev = np.full((lanes, m + 1), _INF)
    prev[:, 0] = 0.0
    curr = np.full((lanes, m + 1), _INF)
    with np.errstate(invalid="ignore"):
        for i in range(1, n + 1):
            lo = max(1, i - width)
            hi = min(m, i + width)
            row_cost = np.abs(
                queries[alive, i - 1][:, None] - candidate[None, lo - 1 : hi]
            )
            best_prev = np.minimum(
                prev[:, lo - 1 : hi], prev[:, lo : hi + 1]
            )
            prefix = np.add.accumulate(row_cost, axis=1)
            shifted = np.empty_like(prefix)
            shifted[:, 0] = 0.0
            shifted[:, 1:] = prefix[:, :-1]
            running = np.minimum.accumulate(best_prev - shifted, axis=1)
            row = prefix + running
            # Scalar semantics per lane: a finite threshold abandons when
            # ``not row.min() <= bound`` (NaN rows abandon); an infinite
            # one never does (the scalar no-bound path has no check),
            # and the final row is exempt like the scalar kernel's.
            row_min = row.min(axis=1)
            lane_raw = raw[alive]
            abandon = (
                np.isfinite(lane_raw) & ~(row_min <= lane_raw)
                if i < n
                else np.zeros(alive.size, dtype=bool)
            )
            if abandon.any():
                keep = ~abandon
                alive = alive[keep]
                if alive.size == 0:
                    return result
                prev = prev[keep]
                curr = curr[keep]
                row = row[keep]
            curr[:, lo - 1] = _INF
            curr[:, lo : hi + 1] = row
            prev, curr = curr, prev
    result[alive] = prev[:, m]
    return result / (n + m)
