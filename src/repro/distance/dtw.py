"""Dynamic Time Warping distance (Berndt & Clifford, KDD '94).

DTW is Abagnale's primary metric (§4.3): it is alignment-based, so the
temporal shifts that measurement noise introduces between a synthesized
trace and an observed one do not dominate the score.  The paper finds DTW
"remains correct for the widest range of constant error" among the
metrics considered.

The implementation is the classic O(n·m) dynamic program with an optional
Sakoe-Chiba band, vectorized row-by-row with numpy.  Cost is absolute
difference (L1 ground distance); the returned value is normalized by the
warping-path-length bound (n + m) so segments of different lengths are
comparable.
"""

from __future__ import annotations

import numpy as np

from repro.distance.preprocess import SERIES_BUDGET, downsample

__all__ = ["dtw_distance", "dtw_matrix", "band_width", "inflate_bound"]

_INF = float("inf")

#: Slack applied by :func:`inflate_bound` — generous relative to the
#: float-summation error of a ~256-step DP (≈1e-10 relative), yet far
#: too small to let a genuinely worse candidate slip past a prune.
_BOUND_RELATIVE_SLACK = 1e-7
_BOUND_ABSOLUTE_SLACK = 1e-9


def band_width(n: int, m: int, band: float | None = 0.2) -> int:
    """Sakoe-Chiba half-width used by :func:`dtw_matrix` for sizes n, m.

    Also the contract the LB_Keogh envelope must honor: the DP only
    visits cells with ``|i - j| <= width``, so an envelope built with
    this reach lower-bounds the banded DTW.  The width always covers the
    diagonal slope difference (``abs(n - m) + 1``), which makes the
    ``(n, m)`` corner reachable — an infinite corner can then only mean
    the DP was abandoned by a ``bound``.
    """
    width = max(n, m) if band is None else max(int(band * max(n, m)), 2)
    return max(width, abs(n - m) + 1)


def inflate_bound(bound: float) -> float:
    """Add float-safety slack to an abandon threshold.

    Prunes compare *exact* quantities against thresholds derived from
    floating-point sums; inflating the threshold by far more than the
    accumulated rounding error guarantees a candidate that would tie or
    beat the incumbent is never abandoned (ranking identity), while a
    strictly worse one still prunes almost always.
    """
    return bound + abs(bound) * _BOUND_RELATIVE_SLACK + _BOUND_ABSOLUTE_SLACK


def dtw_matrix(
    left: np.ndarray,
    right: np.ndarray,
    *,
    band: float | None = 0.2,
    bound: float | None = None,
) -> np.ndarray:
    """Return the (n+1)x(m+1) accumulated-cost matrix of the DTW DP.

    ``band`` is the Sakoe-Chiba band half-width as a fraction of the
    longer series; ``None`` disables banding.  When *bound* is given the
    DP is abandoned — leaving the corner infinite — as soon as an entire
    row's running minimum exceeds it: every warping path visits at least
    one cell per row and costs are non-negative, so the row minimum
    lower-bounds the corner and abandonment is exact (a path with total
    cost ``<= bound`` is never lost).
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    n, m = left.size, right.size
    if n == 0 or m == 0:
        raise ValueError("DTW requires non-empty series")
    width = band_width(n, m, band)

    cost = np.full((n + 1, m + 1), _INF)
    cost[0, 0] = 0.0
    with np.errstate(invalid="ignore"):
        for i in range(1, n + 1):
            lo = max(1, i - width)
            hi = min(m, i + width)
            row_cost = np.abs(left[i - 1] - right[lo - 1 : hi])
            diag = cost[i - 1, lo - 1 : hi]
            above = cost[i - 1, lo : hi + 1]
            best_prev = np.minimum(diag, above)
            # The row recurrence r_j = c_j + min(b_j, r_{j-1}) has the
            # closed form r_j = S_j + min(r_lo, min_{k<=j} (b_k -
            # S_{k-1})) with S the prefix sums of c — so the whole row
            # vectorizes as a cumulative sum plus a running minimum (no
            # Python inner loop).
            prefix = np.add.accumulate(row_cost)
            shifted = np.empty_like(prefix)
            shifted[0] = 0.0
            shifted[1:] = prefix[:-1]
            running = np.minimum.accumulate(best_prev - shifted)
            row = prefix + np.minimum(running, cost[i, lo - 1])
            cost[i, lo : hi + 1] = row
            if bound is not None and not row.min() <= bound:
                # `not <=` rather than `>` so a NaN bound never abandons.
                return cost
    return cost


def dtw_distance(
    left: np.ndarray,
    right: np.ndarray,
    *,
    band: float | None = 0.2,
    budget: int = SERIES_BUDGET,
    bound: float | None = None,
) -> float:
    """Normalized DTW distance between two series.

    Both series are down-sampled to *budget* points; the accumulated
    warping cost is divided by the path-length bound so different segment
    lengths score comparably.

    When *bound* is given (in normalized units), the DP may abandon once
    no path can finish within it, returning ``inf``; whenever the true
    distance is ``<= bound`` the exact distance is returned (the raw
    threshold is inflated by :func:`inflate_bound` so float rounding can
    never turn a would-be winner into a prune).
    """
    left = downsample(left, budget)
    right = downsample(right, budget)
    if bound is not None and np.isfinite(bound):
        raw_bound = inflate_bound(bound * (left.size + right.size))
        cost = dtw_matrix(left, right, band=band, bound=raw_bound)
        total = cost[left.size, right.size]
        if total == _INF:
            # band_width keeps the corner reachable, so an infinite
            # corner here means the DP was abandoned: distance > bound.
            return _INF
        return float(total / (left.size + right.size))
    cost = dtw_matrix(left, right, band=band)
    total = cost[left.size, right.size]
    if total == _INF:
        # Band too narrow for these lengths; fall back to an exact pass.
        cost = dtw_matrix(left, right, band=None)
        total = cost[left.size, right.size]
    return float(total / (left.size + right.size))
