"""Dynamic Time Warping distance (Berndt & Clifford, KDD '94).

DTW is Abagnale's primary metric (§4.3): it is alignment-based, so the
temporal shifts that measurement noise introduces between a synthesized
trace and an observed one do not dominate the score.  The paper finds DTW
"remains correct for the widest range of constant error" among the
metrics considered.

The implementation is the classic O(n·m) dynamic program with an optional
Sakoe-Chiba band, vectorized row-by-row with numpy.  Cost is absolute
difference (L1 ground distance); the returned value is normalized by the
warping-path-length bound (n + m) so segments of different lengths are
comparable.
"""

from __future__ import annotations

import numpy as np

from repro.distance.preprocess import SERIES_BUDGET, downsample

__all__ = ["dtw_distance", "dtw_matrix"]

_INF = float("inf")


def dtw_matrix(
    left: np.ndarray, right: np.ndarray, *, band: float | None = 0.2
) -> np.ndarray:
    """Return the (n+1)x(m+1) accumulated-cost matrix of the DTW DP.

    ``band`` is the Sakoe-Chiba band half-width as a fraction of the
    longer series; ``None`` disables banding.
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    n, m = left.size, right.size
    if n == 0 or m == 0:
        raise ValueError("DTW requires non-empty series")
    width = max(n, m) if band is None else max(int(band * max(n, m)), 2)
    # The band must at least cover the diagonal slope difference.
    width = max(width, abs(n - m) + 1)

    cost = np.full((n + 1, m + 1), _INF)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        lo = max(1, i - width)
        hi = min(m, i + width)
        row_cost = np.abs(left[i - 1] - right[lo - 1 : hi])
        diag = cost[i - 1, lo - 1 : hi]
        above = cost[i - 1, lo : hi + 1]
        best_prev = np.minimum(diag, above)
        # The row recurrence r_j = c_j + min(b_j, r_{j-1}) has the closed
        # form r_j = S_j + min(r_lo, min_{k<=j} (b_k - S_{k-1})) with
        # S the prefix sums of c — so the whole row vectorizes as a
        # cumulative sum plus a running minimum (no Python inner loop).
        prefix = np.cumsum(row_cost)
        shifted = np.empty_like(prefix)
        shifted[0] = 0.0
        shifted[1:] = prefix[:-1]
        with np.errstate(invalid="ignore"):
            running = np.minimum.accumulate(best_prev - shifted)
            boundary = cost[i, lo - 1]
            cost[i, lo : hi + 1] = prefix + np.minimum(running, boundary)
    return cost


def dtw_distance(
    left: np.ndarray,
    right: np.ndarray,
    *,
    band: float | None = 0.2,
    budget: int = SERIES_BUDGET,
) -> float:
    """Normalized DTW distance between two series.

    Both series are down-sampled to *budget* points; the accumulated
    warping cost is divided by the path-length bound so different segment
    lengths score comparably.
    """
    left = downsample(left, budget)
    right = downsample(right, budget)
    cost = dtw_matrix(left, right, band=band)
    total = cost[left.size, right.size]
    if total == _INF:
        # Band too narrow for these lengths; fall back to an exact pass.
        cost = dtw_matrix(left, right, band=None)
        total = cost[left.size, right.size]
    return float(total / (left.size + right.size))
