"""Cheap lower bounds for DTW (Kim et al., ICDE '01; Keogh, VLDB '02).

The early-abandon cascade scores a candidate in three stages of rising
cost: LB_Kim (O(1)) → LB_Keogh (O(n)) → the banded DTW DP (O(n·w)).
Each stage returns a value that provably never exceeds the **raw** DTW
warping cost (the un-normalized corner of the accumulated-cost matrix),
so a candidate whose lower bound already exceeds the best-so-far
threshold can be discarded without running the stages above it — the
surviving minimum is unchanged, which is what keeps batched rankings
bit-identical to the scalar reference path.

Validity sketches:

* **LB_Kim** — every warping path starts at cell ``(1, 1)`` and ends at
  ``(n, m)``, and cell costs are non-negative, so the endpoint costs
  ``|l[0] - r[0]|`` (plus ``|l[-1] - r[-1]|`` when the cells are
  distinct) already lower-bound the total.
* **LB_Keogh** — the banded DP only visits cells with ``|i - j| <= w``
  (:func:`repro.distance.dtw.band_width`), so an upper/lower envelope of
  the candidate series with reach ``w`` brackets every value the query's
  point ``i`` can be matched against; each row is visited at least once,
  so summing each point's distance-to-envelope lower-bounds the total.

NaN inputs poison the bounds into NaN, whose comparisons are all false —
a NaN series is therefore never pruned by a bound, preserving whatever
the full metric would have done with it.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["lb_kim", "keogh_envelope", "keogh_envelope_batch", "lb_keogh"]


def lb_kim(left: np.ndarray, right: np.ndarray) -> float:
    """O(1) endpoint lower bound on the raw DTW cost of two series."""
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    if left.size == 0 or right.size == 0:
        raise ValueError("LB_Kim requires non-empty series")
    bound = abs(float(left[0]) - float(right[0]))
    if left.size > 1 or right.size > 1:
        # Start and end cells are distinct, so both contribute.
        bound += abs(float(left[-1]) - float(right[-1]))
    return bound


def keogh_envelope(
    series: np.ndarray, width: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sliding min/max envelope of *series* with reach *width*.

    Returns ``(lower, upper)`` where ``lower[i]``/``upper[i]`` bracket
    every value of ``series[i - width : i + width + 1]``.  Pass the DP's
    :func:`~repro.distance.dtw.band_width` so the envelope covers every
    cell the banded DTW may visit.
    """
    series = np.asarray(series, dtype=float)
    size = series.size
    if size == 0:
        raise ValueError("cannot build an envelope of an empty series")
    reach = min(max(int(width), 0), size - 1)
    window = 2 * reach + 1
    upper = sliding_window_view(
        np.pad(series, reach, constant_values=-np.inf), window
    ).max(axis=1)
    lower = sliding_window_view(
        np.pad(series, reach, constant_values=np.inf), window
    ).min(axis=1)
    return lower, upper


def keogh_envelope_batch(
    queries: np.ndarray, width: int
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`keogh_envelope` of a ``(K, m)`` matrix at once.

    Used by the batched prescreen to run LB_Keogh in the *reverse*
    direction (envelope over each candidate row, checked against the
    observed series) — the maximum of both directions is still a valid
    lower bound, and the reverse one often separates candidates the
    forward one cannot.
    """
    size = queries.shape[1]
    if size == 0:
        raise ValueError("cannot build an envelope of an empty series")
    reach = min(max(int(width), 0), size - 1)
    window = 2 * reach + 1
    pad = ((0, 0), (reach, reach))
    upper = sliding_window_view(
        np.pad(queries, pad, constant_values=-np.inf), window, axis=1
    ).max(axis=2)
    lower = sliding_window_view(
        np.pad(queries, pad, constant_values=np.inf), window, axis=1
    ).min(axis=2)
    return lower, upper


def lb_keogh(
    query: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> float:
    """O(n) envelope lower bound on the raw banded-DTW cost.

    *query* must have the same length as the series the envelope was
    built from (the scorer downsamples both sides to one budget), and
    the envelope's reach must be at least the DP's band width.
    """
    query = np.asarray(query, dtype=float)
    if query.size != lower.size:
        raise ValueError(
            f"query size {query.size} != envelope size {lower.size}"
        )
    above = query - upper
    below = lower - query
    with np.errstate(invalid="ignore"):
        return float(
            np.where(above > 0.0, above, 0.0).sum()
            + np.where(below > 0.0, below, 0.0).sum()
        )
