"""A recursive-descent parser for the DSL's textual syntax.

The grammar mirrors Listing 1 of the paper, with conventional operator
precedence (ternary < comparison < additive < multiplicative < atoms)::

    num    := ternary
    ternary:= bool '?' num ':' num | additive
    bool   := additive ('<' | '>') additive
            | additive '%' additive ('==' | '=') '0'
    atom   := NUMBER | IDENT | 'cube' '(' num ')' | 'cbrt' '(' num ')'
            | 'c' INT (a hole, e.g. ``c0``) | '(' num ')' | '-' atom

Identifiers resolve to macros when registered in
:mod:`repro.dsl.macros`, otherwise to signals.  The parser exists so that
expert handlers (paper Table 2) and tests can be written legibly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.dsl import ast
from repro.dsl.macros import MACROS
from repro.errors import ParseError

__all__ = ["parse"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*|\.\d+|\d+)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>==|[-+*/%<>?:()=]))"
)


@dataclass
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            if source[position:].strip() == "":
                break
            raise ParseError(
                f"unexpected character {source[position]!r} at {position}"
            )
        position = match.end()
        for kind in ("number", "ident", "op"):
            text = match.group(kind)
            if text is not None:
                tokens.append(_Token(kind, text, match.start()))
                break
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = _tokenize(source)
        self.index = 0

    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self.source!r}")
        self.index += 1
        return token

    def expect(self, text: str) -> None:
        token = self.advance()
        if token.text != text:
            raise ParseError(
                f"expected {text!r} but found {token.text!r} "
                f"at {token.position} in {self.source!r}"
            )

    def at(self, text: str) -> bool:
        token = self.peek()
        return token is not None and token.text == text

    # Grammar ---------------------------------------------------------

    def parse_num(self) -> ast.NumExpr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.NumExpr:
        left = self.parse_additive()
        token = self.peek()
        if token is None or token.text not in ("<", ">", "%"):
            return left
        pred = self.parse_bool_tail(left)
        self.expect("?")
        then = self.parse_num()
        self.expect(":")
        otherwise = self.parse_num()
        return ast.Cond(pred, then, otherwise)

    def parse_bool_tail(self, left: ast.NumExpr) -> ast.BoolExpr:
        token = self.advance()
        if token.text in ("<", ">"):
            right = self.parse_additive()
            return ast.Cmp(token.text, left, right)
        if token.text == "%":
            modulus = self.parse_additive()
            eq = self.advance()
            if eq.text not in ("==", "="):
                raise ParseError(f"expected '==' after '%', got {eq.text!r}")
            zero = self.advance()
            if zero.text != "0":
                raise ParseError("the modular test must compare against 0")
            return ast.ModEq(left, modulus)
        raise ParseError(f"expected a boolean operator, got {token.text!r}")

    def parse_additive(self) -> ast.NumExpr:
        expr = self.parse_multiplicative()
        while self.at("+") or self.at("-"):
            op = self.advance().text
            right = self.parse_multiplicative()
            expr = ast.BinOp(op, expr, right)
        return expr

    def parse_multiplicative(self) -> ast.NumExpr:
        expr = self.parse_atom()
        while self.at("*") or self.at("/"):
            op = self.advance().text
            right = self.parse_atom()
            expr = ast.BinOp(op, expr, right)
        return expr

    def parse_atom(self) -> ast.NumExpr:
        token = self.advance()
        if token.text == "(":
            # Either a parenthesized number or a parenthesized boolean that
            # heads a ternary, e.g. ``(a < b) ? x : y``.
            inner = self.parse_ternary_or_bool_group()
            return inner
        if token.text == "-":
            # A negated literal is a negative constant (so expressions
            # like ``-0.7 * reno_inc`` stay irreducible); anything else
            # desugars to ``0 - expr``.
            follower = self.peek()
            if follower is not None and follower.kind == "number":
                self.advance()
                return ast.Const(-float(follower.text))
            inner = self.parse_atom()
            return ast.BinOp("-", ast.Const(0.0), inner)
        if token.kind == "number":
            return ast.Const(float(token.text))
        if token.kind == "ident":
            name = token.text
            if name in ("cube", "cbrt"):
                self.expect("(")
                arg = self.parse_num()
                self.expect(")")
                return ast.Cube(arg) if name == "cube" else ast.Cbrt(arg)
            hole = re.fullmatch(r"c(\d+)", name)
            if hole is not None:
                return ast.Const(None, int(hole.group(1)))
            if name in MACROS:
                return ast.Macro(name)
            return ast.Signal(name)
        raise ParseError(
            f"unexpected token {token.text!r} at {token.position} "
            f"in {self.source!r}"
        )

    def parse_ternary_or_bool_group(self) -> ast.NumExpr:
        """Parse the inside of '(...)', allowing a trailing '? a : b'."""
        left = self.parse_additive()
        token = self.peek()
        if token is not None and token.text in ("<", ">", "%"):
            pred = self.parse_bool_tail(left)
            self.expect(")")
            self.expect("?")
            then = self.parse_num()
            self.expect(":")
            otherwise = self.parse_num()
            return ast.Cond(pred, then, otherwise)
        if token is not None and token.text == "?":
            raise ParseError("'?' must follow a boolean, not a number")
        self.expect(")")
        # A parenthesized number may still start a ternary via an outer
        # comparison, handled by the caller's precedence climbing.
        return left


def parse(source: str) -> ast.NumExpr:
    """Parse *source* into a numeric DSL AST.

    Raises :class:`~repro.errors.ParseError` on malformed input or
    trailing tokens.
    """
    parser = _Parser(source)
    expr = parser.parse_num()
    leftover = parser.peek()
    if leftover is not None:
        raise ParseError(
            f"trailing input at {leftover.position}: {leftover.text!r} "
            f"in {source!r}"
        )
    return expr
