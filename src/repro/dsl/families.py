"""Curated sub-DSLs per CCA family (paper §3.3, Listing 1).

Including every known congestion signal in one DSL makes the search space
intractable, so Abagnale is invoked with a *family* sub-DSL chosen from a
classifier hint.  The families mirror the paper:

* ``reno``   — the base DSL: window/ack/loss-timing signals, arithmetic,
  conditionals, and the ``reno_inc`` macro.
* ``cubic``  — base DSL plus cube/cube-root and the ``wmax`` state signal
  (teal extensions in Listing 1).  Unit checking is disabled, exactly as
  the paper does for Cubic (§5.5).
* ``delay``  — base DSL plus the rate/delay signals (olive extensions):
  RTT, min/max RTT, ACK rate, RTT gradient, and the ``rtts_since_loss``
  macro used by BBR-style handlers.
* ``vegas``  — the delay DSL plus the ``vegas_diff`` and ``htcp_diff``
  macros used by Vegas/Veno/YeAH/H-TCP/Illinois-style handlers.

Depth/node-capped variants (``delay``-7, ``delay``-11, ``vegas``-11) back
the Figure 6 experiment and are built with :func:`with_budget`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dsl.macros import MACROS
from repro.errors import DslError

__all__ = [
    "DslSpec",
    "RENO_DSL",
    "CUBIC_DSL",
    "DELAY_DSL",
    "VEGAS_DSL",
    "FAMILIES",
    "family",
    "with_budget",
    "dsl_for_classifier_label",
    "DEFAULT_CONSTANT_POOL",
]

#: Default placeholder constant values for hole concretization (§4.2):
#: a small set of values observed in known CCAs' increase/decrease rules.
DEFAULT_CONSTANT_POOL: tuple[float, ...] = (
    0.16,
    0.2,
    0.25,
    0.3,
    0.35,
    0.37,
    0.5,
    0.68,
    0.7,
    1.0,
    1.3,
    2.0,
    2.05,
    2.6,
    2.7,
    3.0,
    5.0,
    8.0,
)

_BASE_SIGNALS = ("cwnd", "mss", "acked_bytes", "time_since_loss")
_DELAY_SIGNALS = ("rtt", "min_rtt", "max_rtt", "ack_rate", "rtt_gradient")
_BASE_OPERATORS = ("+", "-", "*", "/", "cond", "cmp", "modeq")


@dataclass(frozen=True)
class DslSpec:
    """A sub-DSL: the component set and search budget for one invocation.

    ``operators`` uses the discriminator tokens of
    :func:`repro.dsl.ast.operators_used`: the four arithmetic tokens plus
    ``cond``/``cmp``/``modeq``/``cube``/``cbrt``.
    """

    name: str
    signals: tuple[str, ...]
    operators: tuple[str, ...]
    macros: tuple[str, ...]
    constant_pool: tuple[float, ...] = DEFAULT_CONSTANT_POOL
    max_depth: int = 4
    max_nodes: int = 9
    strict_units: bool = True

    def __post_init__(self) -> None:
        for macro in self.macros:
            if macro not in MACROS:
                raise DslError(f"DSL {self.name!r}: unknown macro {macro!r}")
        if self.max_depth < 1 or self.max_nodes < 1:
            raise DslError(f"DSL {self.name!r}: budgets must be positive")

    @property
    def component_count(self) -> int:
        """Number of distinct DSL elements (paper counts ~11 for Reno)."""
        return len(self.signals) + len(self.operators) + len(self.macros) + 1

    @property
    def leaves(self) -> tuple[str, ...]:
        """All leaf component names: signals then macros."""
        return self.signals + self.macros


RENO_DSL = DslSpec(
    name="reno",
    signals=_BASE_SIGNALS,
    operators=_BASE_OPERATORS,
    macros=("reno_inc",),
)

CUBIC_DSL = DslSpec(
    name="cubic",
    signals=_BASE_SIGNALS + ("wmax",),
    operators=_BASE_OPERATORS + ("cube", "cbrt"),
    macros=("reno_inc",),
    max_depth=5,
    max_nodes=11,
    # The paper runs Cubic with unit constraints disabled because the
    # integer-unit encoding cannot check cube roots (§5.5).
    strict_units=False,
)

DELAY_DSL = DslSpec(
    name="delay",
    signals=_BASE_SIGNALS + _DELAY_SIGNALS,
    operators=_BASE_OPERATORS,
    macros=("reno_inc", "rtts_since_loss"),
    max_depth=4,
    max_nodes=9,
)

VEGAS_DSL = DslSpec(
    name="vegas",
    signals=_BASE_SIGNALS + _DELAY_SIGNALS,
    operators=_BASE_OPERATORS,
    macros=("reno_inc", "rtts_since_loss", "vegas_diff", "htcp_diff"),
    max_depth=5,
    max_nodes=11,
)

#: Registry of the built-in families, keyed by family name.
FAMILIES: dict[str, DslSpec] = {
    spec.name: spec for spec in (RENO_DSL, CUBIC_DSL, DELAY_DSL, VEGAS_DSL)
}


def family(name: str) -> DslSpec:
    """Look up a built-in family DSL by name."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise DslError(
            f"unknown DSL family {name!r}; known: {sorted(FAMILIES)}"
        ) from None


def with_budget(
    spec: DslSpec, *, max_depth: int | None = None, max_nodes: int | None = None
) -> DslSpec:
    """Return *spec* with a different search budget (e.g. Delay-7, Vegas-11).

    The paper names such variants by their node cap: ``Delay-11`` is the
    delay DSL constrained to 11 AST nodes.
    """
    updates: dict[str, object] = {}
    if max_depth is not None:
        updates["max_depth"] = max_depth
    if max_nodes is not None:
        updates["max_nodes"] = max_nodes
        updates["name"] = f"{spec.name}-{max_nodes}"
    return replace(spec, **updates)


#: Classifier label -> family DSL, following the paper's §5.1 methodology:
#: Gordon/CCAnalyzer labels hint which family sub-DSL to search.
_LABEL_TO_FAMILY: dict[str, str] = {
    "reno": "reno",
    "westwood": "reno",
    "scalable": "reno",
    "lp": "vegas",
    "bbr": "delay",
    "hybla": "delay",
    "vegas": "vegas",
    "veno": "vegas",
    "nv": "vegas",
    "yeah": "vegas",
    "htcp": "vegas",
    "illinois": "vegas",
    "cdg": "vegas",
    "cubic": "cubic",
    "bic": "cubic",
    "highspeed": "cubic",
}


def dsl_for_classifier_label(label: str, *, fallback: str = "delay") -> DslSpec:
    """Map a classifier output label to the sub-DSL Abagnale should search.

    Unknown labels fall back to the delay DSL, the most general family
    (the paper similarly picks DSLs from the classifier's closest-CCA
    hint when the output is "Unknown").
    """
    return family(_LABEL_TO_FAMILY.get(label.lower(), fallback))
