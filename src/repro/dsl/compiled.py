"""Compilation of DSL expressions to Python functions.

Handler replay (§3.1) evaluates a candidate expression once per ACK over
thousands of ACKs and thousands of candidates — the synthesis hot loop.
The tree-walking evaluator in :mod:`repro.dsl.evaluate` costs tens of
microseconds per call; this module compiles an expression once into a
plain Python function (via ``compile``/``exec`` of generated source)
with **identical semantics**, including the evaluator's per-operation
saturation, safe division, and the tolerant modular test.

:class:`CompiledHandler` also exposes the ordered tuple of signals the
expression reads, so the replay loop can bind trace columns positionally
and avoid building a dict per ACK.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.dsl import ast
from repro.dsl.evaluate import MODEQ_TOLERANCE, _DIV_EPSILON, _VALUE_CAP
from repro.dsl.macros import expand_macros
from repro.errors import EvaluationError

__all__ = ["CompiledHandler", "compile_handler"]


def _clamp(value: float) -> float:
    if value != value:  # NaN
        return _VALUE_CAP
    if value > _VALUE_CAP:
        return _VALUE_CAP
    if value < -_VALUE_CAP:
        return -_VALUE_CAP
    return value


def _div(left: float, right: float) -> float:
    if abs(right) < _DIV_EPSILON:
        return _VALUE_CAP if left >= 0 else -_VALUE_CAP
    return _clamp(left / right)


def _cbrt(value: float) -> float:
    return _clamp(math.copysign(abs(value) ** (1.0 / 3.0), value))


def _modeq(value: float, modulus: float) -> bool:
    if abs(modulus) < _DIV_EPSILON:
        return False
    remainder = math.fmod(abs(value), abs(modulus))
    tolerance = MODEQ_TOLERANCE * abs(modulus)
    return remainder <= tolerance or abs(modulus) - remainder <= tolerance


_HELPERS = {
    "_clamp": _clamp,
    "_div": _div,
    "_cbrt": _cbrt,
    "_modeq": _modeq,
}


def _emit(expr: ast.Expr, names: list[str]) -> str:
    """Emit a Python expression string; collect signal names into *names*."""
    if isinstance(expr, ast.Const):
        if expr.is_hole:
            raise EvaluationError(
                f"cannot compile a sketch: hole c{expr.hole_id} is unfilled"
            )
        return repr(float(expr.value))
    if isinstance(expr, ast.Signal):
        if expr.name not in names:
            names.append(expr.name)
        return f"_s_{expr.name}"
    if isinstance(expr, ast.BinOp):
        left = _emit(expr.left, names)
        right = _emit(expr.right, names)
        if expr.op == "/":
            return f"_div({left}, {right})"
        return f"_clamp(({left}) {expr.op} ({right}))"
    if isinstance(expr, ast.Cond):
        pred = _emit(expr.pred, names)
        then = _emit(expr.then, names)
        otherwise = _emit(expr.otherwise, names)
        return f"(({then}) if ({pred}) else ({otherwise}))"
    if isinstance(expr, ast.Cube):
        return f"_clamp(({_emit(expr.arg, names)}) ** 3)"
    if isinstance(expr, ast.Cbrt):
        return f"_cbrt({_emit(expr.arg, names)})"
    if isinstance(expr, ast.Cmp):
        left = _emit(expr.left, names)
        right = _emit(expr.right, names)
        return f"(({left}) {expr.op} ({right}))"
    if isinstance(expr, ast.ModEq):
        return f"_modeq({_emit(expr.left, names)}, {_emit(expr.right, names)})"
    raise EvaluationError(f"cannot compile node {type(expr).__name__}")


@dataclass(frozen=True)
class CompiledHandler:
    """A handler compiled to a positional Python function.

    ``signals`` is the ordered tuple of signal names the function reads;
    ``fn`` takes exactly those values (floats), in order, and returns the
    next window.  :meth:`call_env` offers the dict-based interface of the
    interpreting evaluator for drop-in use.
    """

    signals: tuple[str, ...]
    fn: Callable[..., float]
    source: str

    def call_env(self, env: Mapping[str, float]) -> float:
        try:
            values = [float(env[name]) for name in self.signals]
        except KeyError as missing:
            raise EvaluationError(
                f"signal {missing.args[0]!r} missing from environment"
            ) from None
        return self.fn(*values)

    def __call__(self, *values: float) -> float:
        return self.fn(*values)


def compile_handler(expr: ast.NumExpr) -> CompiledHandler:
    """Compile *expr* (macros expanded) into a :class:`CompiledHandler`.

    The compiled function agrees with
    :func:`repro.dsl.evaluate.evaluate` on every input (enforced by
    property tests), but runs roughly an order of magnitude faster.
    """
    expanded = expand_macros(expr)
    names: list[str] = []
    body = _emit(expanded, names)
    params = ", ".join(f"_s_{name}" for name in names)
    source = f"def _handler({params}):\n    return {body}\n"
    namespace: dict[str, object] = dict(_HELPERS)
    exec(compile(source, "<compiled-handler>", "exec"), namespace)
    return CompiledHandler(
        signals=tuple(names),
        fn=namespace["_handler"],  # type: ignore[arg-type]
        source=source,
    )
