"""Compilation of DSL expressions to Python functions.

Handler replay (§3.1) evaluates a candidate expression once per ACK over
thousands of ACKs and thousands of candidates — the synthesis hot loop.
The tree-walking evaluator in :mod:`repro.dsl.evaluate` costs tens of
microseconds per call; this module compiles an expression once into a
plain Python function (via ``compile``/``exec`` of generated source)
with **identical semantics**, including the evaluator's per-operation
saturation, safe division, and the tolerant modular test.

:class:`CompiledHandler` also exposes the ordered tuple of signals the
expression reads, so the replay loop can bind trace columns positionally
and avoid building a dict per ACK.

:func:`compile_sketch_vector` is the batched backend: it compiles a
*sketch* (holes allowed) once into a numpy function over K-wide lane
vectors, one lane per pool concretization, so a single per-ACK call
replaces K scalar calls.  The vector helpers reproduce the scalar
saturation semantics elementwise — including ``np.float_power`` for
``Cube``, the one operation where numpy's default ``**`` fast-path
(``x*x*x`` for small integer exponents) is *not* bit-identical to
Python's libm ``pow`` — so batched replay matches scalar replay bit for
bit (enforced by property tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.dsl import ast
from repro.dsl.evaluate import MODEQ_TOLERANCE, _DIV_EPSILON, _VALUE_CAP
from repro.dsl.macros import expand_macros
from repro.errors import EvaluationError

__all__ = [
    "CompiledHandler",
    "compile_handler",
    "CompiledVectorSketch",
    "compile_sketch_vector",
]


def _clamp(value: float) -> float:
    if value != value:  # NaN
        return _VALUE_CAP
    if value > _VALUE_CAP:
        return _VALUE_CAP
    if value < -_VALUE_CAP:
        return -_VALUE_CAP
    return value


def _div(left: float, right: float) -> float:
    if abs(right) < _DIV_EPSILON:
        return _VALUE_CAP if left >= 0 else -_VALUE_CAP
    return _clamp(left / right)


def _cbrt(value: float) -> float:
    return _clamp(math.copysign(abs(value) ** (1.0 / 3.0), value))


def _modeq(value: float, modulus: float) -> bool:
    if abs(modulus) < _DIV_EPSILON or not math.isfinite(value):
        # Matches the evaluator and the vector backend: a non-finite
        # value is never on a multiple (fmod(inf) is a domain error).
        return False
    remainder = math.fmod(abs(value), abs(modulus))
    tolerance = MODEQ_TOLERANCE * abs(modulus)
    return remainder <= tolerance or abs(modulus) - remainder <= tolerance


_HELPERS = {
    "_clamp": _clamp,
    "_div": _div,
    "_cbrt": _cbrt,
    "_modeq": _modeq,
}


def _emit(expr: ast.Expr, names: list[str]) -> str:
    """Emit a Python expression string; collect signal names into *names*."""
    if isinstance(expr, ast.Const):
        if expr.is_hole:
            raise EvaluationError(
                f"cannot compile a sketch: hole c{expr.hole_id} is unfilled"
            )
        return repr(float(expr.value))
    if isinstance(expr, ast.Signal):
        if expr.name not in names:
            names.append(expr.name)
        return f"_s_{expr.name}"
    if isinstance(expr, ast.BinOp):
        left = _emit(expr.left, names)
        right = _emit(expr.right, names)
        if expr.op == "/":
            return f"_div({left}, {right})"
        return f"_clamp(({left}) {expr.op} ({right}))"
    if isinstance(expr, ast.Cond):
        pred = _emit(expr.pred, names)
        then = _emit(expr.then, names)
        otherwise = _emit(expr.otherwise, names)
        return f"(({then}) if ({pred}) else ({otherwise}))"
    if isinstance(expr, ast.Cube):
        return f"_clamp(({_emit(expr.arg, names)}) ** 3)"
    if isinstance(expr, ast.Cbrt):
        return f"_cbrt({_emit(expr.arg, names)})"
    if isinstance(expr, ast.Cmp):
        left = _emit(expr.left, names)
        right = _emit(expr.right, names)
        return f"(({left}) {expr.op} ({right}))"
    if isinstance(expr, ast.ModEq):
        return f"_modeq({_emit(expr.left, names)}, {_emit(expr.right, names)})"
    raise EvaluationError(f"cannot compile node {type(expr).__name__}")


@dataclass(frozen=True)
class CompiledHandler:
    """A handler compiled to a positional Python function.

    ``signals`` is the ordered tuple of signal names the function reads;
    ``fn`` takes exactly those values (floats), in order, and returns the
    next window.  :meth:`call_env` offers the dict-based interface of the
    interpreting evaluator for drop-in use.
    """

    signals: tuple[str, ...]
    fn: Callable[..., float]
    source: str

    def call_env(self, env: Mapping[str, float]) -> float:
        try:
            values = [float(env[name]) for name in self.signals]
        except KeyError as missing:
            raise EvaluationError(
                f"signal {missing.args[0]!r} missing from environment"
            ) from None
        return self.fn(*values)

    def __call__(self, *values: float) -> float:
        return self.fn(*values)


def compile_handler(expr: ast.NumExpr) -> CompiledHandler:
    """Compile *expr* (macros expanded) into a :class:`CompiledHandler`.

    The compiled function agrees with
    :func:`repro.dsl.evaluate.evaluate` on every input (enforced by
    property tests), but runs roughly an order of magnitude faster.
    """
    expanded = expand_macros(expr)
    names: list[str] = []
    body = _emit(expanded, names)
    params = ", ".join(f"_s_{name}" for name in names)
    source = f"def _handler({params}):\n    return {body}\n"
    namespace: dict[str, object] = dict(_HELPERS)
    exec(compile(source, "<compiled-handler>", "exec"), namespace)
    return CompiledHandler(
        signals=tuple(names),
        fn=namespace["_handler"],  # type: ignore[arg-type]
        source=source,
    )


# ----------------------------------------------------------------------
# Vectorized sketch backend (batched scoring).
#
# Each helper is the elementwise twin of its scalar counterpart above:
# for every finite/NaN/inf input, applying the vector helper to a 1-lane
# array yields exactly the scalar helper's float (IEEE-754 arithmetic is
# deterministic elementwise; only ``**`` needs ``np.float_power`` to
# route through the same libm ``pow`` the interpreter uses).


def _v_clamp(value):
    value = np.where(np.isnan(value), _VALUE_CAP, value)
    return np.minimum(np.maximum(value, -_VALUE_CAP), _VALUE_CAP)


def _v_div(left, right):
    small = np.abs(right) < _DIV_EPSILON
    safe = np.where(small, 1.0, right)
    saturated = np.where(np.greater_equal(left, 0.0), _VALUE_CAP, -_VALUE_CAP)
    return np.where(small, saturated, _v_clamp(np.divide(left, safe)))


def _v_cbrt(value):
    # float_power (not ``**``) for the same reason as _v_pow3: numpy's
    # array power can diverge from libm pow by an ulp on some inputs.
    return _v_clamp(
        np.copysign(np.float_power(np.abs(value), 1.0 / 3.0), value)
    )


def _v_pow3(value):
    # np.float_power promotes to float64 and calls libm pow, matching
    # Python's ``x ** 3`` bitwise; plain ``array ** 3`` does not (numpy
    # strength-reduces small integer exponents to repeated multiplies).
    return np.float_power(value, 3.0)


def _v_modeq(value, modulus):
    degenerate = np.abs(modulus) < _DIV_EPSILON
    safe = np.where(degenerate, 1.0, np.abs(modulus))
    remainder = np.fmod(np.abs(value), safe)
    tolerance = MODEQ_TOLERANCE * safe
    near = (remainder <= tolerance) | (safe - remainder <= tolerance)
    return near & ~degenerate


_VECTOR_HELPERS = {
    "_v_clamp": _v_clamp,
    "_v_div": _v_div,
    "_v_cbrt": _v_cbrt,
    "_v_pow3": _v_pow3,
    "_v_modeq": _v_modeq,
    "_np_where": np.where,
}


def _emit_vector(
    expr: ast.Expr, names: list[str], hole_params: dict[int, str]
) -> str:
    """Emit a numpy expression string; holes become lane parameters."""
    if isinstance(expr, ast.Const):
        if expr.is_hole:
            return hole_params[expr.hole_id]
        return repr(float(expr.value))
    if isinstance(expr, ast.Signal):
        if expr.name not in names:
            names.append(expr.name)
        return f"_s_{expr.name}"
    if isinstance(expr, ast.BinOp):
        left = _emit_vector(expr.left, names, hole_params)
        right = _emit_vector(expr.right, names, hole_params)
        if expr.op == "/":
            return f"_v_div({left}, {right})"
        return f"_v_clamp(({left}) {expr.op} ({right}))"
    if isinstance(expr, ast.Cond):
        pred = _emit_vector(expr.pred, names, hole_params)
        then = _emit_vector(expr.then, names, hole_params)
        otherwise = _emit_vector(expr.otherwise, names, hole_params)
        # Both branches are evaluated (numpy has no lazy select), which
        # is safe because every DSL operation is total and saturating —
        # the unselected lane values are simply discarded elementwise.
        return f"_np_where(({pred}), ({then}), ({otherwise}))"
    if isinstance(expr, ast.Cube):
        arg = _emit_vector(expr.arg, names, hole_params)
        return f"_v_clamp(_v_pow3({arg}))"
    if isinstance(expr, ast.Cbrt):
        return f"_v_cbrt({_emit_vector(expr.arg, names, hole_params)})"
    if isinstance(expr, ast.Cmp):
        left = _emit_vector(expr.left, names, hole_params)
        right = _emit_vector(expr.right, names, hole_params)
        return f"(({left}) {expr.op} ({right}))"
    if isinstance(expr, ast.ModEq):
        left = _emit_vector(expr.left, names, hole_params)
        right = _emit_vector(expr.right, names, hole_params)
        return f"_v_modeq({left}, {right})"
    raise EvaluationError(f"cannot compile node {type(expr).__name__}")


@dataclass(frozen=True)
class CompiledVectorSketch:
    """A sketch compiled to one numpy function over candidate lanes.

    ``fn`` takes the ``signals`` values (scalars, or arrays broadcast
    along the lane axis) followed by one lane vector per entry of
    ``hole_ids``, and returns the next-window values for every lane at
    once.  ``assignment_positions`` maps each hole parameter to its
    index in an assignment tuple aligned with ``ast.holes`` pre-order
    (the last occurrence of a repeated id, matching ``fill_holes``'s
    dict semantics).
    """

    signals: tuple[str, ...]
    hole_ids: tuple[int, ...]
    assignment_positions: tuple[int, ...]
    fn: Callable[..., object]
    source: str


def compile_sketch_vector(expr: ast.NumExpr) -> CompiledVectorSketch:
    """Compile *expr* (holes allowed, macros expanded) into a
    :class:`CompiledVectorSketch`.

    Property tests assert that for every assignment, evaluating the
    vector function on 1-wide lanes is bit-identical to compiling the
    filled handler with :func:`compile_handler`.
    """
    expanded = expand_macros(expr)
    # Hole order must match what concretization uses: pre-order on the
    # *unexpanded* expression (macro expansion only substitutes holeless
    # leaves, but aligning on the same tree removes any doubt).
    all_holes = ast.holes(expr)
    last_position: dict[int, int] = {}
    for position, hole in enumerate(all_holes):
        last_position[hole.hole_id] = position
    hole_ids = tuple(dict.fromkeys(hole.hole_id for hole in all_holes))
    hole_params = {
        hole_id: f"_h_{index}" for index, hole_id in enumerate(hole_ids)
    }
    names: list[str] = []
    body = _emit_vector(expanded, names, hole_params)
    params = ", ".join(
        [f"_s_{name}" for name in names]
        + [hole_params[hole_id] for hole_id in hole_ids]
    )
    source = f"def _sketch({params}):\n    return {body}\n"
    namespace: dict[str, object] = dict(_VECTOR_HELPERS)
    exec(compile(source, "<compiled-vector-sketch>", "exec"), namespace)
    return CompiledVectorSketch(
        signals=tuple(names),
        hole_ids=hole_ids,
        assignment_positions=tuple(last_position[i] for i in hole_ids),
        fn=namespace["_sketch"],  # type: ignore[arg-type]
        source=source,
    )
