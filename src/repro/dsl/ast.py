"""Abstract syntax trees for Abagnale's congestion-control DSL.

The DSL (paper Listing 1) has two syntactic categories:

``num``
    congestion signals, the congestion window, constants, the four
    arithmetic operators, conditionals, cube and cube-root.

``bool``
    comparisons between numbers and the modular test ``num % num = 0``.

A *sketch* is an AST whose :class:`Const` leaves are **holes** — constants
with no value yet (``value is None``).  The enumerator produces sketches;
concretization (``repro.synth.concretize``) fills holes with values from a
constant pool, producing a *handler*: a closed expression that maps a
per-ack signal environment to the next congestion window in bytes.

Macros (paper Table 1) are leaf nodes: per §6.1, "we encode reno-inc as a
macro in Abagnale's DSL, so that sub-expression does not increase the
depth".  Their expansions live in :mod:`repro.dsl.macros`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Iterator

__all__ = [
    "Expr",
    "NumExpr",
    "BoolExpr",
    "Const",
    "Signal",
    "Macro",
    "BinOp",
    "Cond",
    "Cube",
    "Cbrt",
    "Cmp",
    "ModEq",
    "ARITH_OPS",
    "CMP_OPS",
    "children",
    "with_children",
    "walk",
    "depth",
    "node_count",
    "holes",
    "operators_used",
    "signals_used",
    "macros_used",
    "fill_holes",
    "rename_holes",
]

#: Binary arithmetic operator tokens accepted by :class:`BinOp`.
ARITH_OPS = ("+", "-", "*", "/")
#: Comparison operator tokens accepted by :class:`Cmp`.
CMP_OPS = ("<", ">")


@dataclass(frozen=True, slots=True)
class Expr:
    """Base class for every DSL AST node."""


@dataclass(frozen=True, slots=True)
class NumExpr(Expr):
    """Base class for nodes of syntactic category ``num``."""


@dataclass(frozen=True, slots=True)
class BoolExpr(Expr):
    """Base class for nodes of syntactic category ``bool``."""


@dataclass(frozen=True, slots=True)
class Const(NumExpr):
    """A numeric constant, or a *hole* when ``value is None``.

    ``hole_id`` distinguishes holes within one sketch so that
    concretization can assign them independently (c1, c2, ... in the
    paper's equation 2).
    """

    value: float | None = None
    hole_id: int | None = None

    @property
    def is_hole(self) -> bool:
        return self.value is None


@dataclass(frozen=True, slots=True)
class Signal(NumExpr):
    """A congestion signal or state variable read from the environment.

    Names follow the paper's Listing 1: ``cwnd``, ``mss``, ``acked_bytes``,
    ``time_since_loss``, ``rtt``, ``min_rtt``, ``max_rtt``, ``ack_rate``,
    ``rtt_gradient``, plus ``wmax`` for the Cubic DSL.
    """

    name: str


@dataclass(frozen=True, slots=True)
class Macro(NumExpr):
    """A named macro leaf (paper Table 1), e.g. ``reno_inc``.

    Macros count as a single node / depth-1 leaf during enumeration; their
    definitions are expanded only at evaluation time.
    """

    name: str


@dataclass(frozen=True, slots=True)
class BinOp(NumExpr):
    """One of the four arithmetic operators applied to two numbers."""

    op: str
    left: NumExpr
    right: NumExpr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")


@dataclass(frozen=True, slots=True)
class Cond(NumExpr):
    """The ternary conditional ``bool ? num : num``."""

    pred: BoolExpr
    then: NumExpr
    otherwise: NumExpr


@dataclass(frozen=True, slots=True)
class Cube(NumExpr):
    """``num ** 3`` (Cubic-DSL extension)."""

    arg: NumExpr


@dataclass(frozen=True, slots=True)
class Cbrt(NumExpr):
    """``num ** (1/3)`` (Cubic-DSL extension)."""

    arg: NumExpr


@dataclass(frozen=True, slots=True)
class Cmp(BoolExpr):
    """``num < num`` or ``num > num``."""

    op: str
    left: NumExpr
    right: NumExpr

    def __post_init__(self) -> None:
        if self.op not in CMP_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True, slots=True)
class ModEq(BoolExpr):
    """The modular test ``num % num = 0`` (used by pulsing handlers)."""

    left: NumExpr
    right: NumExpr


def children(expr: Expr) -> tuple[Expr, ...]:
    """Return the direct sub-expressions of *expr* in syntactic order."""
    out: list[Expr] = []
    for field in fields(expr):
        value = getattr(expr, field.name)
        if isinstance(value, Expr):
            out.append(value)
    return tuple(out)


def with_children(expr: Expr, new_children: tuple[Expr, ...]) -> Expr:
    """Return a copy of *expr* with its sub-expressions replaced in order."""
    child_fields = [
        field.name
        for field in fields(expr)
        if isinstance(getattr(expr, field.name), Expr)
    ]
    if len(child_fields) != len(new_children):
        raise ValueError(
            f"{type(expr).__name__} has {len(child_fields)} children, "
            f"got {len(new_children)}"
        )
    updates = dict(zip(child_fields, new_children))
    return replace(expr, **updates) if updates else expr


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield *expr* and every descendant, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def depth(expr: Expr) -> int:
    """AST depth, counting leaves (including macros) as depth 1."""
    kids = children(expr)
    if not kids:
        return 1
    return 1 + max(depth(child) for child in kids)


def node_count(expr: Expr) -> int:
    """Total number of AST nodes, counting macros as one node."""
    return sum(1 for _ in walk(expr))


def holes(expr: Expr) -> tuple[Const, ...]:
    """All hole constants in *expr*, in pre-order."""
    return tuple(
        node for node in walk(expr) if isinstance(node, Const) and node.is_hole
    )


def operators_used(expr: Expr) -> frozenset[str]:
    """The set of operator names appearing in *expr*.

    This is Abagnale's bucket discriminator (paper §4.4, option 2):
    arithmetic operators by token, plus ``cond``, ``cube``, ``cbrt``,
    ``cmp`` and ``modeq``.
    """
    ops: set[str] = set()
    for node in walk(expr):
        if isinstance(node, BinOp):
            ops.add(node.op)
        elif isinstance(node, Cond):
            ops.add("cond")
        elif isinstance(node, Cube):
            ops.add("cube")
        elif isinstance(node, Cbrt):
            ops.add("cbrt")
        elif isinstance(node, Cmp):
            ops.add("cmp")
        elif isinstance(node, ModEq):
            ops.add("modeq")
    return frozenset(ops)


def signals_used(expr: Expr) -> frozenset[str]:
    """The set of signal names appearing in *expr*."""
    return frozenset(
        node.name for node in walk(expr) if isinstance(node, Signal)
    )


def macros_used(expr: Expr) -> frozenset[str]:
    """The set of macro names appearing in *expr*."""
    return frozenset(node.name for node in walk(expr) if isinstance(node, Macro))


def rename_holes(expr: Expr) -> Expr:
    """Return *expr* with holes renumbered 0, 1, 2, ... in pre-order.

    Enumeration may produce holes with arbitrary ids; canonical numbering
    makes structurally identical sketches compare equal.
    """
    counter = 0

    def rec(node: Expr) -> Expr:
        nonlocal counter
        if isinstance(node, Const) and node.is_hole:
            renamed = Const(None, counter)
            counter += 1
            return renamed
        kids = children(node)
        if not kids:
            return node
        return with_children(node, tuple(rec(child) for child in kids))

    return rec(expr)


def fill_holes(expr: Expr, assignment: dict[int, float]) -> Expr:
    """Return *expr* with each hole replaced by ``assignment[hole_id]``.

    Raises :class:`KeyError` if a hole has no assigned value.
    """

    def rec(node: Expr) -> Expr:
        if isinstance(node, Const) and node.is_hole:
            return Const(assignment[node.hole_id], None)
        kids = children(node)
        if not kids:
            return node
        return with_children(node, tuple(rec(child) for child in kids))

    return rec(expr)
