"""Abagnale's domain-specific language for cwnd-ack handlers.

The public surface re-exports the AST node types, evaluation, parsing,
printing, simplification, type/unit checking, macros and the curated
family sub-DSLs.  Typical use::

    from repro import dsl

    handler = dsl.parse("cwnd + 0.7 * reno_inc")
    dsl.check_handler(handler)
    next_cwnd = dsl.evaluate(handler, {"cwnd": 30000, "mss": 1500,
                                       "acked_bytes": 1500})
    print(dsl.to_text(dsl.simplify(handler)))
"""

from repro.dsl.ast import (
    ARITH_OPS,
    CMP_OPS,
    BinOp,
    BoolExpr,
    Cbrt,
    Cmp,
    Cond,
    Const,
    Cube,
    Expr,
    Macro,
    ModEq,
    NumExpr,
    Signal,
    children,
    depth,
    fill_holes,
    holes,
    macros_used,
    node_count,
    operators_used,
    rename_holes,
    signals_used,
    walk,
    with_children,
)
from repro.dsl.evaluate import Environment, evaluate, evaluate_bool
from repro.dsl.families import (
    CUBIC_DSL,
    DEFAULT_CONSTANT_POOL,
    DELAY_DSL,
    FAMILIES,
    RENO_DSL,
    VEGAS_DSL,
    DslSpec,
    dsl_for_classifier_label,
    family,
    with_budget,
)
from repro.dsl.macros import MACROS, MacroDef, expand_macros, macro_definition
from repro.dsl.parser import parse
from repro.dsl.printer import to_text
from repro.dsl.simplify import is_simplifiable, simplify
from repro.dsl.typecheck import (
    SIGNAL_UNITS,
    check_handler,
    infer_unit,
    is_well_formed,
)

__all__ = [
    # ast
    "ARITH_OPS",
    "CMP_OPS",
    "BinOp",
    "BoolExpr",
    "Cbrt",
    "Cmp",
    "Cond",
    "Const",
    "Cube",
    "Expr",
    "Macro",
    "ModEq",
    "NumExpr",
    "Signal",
    "children",
    "depth",
    "fill_holes",
    "holes",
    "macros_used",
    "node_count",
    "operators_used",
    "rename_holes",
    "signals_used",
    "walk",
    "with_children",
    # evaluation
    "Environment",
    "evaluate",
    "evaluate_bool",
    # families
    "CUBIC_DSL",
    "DEFAULT_CONSTANT_POOL",
    "DELAY_DSL",
    "FAMILIES",
    "RENO_DSL",
    "VEGAS_DSL",
    "DslSpec",
    "dsl_for_classifier_label",
    "family",
    "with_budget",
    # macros
    "MACROS",
    "MacroDef",
    "expand_macros",
    "macro_definition",
    # parsing / printing / simplification
    "parse",
    "to_text",
    "is_simplifiable",
    "simplify",
    # checking
    "SIGNAL_UNITS",
    "check_handler",
    "infer_unit",
    "is_well_formed",
]
