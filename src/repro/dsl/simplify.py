"""Rule-based arithmetic simplification for DSL expressions.

The paper uses sympy to reject enumerated sketches that are
"arithmetically simplifiable" (§4.1): a sketch like ``c1 * (c2 * cwnd)``
is redundant because ``c3 * cwnd`` covers the same behavior space with a
smaller tree.  sympy is unavailable offline, so this module implements the
same predicate with an explicit rewrite system covering the identities
that arise in the DSL:

* identity and annihilator elimination (``x+0``, ``x*1``, ``x*0``, …),
* constant folding, including through ``cube``/``cbrt``,
* self-cancellation (``x-x``, ``x/x``),
* collapse of hole-constant chains (``c1*(c2*x)`` folds to ``c3*x``),
* inverse pairs (``cbrt(cube(x))``),
* trivially decidable predicates and equal-branch conditionals.

Two entry points: :func:`simplify` rewrites to a fixpoint (used for
readability when presenting results, as in Table 2) and
:func:`is_simplifiable` is the enumeration filter.
"""

from __future__ import annotations

from repro.dsl import ast

__all__ = ["simplify", "is_simplifiable"]

_MAX_PASSES = 25


def _const(value: float) -> ast.Const:
    return ast.Const(float(value))


def _is_value(expr: ast.Expr, value: float) -> bool:
    return (
        isinstance(expr, ast.Const)
        and not expr.is_hole
        and expr.value == value
    )


def _is_constlike(expr: ast.Expr) -> bool:
    """True for any constant leaf, concrete or hole."""
    return isinstance(expr, ast.Const)


def _flatten(op: str, expr: ast.Expr) -> list[ast.Expr]:
    """Flatten an associative chain of *op* into its operand list."""
    if isinstance(expr, ast.BinOp) and expr.op == op:
        return _flatten(op, expr.left) + _flatten(op, expr.right)
    return [expr]


def _rewrite_once(expr: ast.Expr) -> ast.Expr:
    """Apply one bottom-up rewriting pass."""
    kids = ast.children(expr)
    if kids:
        expr = ast.with_children(
            expr, tuple(_rewrite_once(child) for child in kids)
        )

    if isinstance(expr, ast.BinOp):
        left, right = expr.left, expr.right
        concrete = (
            isinstance(left, ast.Const)
            and not left.is_hole
            and isinstance(right, ast.Const)
            and not right.is_hole
        )
        if concrete:
            return _fold_binop(expr.op, left.value, right.value)
        if expr.op == "+":
            if _is_value(left, 0):
                return right
            if _is_value(right, 0):
                return left
            if left == right:
                return ast.BinOp("*", _const(2), left)
        elif expr.op == "-":
            if _is_value(right, 0):
                return left
            if left == right:
                return _const(0)
        elif expr.op == "*":
            if _is_value(left, 0) or _is_value(right, 0):
                return _const(0)
            if _is_value(left, 1):
                return right
            if _is_value(right, 1):
                return left
        elif expr.op == "/":
            if _is_value(left, 0):
                return _const(0)
            if _is_value(right, 1):
                return left
            if left == right:
                return _const(1)
        return expr

    if isinstance(expr, ast.Cond):
        if expr.then == expr.otherwise:
            return expr.then
        decided = _decide(expr.pred)
        if decided is not None:
            return expr.then if decided else expr.otherwise
        return expr

    if isinstance(expr, ast.Cube):
        if isinstance(expr.arg, ast.Cbrt):
            return expr.arg.arg
        if isinstance(expr.arg, ast.Const) and not expr.arg.is_hole:
            return _const(expr.arg.value**3)
        return expr

    if isinstance(expr, ast.Cbrt):
        if isinstance(expr.arg, ast.Cube):
            return expr.arg.arg
        if isinstance(expr.arg, ast.Const) and not expr.arg.is_hole:
            value = expr.arg.value
            return _const(
                abs(value) ** (1.0 / 3.0) * (1 if value >= 0 else -1)
            )
        return expr

    return expr


def _fold_binop(op: str, left: float, right: float) -> ast.Const:
    if op == "+":
        return _const(left + right)
    if op == "-":
        return _const(left - right)
    if op == "*":
        return _const(left * right)
    if right == 0:
        # Leave 1/0 as an (unfoldable) marker constant; evaluation
        # saturates anyway.  Folding to inf would poison later passes.
        return _const(float("inf"))
    return _const(left / right)


def _decide(pred: ast.BoolExpr) -> bool | None:
    """Statically decide a predicate over concrete constants, if possible."""
    if isinstance(pred, ast.Cmp):
        left, right = pred.left, pred.right
        if (
            isinstance(left, ast.Const)
            and not left.is_hole
            and isinstance(right, ast.Const)
            and not right.is_hole
        ):
            return (
                left.value < right.value
                if pred.op == "<"
                else left.value > right.value
            )
        if left == right:
            return False
    if isinstance(pred, ast.ModEq):
        left, right = pred.left, pred.right
        if left == right:
            return True
        if _is_value(left, 0):
            return True
    return None


def simplify(expr: ast.Expr) -> ast.Expr:
    """Rewrite *expr* to a fixpoint of the simplification rules."""
    for _ in range(_MAX_PASSES):
        rewritten = _rewrite_once(expr)
        if rewritten == expr:
            return expr
        expr = rewritten
    return expr


def _has_redundant_constants(expr: ast.Expr) -> bool:
    """Detect hole/constant combinations that fold into one constant.

    A sketch whose holes combine directly (``c1 + c2``, ``c1 * (c2 * x)``,
    ``cube(c1)``, ``c1 < c2``) is covered by a smaller sketch, so the
    enumerator must reject it even though the holes have no values yet.
    """
    for node in ast.walk(expr):
        if isinstance(node, ast.BinOp):
            if node.op in ("+", "*"):
                operands = _flatten(node.op, node)
                if sum(_is_constlike(item) for item in operands) >= 2:
                    return True
            else:
                if _is_constlike(node.left) and _is_constlike(node.right):
                    return True
                # (x - c1) and (x / c1) are fine; (c1 - c2) handled above.
        elif isinstance(node, (ast.Cube, ast.Cbrt)):
            if _is_constlike(node.arg):
                return True
        elif isinstance(node, (ast.Cmp, ast.ModEq)):
            if _is_constlike(node.left) and _is_constlike(node.right):
                return True
        elif isinstance(node, ast.Cond):
            if node.then == node.otherwise:
                return True
    return False


def is_simplifiable(expr: ast.Expr) -> bool:
    """True if the enumerator should discard *expr* as redundant."""
    if _has_redundant_constants(expr):
        return True
    return simplify(expr) != expr
