"""Pre-defined macros used in Abagnale's DSLs (paper Table 1).

Each macro names a sub-expression that CCAs commonly use.  Encoding them
as single DSL leaves lets the enumerator reach useful handlers at much
smaller AST depth (paper §3.3): a macro counts as one node.

==================  ==========================================================
macro               expansion
==================  ==========================================================
``reno_inc``        ``acked_bytes * mss / cwnd`` — Reno's per-ack increment
``vegas_diff``      ``(rtt - min_rtt) * ack_rate / mss`` — estimated packets
                    queued at the bottleneck (Vegas's expected-vs-actual gap)
``htcp_diff``       ``(rtt - min_rtt) / max_rtt`` — H-TCP's RTT variation
``rtts_since_loss`` ``time_since_loss / rtt`` — loss age in RTTs (BBR pulses)
``ewma_rtt``        exponentially weighted moving average of the RTT signal;
                    provided as a *signal-level* macro (§3.3 mentions a
                    built-in EWMA operation)
==================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsl.ast import BinOp, Macro, NumExpr, Signal
from repro.errors import DslError
from repro.units import BYTES, DIMENSIONLESS, SECONDS, Unit

__all__ = ["MacroDef", "MACROS", "macro_definition", "expand_macros"]


@dataclass(frozen=True)
class MacroDef:
    """A macro's metadata: its expansion, unit, and the signals it reads."""

    name: str
    expansion: NumExpr
    unit: Unit
    signals: frozenset[str]
    description: str


def _reno_inc() -> NumExpr:
    return BinOp(
        "/",
        BinOp("*", Signal("acked_bytes"), Signal("mss")),
        Signal("cwnd"),
    )


def _vegas_diff() -> NumExpr:
    return BinOp(
        "/",
        BinOp(
            "*",
            BinOp("-", Signal("rtt"), Signal("min_rtt")),
            Signal("ack_rate"),
        ),
        Signal("mss"),
    )


def _htcp_diff() -> NumExpr:
    return BinOp(
        "/",
        BinOp("-", Signal("rtt"), Signal("min_rtt")),
        Signal("max_rtt"),
    )


def _rtts_since_loss() -> NumExpr:
    return BinOp("/", Signal("time_since_loss"), Signal("rtt"))


#: Registry of every macro known to the library, keyed by name.
MACROS: dict[str, MacroDef] = {
    "reno_inc": MacroDef(
        name="reno_inc",
        expansion=_reno_inc(),
        unit=BYTES,
        signals=frozenset({"acked_bytes", "mss", "cwnd"}),
        description="Reno's cwnd increment of one MSS per RTT worth of ACKs",
    ),
    "vegas_diff": MacroDef(
        name="vegas_diff",
        expansion=_vegas_diff(),
        unit=DIMENSIONLESS,
        signals=frozenset({"rtt", "min_rtt", "ack_rate", "mss"}),
        description="Vegas's estimate of packets queued at the bottleneck",
    ),
    "htcp_diff": MacroDef(
        name="htcp_diff",
        expansion=_htcp_diff(),
        unit=DIMENSIONLESS,
        signals=frozenset({"rtt", "min_rtt", "max_rtt"}),
        description="H-TCP's normalized RTT variation",
    ),
    "rtts_since_loss": MacroDef(
        name="rtts_since_loss",
        expansion=_rtts_since_loss(),
        unit=DIMENSIONLESS,
        signals=frozenset({"time_since_loss", "rtt"}),
        description="time since the last loss event, in units of the RTT",
    ),
    # The EWMA macro reads a pre-smoothed signal supplied by the trace
    # environment rather than expanding to an in-DSL expression: an EWMA is
    # stateful, and the DSL itself is stateless per-ack (paper §3.3).
    "ewma_rtt": MacroDef(
        name="ewma_rtt",
        expansion=Signal("ewma_rtt"),
        unit=SECONDS,
        signals=frozenset({"ewma_rtt"}),
        description="exponentially weighted moving average of the RTT",
    ),
}


def macro_definition(name: str) -> MacroDef:
    """Look up a macro by name, raising :class:`DslError` if unknown."""
    try:
        return MACROS[name]
    except KeyError:
        raise DslError(f"unknown macro {name!r}") from None


def expand_macros(expr: NumExpr) -> NumExpr:
    """Recursively replace every :class:`Macro` leaf by its expansion."""
    from repro.dsl.ast import children, with_children

    if isinstance(expr, Macro):
        return expand_macros(macro_definition(expr.name).expansion)
    kids = children(expr)
    if not kids:
        return expr
    return with_children(expr, tuple(expand_macros(child) for child in kids))
