"""Type and unit checking for DSL expressions (paper §4.1).

Abagnale constrains enumerated sketches to be well-typed and to have the
correct output unit (bytes, the unit of a congestion window).  We model
units with the integer-exponent algebra of :mod:`repro.units`.

Constants are *unit-polymorphic*: a hole such as the ``8`` in Hybla's
``cwnd + 8 * rtt * reno_inc`` silently absorbs whatever unit makes the
expression consistent (there, 1/seconds).  We implement this with a
wildcard unit (``None``) that unifies with anything and is propagated
conservatively: once a wildcard enters a product, the product's unit is
unknown and every later constraint on it is satisfiable.

As in the paper, the algebra has only integer exponents, so a cube root
applied to an expression with a known non-cubic unit fails — the exact
limitation reported for Cubic (§5.5).  Checkers accept
``strict_units=False`` to disable unit checking, which is how the paper
runs Cubic.
"""

from __future__ import annotations

from repro.dsl import ast
from repro.dsl.macros import macro_definition
from repro.errors import TypeCheckError, UnitError
from repro.units import (
    BYTES,
    BYTES_PER_SECOND,
    DIMENSIONLESS,
    SECONDS,
    Unit,
)

__all__ = ["SIGNAL_UNITS", "infer_unit", "check_handler", "is_well_formed"]

#: Units of every signal the trace environment can provide.
SIGNAL_UNITS: dict[str, Unit] = {
    "cwnd": BYTES,
    "mss": BYTES,
    "acked_bytes": BYTES,
    "wmax": BYTES,
    "inflight": BYTES,
    "time_since_loss": SECONDS,
    "rtt": SECONDS,
    "min_rtt": SECONDS,
    "max_rtt": SECONDS,
    "ewma_rtt": SECONDS,
    "ack_rate": BYTES_PER_SECOND,
    # The RTT gradient is d(rtt)/dt: seconds per second, dimensionless.
    "rtt_gradient": DIMENSIONLESS,
    "delay_gradient": DIMENSIONLESS,
}

# A wildcard unit is represented by None.
_MaybeUnit = Unit | None


def _unify(left: _MaybeUnit, right: _MaybeUnit, context: str) -> _MaybeUnit:
    """Unit of an additive combination or comparison of two quantities."""
    if left is None:
        return right
    if right is None:
        return left
    if left != right:
        raise UnitError(f"cannot apply {context!r} to units {left} and {right}")
    return left


def _mul(left: _MaybeUnit, right: _MaybeUnit) -> _MaybeUnit:
    if left is None or right is None:
        return None
    return left * right


def _div(left: _MaybeUnit, right: _MaybeUnit) -> _MaybeUnit:
    if left is None or right is None:
        return None
    return left / right


def infer_unit(expr: ast.Expr) -> _MaybeUnit:
    """Infer the unit of *expr*, or ``None`` if it is unit-polymorphic.

    Raises :class:`UnitError` on an inconsistency and
    :class:`TypeCheckError` on an unknown signal name.
    """
    if isinstance(expr, ast.Const):
        return None
    if isinstance(expr, ast.Signal):
        try:
            return SIGNAL_UNITS[expr.name]
        except KeyError:
            raise TypeCheckError(f"unknown signal {expr.name!r}") from None
    if isinstance(expr, ast.Macro):
        return macro_definition(expr.name).unit
    if isinstance(expr, ast.BinOp):
        left = infer_unit(expr.left)
        right = infer_unit(expr.right)
        if expr.op in ("+", "-"):
            return _unify(left, right, expr.op)
        if expr.op == "*":
            return _mul(left, right)
        return _div(left, right)
    if isinstance(expr, ast.Cond):
        infer_unit(expr.pred)
        return _unify(infer_unit(expr.then), infer_unit(expr.otherwise), "?:")
    if isinstance(expr, ast.Cube):
        inner = infer_unit(expr.arg)
        return None if inner is None else inner**3
    if isinstance(expr, ast.Cbrt):
        inner = infer_unit(expr.arg)
        return None if inner is None else inner.root(3)
    if isinstance(expr, ast.Cmp):
        _unify(infer_unit(expr.left), infer_unit(expr.right), expr.op)
        return DIMENSIONLESS
    if isinstance(expr, ast.ModEq):
        _unify(infer_unit(expr.left), infer_unit(expr.right), "%")
        return DIMENSIONLESS
    raise TypeCheckError(f"unknown AST node {type(expr).__name__}")


def check_handler(
    expr: ast.NumExpr,
    *,
    strict_units: bool = True,
    allowed_signals: frozenset[str] | None = None,
) -> None:
    """Validate *expr* as a cwnd-ack handler.

    Checks that the expression is a number, uses only known (and, if given,
    *allowed*) signals, and — when ``strict_units`` — that its unit unifies
    with bytes.  Raises on failure, returns ``None`` on success.
    """
    if not isinstance(expr, ast.NumExpr):
        raise TypeCheckError("a cwnd-ack handler must be a numeric expression")
    for name in ast.signals_used(expr):
        if name not in SIGNAL_UNITS:
            raise TypeCheckError(f"unknown signal {name!r}")
        if allowed_signals is not None and name not in allowed_signals:
            raise TypeCheckError(f"signal {name!r} not allowed by this DSL")
    if strict_units:
        unit = infer_unit(expr)
        if unit is not None and unit != BYTES:
            raise UnitError(f"handler has unit {unit}, expected bytes")


def is_well_formed(
    expr: ast.NumExpr,
    *,
    strict_units: bool = True,
    allowed_signals: frozenset[str] | None = None,
) -> bool:
    """Boolean form of :func:`check_handler` for use as an enumeration filter."""
    try:
        check_handler(
            expr, strict_units=strict_units, allowed_signals=allowed_signals
        )
    except (TypeCheckError, UnitError):
        return False
    return True
