"""Evaluation of DSL expressions over per-ack signal environments.

A handler is evaluated once per ACK with an environment mapping signal
names to floats (``repro.synth.replay`` builds these from traces).  The
evaluator is total: arithmetic corner cases (division by ~zero, overflow,
cube-root of negatives) produce finite sentinel values rather than
exceptions, because a synthesized candidate that divides by zero should
simply score a terrible distance, not abort the search (§4.3 requires the
distance computation to tolerate bad candidates).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.dsl import ast
from repro.dsl.macros import macro_definition
from repro.errors import EvaluationError

__all__ = ["evaluate", "evaluate_bool", "Environment", "MODEQ_TOLERANCE"]

#: Signal environment type: signal name -> value in SI units (bytes, seconds).
Environment = Mapping[str, float]

#: Relative tolerance for the float modular test ``a % b = 0``.
MODEQ_TOLERANCE = 0.05

#: Magnitude cap applied to every intermediate value; a candidate handler
#: that explodes numerically saturates here instead of overflowing.
_VALUE_CAP = 1e18

#: Divisors smaller than this (in absolute value) are treated as zero.
_DIV_EPSILON = 1e-12


def _clamp(value: float) -> float:
    if value != value:  # NaN
        return _VALUE_CAP
    if value > _VALUE_CAP:
        return _VALUE_CAP
    if value < -_VALUE_CAP:
        return -_VALUE_CAP
    return value


def evaluate(expr: ast.NumExpr, env: Environment) -> float:
    """Evaluate a numeric expression over *env*.

    Raises :class:`EvaluationError` for unfilled holes or unknown signals;
    all arithmetic corner cases yield saturated finite values.
    """
    if isinstance(expr, ast.Const):
        if expr.is_hole:
            raise EvaluationError(
                f"cannot evaluate a sketch: hole c{expr.hole_id} is unfilled"
            )
        return float(expr.value)
    if isinstance(expr, ast.Signal):
        try:
            return float(env[expr.name])
        except KeyError:
            raise EvaluationError(
                f"signal {expr.name!r} missing from environment"
            ) from None
    if isinstance(expr, ast.Macro):
        return evaluate(macro_definition(expr.name).expansion, env)
    if isinstance(expr, ast.BinOp):
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        if expr.op == "+":
            return _clamp(left + right)
        if expr.op == "-":
            return _clamp(left - right)
        if expr.op == "*":
            return _clamp(left * right)
        if abs(right) < _DIV_EPSILON:
            # Saturate rather than raise: a divide-by-zero candidate is a
            # bad candidate, and scoring will discard it.
            return _VALUE_CAP if left >= 0 else -_VALUE_CAP
        return _clamp(left / right)
    if isinstance(expr, ast.Cond):
        if evaluate_bool(expr.pred, env):
            return evaluate(expr.then, env)
        return evaluate(expr.otherwise, env)
    if isinstance(expr, ast.Cube):
        return _clamp(evaluate(expr.arg, env) ** 3)
    if isinstance(expr, ast.Cbrt):
        value = evaluate(expr.arg, env)
        return _clamp(math.copysign(abs(value) ** (1.0 / 3.0), value))
    raise EvaluationError(f"not a numeric expression: {type(expr).__name__}")


def evaluate_bool(expr: ast.BoolExpr, env: Environment) -> bool:
    """Evaluate a boolean expression over *env*."""
    if isinstance(expr, ast.Cmp):
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        return left < right if expr.op == "<" else left > right
    if isinstance(expr, ast.ModEq):
        value = evaluate(expr.left, env)
        modulus = evaluate(expr.right, env)
        if abs(modulus) < _DIV_EPSILON or not math.isfinite(value):
            # An infinite value is never "on a multiple" (and fmod(inf)
            # is a domain error); a diverged candidate takes the else
            # branch instead of crashing the replay.
            return False
        remainder = math.fmod(abs(value), abs(modulus))
        # Accept remainders close to 0 or close to the modulus: float cwnd
        # values are never exactly on a multiple, and the paper's
        # synthesized BBR handler relies on `cwnd % 2.7 = 0` firing
        # intermittently.
        tolerance = MODEQ_TOLERANCE * abs(modulus)
        return remainder <= tolerance or abs(modulus) - remainder <= tolerance
    raise EvaluationError(f"not a boolean expression: {type(expr).__name__}")
