"""Rendering DSL ASTs as readable, re-parseable text.

The textual syntax round-trips through :mod:`repro.dsl.parser`::

    cwnd + 0.7 * reno_inc
    (vegas_diff < 1) ? cwnd + 0.7 * reno_inc : cwnd
    wmax + cube(8 * time_since_loss - cbrt(24 * wmax))
    (cwnd % 2.7 == 0) ? 2.05 * cwnd : mss
"""

from __future__ import annotations

from repro.dsl import ast

__all__ = ["to_text"]

# Operator precedence levels; higher binds tighter.
_PRECEDENCE = {"?:": 1, "+": 2, "-": 2, "*": 3, "/": 3}


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(round(value, 10))


def to_text(expr: ast.Expr) -> str:
    """Render *expr* in the DSL's textual syntax."""
    return _render(expr, parent_level=0)


def _render(expr: ast.Expr, parent_level: int) -> str:
    if isinstance(expr, ast.Const):
        if expr.is_hole:
            return f"c{expr.hole_id if expr.hole_id is not None else '?'}"
        return _format_number(expr.value)
    if isinstance(expr, (ast.Signal, ast.Macro)):
        return expr.name
    if isinstance(expr, ast.BinOp):
        level = _PRECEDENCE[expr.op]
        left = _render(expr.left, level)
        # The grammar is left-associative, so a right operand at equal
        # precedence always needs parentheses to round-trip structurally
        # (``a + (b + c)`` must not print as ``a + b + c``).
        right = _render(expr.right, level + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if level < parent_level else text
    if isinstance(expr, ast.Cond):
        pred = _render(expr.pred, 0)
        then = _render(expr.then, _PRECEDENCE["?:"] + 1)
        otherwise = _render(expr.otherwise, _PRECEDENCE["?:"])
        text = f"({pred}) ? {then} : {otherwise}"
        return f"({text})" if parent_level > _PRECEDENCE["?:"] else text
    if isinstance(expr, ast.Cube):
        return f"cube({_render(expr.arg, 0)})"
    if isinstance(expr, ast.Cbrt):
        return f"cbrt({_render(expr.arg, 0)})"
    if isinstance(expr, ast.Cmp):
        return f"{_render(expr.left, 2)} {expr.op} {_render(expr.right, 2)}"
    if isinstance(expr, ast.ModEq):
        return f"{_render(expr.left, 3)} % {_render(expr.right, 4)} == 0"
    raise TypeError(f"cannot render {type(expr).__name__}")
