"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``collect``     simulate a named CCA over the environment matrix and
                archive the traces as JSON (plus optional CSV export).
``classify``    run a classifier on archived traces (or on a named CCA
                probed live) and print the verdict.
``synthesize``  reverse-engineer archived traces (or a named CCA) and
                print the recovered handler with search telemetry.
``race``        run two or more CCAs in competition over one bottleneck
                and report goodput shares and Jain's fairness index.
``stats``       summarize archived traces (goodput, RTT percentiles,
                loss rate, window statistics).
``validate``    run the trace triage report over archived traces:
                per-class defect counts, repair outcomes, quality
                scores; exit code 1 when any trace is refused under
                the chosen policy (collection-campaign QA).
``submit``      enqueue a reverse-engineering job spec into a spool
                directory (see ``serve``).
``serve``       run a claim-loop fleet server over a spool: claims
                queued jobs via heartbeat leases, takes over jobs from
                dead peers, retries crash-looping jobs under a budget
                and quarantines the rest (synthesis-as-a-service; any
                number of serve daemons may share one spool — see
                ``docs/SERVICE.md``).
``fleet-status``read-only view of a spool: per-job state machine,
                retry counts, lease holders, per-server health.
``zoo``         list every registered CCA.

Examples
--------
::

    python -m repro collect --cca reno --out reno.json
    python -m repro classify --traces reno.json
    python -m repro synthesize --traces reno.json --max-nodes 5
    python -m repro synthesize --cca vegas --time-budget 120
    python -m repro synthesize --traces reno.json --workers 4 \\
        --progress --run-log run.jsonl --report json
    python -m repro validate field_captures/*.json --policy strict
    python -m repro submit --spool /tmp/fleet --job-id reno --cca reno
    python -m repro serve --spool /tmp/fleet --workers 4 --progress
    python -m repro race --cca bbr reno
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cca.registry import ALL_CCAS, cca_names
from repro.dsl.families import FAMILIES, family, with_budget
from repro.netsim.environments import Environment
from repro.pipeline import reverse_engineer
from repro.reporting import format_run_summary
from repro.runtime import (
    CacheStats,
    CollectorSink,
    ConsoleProgressSink,
    IterationFinished,
    JsonlSink,
    RunContext,
    ScoringStats,
)
from repro.synth.refinement import SynthesisConfig
from repro.synth.scoring import QuorumConfig
from repro.trace.collect import CollectionConfig, collect_traces
from repro.trace.io import export_csv, load_trace_file, load_traces, save_traces
from repro.trace.model import Trace
from repro.trace.noise import NoiseModel
from repro.trace.triage import TriagePolicy, triage_trace

__all__ = ["main", "build_parser"]


def _collection_from_args(args: argparse.Namespace) -> CollectionConfig:
    environments = tuple(
        Environment(bandwidth_mbps=bw, rtt_ms=rtt)
        for bw in args.bandwidth
        for rtt in args.rtt
    )
    noise = NoiseModel(
        jitter_std=args.jitter,
        dropout=args.dropout,
        cwnd_error=args.cwnd_error,
        seed=args.seed,
    )
    return CollectionConfig(
        duration=args.duration, environments=environments, noise=noise
    )


def _add_collection_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--bandwidth",
        type=float,
        nargs="+",
        default=[5.0, 10.0, 15.0],
        help="bottleneck bandwidths, Mbps (default: 5 10 15)",
    )
    parser.add_argument(
        "--rtt",
        type=float,
        nargs="+",
        default=[25.0, 50.0, 80.0],
        help="base RTTs, ms (default: 25 50 80)",
    )
    parser.add_argument(
        "--duration", type=float, default=15.0, help="seconds per trace"
    )
    parser.add_argument("--jitter", type=float, default=0.0)
    parser.add_argument("--dropout", type=float, default=0.0)
    parser.add_argument("--cwnd-error", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=0)


def _load_or_collect(args: argparse.Namespace) -> list[Trace]:
    if getattr(args, "traces", None):
        return load_traces(args.traces)
    if getattr(args, "cca", None):
        return collect_traces(args.cca, _collection_from_args(args))
    raise SystemExit("error: provide --traces FILE or --cca NAME")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Abagnale: reverse-engineer CCA behavior from traces",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    collect = commands.add_parser("collect", help="simulate and archive traces")
    collect.add_argument("--cca", required=True, choices=sorted(ALL_CCAS))
    collect.add_argument("--out", required=True, help="output JSON path")
    collect.add_argument("--csv", help="also export the first trace as CSV")
    _add_collection_args(collect)

    classify = commands.add_parser("classify", help="classify traces")
    classify.add_argument("--traces", help="JSON archive from 'collect'")
    classify.add_argument("--cca", choices=sorted(ALL_CCAS))
    classify.add_argument(
        "--classifier", choices=("gordon", "ccanalyzer"), default="gordon"
    )
    _add_collection_args(classify)

    synthesize = commands.add_parser(
        "synthesize", help="reverse-engineer a handler expression"
    )
    synthesize.add_argument("--traces", help="JSON archive from 'collect'")
    synthesize.add_argument("--cca", choices=sorted(ALL_CCAS))
    synthesize.add_argument(
        "--classifier", choices=("gordon", "ccanalyzer"), default="gordon"
    )
    synthesize.add_argument(
        "--dsl", choices=sorted(FAMILIES), help="skip the classifier"
    )
    synthesize.add_argument("--max-depth", type=int, default=3)
    synthesize.add_argument("--max-nodes", type=int, default=5)
    synthesize.add_argument("--metric", default="dtw")
    synthesize.add_argument("--samples", type=int, default=8, help="initial N")
    synthesize.add_argument("--keep", type=int, default=5, help="initial k")
    synthesize.add_argument("--iterations", type=int, default=3)
    synthesize.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scoring processes (1 = serial; >1 spawns one pool per run)",
    )
    synthesize.add_argument(
        "--time-budget", type=float, default=None, help="seconds"
    )
    synthesize.add_argument(
        "--progress",
        action="store_true",
        help="print a progress line per iteration (stderr)",
    )
    synthesize.add_argument(
        "--run-log",
        metavar="PATH",
        help="write the run's telemetry as JSONL events to PATH",
    )
    synthesize.add_argument(
        "--report",
        choices=("text", "json"),
        default="text",
        help="result format: human-readable summary or a JSON document",
    )
    synthesize.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the cross-iteration score cache",
    )
    synthesize.add_argument(
        "--no-batch",
        action="store_true",
        help="score candidates one at a time through the scalar reference "
        "path instead of the batched fast path (identical results, slower)",
    )
    synthesize.add_argument(
        "--no-shm",
        action="store_true",
        help="broadcast segment working sets to scoring workers as "
        "pickled payloads instead of the zero-copy shared-memory "
        "plane (identical results, slower; serial runs never use "
        "the plane)",
    )
    synthesize.add_argument(
        "--no-batch-dtw",
        action="store_true",
        help="run each surviving DTW candidate through the scalar "
        "kernel instead of the batched anti-diagonal sweep "
        "(identical results, slower)",
    )
    synthesize.add_argument(
        "--no-fused",
        action="store_true",
        help="score each bucket as its own executor wave instead of "
        "fusing all live buckets into one pipelined dispatch per "
        "iteration (identical results, slower)",
    )
    synthesize.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="write atomic JSONL refinement checkpoints to PATH at "
        "iteration boundaries",
    )
    synthesize.add_argument(
        "--resume",
        metavar="PATH",
        help="resume a killed run from its checkpoint file "
        "(may equal --checkpoint to continue appending)",
    )
    synthesize.add_argument(
        "--max-pool-rebuilds",
        type=int,
        default=3,
        help="consecutive pool failures tolerated before degrading to "
        "serial scoring (default: 3)",
    )
    synthesize.add_argument(
        "--watchdog",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-sketch scoring watchdog: candidates exceeding this "
        "are quarantined with a worst-case score (default: off)",
    )
    synthesize.add_argument(
        "--trace-policy",
        choices=("off", "strict", "repair", "permissive"),
        default="repair",
        help="input triage policy for loaded traces: validate invariants "
        "and repair/refuse hostile records before synthesis "
        "(default: repair; 'off' trusts the input verbatim — "
        "bit-identical for clean traces)",
    )
    synthesize.add_argument(
        "--min-quorum",
        type=int,
        default=2,
        metavar="K",
        help="quorum guard: never score fewer than K usable segments "
        "when excluding low-quality inputs (default: 2)",
    )
    _add_collection_args(synthesize)

    validate = commands.add_parser(
        "validate",
        help="triage trace archives: defect report, repairs, quality",
    )
    validate.add_argument(
        "traces",
        nargs="+",
        metavar="TRACE.json",
        help="trace files (single-trace or bundle archives)",
    )
    validate.add_argument(
        "--policy",
        choices=("strict", "repair", "permissive"),
        default="repair",
        help="admission policy applied to each trace (default: repair)",
    )
    validate.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON report document instead of text",
    )

    submit = commands.add_parser(
        "submit", help="enqueue a reverse-engineering job into a spool"
    )
    submit.add_argument(
        "--spool", required=True, help="spool directory (created on demand)"
    )
    submit.add_argument(
        "--job-id", required=True, help="unique job name within the spool"
    )
    submit.add_argument("--traces", help="JSON archive from 'collect'")
    submit.add_argument("--cca", choices=sorted(ALL_CCAS))
    submit.add_argument(
        "--classifier", choices=("gordon", "ccanalyzer"), default="gordon"
    )
    submit.add_argument(
        "--dsl", choices=sorted(FAMILIES), help="skip the classifier"
    )
    submit.add_argument("--max-depth", type=int, default=3)
    submit.add_argument("--max-nodes", type=int, default=5)
    submit.add_argument("--metric", default="dtw")
    submit.add_argument("--samples", type=int, default=8, help="initial N")
    submit.add_argument("--keep", type=int, default=5, help="initial k")
    submit.add_argument("--iterations", type=int, default=3)
    submit.add_argument(
        "--time-budget", type=float, default=None, help="seconds"
    )
    submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="admission priority (higher runs first; default: 0)",
    )
    submit.add_argument(
        "--trace-policy",
        choices=("off", "strict", "repair", "permissive"),
        default="repair",
        help="input triage policy applied when the job starts",
    )
    submit.add_argument(
        "--duration",
        type=float,
        default=None,
        help="seconds per collected trace (--cca jobs only)",
    )
    submit.add_argument(
        "--bandwidth",
        type=float,
        nargs="+",
        default=None,
        help="bottleneck bandwidths, Mbps (--cca jobs only)",
    )
    submit.add_argument(
        "--rtt",
        type=float,
        nargs="+",
        default=None,
        help="base RTTs, ms (--cca jobs only)",
    )

    serve = commands.add_parser(
        "serve",
        help="run every queued spool job through one shared scheduler",
    )
    serve.add_argument(
        "--spool", required=True, help="spool directory (see 'submit')"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scoring processes shared by the whole fleet (1 = serial)",
    )
    serve.add_argument(
        "--quantum",
        type=int,
        default=64,
        metavar="TASKS",
        help="preemption quantum: flattened scoring tasks one job may "
        "dispatch before its peers get a turn (default: 64)",
    )
    serve.add_argument(
        "--steal-leases",
        action="store_true",
        help="take over jobs whose checkpoint lease is still fresh "
        "(use after killing a previous serve on the same spool)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="checkpoint-lease TTL; an expired lease may be taken "
        "without --steal-leases (default: 30)",
    )
    serve.add_argument(
        "--progress",
        action="store_true",
        help="print a progress line per event (stderr)",
    )
    serve.add_argument(
        "--run-log",
        metavar="PATH",
        help="write the fleet's telemetry as JSONL events to PATH",
    )
    serve.add_argument(
        "--report",
        choices=("text", "json"),
        default="text",
        help="fleet summary format",
    )
    serve.add_argument(
        "--server-id",
        default=None,
        metavar="NAME",
        help="stable identity for leases and the job ledger "
        "(default: serve-<pid>)",
    )
    serve.add_argument(
        "--claim-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between claim scans of the spool queue "
        "(default: 1)",
    )
    serve.add_argument(
        "--max-job-retries",
        type=int,
        default=3,
        metavar="N",
        help="restarts allowed for a job that keeps killing its server "
        "before it is quarantined (default: 3)",
    )
    serve.add_argument(
        "--retry-backoff",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="base of the exponential backoff applied to crash retries "
        "(default: 2)",
    )
    serve.add_argument(
        "--no-shm",
        action="store_true",
        help="broadcast segment working sets to scoring workers as "
        "pickled payloads instead of the zero-copy shared-memory "
        "plane (identical results, slower)",
    )
    serve.add_argument(
        "--drain-on-sigterm",
        action="store_true",
        help="on SIGTERM finish the slice in flight, requeue unfinished "
        "jobs, release leases, and exit 0 (graceful drain)",
    )
    serve.add_argument(
        "--exit-after-slices",
        type=int,
        default=None,
        metavar="N",
        help="fault injection: die without cleanup (exit 70) after N "
        "wave slices — exercises lease takeover and resume",
    )
    serve.add_argument(
        "--poison-job",
        action="append",
        default=None,
        metavar="JOB_ID",
        help="fault injection: kill the server (exit 70, no cleanup) "
        "whenever this job reaches --poison-after-slices dispatched "
        "slices; repeatable — exercises retry budgets and quarantine",
    )
    serve.add_argument(
        "--poison-after-slices",
        type=int,
        default=1,
        metavar="N",
        help="slices a --poison-job runs before the injected kill "
        "(default: 1)",
    )

    fleet_status_cmd = commands.add_parser(
        "fleet-status",
        help="inspect a spool without claiming: job states, retries, "
        "lease holders, server health",
    )
    fleet_status_cmd.add_argument(
        "--spool", required=True, help="spool directory (see 'submit')"
    )
    fleet_status_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON status document instead of text",
    )

    race = commands.add_parser(
        "race", help="run CCAs in competition and report fairness"
    )
    race.add_argument(
        "--cca",
        nargs="+",
        required=True,
        choices=sorted(ALL_CCAS),
        help="two or more CCAs to race",
    )
    race.add_argument("--bandwidth-mbps", type=float, default=10.0)
    race.add_argument("--rtt-ms", type=float, default=50.0)
    race.add_argument("--queue-bdp", type=float, default=1.0)
    race.add_argument("--duration", type=float, default=25.0)

    stats = commands.add_parser("stats", help="summarize archived traces")
    stats.add_argument("--traces", required=True, help="JSON archive")

    commands.add_parser("zoo", help="list registered CCAs")
    return parser


def _cmd_collect(args: argparse.Namespace) -> int:
    traces = collect_traces(args.cca, _collection_from_args(args))
    save_traces(traces, args.out)
    total_acks = sum(len(trace.acks) for trace in traces)
    print(f"wrote {len(traces)} traces ({total_acks} acks) to {args.out}")
    if args.csv:
        export_csv(traces[0], args.csv)
        print(f"wrote CSV of {traces[0].environment_label} to {args.csv}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.classify import CcaAnalyzer, GordonClassifier

    traces = _load_or_collect(args)
    tool = GordonClassifier() if args.classifier == "gordon" else CcaAnalyzer()
    verdict = tool.classify(traces)
    print(f"verdict:  {verdict.render()}")
    print(f"closest:  {verdict.closest} (distance {verdict.distance:.3f})")
    if verdict.votes:
        print(f"votes:    {verdict.votes}")
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    traces = _load_or_collect(args)
    config = SynthesisConfig(
        metric=args.metric,
        initial_samples=args.samples,
        initial_keep=args.keep,
        max_iterations=args.iterations,
        workers=args.workers,
        time_budget_seconds=args.time_budget,
        cache_scores=not args.no_cache,
        batch_scoring=not args.no_batch,
        fused_scheduling=not args.no_fused,
        shm_plane=not args.no_shm,
        batch_dtw=not args.no_batch_dtw,
        checkpoint_path=args.checkpoint,
        resume_path=args.resume,
        max_pool_rebuilds=args.max_pool_rebuilds,
        watchdog_seconds=args.watchdog,
    )
    dsl = None
    if args.dsl:
        dsl = with_budget(
            family(args.dsl), max_depth=args.max_depth, max_nodes=args.max_nodes
        )
    collector = CollectorSink()
    sinks: list = [collector]
    if args.run_log:
        try:
            open(args.run_log, "w", encoding="utf-8").close()
        except OSError as exc:
            print(f"error: cannot write --run-log: {exc}", file=sys.stderr)
            return 2
        sinks.append(JsonlSink(args.run_log))
    if args.progress:
        sinks.append(ConsoleProgressSink())
    trace_policy = None if args.trace_policy == "off" else args.trace_policy
    with RunContext(sinks) as context:
        report = reverse_engineer(
            traces,
            classifier=args.classifier,
            dsl=dsl,
            config=config,
            max_depth=None if args.dsl else args.max_depth,
            max_nodes=None if args.dsl else args.max_nodes,
            context=context,
            trace_policy=trace_policy,
            quorum=QuorumConfig(min_segments=args.min_quorum),
        )
    if args.report == "json":
        print(json.dumps(_json_report(report, collector, context)))
    else:
        print(report.summary())
        print(format_run_summary(collector.events))
    return 0


def _json_report(report, collector: CollectorSink, context: RunContext) -> dict:
    """The machine-readable synthesis report (``--report json``)."""
    cache = collector.last_of_kind(CacheStats.kind)
    scoring = collector.last_of_kind(ScoringStats.kind)
    return {
        "dsl": report.dsl.name,
        "classifier": report.verdict.render() if report.verdict else None,
        "handler": report.expression,
        "distance": report.distance,
        "segments": report.segment_count,
        "handlers_scored": report.result.total_handlers_scored,
        "sketches_drawn": report.result.total_sketches_drawn,
        "elapsed_seconds": report.result.elapsed_seconds,
        "faults": {
            "quarantined": [
                {"sketch": q.sketch, "reason": q.reason, "detail": q.detail}
                for q in report.result.quarantined
            ],
            "pool_rebuilds": report.result.pool_rebuilds,
            "degraded": report.result.degraded,
        },
        "iterations": [
            {
                "index": event.index,
                "samples_per_bucket": event.samples_per_bucket,
                "segment_count": event.segment_count,
                "buckets": event.bucket_count,
                "kept": event.kept,
                "best_distance": event.best_distance,
            }
            for event in collector.of_kind(IterationFinished.kind)
        ],
        "cache": (
            {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
                "entries": cache.entries,
            }
            if cache is not None
            else None
        ),
        "scoring": (
            {
                "batched_waves": scoring.batched_waves,
                "lb_pruned": scoring.lb_pruned,
                "dp_abandoned": scoring.dp_abandoned,
                "candidates_pruned": scoring.candidates_pruned,
                "warm_start_pruned": scoring.warm_start_pruned,
                "fused_waves": scoring.fused_waves,
                "fused_tasks": scoring.fused_tasks,
                "peak_in_flight": scoring.peak_in_flight,
                "mean_occupancy": scoring.mean_occupancy,
                "batched_dtw_sweeps": scoring.batched_dtw_sweeps,
                "envelope_precompute_ms": scoring.envelope_precompute_ms,
                "shm_bytes": scoring.shm_bytes,
                "broadcast_bytes_saved": scoring.broadcast_bytes_saved,
            }
            if scoring is not None
            else None
        ),
        "triage": (
            {
                "accepted": report.triage.accepted,
                "repaired": report.triage.repaired,
                "rejected": report.triage.rejected,
                "min_quality": report.triage.min_quality,
                "traces": [
                    {
                        "trace": r.report.trace_label,
                        "action": r.action,
                        "quality": r.quality,
                        "defects": dict(r.report.counts),
                        "repairs": {
                            a.repair: a.touched for a in r.repairs
                        },
                        "reason": r.reason,
                    }
                    for r in report.triage.results
                ],
                "quorum": (
                    {
                        "kept": len(report.quorum.kept),
                        "excluded": len(report.quorum.excluded),
                        "backfilled": len(report.quorum.backfilled),
                        "degraded": report.quorum.degraded,
                    }
                    if report.quorum is not None
                    else None
                ),
            }
            if report.triage is not None
            else None
        ),
        "phase_seconds": dict(context.phase_seconds),
    }


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.errors import SynthesisError
    from repro.service import submit_job

    if bool(args.traces) == bool(args.cca):
        raise SystemExit("error: provide --traces FILE or --cca NAME")
    config = {
        "metric": args.metric,
        "initial_samples": args.samples,
        "initial_keep": args.keep,
        "max_iterations": args.iterations,
    }
    if args.time_budget is not None:
        config["time_budget_seconds"] = args.time_budget
    collection = {}
    if args.duration is not None:
        collection["duration"] = args.duration
    if args.bandwidth is not None:
        collection["bandwidth"] = args.bandwidth
    if args.rtt is not None:
        collection["rtt"] = args.rtt
    try:
        path = submit_job(
            args.spool,
            args.job_id,
            traces=args.traces,
            cca=args.cca,
            classifier=args.classifier,
            dsl=args.dsl,
            max_depth=args.max_depth,
            max_nodes=args.max_nodes,
            priority=args.priority,
            trace_policy=(
                None if args.trace_policy == "off" else args.trace_policy
            ),
            config=config,
            collection=collection or None,
        )
    except SynthesisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"queued {args.job_id}: {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.reporting import fleet_rollup
    from repro.runtime.faults import ServiceFaultPlan
    from repro.service import FleetServer

    collector = CollectorSink()
    sinks: list = [collector]
    if args.run_log:
        try:
            open(args.run_log, "w", encoding="utf-8").close()
        except OSError as exc:
            print(f"error: cannot write --run-log: {exc}", file=sys.stderr)
            return 2
        sinks.append(JsonlSink(args.run_log))
    if args.progress:
        sinks.append(ConsoleProgressSink())
    fault_plan = None
    if args.exit_after_slices is not None or args.poison_job:
        fault_plan = ServiceFaultPlan.make(
            kill_after_slices=args.exit_after_slices,
            poison_jobs=args.poison_job or (),
            poison_after_slices=args.poison_after_slices,
        )
    with RunContext(sinks) as context:
        server = FleetServer(
            args.spool,
            server_id=args.server_id,
            workers=args.workers,
            quantum_tasks=args.quantum,
            steal_leases=args.steal_leases,
            lease_ttl_seconds=args.lease_ttl,
            claim_interval_seconds=args.claim_interval,
            max_job_retries=args.max_job_retries,
            retry_backoff_seconds=args.retry_backoff,
            use_shm=not args.no_shm,
            context=context,
            fault_plan=fault_plan,
        )
        if args.drain_on_sigterm:
            signal.signal(
                signal.SIGTERM, lambda *_: server.request_drain()
            )
        snapshots = server.run()
    failed = sum(
        1
        for snap in snapshots.values()
        if snap.get("state") in ("failed", "quarantined")
    )
    if args.report == "json":
        print(
            json.dumps(
                {
                    "jobs": snapshots,
                    "fleet": fleet_rollup(collector.events),
                    "phase_seconds": dict(context.phase_seconds),
                }
            )
        )
    else:
        for job_id, snap in sorted(snapshots.items()):
            state = snap.get("state", "?")
            if state == "completed":
                distance = snap.get("best_distance")
                rendered = "-" if distance is None else f"{distance:.3f}"
                print(
                    f"{job_id}: {state} "
                    f"(distance {rendered}) {snap.get('best_expression')}"
                )
            else:
                print(f"{job_id}: {state} ({snap.get('error') or 'pending'})")
        print(format_run_summary(collector.events))
    return 1 if failed else 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    from repro.service import fleet_status

    status = fleet_status(args.spool)
    if args.json:
        print(json.dumps(status))
        return 0
    states = status["states"]
    total = sum(states.values())
    summary = ", ".join(
        f"{states[state]} {state}" for state in sorted(states)
    )
    print(
        f"spool {status['spool']}: {total} job(s)"
        + (f" ({summary})" if summary else "")
    )
    for job_id, info in sorted(status["jobs"].items()):
        lease = info["lease"]
        held = "-"
        if lease is not None:
            mark = "expired" if lease["expired"] else "live"
            held = (
                f"{lease['owner']} ({mark}, "
                f"hb {lease['age_seconds']:.1f}s ago)"
            )
        distance = info["best_distance"]
        rendered = "-" if distance is None else f"{distance:.3f}"
        print(
            f"  {job_id}: {info['state']} attempts={info['attempts']} "
            f"crashes={info['crashes']} distance={rendered} lease={held}"
        )
        failure = info["last_failure"]
        if failure:
            print(
                f"    last failure: {failure.get('reason')}: "
                f"{failure.get('detail')}"
            )
    for server, info in sorted(status["servers"].items()):
        mark = "live" if info["live"] else "dead"
        print(
            f"  server {server}: {mark}, {len(info['jobs'])} job(s): "
            f"{', '.join(info['jobs'])}"
        )
    return 0


def _cmd_race(args: argparse.Namespace) -> int:
    from repro.cca.registry import make_cca
    from repro.netsim.multiflow import fairness_report, simulate_competition

    env = Environment(
        bandwidth_mbps=args.bandwidth_mbps,
        rtt_ms=args.rtt_ms,
        queue_bdp=args.queue_bdp,
    )
    traces = simulate_competition(
        [make_cca(name) for name in args.cca], env, duration=args.duration
    )
    window = (args.duration / 2.0, args.duration)
    report = fairness_report(traces, window=window)
    print(f"racing {', '.join(args.cca)} over {env.label} "
          f"({env.queue_capacity_bytes} B buffer)")
    for key, value in report.items():
        if key.startswith("share_"):
            print(f"  {key}: {value:.1%}")
    print(f"  jain_index: {report['jain_index']:.3f}")
    print(f"  aggregate:  {report['total_rate'] * 8 / 1e6:.2f} Mbps")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.trace.stats import summarize

    for trace in load_traces(args.traces):
        stats = summarize(trace)
        print(f"{trace.cca_name} @ {trace.environment_label}:")
        print(
            f"  goodput {stats.goodput_bps / 1e6:.2f} Mbps over "
            f"{stats.duration:.1f}s ({stats.delivered_bytes} B)"
        )
        print(
            f"  rtt min/p50/p95 {stats.rtt_min * 1e3:.1f}/"
            f"{stats.rtt_p50 * 1e3:.1f}/{stats.rtt_p95 * 1e3:.1f} ms "
            f"(inflation x{stats.rtt_inflation():.2f})"
        )
        print(
            f"  losses {stats.loss_events} "
            f"({stats.loss_rate_per_sec:.2f}/s), window mean "
            f"{stats.cwnd_mean:.0f} B [{stats.cwnd_p10:.0f}"
            f"..{stats.cwnd_p90:.0f}]"
        )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Triage report over trace archives; exit 1 on any refusal.

    Load failures (truncated JSON, schema drift, malformed records)
    are reported as ``unloadable`` entries rather than crashing, so a
    collection campaign can sweep a whole capture directory in one run.
    """
    from repro.errors import TraceError

    policy = TriagePolicy(mode=args.policy)
    failures = 0
    documents = []
    for path in args.traces:
        try:
            traces = load_trace_file(path)
        except (TraceError, OSError) as exc:
            failures += 1
            documents.append(
                {
                    "path": path,
                    "action": "unloadable",
                    "error": str(exc),
                }
            )
            if not args.json:
                print(f"{path}: REFUSED (unloadable)\n  {exc}")
            continue
        for position, trace in enumerate(traces):
            result = triage_trace(trace, policy)
            label = (
                f"{path}[{position}]" if len(traces) > 1 else path
            )
            entry = {
                "path": label,
                "trace": result.report.trace_label,
                "action": result.action,
                "quality": round(result.quality, 4),
                "defects": dict(result.report.counts),
                "repairs": {a.repair: a.touched for a in result.repairs},
            }
            if result.reason:
                entry["reason"] = result.reason
            documents.append(entry)
            if result.action == "rejected":
                failures += 1
            if args.json:
                continue
            if result.action == "clean":
                print(f"{label}: OK ({result.report.trace_label} clean)")
            elif result.action == "repaired":
                repairs = ", ".join(
                    f"{a.repair} x{a.touched}" for a in result.repairs
                )
                print(
                    f"{label}: REPAIRED quality={result.quality:.2f} "
                    f"({repairs})"
                )
                for code in sorted(result.report.counts):
                    print(
                        f"  {code} x{result.report.counts[code]}"
                    )
            else:
                print(f"{label}: REFUSED ({result.reason})")
                for code in sorted(result.report.counts):
                    print(f"  {code} x{result.report.counts[code]}")
    if args.json:
        print(
            json.dumps(
                {
                    "policy": args.policy,
                    "failures": failures,
                    "reports": documents,
                }
            )
        )
    else:
        total = len(documents)
        print(
            f"validated {total} trace document(s) under "
            f"{args.policy!r}: {failures} refused"
        )
    return 1 if failures else 0


def _cmd_zoo(_: argparse.Namespace) -> int:
    for name in cca_names():
        cls = ALL_CCAS[name]
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name:10s} {doc}")
    return 0


_COMMANDS = {
    "collect": _cmd_collect,
    "classify": _cmd_classify,
    "synthesize": _cmd_synthesize,
    "submit": _cmd_submit,
    "serve": _cmd_serve,
    "fleet-status": _cmd_fleet_status,
    "race": _cmd_race,
    "stats": _cmd_stats,
    "validate": _cmd_validate,
    "zoo": _cmd_zoo,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
