"""Synthesis result and instrumentation records.

Beyond the winning handler, benchmarks need visibility into *how* the
search went: the per-iteration bucket ranking reproduces Table 4 (where
the fine-tuned handler's bucket ranked after iterations 1 and 2) and the
§6.1 search-efficiency numbers (how much of the space was scored).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.printer import to_text
from repro.dsl.simplify import simplify
from repro.runtime.supervise import Quarantined
from repro.synth.scoring import ScoredHandler

__all__ = ["IterationRecord", "SynthesisResult"]


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of one refinement-loop iteration."""

    index: int
    samples_per_bucket: int
    segment_count: int
    #: (bucket key, bucket score) sorted best-first — the ranking used
    #: for the top-k cut.
    ranking: tuple[tuple[frozenset[str], float], ...]
    kept: tuple[frozenset[str], ...]
    handlers_scored: int

    def rank_of(self, key: frozenset[str]) -> int | None:
        """1-based rank of *key* in this iteration's ranking, if present."""
        for position, (bucket_key, _) in enumerate(self.ranking, start=1):
            if bucket_key == key:
                return position
        return None

    @property
    def bucket_count(self) -> int:
        return len(self.ranking)


@dataclass
class SynthesisResult:
    """The outcome of one synthesis run."""

    best: ScoredHandler
    dsl_name: str
    iterations: list[IterationRecord] = field(default_factory=list)
    initial_bucket_count: int = 0
    total_handlers_scored: int = 0
    total_sketches_drawn: int = 0
    elapsed_seconds: float = 0.0
    #: Candidates that hung/raised/crashed and were worst-case scored
    #: instead of killing the run (includes entries restored on resume).
    quarantined: tuple[Quarantined, ...] = ()
    #: Scoring pools spawned beyond the first (0 for a healthy run).
    pool_rebuilds: int = 0
    #: True when supervision fell back to serial scoring mid-run.
    degraded: bool = False

    @property
    def expression(self) -> str:
        """The winning handler, arithmetically simplified for readability
        (as Table 2's presentation does; concretization can instantiate a
        hole with 1 or 0 and leave a reducible product behind)."""
        return to_text(simplify(self.best.handler))

    @property
    def distance(self) -> float:
        return self.best.distance

    def summary(self) -> str:
        text = (
            f"[{self.dsl_name}] {self.expression}  "
            f"(distance {self.distance:.2f}, "
            f"{self.total_handlers_scored} handlers scored over "
            f"{len(self.iterations)} iterations, "
            f"{self.elapsed_seconds:.1f}s)"
        )
        if self.quarantined or self.pool_rebuilds or self.degraded:
            notes = [f"{len(self.quarantined)} quarantined"]
            if self.pool_rebuilds:
                notes.append(f"{self.pool_rebuilds} pool rebuild(s)")
            if self.degraded:
                notes.append("degraded to serial")
            text += f"  [faults: {', '.join(notes)}]"
        return text
