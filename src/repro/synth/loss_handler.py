"""Extension: synthesizing cwnd-on-*loss* handlers.

The paper scopes Abagnale to the cwnd-on-ack handler but argues the
technique "generalizes to synthesizing expressions to update other known
state variables for other events" (§3, Model).  This module implements
that generalization for the loss event.

A loss reaction is a point decision, not a time series: at each loss the
CCA maps its current window (plus congestion signals) to a new window —
``0.5 * cwnd`` for Reno, ``ack_rate * min_rtt`` for Westwood, ``0.7 *
cwnd`` for Cubic.  So instead of trace replay + DTW, candidates are
scored by mean relative error over the observed *(state-at-loss →
window-after-reaction)* pairs, and the same constraint enumerator and
constant pool explore the same DSLs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.dsl import ast
from repro.dsl.evaluate import evaluate
from repro.dsl.families import DslSpec
from repro.dsl.printer import to_text
from repro.errors import EvaluationError, SynthesisError
from repro.runtime.context import RunContext
from repro.runtime.events import RunFinished, RunStarted
from repro.synth.concretize import concretizations
from repro.synth.enumerator import enumerate_sketches
from repro.trace.model import Trace
from repro.trace.segmentation import segment_trace
from repro.trace.signals import extract_signals

__all__ = [
    "LossSample",
    "extract_loss_samples",
    "LossSynthesisResult",
    "synthesize_loss_handler",
]


@dataclass(frozen=True)
class LossSample:
    """One observed loss reaction.

    ``env`` is the signal environment *at* the loss (with ``cwnd`` bound
    to the pre-loss window); ``cwnd_after`` is the window observed once
    the CCA has reacted (the first ACKs of the following segment).
    """

    env: dict[str, float]
    cwnd_before: float
    cwnd_after: float


def extract_loss_samples(trace: Trace) -> list[LossSample]:
    """Pair each loss-delimited segment boundary into a loss sample.

    The pre-loss window is the last visible window of the segment before
    the loss; the post-reaction window is the first visible window of the
    segment after it.  Signals are taken from the end of the pre-loss
    segment (what the CCA could observe when it reacted).
    """
    segments = segment_trace(trace)
    samples: list[LossSample] = []
    for before, after in itertools.pairwise(segments):
        if after.preceding_loss_time <= before.preceding_loss_time:
            continue
        table = extract_signals(before)
        if len(table) == 0:
            continue
        last = len(table) - 1
        cwnd_before = float(table.observed_cwnd()[last])
        env = table.environment_at(last, cwnd_before)
        after_table = extract_signals(after)
        cwnd_after = float(after_table.observed_cwnd()[0])
        sample = LossSample(
            env=env, cwnd_before=cwnd_before, cwnd_after=cwnd_after
        )
        # Back-to-back losses in one episode replicate near-identical
        # (before, after) pairs; keep one per distinct reaction.
        duplicate = samples and (
            abs(samples[-1].cwnd_before - cwnd_before) < 1.0
            and abs(samples[-1].cwnd_after - cwnd_after) < 1.0
        )
        if not duplicate:
            samples.append(sample)
    return samples


def _loss_error(handler: ast.NumExpr, samples: list[LossSample]) -> float:
    """Median relative error of the handler's predicted post-loss window.

    The median, not the mean: a congestion episode with several
    back-to-back losses produces outlier samples (the visible window
    collapses through repeated reductions), and a mean would let those
    episodes drag the search toward over-aggressive decrease factors.
    """
    errors: list[float] = []
    for sample in samples:
        try:
            predicted = evaluate(handler, sample.env)
        except EvaluationError:
            return float("inf")
        scale = max(sample.cwnd_after, sample.env["mss"])
        errors.append(abs(predicted - sample.cwnd_after) / scale)
    errors.sort()
    middle = len(errors) // 2
    if len(errors) % 2:
        return errors[middle]
    return 0.5 * (errors[middle - 1] + errors[middle])


@dataclass
class LossSynthesisResult:
    """Outcome of a loss-handler search."""

    handler: ast.NumExpr
    error: float
    samples: int
    candidates_scored: int = 0
    ranking: list[tuple[ast.NumExpr, float]] = field(default_factory=list)

    @property
    def expression(self) -> str:
        return to_text(self.handler)


def synthesize_loss_handler(
    traces: list[Trace],
    dsl: DslSpec,
    *,
    max_nodes: int = 3,
    max_depth: int = 3,
    completion_cap: int = 24,
    max_sketches: int = 3000,
    keep_top: int = 5,
    context: RunContext | None = None,
) -> LossSynthesisResult:
    """Search *dsl* for the expression that best predicts loss reactions.

    The space of useful loss handlers is small (they are depth-2/3
    rescalings of state), so a direct enumerate-concretize-score sweep
    within ``max_sketches`` suffices; no bucketized refinement is needed.
    *context* receives ``run_started``/``run_finished`` telemetry like
    the main synthesis loop.
    """
    ctx = context if context is not None else RunContext()
    samples: list[LossSample] = []
    with ctx.timer("extract-loss-samples"):
        for trace in traces:
            samples.extend(extract_loss_samples(trace))
    if len(samples) < 3:
        raise SynthesisError(
            f"need at least 3 loss samples, found {len(samples)}: "
            "collect longer or lossier traces"
        )
    ctx.emit(
        RunStarted(
            run="loss",
            dsl_name=dsl.name,
            bucket_count=0,
            segment_count=len(samples),
            workers=1,
        )
    )

    best: tuple[ast.NumExpr, float] | None = None
    ranking: list[tuple[ast.NumExpr, float]] = []
    scored = 0
    started = ctx.elapsed()
    with ctx.timer("loss-sweep"):
        sketch_stream = itertools.islice(
            enumerate_sketches(dsl, max_nodes=max_nodes, max_depth=max_depth),
            max_sketches,
        )
        for sketch in sketch_stream:
            for handler in concretizations(
                sketch, dsl.constant_pool, cap=completion_cap
            ):
                error = _loss_error(handler, samples)
                scored += 1
                if best is None or error < best[1]:
                    best = (handler, error)
                ranking.append((handler, error))

    if best is None:
        raise SynthesisError(f"DSL {dsl.name!r} produced no loss candidates")
    ranking.sort(key=lambda item: item[1])
    result = LossSynthesisResult(
        handler=best[0],
        error=best[1],
        samples=len(samples),
        candidates_scored=scored,
        ranking=ranking[:keep_top],
    )
    ctx.emit(
        RunFinished(
            run="loss",
            best_distance=result.error,
            expression=result.expression,
            handlers_scored=scored,
            elapsed_seconds=ctx.elapsed() - started,
            phase_seconds=dict(ctx.phase_seconds),
        )
    )
    return result
