"""Abagnale's refinement loop (Algorithm 1, §4.4).

Each iteration samples ``N`` sketches from every surviving bucket, scores
them over the current trace working set, assigns each bucket the minimum
distance any of its sketches achieved, and keeps only the top-``k``
buckets (including ties at the k-th score).  Between iterations the
schedule deepens the search: ``N ← 8N``, ``k ← k/2``, and the working set
grows by two segments.  The loop ends when a single bucket survives (it
is then enumerated exhaustively, within a cap) or every surviving bucket
has already been exhausted; the lowest-distance handler seen anywhere is
returned, so interrupting early still yields the best-so-far.

Execution rides on :mod:`repro.runtime`: one scoring executor per run
(a persistent process pool when ``workers > 1``), an optional
cross-iteration score cache, and typed telemetry through a
:class:`~repro.runtime.context.RunContext`.  With ``workers=1``, no
sinks and the cache returning exact floats, results are bit-identical
to the pre-runtime implementation.

``time_budget_seconds`` is enforced *inside* scoring waves, not just
between iterations: the deadline is passed down to the executor, which
stops dispatching once it trips (while still scoring at least one
sketch per live bucket so a ranking always exists), so a single large
bucket cannot overshoot the budget unboundedly.

Fault tolerance (``docs/RESILIENCE.md``): the executor quarantines
candidates that hang, raise, or crash their worker (worst-case score
instead of a dead run), supervision rebuilds crashed pools and degrades
to serial when they cannot be kept alive, and ``checkpoint_path`` /
``resume_path`` persist the loop's decision log at iteration boundaries
so a killed run resumed from its last checkpoint converges to the same
final ranking as an uninterrupted one.  Resume *replays* the recorded
draw/prune decisions against a fresh bucket pool — the enumeration
stream is deterministic, so no sketch or score needs to be persisted.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.dsl.families import DslSpec
from repro.dsl.parser import parse
from repro.dsl.printer import to_text
from repro.errors import SynthesisError
from repro.runtime.cache import DEFAULT_CACHE_ENTRIES, ScoreCache
from repro.runtime.checkpoint import (
    CheckpointWriter,
    RefinementCheckpoint,
    load_checkpoint,
)
from repro.runtime.context import RunContext
from repro.runtime.events import (
    BucketScored,
    BudgetExceeded,
    CheckpointSaved,
    IterationFinished,
    RunFinished,
    RunResumed,
    RunStarted,
    bucket_label,
)
from repro.runtime.executors import make_executor
from repro.runtime.faults import FaultPlan
from repro.runtime.protocol import (
    ExecutorSnapshot,
    ProgressReport,
    ScorerReady,
    StatsRequest,
    WaveReply,
    WaveRequest,
)
from repro.runtime.supervise import Quarantined, SupervisionPolicy
from repro.synth.pool import BucketPool
from repro.synth.result import IterationRecord, SynthesisResult
from repro.synth.scoring import ScoredHandler, Scorer
from repro.trace.model import TraceSegment
from repro.trace.selection import select_diverse_segments

__all__ = ["SynthesisConfig", "synthesize", "synthesize_core", "drive"]


@dataclass(frozen=True)
class SynthesisConfig:
    """Tunable parameters of the refinement loop.

    Defaults follow the paper's schedule (N=16, k=5, N×8, k/2, +2
    segments per iteration) with laptop-scale caps on completions and
    the final exhaustive pass.
    """

    metric: str = "dtw"
    initial_samples: int = 16
    initial_keep: int = 5
    sample_growth: int = 8
    initial_segments: int = 2
    segment_growth: int = 2
    completion_cap: int = 32
    max_iterations: int = 5
    exhaustive_cap: int = 1500
    workers: int = 1
    seed: int = 0
    #: Scoring cost knobs, forwarded to :class:`~repro.synth.scoring.Scorer`.
    series_budget: int = 128
    max_replay_rows: int = 384
    #: Wall-clock budget; enforced inside scoring waves (best-so-far wins).
    time_budget_seconds: float | None = None
    #: Cross-iteration (handler, segment) score memoization.  Cached
    #: values are the exact floats a cold scorer computes, so disabling
    #: this changes runtime, never results.
    cache_scores: bool = True
    cache_max_entries: int = DEFAULT_CACHE_ENTRIES
    #: Per-sketch watchdog: a candidate scoring longer than this is
    #: quarantined (worst-case score) instead of wedging the run.
    #: ``None`` disables the watchdog (the bit-identical default).
    watchdog_seconds: float | None = None
    #: Consecutive pool failures tolerated (each one triggers a rebuild
    #: with backoff) before scoring degrades to serial for the rest of
    #: the run.
    max_pool_rebuilds: int = 3
    #: Persist refinement state to this JSONL file at iteration
    #: boundaries (atomic writes; see ``docs/RESILIENCE.md``).
    checkpoint_path: str | None = None
    #: Checkpoint every N iteration boundaries (the last boundary before
    #: the loop exits is always written).
    checkpoint_every: int = 1
    #: Restore refinement state from this checkpoint file before looping.
    resume_path: str | None = None
    #: Score each sketch's concretizations through the batched fast path
    #: (vectorized replay + lower-bound distance cascade).  Final rankings
    #: are bit-identical either way, so this is an execution knob — it
    #: MUST stay excluded from :func:`_run_fingerprint` (a run started
    #: batched can be resumed scalar, and vice versa).
    batch_scoring: bool = True
    #: Score all live buckets as ONE fused wave per iteration (round-robin
    #: interleaved, per-bucket incumbent warm starts) instead of one
    #: executor barrier per bucket.  Bucket minima stay exact, so
    #: rankings, prunes, and checkpoints are bit-identical either way —
    #: an execution knob, excluded from :func:`_run_fingerprint` like
    #: ``batch_scoring`` (a run started fused can be resumed per-bucket,
    #: and vice versa).
    fused_scheduling: bool = True
    #: Broadcast each pooled working set through ONE shared-memory
    #: segment plane (:mod:`repro.runtime.shm`) instead of pickling the
    #: segments into every worker.  Transport only — scores, rankings,
    #: and checkpoints are byte-identical either way — so this is an
    #: execution knob, excluded from :func:`_run_fingerprint` (a run
    #: started with the plane can be resumed with ``--no-shm``, and
    #: vice versa).  Ignored when ``workers == 1``.
    shm_plane: bool = True
    #: Sweep each candidate wave's surviving DTW lanes through the
    #: batched anti-diagonal kernel
    #: (:func:`repro.distance.dtw.dtw_distance_batch`) with per-lane
    #: early abandonment, instead of one scalar DP per candidate.
    #: Bit-identical distances; an execution knob, excluded from
    #: :func:`_run_fingerprint` like ``batch_scoring``.
    batch_dtw: bool = True
    #: Deterministic fault injection (tests only; ``None`` in production).
    fault_plan: FaultPlan | None = None


@dataclass
class _LoopState:
    best: ScoredHandler | None = None
    handlers_scored: int = 0
    sketches_drawn: int = 0
    records: list[IterationRecord] = field(default_factory=list)

    def observe(self, scored: ScoredHandler, completions: int) -> None:
        self.handlers_scored += completions
        if self.best is None or scored.distance < self.best.distance:
            self.best = scored


def _working_set(
    segments: list[TraceSegment], count: int, seed: int
) -> list[TraceSegment]:
    return select_diverse_segments(
        segments, min(count, len(segments)), rng=random.Random(seed)
    )


def _run_fingerprint(
    dsl: DslSpec, config: SynthesisConfig, segment_count: int
) -> dict[str, Any]:
    """Everything a checkpoint must agree on to be resumable.

    Only inputs that shape the search's *decisions* belong here: the
    DSL, the schedule, the scoring knobs, and the trace corpus size.
    Execution knobs (workers, cache, watchdog, budgets) change wall
    clock, never results, so a run checkpointed with 4 workers can be
    resumed with 1 — or vice versa.
    """
    return {
        "dsl": dsl.name,
        "segments": segment_count,
        "metric": config.metric,
        "initial_samples": config.initial_samples,
        "initial_keep": config.initial_keep,
        "sample_growth": config.sample_growth,
        "initial_segments": config.initial_segments,
        "segment_growth": config.segment_growth,
        "completion_cap": config.completion_cap,
        "max_iterations": config.max_iterations,
        "exhaustive_cap": config.exhaustive_cap,
        "seed": config.seed,
        "series_budget": config.series_budget,
        "max_replay_rows": config.max_replay_rows,
    }


def synthesize_core(
    segments: list[TraceSegment],
    dsl: DslSpec,
    config: SynthesisConfig | None = None,
    *,
    context: RunContext | None = None,
):
    """The refinement loop as a re-entrant generator.

    Yields :mod:`repro.runtime.protocol` requests (``ScorerReady``, then
    ``WaveRequest`` / ``StatsRequest`` / ``ProgressReport``) and expects
    the matching replies via ``send()``; the final
    :class:`~repro.synth.result.SynthesisResult` is the generator's
    return value.  Driven by :func:`drive` with a private executor this
    is bit-identical to the classic blocking :func:`synthesize`; driven
    by a :class:`~repro.runtime.scheduler.Scheduler` many cores share
    one executor, with waves sliced at bucket granularity (sound: see
    ``WaveRequest``).  Search decisions — draws, rankings, prunes,
    checkpoints — are made entirely in here, so *who* services the waves
    can never change *what* the search concludes.
    """
    if not segments:
        raise SynthesisError("synthesis requires at least one trace segment")
    config = config or SynthesisConfig()
    ctx = context if context is not None else RunContext()
    scorer = Scorer(
        metric_name=config.metric,
        constant_pool=dsl.constant_pool,
        completion_cap=config.completion_cap,
        seed=config.seed,
        series_budget=config.series_budget,
        max_replay_rows=config.max_replay_rows,
        cache=(
            ScoreCache(config.cache_max_entries)
            if config.cache_scores
            else None
        ),
        batch=config.batch_scoring,
        batch_dtw=config.batch_dtw,
    )
    pool = BucketPool(dsl, context=ctx)
    initial_bucket_count = len(pool.buckets)
    state = _LoopState()
    started = time.perf_counter()
    deadline = (
        started + config.time_budget_seconds
        if config.time_budget_seconds is not None
        else None
    )

    ctx.emit(
        RunStarted(
            run="synthesis",
            dsl_name=dsl.name,
            bucket_count=initial_bucket_count,
            segment_count=len(segments),
            workers=config.workers,
        )
    )

    def out_of_time() -> bool:
        return deadline is not None and time.perf_counter() >= deadline

    def note_budget(phase: str) -> None:
        assert config.time_budget_seconds is not None
        ctx.emit(
            BudgetExceeded(
                phase=phase,
                budget_seconds=config.time_budget_seconds,
                elapsed_seconds=time.perf_counter() - started,
            )
        )

    fingerprint = _run_fingerprint(dsl, config, len(segments))
    prior_quarantine: list[Quarantined] = []
    start_iteration = 0
    loop_done = False
    resume_state: RefinementCheckpoint | None = None
    if config.resume_path is not None:
        resume_state = load_checkpoint(config.resume_path)
        if resume_state is None:
            raise SynthesisError(
                f"no usable checkpoint found at {config.resume_path!r}"
            )
        if resume_state.fingerprint != fingerprint:
            changed = sorted(
                key
                for key in fingerprint
                if resume_state.fingerprint.get(key) != fingerprint[key]
            )
            raise SynthesisError(
                "checkpoint does not match this run's configuration"
                f" (differs on: {', '.join(changed) or 'schema'})"
            )
    writer = (
        CheckpointWriter(config.checkpoint_path)
        if config.checkpoint_path is not None
        else None
    )

    # Hand the scorer to whoever is driving; every WaveRequest after this
    # yield has an executor (private or shared) to land on.
    yield ScorerReady(
        scorer=scorer,
        workers=config.workers,
        max_pool_rebuilds=config.max_pool_rebuilds,
        watchdog_seconds=config.watchdog_seconds,
        fault_plan=config.fault_plan,
        context=ctx,
        use_shm=config.shm_plane,
    )
    # Cumulative quarantine log for this run, as of the latest wave reply
    # (quarantines only ever happen inside waves, so at a checkpoint
    # boundary this is exactly what executor.quarantined used to read).
    wave_quarantined: tuple[Quarantined, ...] = ()

    n_samples = config.initial_samples
    keep = config.initial_keep
    segment_count = config.initial_segments

    if resume_state is not None:
        # Replay the checkpointed decision log against a fresh pool:
        # the enumeration stream is deterministic, so drawing the
        # same targets and pruning to the recorded survivors
        # reconstructs the exact state scoring left behind.
        for record in resume_state.records:
            pool.draw(record.samples_per_bucket)
            pool.prune(set(record.kept))
        state.records = list(resume_state.records)
        state.handlers_scored = resume_state.handlers_scored
        state.sketches_drawn = pool.generated
        if resume_state.best_expression is not None:
            state.best = ScoredHandler(
                parse(resume_state.best_expression),
                resume_state.best_distance,
            )
        prior_quarantine = list(resume_state.quarantined)
        n_samples = resume_state.next_samples
        keep = resume_state.next_keep
        segment_count = resume_state.next_segment_count
        start_iteration = len(resume_state.records)
        loop_done = resume_state.loop_done
        ctx.emit(
            RunResumed(
                path=config.resume_path,
                iterations_restored=start_iteration,
            )
        )

    def write_checkpoint(finished: bool) -> None:
        if writer is None:
            return
        completed = len(state.records)
        due = completed % max(config.checkpoint_every, 1) == 0
        if not (due or finished):
            return
        writer.write(
            RefinementCheckpoint(
                fingerprint=fingerprint,
                records=tuple(state.records),
                best_expression=(
                    to_text(state.best.handler)
                    if state.best is not None
                    else None
                ),
                best_distance=(
                    state.best.distance
                    if state.best is not None
                    else float("inf")
                ),
                handlers_scored=state.handlers_scored,
                loop_done=finished,
                next_samples=n_samples,
                next_keep=keep,
                next_segment_count=segment_count,
                quarantined=tuple(prior_quarantine) + wave_quarantined,
            )
        )
        ctx.emit(
            CheckpointSaved(
                path=writer.path, iteration=completed
            )
        )

    with ctx.timer("refinement"):
        for iteration in range(start_iteration, config.max_iterations):
            if loop_done:
                break
            working = _working_set(
                segments, segment_count, config.seed + iteration
            )
            # Draw up to the cumulative sample size (one shared
            # enumeration pass feeds all buckets) and score everything
            # each bucket has drawn so far against the current working
            # set (old samples must be re-scored: the working set
            # changed — that re-scoring is what the score cache
            # deduplicates on the overlapping segments).
            pool.draw(n_samples)
            state.sketches_drawn = pool.generated
            buckets = [bucket for bucket in pool.live if bucket.drawn]
            if not buckets:
                raise SynthesisError(
                    f"DSL {dsl.name!r} produced no sketches within its"
                    " budgets"
                )
            pool_size = len(dsl.constant_pool)

            def note_bucket(bucket, results, iteration=iteration) -> None:
                bucket.score = min(
                    result.distance for result in results
                )
                for sketch, result in zip(bucket.drawn, results):
                    completions = min(
                        sketch.completion_count(pool_size),
                        config.completion_cap,
                    )
                    state.observe(result, completions)
                ctx.emit(
                    BucketScored(
                        iteration=iteration + 1,
                        bucket=bucket_label(bucket.key),
                        score=bucket.score,
                        sketches=len(results),
                    )
                )

            if config.fused_scheduling:
                # One pipelined dispatch for the whole iteration: all
                # buckets' samples interleaved round-robin, scattered
                # back positionally (docs/PERFORMANCE.md).
                reply = yield WaveRequest(
                    groups=tuple(
                        tuple(bucket.drawn) for bucket in buckets
                    ),
                    segments=working,
                    deadline=deadline,
                    min_results=1,
                    fused=True,
                    phase="refinement",
                )
                wave_quarantined = reply.quarantined
                for bucket, results in zip(buckets, reply.grouped):
                    note_bucket(bucket, results)
            else:
                for bucket in buckets:
                    reply = yield WaveRequest(
                        groups=(tuple(bucket.drawn),),
                        segments=working,
                        deadline=deadline,
                        min_results=1,
                        fused=False,
                        phase="refinement",
                    )
                    wave_quarantined = reply.quarantined
                    note_bucket(bucket, reply.grouped[0])
            ranking = sorted(buckets, key=lambda bucket: bucket.score)
            cutoff_index = min(keep, len(ranking)) - 1
            cutoff = ranking[cutoff_index].score
            survivors = [
                bucket for bucket in ranking if bucket.score <= cutoff
            ]
            state.records.append(
                IterationRecord(
                    index=iteration + 1,
                    samples_per_bucket=n_samples,
                    segment_count=len(working),
                    ranking=tuple(
                        (bucket.key, bucket.score) for bucket in ranking
                    ),
                    kept=tuple(bucket.key for bucket in survivors),
                    handlers_scored=state.handlers_scored,
                )
            )
            pool.prune({bucket.key for bucket in survivors})
            # One combined snapshot: cache_stats() + scoring_stats()
            # separately would cost two pool-wide barrier broadcasts.
            # A scheduler may answer (None, None); stats are fleet-wide
            # there and the run log simply carries no per-job counters.
            snapshot = yield StatsRequest()
            if snapshot.cache is not None:
                ctx.emit(snapshot.cache)
            if snapshot.scoring is not None:
                ctx.emit(snapshot.scoring)
            ctx.emit(
                IterationFinished(
                    index=iteration + 1,
                    samples_per_bucket=n_samples,
                    segment_count=len(working),
                    bucket_count=len(ranking),
                    kept=len(survivors),
                    best_distance=(
                        state.best.distance
                        if state.best is not None
                        else float("inf")
                    ),
                    handlers_scored=state.handlers_scored,
                    elapsed_seconds=time.perf_counter() - started,
                )
            )
            finished = len(pool.buckets) == 1 or pool.exhausted
            if not finished:
                n_samples *= config.sample_growth
                keep = max(keep // 2, 1)
                segment_count += config.segment_growth
            # Checkpoint at the iteration boundary: the decision log
            # plus the *next* schedule values (unchanged when the
            # loop is done — the exhaustive pass reads them).
            write_checkpoint(finished)
            yield ProgressReport(
                iteration=iteration + 1,
                best_expression=(
                    to_text(state.best.handler)
                    if state.best is not None
                    else None
                ),
                best_distance=(
                    state.best.distance
                    if state.best is not None
                    else float("inf")
                ),
                handlers_scored=state.handlers_scored,
                phase="refinement",
            )
            if out_of_time():
                note_budget("refinement")
                break
            if finished:
                break

    # Final exhaustive pass over the surviving bucket(s), within the cap.
    if not out_of_time():
        with ctx.timer("exhaustive"):
            working = _working_set(
                segments, segment_count, config.seed + config.max_iterations
            )
            already = {
                bucket.key: len(bucket.drawn) for bucket in pool.live
            }
            pool.draw(
                config.exhaustive_cap,
                max_steps=40 * config.exhaustive_cap,
            )
            state.sketches_drawn = pool.generated
            live = list(pool.live)
            fresh_groups = [
                bucket.drawn[already.get(bucket.key, 0) :]
                for bucket in live
            ]
            if config.fused_scheduling:
                if any(fresh_groups):
                    reply = yield WaveRequest(
                        groups=tuple(
                            tuple(fresh) for fresh in fresh_groups
                        ),
                        segments=working,
                        deadline=deadline,
                        min_results=0,
                        fused=True,
                        phase="exhaustive",
                    )
                    wave_quarantined = reply.quarantined
                    for results in reply.grouped:
                        for result in results:
                            state.observe(result, 1)
                    if out_of_time():
                        note_budget("exhaustive")
            else:
                for fresh in fresh_groups:
                    if fresh:
                        reply = yield WaveRequest(
                            groups=(tuple(fresh),),
                            segments=working,
                            deadline=deadline,
                            min_results=0,
                            fused=False,
                            phase="exhaustive",
                        )
                        wave_quarantined = reply.quarantined
                        for result in reply.grouped[0]:
                            state.observe(result, 1)
                    if out_of_time():
                        note_budget("exhaustive")
                        break

    # One last telemetry snapshot while the executor is still bound (the
    # driver closes it when this generator returns or raises).
    snapshot = yield StatsRequest(final=True)
    run_quarantine = prior_quarantine + list(snapshot.quarantined)
    if state.best is None:
        raise SynthesisError("no handler was scored")
    if snapshot.cache is not None:
        ctx.emit(snapshot.cache)
    if snapshot.scoring is not None:
        ctx.emit(snapshot.scoring)
    result = SynthesisResult(
        best=state.best,
        dsl_name=dsl.name,
        iterations=state.records,
        initial_bucket_count=initial_bucket_count,
        total_handlers_scored=state.handlers_scored,
        total_sketches_drawn=state.sketches_drawn,
        elapsed_seconds=time.perf_counter() - started,
        quarantined=tuple(run_quarantine),
        pool_rebuilds=snapshot.pool_rebuilds,
        degraded=snapshot.degraded,
    )
    ctx.emit(
        RunFinished(
            run="synthesis",
            best_distance=result.distance,
            expression=result.expression,
            handlers_scored=result.total_handlers_scored,
            elapsed_seconds=result.elapsed_seconds,
            phase_seconds=dict(ctx.phase_seconds),
        )
    )
    return result


def drive(core) -> Any:
    """Run a re-entrant core to completion against a private executor.

    The blocking half of the wave protocol: answers ``ScorerReady`` by
    building the executor the config asked for, services every
    ``WaveRequest`` with the matching executor call (one
    ``score_grouped`` when fused, ``score`` per group otherwise), and
    snapshots executor telemetry for ``StatsRequest``.  The executor is
    closed on every exit path, so an exception mid-run can never leak
    worker processes.  ``drive(synthesize_core(...))`` is bit-identical
    — results, events, checkpoints — to the pre-protocol inline loop.
    """
    executor = None
    reply = None
    try:
        while True:
            try:
                request = core.send(reply)
            except StopIteration as stop:
                return stop.value
            reply = None
            if isinstance(request, ScorerReady):
                executor = make_executor(
                    request.scorer,
                    request.workers,
                    context=request.context,
                    policy=SupervisionPolicy(
                        max_pool_rebuilds=request.max_pool_rebuilds
                    ),
                    watchdog_seconds=request.watchdog_seconds,
                    fault_plan=request.fault_plan,
                    use_shm=request.use_shm,
                )
            elif isinstance(request, WaveRequest):
                if request.fused:
                    grouped = executor.score_grouped(
                        request.groups,
                        request.segments,
                        deadline=request.deadline,
                        min_results=request.min_results,
                    )
                else:
                    grouped = [
                        executor.score(
                            group,
                            request.segments,
                            deadline=request.deadline,
                            min_results=request.min_results,
                        )
                        for group in request.groups
                    ]
                reply = WaveReply(
                    grouped=tuple(grouped),
                    quarantined=tuple(executor.quarantined),
                )
            elif isinstance(request, StatsRequest):
                cache, scoring = executor.stats()
                reply = ExecutorSnapshot(
                    cache=cache,
                    scoring=scoring,
                    quarantined=tuple(executor.quarantined),
                    pool_rebuilds=getattr(executor, "pool_rebuilds", 0),
                    degraded=bool(getattr(executor, "degraded", False)),
                )
            # ProgressReport (and any future beacon) needs no reply.
    finally:
        if executor is not None:
            executor.close()


def synthesize(
    segments: list[TraceSegment],
    dsl: DslSpec,
    config: SynthesisConfig | None = None,
    *,
    context: RunContext | None = None,
) -> SynthesisResult:
    """Run the full refinement loop; return the best handler found.

    *context* receives the run's telemetry; omitting it runs silently
    (a fresh sink-less :class:`RunContext` is used for phase timing).
    The blocking wrapper over :func:`synthesize_core`: one private
    executor, one run, bit-identical to the historical inline loop.
    """
    return drive(synthesize_core(segments, dsl, config, context=context))
