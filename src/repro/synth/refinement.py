"""Abagnale's refinement loop (Algorithm 1, §4.4).

Each iteration samples ``N`` sketches from every surviving bucket, scores
them over the current trace working set, assigns each bucket the minimum
distance any of its sketches achieved, and keeps only the top-``k``
buckets (including ties at the k-th score).  Between iterations the
schedule deepens the search: ``N ← 8N``, ``k ← k/2``, and the working set
grows by two segments.  The loop ends when a single bucket survives (it
is then enumerated exhaustively, within a cap) or every surviving bucket
has already been exhausted; the lowest-distance handler seen anywhere is
returned, so interrupting early still yields the best-so-far.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.dsl.families import DslSpec
from repro.errors import SynthesisError
from repro.synth.pool import BucketPool
from repro.synth.parallel import score_sketches
from repro.synth.result import IterationRecord, SynthesisResult
from repro.synth.scoring import ScoredHandler, Scorer
from repro.trace.model import TraceSegment
from repro.trace.selection import select_diverse_segments

__all__ = ["SynthesisConfig", "synthesize"]


@dataclass(frozen=True)
class SynthesisConfig:
    """Tunable parameters of the refinement loop.

    Defaults follow the paper's schedule (N=16, k=5, N×8, k/2, +2
    segments per iteration) with laptop-scale caps on completions and
    the final exhaustive pass.
    """

    metric: str = "dtw"
    initial_samples: int = 16
    initial_keep: int = 5
    sample_growth: int = 8
    initial_segments: int = 2
    segment_growth: int = 2
    completion_cap: int = 32
    max_iterations: int = 5
    exhaustive_cap: int = 1500
    workers: int = 1
    seed: int = 0
    #: Scoring cost knobs, forwarded to :class:`~repro.synth.scoring.Scorer`.
    series_budget: int = 128
    max_replay_rows: int = 384
    #: Wall-clock budget; the loop stops (with best-so-far) when exceeded.
    time_budget_seconds: float | None = None


@dataclass
class _LoopState:
    best: ScoredHandler | None = None
    handlers_scored: int = 0
    sketches_drawn: int = 0
    records: list[IterationRecord] = field(default_factory=list)

    def observe(self, scored: ScoredHandler, completions: int) -> None:
        self.handlers_scored += completions
        if self.best is None or scored.distance < self.best.distance:
            self.best = scored


def _working_set(
    segments: list[TraceSegment], count: int, seed: int
) -> list[TraceSegment]:
    return select_diverse_segments(
        segments, min(count, len(segments)), rng=random.Random(seed)
    )


def synthesize(
    segments: list[TraceSegment],
    dsl: DslSpec,
    config: SynthesisConfig | None = None,
) -> SynthesisResult:
    """Run the full refinement loop; return the best handler found."""
    if not segments:
        raise SynthesisError("synthesis requires at least one trace segment")
    config = config or SynthesisConfig()
    scorer = Scorer(
        metric_name=config.metric,
        constant_pool=dsl.constant_pool,
        completion_cap=config.completion_cap,
        seed=config.seed,
        series_budget=config.series_budget,
        max_replay_rows=config.max_replay_rows,
    )
    pool = BucketPool(dsl)
    initial_bucket_count = len(pool.buckets)
    state = _LoopState()
    started = time.perf_counter()

    def out_of_time() -> bool:
        return (
            config.time_budget_seconds is not None
            and time.perf_counter() - started > config.time_budget_seconds
        )

    n_samples = config.initial_samples
    keep = config.initial_keep
    segment_count = config.initial_segments

    for iteration in range(config.max_iterations):
        working = _working_set(segments, segment_count, config.seed + iteration)
        # Draw up to the cumulative sample size (one shared enumeration
        # pass feeds all buckets) and score everything each bucket has
        # drawn so far against the current working set (old samples must
        # be re-scored: the working set changed).
        pool.draw(n_samples)
        state.sketches_drawn = pool.generated
        buckets = [bucket for bucket in pool.live if bucket.drawn]
        if not buckets:
            raise SynthesisError(
                f"DSL {dsl.name!r} produced no sketches within its budgets"
            )
        for bucket in buckets:
            results = score_sketches(
                scorer, bucket.drawn, working, workers=config.workers
            )
            bucket.score = min(result.distance for result in results)
            pool_size = len(dsl.constant_pool)
            for sketch, result in zip(bucket.drawn, results):
                completions = min(
                    sketch.completion_count(pool_size), config.completion_cap
                )
                state.observe(result, completions)
        ranking = sorted(buckets, key=lambda bucket: bucket.score)
        cutoff_index = min(keep, len(ranking)) - 1
        cutoff = ranking[cutoff_index].score
        survivors = [bucket for bucket in ranking if bucket.score <= cutoff]
        state.records.append(
            IterationRecord(
                index=iteration + 1,
                samples_per_bucket=n_samples,
                segment_count=len(working),
                ranking=tuple(
                    (bucket.key, bucket.score) for bucket in ranking
                ),
                kept=tuple(bucket.key for bucket in survivors),
                handlers_scored=state.handlers_scored,
            )
        )
        pool.prune({bucket.key for bucket in survivors})
        if out_of_time():
            break
        if len(pool.buckets) == 1 or pool.exhausted:
            break
        n_samples *= config.sample_growth
        keep = max(keep // 2, 1)
        segment_count += config.segment_growth

    # Final exhaustive pass over the surviving bucket(s), within the cap.
    if not out_of_time():
        working = _working_set(
            segments, segment_count, config.seed + config.max_iterations
        )
        already = {
            bucket.key: len(bucket.drawn) for bucket in pool.live
        }
        pool.draw(config.exhaustive_cap, max_steps=40 * config.exhaustive_cap)
        state.sketches_drawn = pool.generated
        for bucket in pool.live:
            fresh = bucket.drawn[already.get(bucket.key, 0) :]
            if fresh:
                results = score_sketches(
                    scorer, fresh, working, workers=config.workers
                )
                for result in results:
                    state.observe(result, 1)
            if out_of_time():
                break

    if state.best is None:
        raise SynthesisError("no handler was scored")
    return SynthesisResult(
        best=state.best,
        dsl_name=dsl.name,
        iterations=state.records,
        initial_bucket_count=initial_bucket_count,
        total_handlers_scored=state.handlers_scored,
        total_sketches_drawn=state.sketches_drawn,
        elapsed_seconds=time.perf_counter() - started,
    )
