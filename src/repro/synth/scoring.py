"""Scoring handlers and sketches against trace segments.

The score of a concrete handler is the sum, over the working set of
segments, of the distance between its replayed cwnd series and the
observed one (both expressed in segments, i.e. divided by the MSS, so
values are comparable across environments).  The score of a *sketch* is
the minimum score over its sampled concretizations — the best behavior
the sketch can exhibit with pool constants (§4.2, §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.distance.base import DEFAULT_METRIC, get_metric
from repro.dsl.compiled import compile_handler
from repro.dsl.printer import to_text
from repro.errors import EvaluationError
from repro.dsl import ast
from repro.dsl.families import DEFAULT_CONSTANT_POOL
from repro.synth.concretize import DEFAULT_COMPLETION_CAP, concretizations
from repro.synth.replay import replay_handler
from repro.synth.sketch import Sketch
from repro.trace.model import TraceSegment
from repro.trace.signals import SignalTable, extract_signals

if TYPE_CHECKING:  # type-only: repro.runtime is not imported at runtime
    from repro.runtime.cache import ScoreCache

__all__ = ["Scorer", "ScoredHandler"]


@dataclass(frozen=True)
class ScoredHandler:
    """A concrete handler and its summed distance over the working set."""

    handler: ast.NumExpr
    distance: float

    def __lt__(self, other: "ScoredHandler") -> bool:
        return self.distance < other.distance


@dataclass
class Scorer:
    """Caches signal tables and scores handlers/sketches against them."""

    metric_name: str = DEFAULT_METRIC
    constant_pool: Sequence[float] = DEFAULT_CONSTANT_POOL
    completion_cap: int = DEFAULT_COMPLETION_CAP
    seed: int = 0
    #: Replay cost control: tables longer than this are coalesced
    #: (delayed-ACK merging, see :meth:`SignalTable.coalesce`).
    max_replay_rows: int = 384
    #: Distance cost control: series are down-sampled to this many points
    #: inside the metric.
    series_budget: int = 128
    #: Optional cross-iteration memo of per-(handler, segment) distances
    #: (:class:`repro.runtime.cache.ScoreCache`).  ``None`` disables
    #: caching; cached values are the exact floats a cold scorer would
    #: compute, so results are bit-identical either way.
    cache: "ScoreCache | None" = None
    _tables: dict[int, tuple[TraceSegment, SignalTable]] = field(
        default_factory=dict, repr=False
    )

    def table_for(self, segment: TraceSegment) -> SignalTable:
        """Extract (and cache) the signal table for *segment*.

        The cache key is ``id(segment)``, so each entry keeps a strong
        reference to its segment and verifies identity on lookup: without
        that, a freed segment's id can be reused by a new object and the
        lookup would silently return the *wrong* table.
        """
        key = id(segment)
        entry = self._tables.get(key)
        if entry is not None and entry[0] is segment:
            return entry[1]
        table = extract_signals(segment).coalesce(self.max_replay_rows)
        self._tables[key] = (segment, table)
        return table

    def score_handler(
        self, handler: ast.NumExpr, segments: Sequence[TraceSegment]
    ) -> float:
        """Mean distance of *handler* across *segments* (lower = better).

        The mean (not the sum) keeps scores comparable across refinement
        iterations, whose working sets grow by two segments each round;
        the best-so-far handler the loop carries would otherwise always
        come from the smallest working set.
        """
        metric = get_metric(self.metric_name)
        try:
            compiled = compile_handler(handler)
        except EvaluationError:
            return float("inf")
        cache = self.cache
        text = to_text(handler) if cache is not None else ""
        total = 0.0
        for segment in segments:
            if cache is not None:
                key = cache.key(
                    text,
                    segment,
                    self.metric_name,
                    self.max_replay_rows,
                    self.series_budget,
                )
                cached = cache.get(key, segment)
                if cached is not None:
                    total += cached
                    continue
            table = self.table_for(segment)
            observed = table.observed_cwnd() / table.mss
            try:
                synthesized = (
                    replay_handler(handler, table, compiled=compiled)
                    / table.mss
                )
                distance = metric(
                    synthesized, observed, budget=self.series_budget
                )
            except (EvaluationError, ArithmeticError, ValueError):
                # A candidate whose arithmetic blows up on this segment
                # cannot match it; charge the worst score for the segment
                # rather than letting one bad concretization poison the
                # whole sketch (the executor-level quarantine is for
                # faults this narrow guard cannot contain).
                distance = float("inf")
            if cache is not None:
                cache.put(key, segment, distance)
            total += distance
        return total / len(segments) if segments else float("inf")

    def score_sketch(
        self, sketch: Sketch, segments: Sequence[TraceSegment]
    ) -> ScoredHandler:
        """Best (minimum-distance) concretization of *sketch*."""
        best: ScoredHandler | None = None
        for handler in concretizations(
            sketch,
            self.constant_pool,
            cap=self.completion_cap,
            seed=self.seed,
        ):
            distance = self.score_handler(handler, segments)
            if best is None or distance < best.distance:
                best = ScoredHandler(handler, distance)
        if best is None:  # a sketch always has >= 1 concretization
            raise AssertionError("sketch produced no concretizations")
        return best
