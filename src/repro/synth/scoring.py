"""Scoring handlers and sketches against trace segments.

The score of a concrete handler is the sum, over the working set of
segments, of the distance between its replayed cwnd series and the
observed one (both expressed in segments, i.e. divided by the MSS, so
values are comparable across environments).  The score of a *sketch* is
the minimum score over its sampled concretizations — the best behavior
the sketch can exhibit with pool constants (§4.2, §4.4).

Two paths compute that minimum.  The scalar reference path replays and
scores each concretization independently.  The batched fast path
(default) compiles the sketch once into a lane-vectorized numpy function
(:func:`repro.dsl.compiled.compile_sketch_vector`), replays all
concretizations in one pass (:func:`repro.synth.replay.replay_batch`),
and gates each candidate's DTW behind an early-abandon cascade
(LB_Kim → LB_Keogh → bounded DP, :mod:`repro.distance.lb`) keyed to the
sketch's best-so-far.  Prunes only fire for candidates that provably
cannot beat the incumbent (distances are non-negative and abandon
thresholds carry float-safety slack), so both paths return the same
:class:`ScoredHandler` — the equivalence the property suite enforces.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.distance.base import DEFAULT_METRIC, get_metric
from repro.distance.dtw import (
    band_width,
    dtw_distance,
    dtw_distance_batch,
    inflate_bound,
)
from repro.distance.lb import (
    keogh_envelope,
    keogh_envelope_batch,
    lb_keogh,
    lb_kim,
)
from repro.distance.preprocess import downsample
from repro.dsl.compiled import compile_handler, compile_sketch_vector
from repro.dsl.printer import to_text
from repro.errors import EvaluationError
from repro.dsl import ast
from repro.dsl.families import DEFAULT_CONSTANT_POOL
from repro.synth.concretize import (
    DEFAULT_COMPLETION_CAP,
    concretization_assignments,
    concretizations,
)
from repro.synth.replay import replay_batch, replay_handler
from repro.synth.sketch import Sketch
from repro.trace.model import TraceSegment
from repro.trace.signals import SignalTable, extract_signals

if TYPE_CHECKING:  # type-only: repro.runtime is not imported at runtime
    from repro.runtime.cache import ScoreCache

__all__ = [
    "Scorer",
    "ScoredHandler",
    "ScoringCounters",
    "QuorumConfig",
    "QuorumDecision",
    "segment_quality",
    "quorum_filter",
    "DEFAULT_TABLE_CACHE_ENTRIES",
]

#: Default cap on the per-scorer signal-table LRU (satellite of the
#: batched-scoring issue: the id()-keyed cache previously grew without
#: bound across refinement iterations).  Sized like
#: :data:`repro.runtime.cache.DEFAULT_CACHE_ENTRIES` relative to its
#: entry weight: a coalesced table is ~40 KiB, so 256 tables ≈ 10 MiB.
DEFAULT_TABLE_CACHE_ENTRIES = 256


def segment_quality(segment: TraceSegment) -> float:
    """The triage quality score of *segment*'s parent trace.

    Traces that never passed through :mod:`repro.trace.triage` (or were
    found clean) carry no ``quality`` key and score a full ``1.0``, so
    the quorum guard below is a no-op for well-formed input — the
    property the clean-trace differential harness pins.
    """
    quality = segment.trace.meta.get("quality", 1.0)
    try:
        return float(quality)
    except (TypeError, ValueError):
        return 1.0


@dataclass(frozen=True)
class QuorumConfig:
    """When to exclude low-quality segments, and how far exclusion may go.

    ``quality_threshold`` is the score below which a segment counts as
    suspect; ``min_segments`` is the quorum — the number of usable
    segments the working set must never drop below.  Exclusion with a
    floor (rather than score re-weighting) keeps accepted segments'
    distances bit-identical to an unguarded run.
    """

    min_segments: int = 2
    quality_threshold: float = 0.8

    def __post_init__(self) -> None:
        if self.min_segments < 1:
            raise ValueError("min_segments must be >= 1")
        if not 0.0 <= self.quality_threshold <= 1.0:
            raise ValueError("quality_threshold must be within [0, 1]")


@dataclass(frozen=True)
class QuorumDecision:
    """Outcome of the quorum guard over one segment collection."""

    kept: tuple[TraceSegment, ...]
    excluded: tuple[TraceSegment, ...]
    #: Low-quality segments kept anyway to satisfy the quorum.
    backfilled: tuple[TraceSegment, ...]

    @property
    def degraded(self) -> bool:
        """True when the ranking rests on below-threshold segments."""
        return bool(self.backfilled)


def quorum_filter(
    segments: Sequence[TraceSegment], config: QuorumConfig | None = None
) -> QuorumDecision:
    """Exclude low-quality segments without ever starving the scorer.

    Segments whose :func:`segment_quality` falls below the threshold
    are dropped — unless that would leave fewer than ``min_segments``
    usable segments, in which case the *best* low-quality segments are
    backfilled (stable order: quality descending, original position as
    tie-break) until the quorum is met or every segment is in use.  The
    guard therefore provably never reduces the working set below
    ``min(min_segments, len(segments))``; a backfilled decision is
    surfaced as a ``degraded_inputs`` event by the pipeline rather than
    silently producing a confidently wrong ranking.

    Kept segments preserve their original order, so downstream working
    set selection (and thus the ranking) is reproducible.
    """
    config = config or QuorumConfig()
    qualities = [segment_quality(segment) for segment in segments]
    good = [
        index
        for index, quality in enumerate(qualities)
        if quality >= config.quality_threshold
    ]
    bad = [
        index
        for index in range(len(segments))
        if qualities[index] < config.quality_threshold
    ]
    keep = set(good)
    backfill: list[int] = []
    if len(keep) < config.min_segments and bad:
        # Best-first backfill; sort is stable on (-quality, index).
        for index in sorted(bad, key=lambda i: (-qualities[i], i)):
            if len(keep) >= config.min_segments:
                break
            keep.add(index)
            backfill.append(index)
    backfill_set = set(backfill)
    return QuorumDecision(
        kept=tuple(
            segments[index] for index in range(len(segments)) if index in keep
        ),
        excluded=tuple(
            segments[index]
            for index in bad
            if index not in backfill_set
        ),
        backfilled=tuple(
            segments[index] for index in bad if index in backfill_set
        ),
    )


@dataclass(frozen=True)
class ScoredHandler:
    """A concrete handler and its summed distance over the working set."""

    handler: ast.NumExpr
    distance: float

    def __lt__(self, other: "ScoredHandler") -> bool:
        return self.distance < other.distance


@dataclass
class ScoringCounters:
    """Telemetry of the batched path's prunes (monotone run totals).

    Kept as a plain dataclass (not a runtime event) so :mod:`repro.synth`
    does not import :mod:`repro.runtime`; the executors snapshot these
    into a :class:`repro.runtime.events.ScoringStats` event.
    """

    #: Sketches scored through the batched (vectorized) path.
    batched_waves: int = 0
    #: Candidate×segment distance computations skipped by LB_Kim/LB_Keogh.
    lb_pruned: int = 0
    #: DTW dynamic programs abandoned mid-row by the bound.
    dp_abandoned: int = 0
    #: Candidates dropped because their partial mean was already
    #: unbeatable (includes candidates whose segment loop stopped early).
    candidates_pruned: int = 0
    #: Candidates pruned because a *cross-sketch* incumbent (the fused
    #: scheduler's per-bucket warm-start bound) was tighter than anything
    #: this sketch had computed itself.
    warm_start_pruned: int = 0
    #: Multi-lane DP sweeps run by :func:`dtw_distance_batch` (each
    #: replaces up to ``completion_cap`` scalar DPs).
    batched_dtw_sweeps: int = 0
    #: Wall-clock milliseconds spent eagerly building segment entries
    #: and Keogh envelopes in :meth:`Scorer.prepare_segments`.
    envelope_precompute_ms: float = 0.0

    def as_tuple(self) -> tuple[int, int, int, int, int, int, float]:
        return (
            self.batched_waves,
            self.lb_pruned,
            self.dp_abandoned,
            self.candidates_pruned,
            self.warm_start_pruned,
            self.batched_dtw_sweeps,
            self.envelope_precompute_ms,
        )


@dataclass
class _SegmentEntry:
    """Per-segment memo: table plus candidate-independent score inputs.

    ``observed``/``downsampled`` were previously recomputed for every
    one of the K×segments candidate evaluations; the LB_Keogh envelope
    is built lazily on first cascade use (reach =
    :func:`~repro.distance.dtw.band_width` of the banded DP, so the
    bound stays valid for every cell the DP can visit).
    """

    segment: TraceSegment
    table: SignalTable
    observed: np.ndarray
    downsampled: np.ndarray
    envelope_cache: tuple[np.ndarray, np.ndarray] | None = None

    def envelope(self) -> tuple[np.ndarray, np.ndarray]:
        if self.envelope_cache is None:
            size = self.downsampled.size
            self.envelope_cache = keogh_envelope(
                self.downsampled, band_width(size, size)
            )
        return self.envelope_cache


@dataclass
class Scorer:
    """Caches signal tables and scores handlers/sketches against them."""

    metric_name: str = DEFAULT_METRIC
    constant_pool: Sequence[float] = DEFAULT_CONSTANT_POOL
    completion_cap: int = DEFAULT_COMPLETION_CAP
    seed: int = 0
    #: Replay cost control: tables longer than this are coalesced
    #: (delayed-ACK merging, see :meth:`SignalTable.coalesce`).
    max_replay_rows: int = 384
    #: Distance cost control: series are down-sampled to this many points
    #: inside the metric.
    series_budget: int = 128
    #: Optional cross-iteration memo of per-(handler, segment) distances
    #: (:class:`repro.runtime.cache.ScoreCache`).  ``None`` disables
    #: caching; cached values are the exact floats a cold scorer would
    #: compute, so results are bit-identical either way.
    cache: "ScoreCache | None" = None
    #: Score sketches through the vectorized batch path (identical
    #: rankings; ``--no-batch`` forces the scalar reference path).
    batch: bool = True
    #: Inside the batch path, score every surviving lane's DTW for a
    #: segment in one :func:`dtw_distance_batch` sweep instead of K
    #: scalar DPs (identical results; ``--no-batch-dtw`` reverts to the
    #: per-lane reference path).
    batch_dtw: bool = True
    #: LRU cap on the per-segment table cache below.
    table_cache_entries: int = DEFAULT_TABLE_CACHE_ENTRIES
    #: Prune telemetry, aggregated across the scorer's lifetime.
    counters: ScoringCounters = field(default_factory=ScoringCounters)
    _tables: "OrderedDict[int, _SegmentEntry]" = field(
        default_factory=OrderedDict, repr=False
    )

    def _entry_for(self, segment: TraceSegment) -> _SegmentEntry:
        """The cached :class:`_SegmentEntry` for *segment* (LRU).

        The cache key is ``id(segment)``, so each entry keeps a strong
        reference to its segment and verifies identity on lookup: without
        that, a freed segment's id can be reused by a new object and the
        lookup would silently return the *wrong* table.  The cache is
        LRU-bounded by ``table_cache_entries``, mirroring
        :mod:`repro.runtime.cache`'s discipline — refinement's working
        set grows every iteration and previously kept every table ever
        touched alive for the whole run.
        """
        key = id(segment)
        entry = self._tables.get(key)
        if entry is not None and entry.segment is segment:
            self._tables.move_to_end(key)
            return entry
        plane_entry = getattr(segment, "plane_entry", None)
        if plane_entry is not None:
            # A shared-memory plane segment carries its precomputed
            # table/series/envelope views (built by the parent's
            # prepare_segments); rebuild the entry from those instead of
            # re-extracting signals it does not have.
            table, observed, downsampled, envelope = plane_entry()
            entry = _SegmentEntry(
                segment=segment,
                table=table,
                observed=observed,
                downsampled=downsampled,
                envelope_cache=envelope,
            )
            self._tables[key] = entry
            while len(self._tables) > max(self.table_cache_entries, 1):
                self._tables.popitem(last=False)
            return entry
        table = extract_signals(segment).coalesce(self.max_replay_rows)
        observed = table.observed_cwnd() / table.mss
        entry = _SegmentEntry(
            segment=segment,
            table=table,
            observed=observed,
            downsampled=downsample(observed, self.series_budget),
        )
        self._tables[key] = entry
        while len(self._tables) > max(self.table_cache_entries, 1):
            self._tables.popitem(last=False)
        return entry

    def table_for(self, segment: TraceSegment) -> SignalTable:
        """Extract (and LRU-cache) the signal table for *segment*."""
        return self._entry_for(segment).table

    def prepare_segments(
        self, segments: Sequence[TraceSegment]
    ) -> "list[_SegmentEntry]":
        """Eagerly build every segment's entry — once per working set.

        Materializes the coalesced signal table, the normalized observed
        series, its downsampled form, and (for the DTW metric) the Keogh
        envelope, so neither serial waves nor pool workers pay the lazy
        per-wave cost; the shared-memory plane packs exactly these
        arrays.  Idempotent and cheap when the entries already exist
        (an LRU hit per segment); the time actually spent is accumulated
        into ``counters.envelope_precompute_ms``.
        """
        started = time.perf_counter()
        entries = []
        for segment in segments:
            entry = self._entry_for(segment)
            if self.metric_name == "dtw" and entry.envelope_cache is None:
                entry.envelope()
            entries.append(entry)
        self.counters.envelope_precompute_ms += (
            time.perf_counter() - started
        ) * 1000.0
        return entries

    def score_handler(
        self,
        handler: ast.NumExpr,
        segments: Sequence[TraceSegment],
        *,
        bound: float | None = None,
        _synth: "Callable[[TraceSegment], np.ndarray] | None" = None,
        _lb_suffix: "np.ndarray | None" = None,
        _lb_row: "np.ndarray | None" = None,
    ) -> float:
        """Mean distance of *handler* across *segments* (lower = better).

        The mean (not the sum) keeps scores comparable across refinement
        iterations, whose working sets grow by two segments each round;
        the best-so-far handler the loop carries would otherwise always
        come from the smallest working set.

        With a finite *bound* (the sketch's best-so-far mean) and the DTW
        metric, the segment loop early-abandons: distances are
        non-negative, so once the partial mean exceeds *bound* the
        candidate provably cannot win and ``inf`` is returned instead of
        the exact (worse-than-bound) mean — callers only compare scores
        against *bound*, so rankings are unchanged.  *_synth* supplies
        pre-replayed series and *_lb_suffix* per-segment lower-bound
        suffix sums for the batched path (internal).
        """
        metric = get_metric(self.metric_name)
        compiled = None
        if _synth is None:
            try:
                compiled = compile_handler(handler)
            except EvaluationError:
                return float("inf")
        cache = self.cache
        text = to_text(handler) if cache is not None else ""
        cascade = (
            bound is not None
            and math.isfinite(bound)
            and self.metric_name == "dtw"
        )
        count = len(segments)
        total = 0.0
        if cascade:
            # Rounded addition of non-negative distances is monotone, so
            # a partial total above this (slack-inflated, see
            # ``inflate_bound``) budget means the final mean the scalar
            # path would compute is > bound for certain.
            total_budget = inflate_bound(bound * count)
        for index, segment in enumerate(segments):
            if cascade:
                pending = (
                    _lb_suffix[index] if _lb_suffix is not None else 0.0
                )
                if total + pending > total_budget:
                    self.counters.candidates_pruned += 1
                    return float("inf")
            if cache is not None:
                key = cache.key(
                    text,
                    segment,
                    self.metric_name,
                    self.max_replay_rows,
                    self.series_budget,
                )
                cached = cache.get(key, segment)
                if cached is not None:
                    total += cached
                    continue
            entry = self._entry_for(segment)
            table = entry.table
            try:
                if _synth is not None:
                    synthesized = _synth(segment)
                else:
                    synthesized = (
                        replay_handler(handler, table, compiled=compiled)
                        / table.mss
                    )
                if cascade:
                    # Budget left for this segment: whatever of the
                    # (already slack-inflated) total budget the summed
                    # distances so far and the lower bounds of the
                    # *remaining* segments have not claimed.  The slack
                    # dwarfs the cancellation error of the subtraction;
                    # over-inflating is always sound — it only prunes
                    # less.
                    after = (
                        _lb_suffix[index + 1]
                        if _lb_suffix is not None
                        else 0.0
                    )
                    distance = self._cascaded_distance(
                        synthesized,
                        entry,
                        total_budget - total - after,
                        known_lb=(
                            _lb_row[index] if _lb_row is not None else None
                        ),
                    )
                    if distance is None:  # pruned: can't beat the bound
                        self.counters.candidates_pruned += 1
                        return float("inf")
                else:
                    distance = metric(
                        synthesized, entry.observed, budget=self.series_budget
                    )
            except (EvaluationError, ArithmeticError, ValueError):
                # A candidate whose arithmetic blows up on this segment
                # cannot match it; charge the worst score for the segment
                # rather than letting one bad concretization poison the
                # whole sketch (the executor-level quarantine is for
                # faults this narrow guard cannot contain).
                distance = float("inf")
            if cache is not None:
                # Pruned candidates never reach here: only exact
                # distances are cached, keeping the cache bit-identical
                # across the batched and scalar paths.
                cache.put(key, segment, distance)
            total += distance
        return total / count if segments else float("inf")

    def _cascaded_distance(
        self,
        synthesized: np.ndarray,
        entry: _SegmentEntry,
        seg_bound: float,
        known_lb: float | None = None,
    ) -> float | None:
        """DTW distance, or ``None`` when provably ``> seg_bound``.

        Stages of rising cost; each stage's value never exceeds the raw
        DTW total (see :mod:`repro.distance.lb`), so a prune is exact.
        When the cascade does compute the distance it is bit-identical
        to ``metric(synthesized, observed)``: ``downsample`` is
        idempotent, so feeding pre-downsampled series through
        :func:`dtw_distance` runs the same DP on the same floats.

        *known_lb* is a normalized lower bound the batched prescreen
        already computed for this (candidate, segment); when given it
        replaces the LB_Kim/LB_Keogh stages.
        """
        query = downsample(synthesized, self.series_budget)
        candidate = entry.downsampled
        if known_lb is not None:
            if known_lb > inflate_bound(seg_bound):
                self.counters.lb_pruned += 1
                return None
        else:
            raw_threshold = inflate_bound(
                seg_bound * (query.size + candidate.size)
            )
            if lb_kim(query, candidate) > raw_threshold:
                self.counters.lb_pruned += 1
                return None
            if query.size == candidate.size:
                lower, upper = entry.envelope()
                if lb_keogh(query, lower, upper) > raw_threshold:
                    self.counters.lb_pruned += 1
                    return None
        distance = dtw_distance(
            query, candidate, budget=self.series_budget, bound=seg_bound
        )
        if distance == float("inf"):
            # band_width keeps the corner reachable, so inf means the DP
            # abandoned (or the true distance is inf — equally hopeless).
            self.counters.dp_abandoned += 1
            return None
        return distance

    def _score_sketch_batched(
        self,
        sketch: Sketch,
        segments: Sequence[TraceSegment],
        bound: float | None = None,
    ) -> ScoredHandler | None:
        """Batched minimum over concretizations, or ``None`` to fall
        back to the scalar path (non-DTW metric, empty working set, or a
        sketch the vector backend cannot compile).

        A finite *bound* (an incumbent distance some *other* sketch
        already achieved) warm-starts the cascade: candidates provably
        unable to beat it are pruned before any DTW runs, and when the
        lower bounds rule out every lane the sketch is dismissed with
        zero distance computations.  The returned distance is then
        ``inf`` — callers only compare it against the incumbent, and the
        true minimum is provably worse, so rankings are unchanged."""
        if self.metric_name != "dtw" or not segments:
            return None
        try:
            vector = compile_sketch_vector(sketch.expr)
        except EvaluationError:
            return None
        assignments = list(
            concretization_assignments(
                sketch,
                self.constant_pool,
                cap=self.completion_cap,
                seed=self.seed,
            )
        )
        if not assignments:
            return None
        self.counters.batched_waves += 1
        hole_ids = [hole.hole_id for hole in ast.holes(sketch.expr)]
        count = len(segments)

        # Replay every concretization over every segment up front (one
        # K-wide vectorized pass per segment), then prescreen: a
        # lane-vectorized LB_Keogh over the whole (K, n) matrix gives
        # each candidate a lower bound on its *total* normalized
        # distance for a few numpy ops — candidates whose bound already
        # tops the incumbent mean are dropped with zero DTW calls.
        replayed: dict[int, np.ndarray] = {}
        lb_matrix = np.zeros((len(assignments), count))
        entries = [self._entry_for(segment) for segment in segments]
        #: Per segment, the (K, n) downsampled replay matrix — row
        #: ``lane`` holds the same floats ``downsample(matrix[lane])``
        #: yields, so the batched DTW sweep below scores the very series
        #: the scalar cascade would.
        queries_by_segment: list[np.ndarray] = []
        for seg_index, entry in enumerate(entries):
            table = entry.table
            matrix = replay_batch(vector, assignments, table) / table.mss
            replayed[id(entry.segment)] = matrix
            size = matrix.shape[1]
            if size > self.series_budget:
                picks = (
                    np.linspace(0, size - 1, self.series_budget)
                    .round()
                    .astype(int)
                )
                queries = matrix[:, picks]  # rows == downsample(row)
            else:
                queries = matrix
            queries_by_segment.append(queries)
            candidate = entry.downsampled
            if queries.shape[1] != candidate.size:
                continue  # no envelope information for this segment
            lower, upper = entry.envelope()
            with np.errstate(invalid="ignore"):
                raw = np.maximum(queries - upper, 0.0).sum(
                    axis=1
                ) + np.maximum(lower - queries, 0.0).sum(axis=1)
                # Reverse direction: envelope each candidate row and
                # check the observed series against it; both directions
                # lower-bound the banded DTW, so take the larger.
                q_lower, q_upper = keogh_envelope_batch(
                    queries, band_width(queries.shape[1], candidate.size)
                )
                raw = np.maximum(
                    raw,
                    np.maximum(candidate - q_upper, 0.0).sum(axis=1)
                    + np.maximum(q_lower - candidate, 0.0).sum(axis=1),
                )
            # Normalized like the metric; elementwise <= each lane's
            # true distance, and summing preserves that (rounding is
            # monotone), so accumulated sums stay lower bounds.
            lb_matrix[:, seg_index] = raw / (
                queries.shape[1] + candidate.size
            )
        with np.errstate(invalid="ignore"):
            lb_totals = lb_matrix.sum(axis=1)
        warm = (
            bound
            if bound is not None and math.isfinite(bound)
            else float("inf")
        )

        def synthesized_for(lane: int) -> Callable[[TraceSegment], np.ndarray]:
            def _synth(segment: TraceSegment) -> np.ndarray:
                return replayed[id(segment)][lane]

            return _synth

        def handler_for(lane: int) -> ast.NumExpr:
            return ast.fill_holes(
                sketch.expr, dict(zip(hole_ids, assignments[lane]))
            )

        def suffix_for(lane: int) -> np.ndarray:
            suffix = np.zeros(count + 1)
            with np.errstate(invalid="ignore"):
                suffix[:count] = np.cumsum(lb_matrix[lane, ::-1])[::-1]
            return suffix

        if math.isfinite(warm):
            # Whole-sketch warm-start skip: when every lane's lower bound
            # already tops the caller's incumbent, the sketch's true
            # minimum is provably worse than a distance another sketch
            # achieved — dismiss it without probing (zero DTW calls).
            # NaN bounds compare False, so uncertain lanes stay alive.
            with np.errstate(invalid="ignore"):
                hopeless = lb_totals > inflate_bound(warm * count)
            if hopeless.all():
                lanes = len(assignments)
                self.counters.lb_pruned += count * lanes
                self.counters.candidates_pruned += lanes
                self.counters.warm_start_pruned += lanes
                return ScoredHandler(handler_for(0), float("inf"))

        # Probe: fully score the candidate the lower bounds like most,
        # and use its distance as the initial pruning threshold.  Any
        # probe choice is sound — prunes only ever discard candidates
        # strictly worse than a *computed* candidate distance, and the
        # final minimum is at most the probe's — so this does not
        # disturb the stream-order tie semantics below; it just starts
        # the loop with a tight threshold instead of an empty one.
        probe = -1
        probe_scored: ScoredHandler | None = None
        finite_lb = np.isfinite(lb_totals)
        if finite_lb.any():
            probe = int(
                np.argmin(np.where(finite_lb, lb_totals, np.inf))
            )
            handler = handler_for(probe)
            probe_scored = ScoredHandler(
                handler,
                self.score_handler(
                    handler,
                    segments,
                    bound=(warm if math.isfinite(warm) else None),
                    _synth=synthesized_for(probe),
                    _lb_suffix=suffix_for(probe),
                    _lb_row=lb_matrix[probe],
                ),
            )

        if self.batch_dtw and probe_scored is not None:
            return self._batched_dtw_minimum(
                entries,
                queries_by_segment,
                lb_matrix,
                lb_totals,
                warm,
                probe,
                probe_scored,
                handler_for,
            )

        best: ScoredHandler | None = None
        for lane in range(len(assignments)):
            if probe_scored is not None and lane == probe:
                scored = probe_scored
            else:
                internal = min(
                    float("inf") if best is None else best.distance,
                    float("inf")
                    if probe_scored is None
                    else probe_scored.distance,
                )
                incumbent = min(internal, warm)
                if math.isfinite(incumbent) and lb_totals[
                    lane
                ] > inflate_bound(incumbent * count):
                    self.counters.lb_pruned += count
                    self.counters.candidates_pruned += 1
                    if warm < internal:
                        self.counters.warm_start_pruned += 1
                    continue
                handler = handler_for(lane)
                scored = ScoredHandler(
                    handler,
                    self.score_handler(
                        handler,
                        segments,
                        bound=(
                            incumbent if math.isfinite(incumbent) else None
                        ),
                        _synth=synthesized_for(lane),
                        _lb_suffix=suffix_for(lane),
                        _lb_row=lb_matrix[lane],
                    ),
                )
            if best is None or scored.distance < best.distance:
                best = scored
        return best

    def _batched_dtw_minimum(
        self,
        entries: "list[_SegmentEntry]",
        queries_by_segment: "list[np.ndarray]",
        lb_matrix: np.ndarray,
        lb_totals: np.ndarray,
        warm: float,
        probe: int,
        probe_scored: ScoredHandler,
        handler_for: Callable[[int], ast.NumExpr],
    ) -> ScoredHandler:
        """Segment-major minimum over the non-probe lanes: one
        :func:`dtw_distance_batch` sweep per segment instead of K scalar
        DPs.

        Returns the same :class:`ScoredHandler` as the per-lane loop it
        replaces.  The pruning threshold here is the *fixed* incumbent
        ``t0 = min(warm, probe)`` rather than the per-lane loop's
        evolving one — a looser (never tighter) threshold, so this path
        prunes a subset of what the reference prunes.  That cannot
        change the result: every prune discards only lanes provably
        worse than ``t0 >= final minimum`` (lower bounds and partial
        totals versus a slack-inflated budget, exactly the reference
        formulas), so the winning lane is always scored exactly, extra
        exact-but-worse values never beat it under strict ``<``
        selection in lane order, and when everything is ``inf`` the
        initially-pruned (absent) set matches the reference's
        ``continue`` set because no evolving incumbent ever tightened
        below ``t0`` in that case either.
        """
        count = len(entries)
        lanes = lb_matrix.shape[0]
        cache = self.cache
        t0 = min(warm, probe_scored.distance)
        finite_budget = math.isfinite(t0)
        budget = inflate_bound(t0 * count) if finite_budget else float("inf")
        #: Lanes that produce a ScoredHandler (possibly ``inf``) exactly
        #: like a ``score_handler`` call would; lanes pruned by the
        #: whole-candidate lower bound are absent from selection like
        #: the reference loop's ``continue``.
        present = np.ones(lanes, dtype=bool)
        alive = np.ones(lanes, dtype=bool)
        alive[probe] = False
        if finite_budget:
            with np.errstate(invalid="ignore"):
                hopeless = lb_totals > budget
            hopeless[probe] = False
            dropped = int(np.count_nonzero(hopeless))
            if dropped:
                self.counters.lb_pruned += count * dropped
                self.counters.candidates_pruned += dropped
                if warm < probe_scored.distance:
                    self.counters.warm_start_pruned += dropped
                present &= ~hopeless
                alive &= ~hopeless
        totals = np.zeros(lanes)
        lb_suffix = np.zeros((lanes, count + 1))
        with np.errstate(invalid="ignore"):
            lb_suffix[:, :count] = np.cumsum(
                lb_matrix[:, ::-1], axis=1
            )[:, ::-1]
        handlers: dict[int, ast.NumExpr] = {}

        def handler_at(lane: int) -> ast.NumExpr:
            handler = handlers.get(lane)
            if handler is None:
                handler = handler_for(lane)
                handlers[lane] = handler
            return handler

        for seg_index, entry in enumerate(entries):
            lane_ids = np.nonzero(alive)[0]
            if lane_ids.size == 0:
                break
            segment = entry.segment
            if finite_budget:
                # Partial total plus the remaining segments' lower
                # bounds already over budget: the mean cannot beat t0.
                over = (
                    totals[lane_ids] + lb_suffix[lane_ids, seg_index]
                    > budget
                )
                for lane in lane_ids[over]:
                    alive[lane] = False
                    self.counters.candidates_pruned += 1
                lane_ids = lane_ids[~over]
                if lane_ids.size == 0:
                    break
            need: list[int] = []
            keys: dict[int, tuple] = {}
            for lane in (int(lane) for lane in lane_ids):
                if cache is not None:
                    key = cache.key(
                        to_text(handler_at(lane)),
                        segment,
                        self.metric_name,
                        self.max_replay_rows,
                        self.series_budget,
                    )
                    keys[lane] = key
                    cached = cache.get(key, segment)
                    if cached is not None:
                        totals[lane] += cached
                        continue
                need.append(lane)
            if not need:
                continue
            dtw_lanes: list[int] = []
            bounds: list[float] = []
            for lane in need:
                seg_bound = float(
                    budget - totals[lane] - lb_suffix[lane, seg_index + 1]
                )
                known_lb = lb_matrix[lane, seg_index]
                if finite_budget and known_lb > inflate_bound(seg_bound):
                    self.counters.lb_pruned += 1
                    self.counters.candidates_pruned += 1
                    alive[lane] = False
                    continue
                dtw_lanes.append(lane)
                bounds.append(seg_bound)
            if not dtw_lanes:
                continue
            distances = dtw_distance_batch(
                queries_by_segment[seg_index][dtw_lanes],
                entry.downsampled,
                bounds=np.array(bounds),
            )
            self.counters.batched_dtw_sweeps += 1
            for lane, distance in zip(dtw_lanes, distances):
                if distance == float("inf"):
                    # Abandoned DP (or a truly infinite distance —
                    # equally hopeless), same accounting as the scalar
                    # cascade.
                    self.counters.dp_abandoned += 1
                    self.counters.candidates_pruned += 1
                    alive[lane] = False
                    continue
                value = float(distance)
                if cache is not None:
                    cache.put(keys[lane], segment, value)
                totals[lane] += value

        best: ScoredHandler | None = None
        for lane in range(lanes):
            if lane == probe:
                scored = probe_scored
            elif present[lane]:
                distance = (
                    float(totals[lane] / count)
                    if alive[lane]
                    else float("inf")
                )
                scored = ScoredHandler(handler_at(lane), distance)
            else:
                continue
            if best is None or scored.distance < best.distance:
                best = scored
        assert best is not None  # the probe lane always contributes
        return best

    def score_sketch(
        self,
        sketch: Sketch,
        segments: Sequence[TraceSegment],
        *,
        bound: float | None = None,
    ) -> ScoredHandler:
        """Best (minimum-distance) concretization of *sketch*.

        Candidate order is shared between the paths
        (:func:`concretization_assignments`), bounds only discard
        candidates strictly worse than the incumbent, and best-so-far
        updates are strict ``<`` — so ties resolve to the same
        first-seen handler and both paths return the same result.

        *bound* is an external incumbent (the fused scheduler's
        per-bucket warm start): when finite, the batched path may return
        ``inf`` for a sketch whose true minimum provably exceeds it.
        The scalar path stays the bound-free reference and ignores it.
        """
        if self.batch:
            best = self._score_sketch_batched(sketch, segments, bound)
            if best is not None:
                return best
        best = None
        for handler in concretizations(
            sketch,
            self.constant_pool,
            cap=self.completion_cap,
            seed=self.seed,
        ):
            distance = self.score_handler(handler, segments)
            if best is None or distance < best.distance:
                best = ScoredHandler(handler, distance)
        if best is None:  # a sketch always has >= 1 concretization
            raise AssertionError("sketch produced no concretizations")
        return best
