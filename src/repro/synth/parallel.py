"""Parallel sketch scoring (compatibility front-end).

The actual execution substrate lives in :mod:`repro.runtime.executors`:
a :class:`~repro.runtime.executors.PooledExecutor` owns a persistent
process pool that is primed once with the scorer configuration and
re-primed with segments only when the working set changes.  The
refinement loop holds one executor for a whole run; this module keeps
the historical one-shot :func:`score_sketches` entry point for callers
that score a single wave.

Serial execution (``workers <= 1``) is the default everywhere: it is
deterministic, has no fork overhead, and is fast enough for the scaled
benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from repro.runtime.executors import (
    MIN_PARALLEL_SKETCHES,
    PooledExecutor,
    derive_chunksize,
)
from repro.synth.scoring import ScoredHandler, Scorer
from repro.synth.sketch import Sketch
from repro.trace.model import TraceSegment

__all__ = ["score_sketches", "derive_chunksize"]


def score_sketches(
    scorer: Scorer,
    sketches: Sequence[Sketch],
    segments: Sequence[TraceSegment],
    *,
    workers: int = 1,
) -> list[ScoredHandler]:
    """Score *sketches* against *segments*, optionally in parallel.

    Results align positionally with *sketches*.  Waves smaller than
    :data:`~repro.runtime.executors.MIN_PARALLEL_SKETCHES` never fork.
    """
    if workers <= 1 or len(sketches) < MIN_PARALLEL_SKETCHES:
        return [scorer.score_sketch(sketch, segments) for sketch in sketches]
    with PooledExecutor(scorer, workers) as executor:
        return executor.score(sketches, segments)
