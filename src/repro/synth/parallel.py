"""Parallel sketch scoring.

The paper distributes scoring with Ray across a cluster (§5); here the
same embarrassing parallelism maps onto a local
:class:`~concurrent.futures.ProcessPoolExecutor`.  Workers are primed
once per scoring wave with the scorer configuration and the segment
working set (shipping segments per-task would dominate runtime).

Serial execution (``workers <= 1``) is the default everywhere: it is
deterministic, has no fork overhead, and is fast enough for the scaled
benchmarks.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.synth.scoring import ScoredHandler, Scorer
from repro.synth.sketch import Sketch
from repro.trace.model import TraceSegment

__all__ = ["score_sketches"]

# Per-worker state installed by the pool initializer.
_worker_scorer: Scorer | None = None
_worker_segments: Sequence[TraceSegment] | None = None


def _init_worker(
    metric_name: str,
    constant_pool: tuple[float, ...],
    completion_cap: int,
    seed: int,
    max_replay_rows: int,
    series_budget: int,
    segments: Sequence[TraceSegment],
) -> None:
    global _worker_scorer, _worker_segments
    _worker_scorer = Scorer(
        metric_name=metric_name,
        constant_pool=constant_pool,
        completion_cap=completion_cap,
        seed=seed,
        max_replay_rows=max_replay_rows,
        series_budget=series_budget,
    )
    _worker_segments = segments


def _score_one(sketch: Sketch) -> ScoredHandler:
    assert _worker_scorer is not None and _worker_segments is not None
    return _worker_scorer.score_sketch(sketch, _worker_segments)


def score_sketches(
    scorer: Scorer,
    sketches: Sequence[Sketch],
    segments: Sequence[TraceSegment],
    *,
    workers: int = 1,
) -> list[ScoredHandler]:
    """Score *sketches* against *segments*, optionally in parallel.

    Results align positionally with *sketches*.
    """
    if workers <= 1 or len(sketches) < 4:
        return [scorer.score_sketch(sketch, segments) for sketch in sketches]
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(
            scorer.metric_name,
            tuple(scorer.constant_pool),
            scorer.completion_cap,
            scorer.seed,
            scorer.max_replay_rows,
            scorer.series_budget,
            list(segments),
        ),
    ) as pool:
        return list(pool.map(_score_one, sketches, chunksize=8))
