"""Abagnale's synthesizer: enumeration, concretization, replay, search.

The packages here implement §4 of the paper: constraint-driven sketch
enumeration, approximate constant concretization, stateful handler replay
over trace segments, operator-subset bucketization, and the refinement
loop that samples/scores/prunes buckets until a handler emerges.
"""

from repro.synth.buckets import (
    Bucket,
    bucket_key_for,
    coherent_op_sets,
    make_buckets,
)
from repro.synth.concretize import (
    DEFAULT_COMPLETION_CAP,
    concretizations,
    concretize_all,
)
from repro.synth.enumerator import count_sketches, enumerate_sketches, leaf_pool
from repro.synth.loss_handler import (
    LossSample,
    LossSynthesisResult,
    extract_loss_samples,
    synthesize_loss_handler,
)
from repro.synth.parallel import score_sketches
from repro.synth.pool import BucketPool
from repro.synth.refinement import SynthesisConfig, synthesize
from repro.synth.replay import (
    CWND_CAP_FACTOR,
    replay_handler,
    replay_on_segment,
)
from repro.synth.result import IterationRecord, SynthesisResult
from repro.synth.scoring import ScoredHandler, Scorer
from repro.synth.sketch import Sketch

__all__ = [
    "Bucket",
    "bucket_key_for",
    "coherent_op_sets",
    "make_buckets",
    "DEFAULT_COMPLETION_CAP",
    "concretizations",
    "concretize_all",
    "count_sketches",
    "enumerate_sketches",
    "leaf_pool",
    "score_sketches",
    "BucketPool",
    "LossSample",
    "LossSynthesisResult",
    "extract_loss_samples",
    "synthesize_loss_handler",
    "SynthesisConfig",
    "synthesize",
    "CWND_CAP_FACTOR",
    "replay_handler",
    "replay_on_segment",
    "IterationRecord",
    "SynthesisResult",
    "ScoredHandler",
    "Scorer",
    "Sketch",
]
