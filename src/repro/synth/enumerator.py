"""Constraint-driven sketch enumeration (§4.1).

The paper encodes the search space as an SMT formula — sketches must
type-check, have the correct output unit, not be arithmetically
simplifiable, and not monotonically decrease — and asks Z3 for models one
at a time, blocking each previous solution.  Z3 is not available offline,
and the paper's queries are quantifier-free finite-domain (the solver is
a constrained *enumerator*), so this module implements the same semantics
directly: a lazy bottom-up generator over typed ASTs that applies every
constraint during construction and yields sketches in increasing size
order (deterministic, duplicate-free — structural blocking for free).

Constraints applied, mirroring §4.1:

* **grammar** — only the DSL's signals, macros and operators appear;
* **budgets** — AST depth and node count are capped;
* **types** — the grammar is intrinsically typed (bool only under
  conditionals);
* **units** — integer-exponent unit consistency with unit-polymorphic
  constants, and a bytes-valued root (skipped when the DSL disables
  strict units, as for Cubic);
* **non-simplifiability** — the rule system of
  :mod:`repro.dsl.simplify` rejects redundant sketches;
* **growth** — sketches that can never increase the window (the bare
  ``cwnd`` identity, or ``cwnd`` minus an unconditionally positive
  signal-free term) are rejected;
* **canonical commutativity** — for ``+`` and ``*`` only one operand
  order is generated, halving the space without losing any behavior.
"""

from __future__ import annotations

from typing import Iterator

from repro.dsl import ast
from repro.dsl.families import DslSpec
from repro.dsl.macros import macro_definition
from repro.dsl.simplify import is_simplifiable
from repro.dsl.typecheck import SIGNAL_UNITS, infer_unit
from repro.errors import EnumerationError, UnitError
from repro.synth.sketch import Sketch
from repro.units import BYTES, Unit

__all__ = [
    "enumerate_sketches",
    "count_sketches",
    "leaf_pool",
    "min_feasible_size",
    "bucket_witnesses",
]

_HOLE = ast.Const(None, 0)

# Operator categories.
_ARITH = ("+", "-", "*", "/")
_PRED_OPS = ("cmp", "modeq")


def leaf_pool(dsl: DslSpec) -> list[tuple[ast.NumExpr, Unit | None]]:
    """The leaves available in *dsl*: signals, macros, and one hole."""
    leaves: list[tuple[ast.NumExpr, Unit | None]] = []
    for name in dsl.signals:
        leaves.append((ast.Signal(name), SIGNAL_UNITS[name]))
    for name in dsl.macros:
        leaves.append((ast.Macro(name), macro_definition(name).unit))
    leaves.append((_HOLE, None))
    return leaves


def _canonical_key(expr: ast.Expr) -> tuple[int, str]:
    return (ast.node_count(expr), repr(expr))


def _unify_ok(left: Unit | None, right: Unit | None) -> bool:
    return left is None or right is None or left == right


def _mul_unit(left: Unit | None, right: Unit | None) -> Unit | None:
    return None if left is None or right is None else left * right


def _div_unit(left: Unit | None, right: Unit | None) -> Unit | None:
    return None if left is None or right is None else left / right


class _Generator:
    """Lazy generator of well-formed sketches for one DSL + operator set."""

    def __init__(self, dsl: DslSpec, allowed_ops: frozenset[str]):
        unknown = allowed_ops - set(dsl.operators)
        if unknown:
            raise EnumerationError(
                f"operators {sorted(unknown)} not in DSL {dsl.name!r}"
            )
        self.dsl = dsl
        self.ops = allowed_ops
        self.leaves = leaf_pool(dsl)
        self.arith = [op for op in _ARITH if op in allowed_ops]
        self.has_cond = "cond" in allowed_ops
        self.preds = [op for op in _PRED_OPS if op in allowed_ops]
        self.has_cube = "cube" in allowed_ops
        self.has_cbrt = "cbrt" in allowed_ops
        # Sub-expression pools for small sizes are materialized once: the
        # recursive partitions below re-request them combinatorially.
        self._memo: dict[tuple[int, int], list] = {}
        self._memo_cutoff = 6

    # -- numeric expressions of exactly `size` nodes, depth <= `depth` --

    def nums(
        self, size: int, depth: int
    ) -> Iterator[tuple[ast.NumExpr, Unit | None]]:
        if size < 1 or depth < 1:
            return
        if size <= self._memo_cutoff:
            key = (size, depth)
            if key not in self._memo:
                self._memo[key] = list(self._nums_uncached(size, depth))
            yield from self._memo[key]
            return
        yield from self._nums_uncached(size, depth)

    def _nums_uncached(
        self, size: int, depth: int
    ) -> Iterator[tuple[ast.NumExpr, Unit | None]]:
        if size == 1:
            yield from self.leaves
            return
        if depth < 2:
            return
        # Unary cube / cbrt.
        if self.has_cube:
            for arg, unit in self.nums(size - 1, depth - 1):
                if isinstance(arg, (ast.Const, ast.Cbrt)):
                    continue  # cube(c) folds; cube(cbrt(x)) cancels
                yield ast.Cube(arg), (None if unit is None else unit**3)
        if self.has_cbrt:
            for arg, unit in self.nums(size - 1, depth - 1):
                if isinstance(arg, (ast.Const, ast.Cube)):
                    continue
                if unit is not None:
                    try:
                        out = unit.root(3)
                    except UnitError:
                        if self.dsl.strict_units:
                            continue
                        out = None
                else:
                    out = None
                yield ast.Cbrt(arg), out
        # Binary arithmetic.
        for op in self.arith:
            yield from self._binops(op, size, depth)
        # Conditionals.
        if self.has_cond and self.preds:
            yield from self._conds(size, depth)

    def _binops(
        self, op: str, size: int, depth: int
    ) -> Iterator[tuple[ast.NumExpr, Unit | None]]:
        commutative = op in ("+", "*")
        for left_size in range(1, size - 1):
            right_size = size - 1 - left_size
            if commutative and left_size > right_size:
                continue  # canonical order: smaller operand first
            for left, lu in self.nums(left_size, depth - 1):
                for right, ru in self.nums(right_size, depth - 1):
                    if commutative and left_size == right_size:
                        if _canonical_key(left) > _canonical_key(right):
                            continue
                    if not self._binop_ok(op, left, lu, right, ru):
                        continue
                    unit = self._binop_unit(op, lu, ru)
                    yield ast.BinOp(op, left, right), unit

    def _binop_ok(
        self,
        op: str,
        left: ast.NumExpr,
        lu: Unit | None,
        right: ast.NumExpr,
        ru: Unit | None,
    ) -> bool:
        left_const = isinstance(left, ast.Const)
        right_const = isinstance(right, ast.Const)
        if left_const and right_const:
            return False  # c1 (op) c2 folds to one constant
        if op in ("+", "-"):
            if self.dsl.strict_units and not _unify_ok(lu, ru):
                return False
            if op == "-" and left == right:
                return False  # x - x = 0
            if op == "+" and left == right:
                return False  # x + x = 2x, covered by c * x
        if op == "/" and left == right:
            return False  # x / x = 1
        if op == "-" and right_const:
            return False  # x - c ≡ x + c' (covered by the + bucket or x+c)
        if op == "/" and left_const:
            # c / x is kept (reciprocal shapes are real, e.g. 1/gradient),
            # but c / c was rejected above.
            pass
        # Collapse-of-constants through associativity: (c * x) * c etc.
        if op in ("+", "*"):
            if self._has_const_operand(op, left) and right_const:
                return False
            if self._has_const_operand(op, right) and left_const:
                return False
            if self._has_const_operand(op, left) and self._has_const_operand(
                op, right
            ):
                return False
        return True

    @staticmethod
    def _has_const_operand(op: str, expr: ast.NumExpr) -> bool:
        if isinstance(expr, ast.Const):
            return True
        if isinstance(expr, ast.BinOp) and expr.op == op:
            return _Generator._has_const_operand(
                op, expr.left
            ) or _Generator._has_const_operand(op, expr.right)
        return False

    def _binop_unit(
        self, op: str, lu: Unit | None, ru: Unit | None
    ) -> Unit | None:
        if op == "+":
            return lu if lu is not None else ru
        if op == "-":
            return lu if lu is not None else ru
        if op == "*":
            return _mul_unit(lu, ru)
        return _div_unit(lu, ru)

    def _conds(
        self, size: int, depth: int
    ) -> Iterator[tuple[ast.NumExpr, Unit | None]]:
        # Cond node (1) + predicate (>= 3) + then + else.
        for pred_size in range(3, size - 2):
            remaining = size - 1 - pred_size
            for pred in self._bools(pred_size, depth - 1):
                for then_size in range(1, remaining):
                    else_size = remaining - then_size
                    for then, tu in self.nums(then_size, depth - 1):
                        for other, ou in self.nums(else_size, depth - 1):
                            if then == other:
                                continue  # branches identical
                            if self.dsl.strict_units and not _unify_ok(
                                tu, ou
                            ):
                                continue
                            unit = tu if tu is not None else ou
                            yield ast.Cond(pred, then, other), unit

    def _bools(self, size: int, depth: int) -> Iterator[ast.BoolExpr]:
        if size < 3 or depth < 2:
            return
        for left_size in range(1, size - 1):
            right_size = size - 1 - left_size
            for left, lu in self.nums(left_size, depth - 1):
                for right, ru in self.nums(right_size, depth - 1):
                    both_const = isinstance(left, ast.Const) and isinstance(
                        right, ast.Const
                    )
                    if both_const or left == right:
                        continue
                    if self.dsl.strict_units and not _unify_ok(lu, ru):
                        continue
                    if "cmp" in self.preds:
                        yield ast.Cmp("<", left, right)
                        yield ast.Cmp(">", left, right)
                    if "modeq" in self.preds:
                        yield ast.ModEq(left, right)


def _never_grows(expr: ast.NumExpr) -> bool:
    """Structural test for handlers that can never raise the window.

    The paper's SMT encoding rejects monotonically decreasing handlers;
    we reject the clear-cut structural cases: the bare ``cwnd`` identity
    and ``cwnd - t`` where ``t`` is condition-free.
    """
    if expr == ast.Signal("cwnd"):
        return True
    if (
        isinstance(expr, ast.BinOp)
        and expr.op == "-"
        and expr.left == ast.Signal("cwnd")
    ):
        subtrahend_has_cond = any(
            isinstance(node, ast.Cond) for node in ast.walk(expr.right)
        )
        return not subtrahend_has_cond
    return False


def min_feasible_size(ops: frozenset[str]) -> int:
    """A lower bound on the node count of a sketch using exactly *ops*.

    Every arithmetic operator needs its own internal node plus one extra
    operand; each predicate type needs its own conditional (a Cond holds
    exactly one predicate node), costing ~5 nodes.  The bound may
    under-estimate (safe: only extra scanning) but never over-estimates,
    so starting enumeration at this size cannot skip a feasible sketch.
    """
    arith = len(ops & {"+", "-", "*", "/"})
    unary = len(ops & {"cube", "cbrt"})
    pred_types = len(ops & {"cmp", "modeq"})
    return 1 + 2 * arith + unary + 5 * pred_types


def enumerate_sketches(
    dsl: DslSpec,
    *,
    allowed_ops: frozenset[str] | None = None,
    exact_ops: bool = False,
    max_nodes: int | None = None,
    max_depth: int | None = None,
    min_nodes: int = 1,
) -> Iterator[Sketch]:
    """Lazily yield well-formed sketches for *dsl*, smallest first.

    ``allowed_ops`` restricts the operator vocabulary (a bucket's
    discriminator); with ``exact_ops`` only sketches whose operator set
    equals ``allowed_ops`` are yielded — that exact-set semantics is what
    makes buckets disjoint (§4.4).  ``min_nodes`` skips sizes below a
    known feasibility floor (see :func:`min_feasible_size`).
    """
    ops = (
        frozenset(dsl.operators) if allowed_ops is None else frozenset(allowed_ops)
    )
    generator = _Generator(dsl, ops)
    nodes_cap = max_nodes if max_nodes is not None else dsl.max_nodes
    depth_cap = max_depth if max_depth is not None else dsl.max_depth
    for size in range(max(min_nodes, 1), nodes_cap + 1):
        for expr, unit in generator.nums(size, depth_cap):
            if dsl.strict_units and unit is not None and unit != BYTES:
                continue
            if exact_ops and ast.operators_used(expr) != ops:
                continue
            if _never_grows(expr):
                continue
            if is_simplifiable(expr):
                continue
            yield Sketch.from_expr(expr)


def count_sketches(
    dsl: DslSpec,
    *,
    allowed_ops: frozenset[str] | None = None,
    exact_ops: bool = False,
    cap: int = 1_000_000,
    max_nodes: int | None = None,
    max_depth: int | None = None,
) -> int:
    """Count the sketches :func:`enumerate_sketches` would yield, up to *cap*."""
    total = 0
    for _ in enumerate_sketches(
        dsl,
        allowed_ops=allowed_ops,
        exact_ops=exact_ops,
        max_nodes=max_nodes,
        max_depth=max_depth,
    ):
        total += 1
        if total >= cap:
            break
    return total


def bucket_witnesses(
    dsl: DslSpec,
    key: frozenset[str],
    *,
    count: int = 4,
    max_attempts: int = 400,
) -> list[Sketch]:
    """Directly construct up to *count* valid sketches using exactly *key*.

    The constructive analogue of asking a per-bucket SMT solver for a few
    models: stack the required operators over varying leaf choices and
    keep the combinations that pass the usual well-formedness filters.
    Construction is unit-aware — additive operands come from bytes-valued
    leaves and multiplicative ones from dimensionless leaves (or a single
    hole) — so most attempts survive the strict-unit check.  Used to seed
    buckets whose smallest members lie too deep in the smallest-first
    enumeration order to reach by streaming (§4.4's guarantee that every
    bucket can be sampled).
    """
    import itertools as _itertools

    arith = [op for op in _ARITH if op in key]
    preds = [op for op in _PRED_OPS if op in key]
    unary = [op for op in ("cube", "cbrt") if op in key]
    if ("cond" in key) != bool(preds):
        return []  # incoherent: cond without predicate or vice versa

    typed_leaves = leaf_pool(dsl)
    bytes_leaves = [expr for expr, unit in typed_leaves if unit == BYTES]
    dimless_leaves = [
        expr
        for expr, unit in typed_leaves
        if unit is not None and unit.is_dimensionless
    ]
    seconds_leaves = [
        expr
        for expr, unit in typed_leaves
        if unit is not None and unit.bytes == 0 and unit.seconds == 1
    ]
    hole = _HOLE
    # Multiplicative operands: dimensionless signals first, then one hole.
    scale_operands = dimless_leaves + [hole]

    witnesses: list[Sketch] = []
    seen: set[ast.NumExpr] = set()
    attempts = 0
    choice_space = _itertools.product(
        bytes_leaves,
        bytes_leaves,
        scale_operands,
        scale_operands,
        bytes_leaves,
    )
    for base, add_operand, scale_a, scale_b, alternate in choice_space:
        if attempts >= max_attempts or len(witnesses) >= count:
            break
        attempts += 1
        expr: ast.NumExpr = base
        hole_used = False
        scales = iter((scale_a, scale_b))
        ok = True
        for op in arith:
            if op in ("+", "-"):
                operand: ast.NumExpr = add_operand
                if operand == expr:
                    ok = False
                    break
                expr = ast.BinOp(op, expr, operand)
            else:
                operand = next(scales, hole)
                if isinstance(operand, ast.Const):
                    if hole_used:
                        ok = False
                        break
                    hole_used = True
                expr = ast.BinOp(op, expr, operand)
        if not ok:
            continue
        for op in unary:
            expr = ast.Cube(expr) if op == "cube" else ast.Cbrt(expr)
        for pred_op in preds:
            if pred_op == "cmp" and len(seconds_leaves) >= 2:
                pred: ast.BoolExpr = ast.Cmp(
                    "<", seconds_leaves[0], seconds_leaves[1]
                )
            elif pred_op == "cmp":
                pred = ast.Cmp("<", bytes_leaves[0], bytes_leaves[1])
            else:
                pred = ast.ModEq(ast.Signal("cwnd"), hole)
            if alternate == expr:
                continue
            expr = ast.Cond(pred, expr, alternate)
        expr = ast.rename_holes(expr)
        if expr in seen:
            continue
        if ast.operators_used(expr) != key:
            continue
        if ast.node_count(expr) > dsl.max_nodes:
            continue
        if ast.depth(expr) > dsl.max_depth:
            continue
        if is_simplifiable(expr):
            continue
        if dsl.strict_units:
            try:
                unit = infer_unit(expr)
            except Exception:
                continue
            if unit is not None and unit != BYTES:
                continue
        seen.add(expr)
        witnesses.append(Sketch.from_expr(expr))
    return witnesses
