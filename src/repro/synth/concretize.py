"""Sketch concretization: filling holes with constant values (§4.2).

Solving a real-valued optimization per sketch would be prohibitive, so
Abagnale fills holes from a small pool of values observed in known CCAs
(*approximate concretization*).  A sketch with ``k`` holes and a pool of
``n`` values has ``n^k`` completions; beyond a cap we draw a seeded
random sample of assignments instead of expanding the full product.
This makes the search incomplete — the paper accepts the same trade.
"""

from __future__ import annotations

import itertools
import random
import zlib
from typing import Iterator, Sequence

from repro.dsl import ast
from repro.synth.sketch import Sketch

__all__ = [
    "concretizations",
    "concretization_assignments",
    "concretize_all",
    "DEFAULT_COMPLETION_CAP",
]

#: Maximum completions expanded per sketch before sampling kicks in.
DEFAULT_COMPLETION_CAP = 64


def concretization_assignments(
    sketch: Sketch,
    pool: Sequence[float],
    *,
    cap: int = DEFAULT_COMPLETION_CAP,
    seed: int = 0,
) -> Iterator[tuple[float, ...]]:
    """Yield hole-value tuples, aligned with ``ast.holes(sketch.expr)``.

    This is the assignment stream :func:`concretizations` fills holes
    from; batched scoring iterates the same stream so the scalar and
    vectorized paths see candidates in the identical order (ties in the
    per-sketch minimum resolve to the same handler either way).

    When the full assignment product fits within *cap* it is enumerated
    exhaustively (deterministic order); otherwise *cap* assignments are
    sampled without replacement-bias using a seeded RNG.
    """
    holes = ast.holes(sketch.expr)
    if not holes:
        yield ()
        return
    hole_count = len(holes)
    total = len(pool) ** hole_count
    if total <= cap:
        yield from itertools.product(pool, repeat=hole_count)
        return
    # repr + crc32 gives a process-stable per-sketch seed (dataclass
    # hash() is randomized for the str fields inside).
    sketch_hash = zlib.crc32(repr(sketch.expr).encode())
    rng = random.Random(seed ^ (sketch_hash & 0xFFFFFFFF))
    seen: set[tuple[float, ...]] = set()
    attempts = 0
    while len(seen) < cap and attempts < cap * 20:
        attempts += 1
        values = tuple(rng.choice(pool) for _ in range(hole_count))
        if values in seen:
            continue
        seen.add(values)
        yield values


def concretizations(
    sketch: Sketch,
    pool: Sequence[float],
    *,
    cap: int = DEFAULT_COMPLETION_CAP,
    seed: int = 0,
) -> Iterator[ast.NumExpr]:
    """Yield concrete handlers obtained by filling *sketch*'s holes."""
    holes = ast.holes(sketch.expr)
    if not holes:
        yield sketch.expr
        return
    hole_ids = [hole.hole_id for hole in holes]
    for values in concretization_assignments(
        sketch, pool, cap=cap, seed=seed
    ):
        yield ast.fill_holes(sketch.expr, dict(zip(hole_ids, values)))


def concretize_all(
    sketch: Sketch,
    pool: Sequence[float],
    *,
    cap: int = DEFAULT_COMPLETION_CAP,
    seed: int = 0,
) -> list[ast.NumExpr]:
    """List form of :func:`concretizations`."""
    return list(concretizations(sketch, pool, cap=cap, seed=seed))
