"""Sketch concretization: filling holes with constant values (§4.2).

Solving a real-valued optimization per sketch would be prohibitive, so
Abagnale fills holes from a small pool of values observed in known CCAs
(*approximate concretization*).  A sketch with ``k`` holes and a pool of
``n`` values has ``n^k`` completions; beyond a cap we draw a seeded
random sample of assignments instead of expanding the full product.
This makes the search incomplete — the paper accepts the same trade.
"""

from __future__ import annotations

import itertools
import random
import zlib
from typing import Iterator, Sequence

from repro.dsl import ast
from repro.synth.sketch import Sketch

__all__ = ["concretizations", "concretize_all", "DEFAULT_COMPLETION_CAP"]

#: Maximum completions expanded per sketch before sampling kicks in.
DEFAULT_COMPLETION_CAP = 64


def concretizations(
    sketch: Sketch,
    pool: Sequence[float],
    *,
    cap: int = DEFAULT_COMPLETION_CAP,
    seed: int = 0,
) -> Iterator[ast.NumExpr]:
    """Yield concrete handlers obtained by filling *sketch*'s holes.

    When the full assignment product fits within *cap* it is enumerated
    exhaustively (deterministic order); otherwise *cap* assignments are
    sampled without replacement-bias using a seeded RNG.
    """
    holes = ast.holes(sketch.expr)
    if not holes:
        yield sketch.expr
        return
    hole_ids = [hole.hole_id for hole in holes]
    total = len(pool) ** len(hole_ids)
    if total <= cap:
        for values in itertools.product(pool, repeat=len(hole_ids)):
            yield ast.fill_holes(sketch.expr, dict(zip(hole_ids, values)))
        return
    # repr + crc32 gives a process-stable per-sketch seed (dataclass
    # hash() is randomized for the str fields inside).
    sketch_hash = zlib.crc32(repr(sketch.expr).encode())
    rng = random.Random(seed ^ (sketch_hash & 0xFFFFFFFF))
    seen: set[tuple[float, ...]] = set()
    attempts = 0
    while len(seen) < cap and attempts < cap * 20:
        attempts += 1
        values = tuple(rng.choice(pool) for _ in hole_ids)
        if values in seen:
            continue
        seen.add(values)
        yield ast.fill_holes(sketch.expr, dict(zip(hole_ids, values)))


def concretize_all(
    sketch: Sketch,
    pool: Sequence[float],
    *,
    cap: int = DEFAULT_COMPLETION_CAP,
    seed: int = 0,
) -> list[ast.NumExpr]:
    """List form of :func:`concretizations`."""
    return list(concretizations(sketch, pool, cap=cap, seed=seed))
