"""Search-space bucketization (§4.4).

Abagnale partitions the sketch space into disjoint *buckets* so each can
be searched by an independent, smaller enumerator, and whole buckets can
be ranked and discarded.  The discriminator is the paper's option (2):
**the exact set of DSL operators the sketch uses** — easy to enforce in
the enumerator and behaviorally meaningful (sketches sharing operators
tend to share dynamics).

A bucket key must be *coherent* to be non-empty: ``cond`` appears iff at
least one predicate operator does, since predicates exist only inside
conditionals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.dsl.families import DslSpec
from repro.synth.enumerator import enumerate_sketches
from repro.synth.sketch import Sketch

__all__ = ["Bucket", "make_buckets", "coherent_op_sets", "bucket_key_for"]

_ARITH = ("+", "-", "*", "/")
_UNARY = ("cube", "cbrt")
_PREDS = ("cmp", "modeq")


def coherent_op_sets(dsl: DslSpec) -> list[frozenset[str]]:
    """All operator subsets that can label a non-empty bucket.

    Arithmetic and unary operators combine freely; ``cond`` requires at
    least one predicate operator and vice versa.  The empty set is a
    valid bucket: it holds the single-leaf sketches (a constant or bare
    signal handler, e.g. the paper's Student-4 result ``mss``).
    """
    free_ops = [op for op in _ARITH + _UNARY if op in dsl.operators]
    has_cond = "cond" in dsl.operators
    preds = [op for op in _PREDS if op in dsl.operators]

    pred_variants: list[frozenset[str]] = [frozenset()]
    if has_cond and preds:
        for count in range(1, len(preds) + 1):
            for combo in itertools.combinations(preds, count):
                pred_variants.append(frozenset(combo) | {"cond"})

    keys: list[frozenset[str]] = []
    for count in range(len(free_ops) + 1):
        for combo in itertools.combinations(free_ops, count):
            for preds_part in pred_variants:
                keys.append(frozenset(combo) | preds_part)
    return keys


def bucket_key_for(sketch: Sketch) -> frozenset[str]:
    """The bucket a sketch belongs to: its exact operator set."""
    return sketch.operators


@dataclass
class Bucket:
    """One disjoint slice of the search space, with its own enumerator.

    Sketches are drawn lazily and cached so successive refinement
    iterations extend (never re-draw) the sample (§4.4: N grows 8x each
    iteration).  ``exhausted`` becomes true once the underlying generator
    ends — the loop then knows the bucket has been fully enumerated.
    """

    dsl: DslSpec
    key: frozenset[str]
    drawn: list[Sketch] = field(default_factory=list)
    exhausted: bool = False
    #: Whether a directed probe already searched for this bucket's first
    #: members (see BucketPool._probe_empty_buckets).
    probed: bool = False
    score: float = float("inf")
    _source: Iterator[Sketch] | None = field(default=None, repr=False)

    def _generator(self) -> Iterator[Sketch]:
        if self._source is None:
            self._source = enumerate_sketches(
                self.dsl, allowed_ops=self.key, exact_ops=True
            )
        return self._source

    def draw(self, target: int) -> list[Sketch]:
        """Extend the drawn sample to *target* sketches; return new ones."""
        new: list[Sketch] = []
        source = self._generator()
        while len(self.drawn) < target and not self.exhausted:
            try:
                sketch = next(source)
            except StopIteration:
                self.exhausted = True
                break
            self.drawn.append(sketch)
            new.append(sketch)
        return new

    @property
    def label(self) -> str:
        return "{" + ",".join(sorted(self.key)) + "}" if self.key else "{}"


def make_buckets(dsl: DslSpec) -> list[Bucket]:
    """Create the bucket set for *dsl* (one per coherent operator set)."""
    return [Bucket(dsl=dsl, key=key) for key in coherent_op_sets(dsl)]
