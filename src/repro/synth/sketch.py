"""Sketches: enumerated handler shapes with unfilled constants (§4.1).

A :class:`Sketch` wraps an AST whose :class:`~repro.dsl.ast.Const` leaves
are holes, plus the metadata the search uses: the operator set (the
bucket discriminator), size, depth and hole count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl import ast
from repro.dsl.printer import to_text

__all__ = ["Sketch"]


@dataclass(frozen=True)
class Sketch:
    """An enumerated sketch and its search metadata."""

    expr: ast.NumExpr
    operators: frozenset[str] = field(default=frozenset())
    size: int = 0
    depth: int = 0
    hole_count: int = 0

    @classmethod
    def from_expr(cls, expr: ast.NumExpr) -> "Sketch":
        expr = ast.rename_holes(expr)
        return cls(
            expr=expr,
            operators=ast.operators_used(expr),
            size=ast.node_count(expr),
            depth=ast.depth(expr),
            hole_count=len(ast.holes(expr)),
        )

    def completion_count(self, pool_size: int) -> int:
        """Number of concrete handlers a constant pool of *pool_size*
        values can instantiate from this sketch."""
        return pool_size**self.hole_count

    def __str__(self) -> str:
        return to_text(self.expr)
