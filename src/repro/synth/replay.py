"""Candidate-handler replay over trace segments (§3.1).

Given a concrete handler and a trace segment, replay executes the handler
once per observed ACK, feeding it the *recorded* congestion signals but
its **own** evolving window — the statefulness that defeats stateless PBE
synthesizers (§2.2).  The output is the *synthesized trace*: the cwnd
series that handler would have produced under the same inputs, which the
distance metric then compares against the observed series.

This is the synthesis hot loop, so handlers are compiled
(:mod:`repro.dsl.compiled`) and trace columns are bound positionally;
the tree-walking evaluator remains the semantic reference (property
tests assert agreement).
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.dsl import ast
from repro.dsl.compiled import (
    CompiledHandler,
    CompiledVectorSketch,
    compile_handler,
)
from repro.errors import EvaluationError
from repro.trace.signals import SignalTable, extract_signals
from repro.trace.model import TraceSegment

__all__ = [
    "replay_handler",
    "replay_batch",
    "replay_on_segment",
    "CWND_CAP_FACTOR",
]

#: Candidate windows are clamped to this multiple of the largest observed
#: window: a handler that diverges numerically should score terribly, not
#: overflow or stall the arithmetic.
CWND_CAP_FACTOR = 16.0


def _bind_columns(
    compiled: CompiledHandler, table: SignalTable
) -> tuple[list, int | None]:
    """Bind the handler's signals to per-row value sequences.

    Returns the sequences (positionally matching ``compiled.signals``)
    and the index of the ``cwnd`` parameter (replaced with the
    candidate's own state each step), or ``None`` if the handler ignores
    the window.
    """
    sequences: list = []
    cwnd_index: int | None = None
    for position, name in enumerate(compiled.signals):
        if name == "cwnd":
            cwnd_index = position
            sequences.append(itertools.repeat(0.0))
        elif name == "mss":
            sequences.append(itertools.repeat(table.mss))
        elif name == "wmax":
            sequences.append(itertools.repeat(table.wmax))
        elif name in table.columns:
            sequences.append(table.column_list(name))
        else:
            raise EvaluationError(f"signal {name!r} missing from trace table")
    return sequences, cwnd_index


def replay_handler(
    handler: ast.NumExpr,
    table: SignalTable,
    *,
    initial_cwnd: float | None = None,
    compiled: CompiledHandler | None = None,
) -> np.ndarray:
    """Replay *handler* over *table*; return its cwnd series (bytes).

    The handler expression computes the *next* window from the current
    one plus the recorded signals.  The window is clamped to
    ``[mss, CWND_CAP_FACTOR * max(observed)]``.  Pass *compiled* to reuse
    a compilation across tables.
    """
    observed = table.observed_cwnd()
    count = len(table)
    if count == 0:
        return np.empty(0)
    mss = table.mss
    cap = CWND_CAP_FACTOR * float(observed.max())
    cwnd = float(observed[0]) if initial_cwnd is None else initial_cwnd
    out = np.empty(count)
    try:
        if compiled is None:
            compiled = compile_handler(handler)
        sequences, cwnd_index = _bind_columns(compiled, table)
    except EvaluationError:
        # An uncompilable/unbindable candidate cannot match anything.
        out[:] = cap
        return out

    fn = compiled.fn
    rows = itertools.islice(zip(*sequences), count) if sequences else None
    if rows is None:
        # Signal-free handler (a bare constant): constant series.
        value = fn()
        if not math.isfinite(value):
            # NaN passes both clamp comparisons (every comparison with
            # NaN is false) and min/max propagate it; pin divergence to
            # the cap so it scores terribly instead of poisoning the
            # distance metric.
            value = cap
        else:
            value = min(max(value, mss), cap)
        out[:] = value
        return out
    for index, values in enumerate(rows):
        if cwnd_index is not None:
            values = list(values)
            values[cwnd_index] = cwnd
        cwnd = fn(*values)
        if not math.isfinite(cwnd):
            # A NaN window would sail through both comparisons below
            # (NaN < mss and NaN > cap are both false), feed itself back
            # as next step's cwnd, and reach the distance metric.
            # Non-finite means the candidate diverged: pin it to the cap.
            cwnd = cap
        elif cwnd < mss:
            cwnd = mss
        elif cwnd > cap:
            cwnd = cap
        out[index] = cwnd
    return out


def replay_batch(
    vector: CompiledVectorSketch,
    assignments: list[tuple[float, ...]],
    table: SignalTable,
    *,
    initial_cwnd: float | None = None,
) -> np.ndarray:
    """Replay every concretization of a sketch in one pass over *table*.

    *vector* is the sketch compiled by
    :func:`repro.dsl.compiled.compile_sketch_vector`; *assignments* holds
    one hole-value tuple per candidate (aligned with
    ``ast.holes(sketch.expr)`` pre-order, exactly what
    :func:`repro.synth.concretize.concretization_assignments` yields).
    Returns a ``(K, n)`` matrix whose row ``k`` is bit-identical to
    ``replay_handler(fill_holes(sketch, assignments[k]), table)`` —
    the per-row clamp chain below deliberately mirrors the scalar one
    branch for branch (property-tested).
    """
    lanes = len(assignments)
    observed = table.observed_cwnd()
    count = len(table)
    if count == 0:
        return np.empty((lanes, 0))
    mss = table.mss
    cap = CWND_CAP_FACTOR * float(observed.max())
    out = np.empty((lanes, count))

    hole_values = [
        np.array([values[position] for values in assignments], dtype=float)
        for position in vector.assignment_positions
    ]
    args: list = []
    cwnd_index: int | None = None
    try:
        for position, name in enumerate(vector.signals):
            if name == "cwnd":
                cwnd_index = position
                args.append(None)  # replaced with the lane state vector
            elif name == "mss":
                args.append(table.mss)
            elif name == "wmax":
                args.append(table.wmax)
            elif name in table.columns:
                args.append(table.columns[name])
            else:
                raise EvaluationError(
                    f"signal {name!r} missing from trace table"
                )
    except EvaluationError:
        out[:] = cap
        return out

    fn = vector.fn
    with np.errstate(all="ignore"):
        if not args:
            # Signal-free sketch: one constant series per lane.
            values = np.broadcast_to(
                np.asarray(fn(*hole_values), dtype=float), (lanes,)
            )
            clamped = np.minimum(np.maximum(values, mss), cap)
            out[:] = np.where(np.isfinite(values), clamped, cap)[:, None]
            return out
        if cwnd_index is None:
            # Stateless sketch: no feedback, so every row is independent
            # and the whole (K, n) matrix falls out of one call.
            flat = [
                arg[np.newaxis, :] if isinstance(arg, np.ndarray) else arg
                for arg in args
            ]
            raw = np.broadcast_to(
                np.asarray(
                    fn(*flat, *(h[:, None] for h in hole_values)),
                    dtype=float,
                ),
                (lanes, count),
            )
            low = np.where(raw < mss, mss, np.where(raw > cap, cap, raw))
            out[:] = np.where(np.isfinite(raw), low, cap)
            return out
        # Stateful sketch: the per-ACK loop survives, but each iteration
        # is one K-wide numpy call instead of K interpreter calls.
        columns = [
            (position, table.column_list(name))
            for position, name in enumerate(vector.signals)
            if isinstance(args[position], np.ndarray)
        ]
        cwnd_vec = np.full(
            lanes,
            float(observed[0]) if initial_cwnd is None else initial_cwnd,
        )
        for index in range(count):
            for position, column in columns:
                args[position] = column[index]
            args[cwnd_index] = cwnd_vec
            raw = np.asarray(fn(*args, *hole_values), dtype=float)
            low = np.where(raw < mss, mss, np.where(raw > cap, cap, raw))
            cwnd_vec = np.where(np.isfinite(raw), low, cap)
            out[:, index] = cwnd_vec
    return out


def replay_on_segment(
    handler: ast.NumExpr,
    segment: TraceSegment,
    *,
    initial_cwnd: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: extract signals, replay, and return
    ``(synthesized, observed)`` series for *segment*."""
    table = extract_signals(segment)
    synthesized = replay_handler(handler, table, initial_cwnd=initial_cwnd)
    return synthesized, table.observed_cwnd()
