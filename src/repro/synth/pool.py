"""Shared-stream bucket pool: one enumeration pass feeding every bucket.

The paper's SMT formulation gives each bucket its own solver because
*solver queries* grow with each blocked solution, so smaller per-bucket
queries are faster (§4.4).  Our direct enumerator has the opposite cost
profile: a per-bucket generator re-walks the whole AST space and
post-filters on the bucket's exact operator set, so 64 buckets cost 64
enumeration passes.  :class:`BucketPool` restores the intended economics
by enumerating the DSL **once** and routing each sketch to the bucket
its operator set names — the partition semantics are unchanged; only the
work is shared.

After the refinement loop prunes buckets, the pool rebuilds its stream
restricted to the union of the surviving operator sets (skipping
already-routed sketches), so deep iterations regain the "smaller space"
advantage the paper gets from per-bucket solvers.
"""

from __future__ import annotations

from typing import Iterator

from repro.dsl import ast
from repro.dsl.families import DslSpec
from repro.runtime.context import RunContext
from repro.runtime.events import SketchesDrawn
from repro.synth.buckets import Bucket, coherent_op_sets
from repro.synth.enumerator import (
    bucket_witnesses,
    enumerate_sketches,
    min_feasible_size,
)
from repro.synth.sketch import Sketch

__all__ = ["BucketPool"]


class BucketPool:
    """All live buckets of one search, fed from a shared sketch stream.

    An optional :class:`RunContext` receives a
    :class:`~repro.runtime.events.SketchesDrawn` event per ``draw`` so
    run logs show how far the shared enumeration stream advanced.
    """

    def __init__(self, dsl: DslSpec, *, context: RunContext | None = None):
        self.dsl = dsl
        self.context = context
        self.buckets: dict[frozenset[str], Bucket] = {
            key: Bucket(dsl=dsl, key=key) for key in coherent_op_sets(dsl)
        }
        self._stream: Iterator[Sketch] = enumerate_sketches(dsl)
        self._stream_done = False
        self._seen: set[ast.NumExpr] = set()
        #: Surplus sketches per bucket key, drawn before the stream.
        self._backlog: dict[frozenset[str], list[Sketch]] = {}

    # ------------------------------------------------------------------

    @property
    def live(self) -> list[Bucket]:
        return list(self.buckets.values())

    def _route(self, sketch: Sketch, target: int) -> bool:
        """Deliver a generated sketch to its bucket.

        Buckets only *draw* up to the iteration's sample target; the
        stream keeps producing for still-hungry buckets, so surplus
        sketches for already-full buckets go to a backlog and are drawn
        (before touching the stream) when a later iteration raises the
        target.  Without this, popular buckets would accumulate — and the
        loop would score — thousands of unrequested samples.
        """
        self._seen.add(sketch.expr)
        bucket = self.buckets.get(sketch.operators)
        if bucket is None:
            return False
        if len(bucket.drawn) < target:
            bucket.drawn.append(sketch)
            return len(bucket.drawn) == target
        self._backlog.setdefault(sketch.operators, []).append(sketch)
        return False

    def draw(self, target: int, *, max_steps: int | None = None) -> None:
        """Advance the stream (see :meth:`_draw`), then report progress."""
        self._draw(target, max_steps=max_steps)
        if self.context is not None:
            self.context.emit(
                SketchesDrawn(
                    target=target,
                    generated=self.generated,
                    live_buckets=len(self.buckets),
                )
            )

    def _draw(self, target: int, *, max_steps: int | None = None) -> None:
        """Advance the stream until every live bucket holds *target*
        sketches, the stream ends, or *max_steps* sketches were generated.

        The step cap matters: some coherent operator sets cannot be
        realized within the DSL's node budget (e.g. every operator at
        once needs more nodes than the cap allows), and without a bound
        one ``draw`` would scan the whole space trying to fill them.
        Under-filled buckets simply contribute smaller samples this
        iteration — the same effect as an SMT bucket query coming back
        with fewer models.
        """
        # Serve from backlogs first: these were generated earlier for
        # then-full buckets.
        for key, bucket in self.buckets.items():
            backlog = self._backlog.get(key)
            while backlog and len(bucket.drawn) < target:
                bucket.drawn.append(backlog.pop(0))
        if self._stream_done:
            return
        if max_steps is None:
            max_steps = max(2000, 40 * target * max(len(self.buckets), 1))
        pending = sum(
            1
            for bucket in self.buckets.values()
            if len(bucket.drawn) < target
        )
        steps = 0
        while pending and steps < max_steps:
            try:
                sketch = next(self._stream)
            except StopIteration:
                self._stream_done = True
                for bucket in self.buckets.values():
                    bucket.exhausted = True
                return
            steps += 1
            if self._route(sketch, target):
                pending -= 1
        self._probe_empty_buckets(target)

    def _probe_empty_buckets(self, target: int) -> None:
        """Construct witnesses for buckets the shared stream hasn't reached.

        The shared stream is smallest-first over the whole DSL, so a
        bucket whose minimum feasible sketch is large (e.g. an operator
        set needing conditionals *and* several arithmetic operators) may
        see nothing for millions of steps.  The paper's per-bucket SMT
        solvers never have this problem — each query returns an arbitrary
        model of its bucket — so we restore that semantics by directly
        constructing a few valid members (:func:`bucket_witnesses`).
        """
        for key, bucket in self.buckets.items():
            if bucket.drawn or bucket.probed:
                continue
            bucket.probed = True
            if min_feasible_size(key) > self.dsl.max_nodes:
                continue  # provably empty within the node budget
            for sketch in bucket_witnesses(
                self.dsl, key, count=min(target, 4)
            ):
                if sketch.expr in self._seen:
                    continue
                self._seen.add(sketch.expr)
                bucket.drawn.append(sketch)

    @property
    def generated(self) -> int:
        """Total sketches generated by the shared stream so far."""
        return len(self._seen)

    def prune(self, keep: set[frozenset[str]]) -> None:
        """Drop every bucket not in *keep* and restrict the stream.

        The rebuilt stream enumerates only the union of the surviving
        operator sets — a strictly smaller space — and skips sketches
        already routed, so no sample is drawn twice.
        """
        self.buckets = {
            key: bucket for key, bucket in self.buckets.items() if key in keep
        }
        self._backlog = {
            key: sketches
            for key, sketches in self._backlog.items()
            if key in keep
        }
        if self._stream_done or not self.buckets:
            return
        allowed: frozenset[str] = frozenset().union(*self.buckets.keys())
        restricted = enumerate_sketches(self.dsl, allowed_ops=allowed)
        seen = self._seen
        self._stream = (
            sketch for sketch in restricted if sketch.expr not in seen
        )

    @property
    def exhausted(self) -> bool:
        return self._stream_done
