"""Multiplex many reverse-engineering jobs over ONE persistent executor.

The refinement loop's wave protocol (:mod:`repro.runtime.protocol`)
makes executor interactions explicit messages; this scheduler is the
other driver of that protocol.  Where
:func:`~repro.synth.refinement.drive` answers one core's requests
against a private executor, the :class:`Scheduler` round-robins over
many cores and answers all of them against a single shared pool:

* **Fairness** — a :class:`~repro.runtime.protocol.WaveRequest` is
  sliced at group (bucket) boundaries into quanta of roughly
  ``quantum_tasks`` flattened tasks; after each slice the job goes to
  the back of the rotation, so a job with thousand-sketch waves cannot
  starve one with ten-sketch waves.  Group-aligned slicing is *sound*:
  warm-start incumbents never cross groups and group minima are exact,
  so rankings, checkpoints, and best handlers are bit-identical to the
  unsliced dispatch (the multi-job differential suite pins this at
  workers 1 and 4).  A job running alone skips the slicing and takes
  whole waves.
* **One pool** — the executor is created on the first wave and adopted
  scorer-by-scorer as jobs interleave
  (:meth:`~repro.runtime.executors.PooledExecutor.adopt_scorer` defers
  the worker-side swap to the next prime, which broadcasts only when the
  scorer config actually differs).  Jobs whose flattened slice is below
  the executor's parallel threshold score inline in the scheduler
  process and never occupy pool slots.
* **Leases** — every job with a checkpoint path holds a
  :class:`~repro.runtime.checkpoint.CheckpointLease`, renewed as a
  **heartbeat on every dispatched wave slice** (and again at iteration
  boundaries).  A scheduler that dies stops renewing; a successor
  re-submitting the same spool resumes every in-flight job from its
  checkpoint once the TTL lapses (or immediately with
  ``steal_leases=True``).  A claim-loop server may arbitrate ownership
  itself and hand the scheduler a pre-acquired lease via ``Job.lease``.
* **Anytime answers** — each
  :class:`~repro.runtime.protocol.ProgressReport` updates the job's
  :class:`~repro.runtime.jobs.ResultStore` snapshot and emits a
  ``job_progress`` event, so the current best handler per job is
  readable while refinement deepens.

Known (documented) telemetry deviations from the one-job path: executor
counters are fleet-wide, so cores receive ``None`` stats snapshots (no
per-job cache/scoring events); executor-emitted events (pool spawns,
wave dispatches, quarantine notices) go to the scheduler's fleet
context, not the per-job context; and crash strikes are shared across
jobs.  None of these affect search decisions.

This module deliberately imports nothing from :mod:`repro.synth` or
:mod:`repro.pipeline` — it schedules opaque cores over the runtime
layer.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Generator

from repro.runtime.checkpoint import DEFAULT_LEASE_TTL, CheckpointLease
from repro.runtime.context import RunContext
from repro.runtime.events import (
    JobCompleted,
    JobFailed,
    JobPreempted,
    JobProgress,
    JobStarted,
    JobSubmitted,
    LeaseStolen,
)
from repro.runtime.executors import make_executor
from repro.runtime.faults import (
    FaultPlan,
    ServiceFaultPlan,
    apply_service_faults,
)
from repro.runtime.jobs import Job, JobQueue, JobState, ResultStore
from repro.runtime.protocol import (
    ExecutorSnapshot,
    ProgressReport,
    ScorerReady,
    StatsRequest,
    WaveReply,
    WaveRequest,
)
from repro.runtime.supervise import SupervisionPolicy

__all__ = ["Scheduler", "DEFAULT_QUANTUM_TASKS"]

#: Flattened tasks per fairness slice.  One slice is the unit a job runs
#: before rotating to the back; 64 tasks amortize dispatch overhead
#: while keeping a 4-worker pool's turn under a second on paper-scale
#: sketches.
DEFAULT_QUANTUM_TASKS = 64


@dataclass
class _PendingWave:
    """One WaveRequest being serviced in group-aligned slices."""

    request: WaveRequest
    cursor: int = 0  #: groups dispatched so far
    grouped: list = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.request.groups)


@dataclass
class _ActiveJob:
    """A job admitted into the rotation, plus its protocol state."""

    job: Job
    core: Generator
    scorer: Any = None
    lease: CheckpointLease | None = None
    pending: _PendingWave | None = None
    reply: Any = None  #: queued reply for the core's next ``send``


class Scheduler:
    """Round-robin wave scheduler over one shared scoring executor."""

    def __init__(
        self,
        *,
        workers: int = 1,
        context: RunContext | None = None,
        store: ResultStore | None = None,
        quantum_tasks: int = DEFAULT_QUANTUM_TASKS,
        max_active: int | None = None,
        owner: str | None = None,
        lease_ttl_seconds: float = DEFAULT_LEASE_TTL,
        steal_leases: bool = False,
        max_pool_rebuilds: int = 3,
        watchdog_seconds: float | None = None,
        use_shm: bool = True,
        fault_plan: FaultPlan | None = None,
        service_fault_plan: ServiceFaultPlan | None = None,
    ) -> None:
        self.workers = workers
        self.context = context
        self.store = store
        self.quantum_tasks = max(1, quantum_tasks)
        self.max_active = max_active
        self.owner = owner if owner is not None else f"scheduler-{os.getpid()}"
        self.lease_ttl_seconds = lease_ttl_seconds
        self.steal_leases = steal_leases
        self.max_pool_rebuilds = max_pool_rebuilds
        self.watchdog_seconds = watchdog_seconds
        self.use_shm = use_shm
        self.fault_plan = fault_plan
        self.service_fault_plan = service_fault_plan
        self._queue = JobQueue()
        self._active: deque[_ActiveJob] = deque()
        self._executor = None
        #: All jobs ever submitted, by id.
        self.jobs: dict[str, Job] = {}
        self.completed: dict[str, Job] = {}
        self.failed: dict[str, Job] = {}
        #: Jobs whose lease is held by a live foreign scheduler; left
        #: PENDING for the caller to retry or hand off.
        self.deferred: list[Job] = []
        #: Wave slices dispatched fleet-wide (the counter service-level
        #: fault plans key their kill-after-K-slices trigger on).
        self.slices_dispatched = 0
        #: Set by :meth:`request_drain`: finish the slice in flight,
        #: dispatch nothing more.
        self.draining = False

    # ------------------------------------------------------------------

    def _emit(self, event) -> None:
        if self.context is not None:
            self.context.emit(event)

    def submit(self, job: Job) -> None:
        """Queue *job*; it starts once a rotation slot frees up."""
        self.jobs[job.job_id] = job
        self._queue.push(job)
        self._emit(JobSubmitted(job_id=job.job_id, priority=job.priority))
        if self.store is not None:
            self.store.update(job)

    # ------------------------------------------------------------------

    def _admit(self) -> None:
        while self._queue and (
            self.max_active is None or len(self._active) < self.max_active
        ):
            self._start(self._queue.pop())

    def _start(self, job: Job) -> None:
        lease: CheckpointLease | None = job.lease
        if lease is None and job.checkpoint_path is not None:
            lease = CheckpointLease(
                job.checkpoint_path,
                self.owner,
                self.lease_ttl_seconds,
            )
            if not lease.acquire(steal=self.steal_leases):
                self.deferred.append(job)
                return
            if lease.displaced is not None:
                self._emit(
                    LeaseStolen(
                        job_id=job.job_id,
                        path=lease.path,
                        previous_owner=lease.displaced,
                    )
                )
        job.state = JobState.RUNNING
        self._emit(JobStarted(job_id=job.job_id, resumed=job.resumed))
        if self.store is not None:
            self.store.update(job)
        self._active.append(_ActiveJob(job=job, core=job.source(), lease=lease))

    # ------------------------------------------------------------------

    @property
    def _solo(self) -> bool:
        return len(self._active) == 1 and not self._queue

    def _ensure_executor(self, active: _ActiveJob):
        if self._executor is None:
            self._executor = make_executor(
                active.scorer,
                self.workers,
                context=self.context,
                policy=SupervisionPolicy(
                    max_pool_rebuilds=self.max_pool_rebuilds
                ),
                watchdog_seconds=self.watchdog_seconds,
                fault_plan=self.fault_plan,
                use_shm=self.use_shm,
            )
        elif self._executor.scorer is not active.scorer:
            self._executor.adopt_scorer(active.scorer)
        return self._executor

    def _dispatch_slice(self, active: _ActiveJob) -> None:
        """Run one group-aligned quantum of the job's pending wave.

        Every dispatched slice renews the job's lease — the fleet's
        heartbeat: a server that stops slicing (killed, wedged) stops
        renewing, and peers detect the silence by TTL expiry.  The
        service-level fault plan is consulted *after* the slice and the
        renewal, so an injected kill dies exactly like a SIGKILL between
        slices: heartbeat fresh, lease on disk, no cleanup.
        """
        job = active.job
        pending = active.pending
        request = pending.request
        executor = self._ensure_executor(active)
        remaining = request.groups[pending.cursor :]
        if self._solo:
            take = len(remaining)  # no one to be fair to
        else:
            take, flattened = 0, 0
            for group in remaining:
                take += 1
                flattened += len(group)
                if flattened >= self.quantum_tasks:
                    break
        slice_groups = remaining[:take]
        pending.cursor += take
        quarantined_before = len(executor.quarantined)
        rebuilds_before = getattr(executor, "pool_rebuilds", 0)
        if request.fused:
            grouped = executor.score_grouped(
                slice_groups,
                request.segments,
                deadline=request.deadline,
                min_results=request.min_results,
            )
        else:
            grouped = [
                executor.score(
                    group,
                    request.segments,
                    deadline=request.deadline,
                    min_results=request.min_results,
                )
                for group in slice_groups
            ]
        pending.grouped.extend(grouped)
        job.quarantined.extend(executor.quarantined[quarantined_before:])
        job.pool_rebuilds += (
            getattr(executor, "pool_rebuilds", 0) - rebuilds_before
        )
        job.slices_dispatched += 1
        self.slices_dispatched += 1
        if active.lease is not None:
            active.lease.renew()
        apply_service_faults(
            self.service_fault_plan,
            job_id=job.job_id,
            job_slices=job.slices_dispatched,
            total_slices=self.slices_dispatched,
        )

    def _service(self, active: _ActiveJob) -> None:
        """Advance the head job: answer protocol requests until it either
        finishes, fails, or has spent this turn's dispatch quantum."""
        job = active.job
        budget = 1  # slices this turn; rotation fairness rides on this
        while True:
            pending = active.pending
            if pending is None:
                try:
                    request = active.core.send(active.reply)
                except StopIteration as stop:
                    self._complete(active, stop.value)
                    return
                except Exception as exc:  # noqa: BLE001 - job isolation
                    self._fail(active, exc)
                    return
                active.reply = None
                if isinstance(request, ScorerReady):
                    # The shared pool uses the *scheduler's* worker and
                    # supervision knobs; only the scorer is per-job.
                    active.scorer = request.scorer
                elif isinstance(request, StatsRequest):
                    executor = self._executor
                    active.reply = ExecutorSnapshot(
                        cache=None,  # executor counters are fleet-wide
                        scoring=None,
                        quarantined=tuple(job.quarantined),
                        pool_rebuilds=job.pool_rebuilds,
                        degraded=bool(
                            getattr(executor, "degraded", False)
                        ),
                    )
                elif isinstance(request, ProgressReport):
                    job.iterations_done = request.iteration
                    job.best_expression = request.best_expression
                    job.best_distance = request.best_distance
                    job.handlers_scored = request.handlers_scored
                    if active.lease is not None:
                        active.lease.renew()
                    if self.store is not None:
                        self.store.update(job)
                    self._emit(
                        JobProgress(
                            job_id=job.job_id,
                            iteration=request.iteration,
                            best_distance=request.best_distance,
                            expression=request.best_expression,
                            handlers_scored=request.handlers_scored,
                        )
                    )
                elif isinstance(request, WaveRequest):
                    active.pending = _PendingWave(request)
                    job.waves_dispatched += 1
                # Unknown requests expect no reply; skip them.
                continue
            if pending.done:
                active.reply = WaveReply(
                    grouped=tuple(pending.grouped),
                    quarantined=tuple(job.quarantined),
                )
                active.pending = None
                continue
            if self.draining:
                return  # finish-current-slice point: dispatch no more
            if budget <= 0:
                if len(self._active) > 1:
                    job.preemptions += 1
                    self._emit(
                        JobPreempted(
                            job_id=job.job_id,
                            phase=pending.request.phase,
                            groups_remaining=(
                                len(pending.request.groups) - pending.cursor
                            ),
                        )
                    )
                return
            self._dispatch_slice(active)
            budget -= 1

    # ------------------------------------------------------------------

    def _retire(self, active: _ActiveJob) -> None:
        try:
            self._active.remove(active)
        except ValueError:  # pragma: no cover - retire is idempotent
            pass
        if active.lease is not None:
            active.lease.release()

    def _complete(self, active: _ActiveJob, result: Any) -> None:
        job = active.job
        job.state = JobState.COMPLETED
        job.result = result
        expression = getattr(result, "expression", None)
        if expression is not None:
            job.best_expression = expression
        distance = getattr(result, "distance", None)
        if distance is not None:
            job.best_distance = distance
        self._retire(active)
        self.completed[job.job_id] = job
        if self.store is not None:
            self.store.update(job)
        self._emit(
            JobCompleted(
                job_id=job.job_id,
                best_distance=job.best_distance,
                expression=job.best_expression or "",
                iterations=job.iterations_done,
                handlers_scored=job.handlers_scored,
                waves=job.waves_dispatched,
            )
        )

    def _fail(self, active: _ActiveJob, exc: BaseException) -> None:
        job = active.job
        job.state = JobState.FAILED
        job.error = f"{type(exc).__name__}: {exc}"
        self._retire(active)
        self.failed[job.job_id] = job
        if self.store is not None:
            self.store.update(job)
        self._emit(JobFailed(job_id=job.job_id, error=job.error))

    # ------------------------------------------------------------------

    def step(self) -> bool:
        """One scheduling turn: admit, run the head job's quantum,
        rotate.  Returns whether any work remains."""
        if self.draining:
            return False
        self._admit()
        if self._active:
            active = self._active[0]
            self._service(active)
            if self._active and self._active[0] is active:
                self._active.rotate(-1)
        return bool(self._active or self._queue)

    # ------------------------------------------------------------------

    def request_drain(self) -> None:
        """Begin a graceful drain: the slice in flight (if any) finishes,
        nothing further is dispatched, and :meth:`step` reports no work.
        Safe to call from a signal handler — it only sets a flag."""
        self.draining = True

    @property
    def active_jobs(self) -> list[Job]:
        """Jobs admitted and not yet completed/failed (in-flight)."""
        return [active.job for active in self._active]

    def run(self) -> dict[str, Job]:
        """Drive the fleet to completion; returns the completed jobs.

        Jobs deferred on a live foreign lease stay on :attr:`deferred`
        (they never block the loop); failed jobs land on :attr:`failed`.
        """
        while self.step():
            pass
        return self.completed

    def close(self, *, release_leases: bool = True) -> None:
        """Shut the shared executor down.  With ``release_leases=False``
        the in-flight jobs' leases stay on disk (simulating a crashed
        scheduler: a successor must wait out the TTL or steal)."""
        if release_leases:
            for active in self._active:
                if active.lease is not None:
                    active.lease.release()
        if self._executor is not None:
            # Blocking teardown: by close time the pool holds at most
            # stragglers finishing their current sketch, and waiting for
            # worker exit keeps pool cleanup from racing interpreter
            # teardown (an intermittent EBADF at process exit otherwise).
            self._executor.close(wait=True)
            self._executor = None

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
