"""Scoring executors: the shared execution substrate for synthesis.

The paper distributes candidate scoring with Ray across a cluster (§5);
locally the same embarrassing parallelism maps onto a process pool.  The
pre-runtime code forked a fresh ``ProcessPoolExecutor`` — and re-shipped
the whole segment working set — *per bucket per iteration*; here the
substrate is explicit:

:class:`SerialExecutor`
    scores in the calling process (deterministic, zero overhead; the
    default everywhere).

:class:`PooledExecutor`
    creates the process pool **once per synthesis run**, primes workers
    with the scorer configuration at spawn, and re-primes the segment
    working set only when it actually changes.  Re-priming is a
    broadcast: one barrier-synchronized task per worker, so every worker
    installs the new segments exactly once (the barrier keeps the pool
    from handing all the priming tasks to a single worker).  The barrier
    rides into workers through fork inheritance; on platforms without
    ``fork`` the executor degrades to rebuilding the pool per working
    set — still at most one pool per *working set* rather than per wave.

Both enforce a wall-clock ``deadline`` *inside* a scoring wave: the
serial path checks it between sketches, the pooled path bounds how long
it waits on each future and cancels the rest, so a single large bucket
can no longer overshoot ``time_budget_seconds`` unboundedly.
``min_results`` sketches are always scored even past the deadline (the
refinement loop needs every live bucket to receive at least one score to
produce a ranking).

Fault tolerance (``docs/RESILIENCE.md``) is layered on top:

* **Quarantine** — a candidate that raises, hangs past the per-sketch
  ``watchdog_seconds``, or crashes its worker is assigned
  :data:`~repro.runtime.supervise.WORST_DISTANCE` and recorded on the
  executor's ``quarantined`` list instead of killing the run.  In
  workers the watchdog is an in-process SIGALRM, so even the pool stays
  healthy through a hang; the parent keeps a generous backstop timeout
  for hangs the alarm cannot interrupt.
* **Supervision** — ``PooledExecutor.score`` survives
  ``BrokenProcessPool``: it keeps the contiguous prefix of completed
  results, rebuilds the pool with exponential backoff, re-scores only
  the not-yet-completed suffix, blames (and, on a second strike,
  quarantines) the sketch at the head of the suffix, and degrades
  gracefully to serial scoring after ``max_pool_rebuilds`` consecutive
  failures.  Priming broadcasts get one rebuild, then the same serial
  degradation — a wedged pool never propagates out of the executor.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

from repro.runtime.cache import ScoreCache
from repro.runtime.context import RunContext
from repro.runtime.events import (
    CacheStats,
    DegradedToSerial,
    PoolRebuilt,
    PoolSpawned,
    ScoringStats,
    SegmentsPrimed,
    SketchQuarantined,
    WaveDispatched,
    WorkerCrashed,
)
from repro.runtime.faults import FaultInjected, FaultPlan, apply_sketch_faults
from repro.runtime.shm import (
    PlaneHandle,
    SegmentPlane,
    attach_plane,
    plane_segments,
)
from repro.runtime.supervise import (
    WORST_DISTANCE,
    Quarantined,
    SketchTimeout,
    SupervisionPolicy,
    Supervisor,
    watchdog,
)

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.synth.scoring import ScoredHandler, Scorer
    from repro.synth.sketch import Sketch
    from repro.trace.model import TraceSegment

__all__ = [
    "ScoringExecutor",
    "SerialExecutor",
    "PooledExecutor",
    "make_executor",
    "derive_chunksize",
    "interleave_groups",
    "wave_order",
]

#: Waves smaller than this never leave the calling process: the IPC cost
#: of shipping a task exceeds scoring it inline.  Fused waves apply this
#: to the *flattened* task count — many tiny buckets fused together are
#: exactly the waves worth shipping to the pool.
MIN_PARALLEL_SKETCHES = 4

#: In-flight cap per worker for fused grouped waves: deep enough to hide
#: result-consumption latency, shallow enough that the incumbent bounds
#: piggybacked on later submissions stay warm.
WAVE_WINDOW_PER_WORKER = 2

#: How long a priming broadcast may take before the pool is declared
#: wedged and rebuilt.
_PRIME_TIMEOUT_SECONDS = 120.0

#: Pool breaks tolerated with the same sketch at the head of the
#: incomplete suffix before that sketch is quarantined as the culprit.
_CRASH_STRIKES = 2

#: Planes a :class:`PooledExecutor` keeps alive at once.  A scheduler
#: multiplexing jobs alternates working sets wave by wave; the LRU keeps
#: each live job's plane mapped instead of rebuilding it per switch.
_PLANE_LRU_ENTRIES = 8


def interleave_groups(sizes: Sequence[int]) -> list[tuple[int, int]]:
    """Round-robin flat dispatch order over groups of the given sizes.

    Returns ``(group, member)`` pairs: one full round takes the next
    member of every group still holding one, so group 0's first task is
    followed by group 1's first, not group 0's second.  Two properties
    make this the fused scheduler's order:

    * every flat *prefix* maps to a per-group prefix, so a deadline or
      crash cut scatters back into positionally-aligned partial results;
    * the first ``sum(min(size, m))`` tasks cover every group's first
      ``m`` members, so a flat ``min_results`` bound implies the
      per-group guarantee the refinement ranking needs;

    and interleaving means every bucket's incumbent bound tightens early
    in the wave instead of only while "its" bucket is being scored.
    """
    order: list[tuple[int, int]] = []
    for rank in range(max(sizes, default=0)):
        for group, size in enumerate(sizes):
            if rank < size:
                order.append((group, rank))
    return order


def wave_order(
    sizes: Sequence[int], min_results: int, run_length: int = 1
) -> list[tuple[int, int]]:
    """Flat dispatch order for one fused wave.

    A generalization of :func:`interleave_groups`: the first
    ``max(1, min_results)`` rounds are strict round-robin — every
    group's leaders up front, covering the deadline-mandatory prefix
    (the first ``sum(min(size, m))`` tasks hold every group's first
    ``m`` members) and seeding each group's incumbent bound as early as
    possible — then the remainder round-robins in *runs* of
    ``run_length`` consecutive same-group members.  With
    ``run_length=1`` this is exactly the round-robin order (the serial
    scheduler's choice: incumbents refresh every task); pooled waves set
    it to their submission chunk size, so each chunk is a same-group run
    that tightens its bound internally at in-process freshness, while
    round-robin over runs keeps every group's pipeline shallow enough
    that the parent's cross-chunk updates stay warm too.  Any prefix of
    the flat order still maps to per-group prefixes, which is what
    positional scatter and crash-retry prefix retention need.
    """
    rounds = max(1, min_results)
    order = [
        (group, rank)
        for rank in range(rounds)
        for group, size in enumerate(sizes)
        if rank < size
    ]
    step = max(1, run_length)
    cursors = [min(rounds, size) for size in sizes]
    remaining = sum(size - cursor for size, cursor in zip(sizes, cursors))
    while remaining:
        for group, size in enumerate(sizes):
            take = min(step, size - cursors[group])
            for _ in range(take):
                order.append((group, cursors[group]))
                cursors[group] += 1
            remaining -= take
    return order


def _scatter(
    order: Sequence[tuple[int, int]],
    flat: Sequence["ScoredHandler"],
    group_count: int,
) -> list[list["ScoredHandler"]]:
    """Route a flat (possibly cut-short) result prefix back per group.

    Round-robin order preserves member order within each group, so
    appending in flat order rebuilds positionally-aligned result
    prefixes — the same contract ``score()`` gives per bucket.
    """
    grouped: list[list[ScoredHandler]] = [[] for _ in range(group_count)]
    for (group, _), scored in zip(order, flat):
        grouped[group].append(scored)
    return grouped


@dataclass
class _WaveTelemetry:
    """Cumulative fused-wave counters an executor carries for the run."""

    fused_waves: int = 0
    fused_tasks: int = 0
    peak_in_flight: int = 0
    occupancy_sum: float = 0.0
    occupancy_samples: int = 0

    def note_occupancy(self, value: float) -> None:
        self.occupancy_sum += value
        self.occupancy_samples += 1

    @property
    def mean_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_sum / self.occupancy_samples


def derive_chunksize(tasks: int, workers: int) -> int:
    """Chunk size for ``pool.map``: ~4 chunks per worker.

    A fixed chunk size (the old code hardcoded 8) serializes small waves
    onto one worker: 10 tasks in chunks of 8 is two chunks, so at most
    two workers ever run.  Deriving it from the wave keeps every worker
    busy while still amortizing IPC on large waves.
    """
    if tasks <= 0 or workers <= 0:
        return 1
    return max(1, -(-tasks // (workers * 4)))


#: Zero value of ``ScoringCounters.as_tuple()`` — the executors carry
#: worker counter snapshots in this positional shape (the last slot is
#: the float ``envelope_precompute_ms``).
_COUNTER_ZEROS: tuple = (0, 0, 0, 0, 0, 0, 0.0)


def _zero_scorer_counters(scorer: "Scorer") -> None:
    """Reset a scorer's cumulative telemetry in place.

    Cache *contents* survive (a warm cache is an asset the next job
    should inherit); only the hit/miss accounting and the batched-path
    prune counters restart from zero.
    """
    counters = scorer.counters
    counters.batched_waves = 0
    counters.lb_pruned = 0
    counters.dp_abandoned = 0
    counters.candidates_pruned = 0
    counters.warm_start_pruned = 0
    counters.batched_dtw_sweeps = 0
    counters.envelope_precompute_ms = 0.0
    if scorer.cache is not None:
        scorer.cache.hits = 0
        scorer.cache.misses = 0


class ScoringExecutor(Protocol):
    """Scores sketch waves against a segment working set."""

    #: Candidates removed from the run (worst-case scored) so far.
    quarantined: list[Quarantined]

    def score(
        self,
        sketches: Sequence[Sketch],
        segments: Sequence[TraceSegment],
        *,
        deadline: float | None = None,
        min_results: int = 0,
    ) -> list[ScoredHandler]:
        """Score *sketches*; results align positionally with a prefix of
        *sketches* (the full wave unless *deadline* cut it short)."""
        ...

    def score_grouped(
        self,
        groups: Sequence[Sequence[Sketch]],
        segments: Sequence[TraceSegment],
        *,
        deadline: float | None = None,
        min_results: int = 0,
    ) -> list[list[ScoredHandler]]:
        """Score all *groups* as one fused wave; one result list per
        group, each positionally aligned with a prefix of its group
        (*min_results* members guaranteed **per group**, as far as each
        group's size allows).  Group minima are exact; individual
        distances may be ``inf`` when the group's incumbent bound proved
        them non-minimal."""
        ...

    def cache_stats(self) -> CacheStats | None:
        """Cumulative score-cache counters, if caching is enabled."""
        ...

    def scoring_stats(self) -> ScoringStats:
        """Cumulative batched-scoring counters (prunes, abandons, waves)."""
        ...

    def stats(self) -> tuple[CacheStats | None, ScoringStats]:
        """Both telemetry snapshots at once (one worker round-trip)."""
        ...

    def close(self, *, wait: bool = False) -> None: ...


def _score_serially(
    scorer: Scorer,
    sketches: Sequence[Sketch],
    segments: Sequence[TraceSegment],
    deadline: float | None,
    min_results: int,
    *,
    watchdog_seconds: float | None = None,
    fault_plan: FaultPlan | None = None,
    quarantine: Callable[[Sketch, str, str], "ScoredHandler"] | None = None,
) -> list[ScoredHandler]:
    """In-process scoring with per-sketch guarding.

    Exceptions and watchdog timeouts route through *quarantine* (when
    given) so a poisoned candidate costs one worst-case score, not the
    run; with no recorder they propagate, preserving the bare behavior.
    """
    results: list[ScoredHandler] = []
    for index, sketch in enumerate(sketches):
        if (
            deadline is not None
            and index >= min_results
            and time.perf_counter() >= deadline
        ):
            break
        results.append(
            _score_guarded(
                scorer,
                sketch,
                segments,
                None,
                watchdog_seconds,
                fault_plan,
                quarantine,
            )
        )
    return results


def _score_guarded(
    scorer: Scorer,
    sketch: Sketch,
    segments: Sequence[TraceSegment],
    bound: float | None,
    watchdog_seconds: float | None,
    fault_plan: FaultPlan | None,
    quarantine: Callable[[Sketch, str, str], "ScoredHandler"] | None,
) -> ScoredHandler:
    """One sketch through the watchdog/fault/quarantine guard."""
    try:
        with watchdog(watchdog_seconds):
            apply_sketch_faults(fault_plan, str(sketch), in_worker=False)
            return scorer.score_sketch(sketch, segments, bound=bound)
    except SketchTimeout:
        if quarantine is None:
            raise
        return quarantine(
            sketch, "timeout", f"exceeded {watchdog_seconds:.3g}s watchdog"
        )
    except Exception as exc:
        if quarantine is None:
            raise
        return quarantine(sketch, "exception", f"{type(exc).__name__}: {exc}")


def _score_grouped_serially(
    scorer: Scorer,
    tasks: Sequence[tuple[int, "Sketch"]],
    segments: Sequence[TraceSegment],
    deadline: float | None,
    mandatory: int,
    incumbents: list[float],
    *,
    start_index: int = 0,
    watchdog_seconds: float | None = None,
    fault_plan: FaultPlan | None = None,
    quarantine: Callable[[Sketch, str, str], "ScoredHandler"] | None = None,
) -> list[ScoredHandler]:
    """In-process scoring of a fused ``(group, sketch)`` task stream.

    Each sketch is scored with its group's current incumbent bound so
    the batched cascade starts warm; the incumbent only ever holds an
    *exact* distance an earlier group member achieved, so group minima
    stay exact.  *mandatory* counts the deadline-exempt flat prefix
    (``sum(min(group size, min_results))`` — round-robin order puts
    exactly those tasks first); *start_index* is this call's offset into
    the full flat order, letting a degraded pooled wave continue the
    same deadline accounting.
    """
    results: list[ScoredHandler] = []
    for offset, (group, sketch) in enumerate(tasks):
        if (
            deadline is not None
            and start_index + offset >= mandatory
            and time.perf_counter() >= deadline
        ):
            break
        incumbent = incumbents[group]
        scored = _score_guarded(
            scorer,
            sketch,
            segments,
            incumbent if math.isfinite(incumbent) else None,
            watchdog_seconds,
            fault_plan,
            quarantine,
        )
        results.append(scored)
        if scored.distance < incumbents[group]:
            incumbents[group] = scored.distance
    return results


class SerialExecutor:
    """In-process scoring; the deterministic default."""

    def __init__(
        self,
        scorer: Scorer,
        context: RunContext | None = None,
        *,
        watchdog_seconds: float | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self.scorer = scorer
        self.context = context
        self.watchdog_seconds = watchdog_seconds
        self.fault_plan = fault_plan
        self.quarantined: list[Quarantined] = []
        self._waves = _WaveTelemetry()
        #: Every scorer this executor has run waves for (a scheduler
        #: adopts one per job); stats aggregate over all of them.
        self._scorers: dict[int, Scorer] = {id(scorer): scorer}
        self._prepared_token: tuple[int, ...] | None = None

    def adopt_scorer(self, scorer: Scorer) -> None:
        """Point subsequent waves at *scorer* (scheduler job switches)."""
        self._scorers.setdefault(id(scorer), scorer)
        self.scorer = scorer

    def _prepare(self, segments: Sequence[TraceSegment]) -> None:
        """Once-per-working-set eager precompute (tables + envelopes)."""
        token = (id(self.scorer), *(id(segment) for segment in segments))
        if token != self._prepared_token:
            self.scorer.prepare_segments(segments)
            self._prepared_token = token

    def reset_stats(self) -> None:
        """Zero all cumulative counters (between jobs sharing the
        executor) without touching cache *contents* — entries stay warm,
        only the hit/miss accounting restarts."""
        self._waves = _WaveTelemetry()
        self.quarantined = []
        for scorer in self._scorers.values():
            _zero_scorer_counters(scorer)

    def _quarantine(
        self, sketch: Sketch, reason: str, detail: str
    ) -> ScoredHandler:
        from repro.synth.scoring import ScoredHandler

        record = Quarantined(sketch=str(sketch), reason=reason, detail=detail)
        self.quarantined.append(record)
        if self.context is not None:
            self.context.emit(
                SketchQuarantined(
                    sketch=record.sketch, reason=reason, detail=detail
                )
            )
        return ScoredHandler(sketch.expr, WORST_DISTANCE)

    def score(
        self,
        sketches: Sequence[Sketch],
        segments: Sequence[TraceSegment],
        *,
        deadline: float | None = None,
        min_results: int = 0,
    ) -> list[ScoredHandler]:
        self._prepare(segments)
        return _score_serially(
            self.scorer,
            sketches,
            segments,
            deadline,
            min_results,
            watchdog_seconds=self.watchdog_seconds,
            fault_plan=self.fault_plan,
            quarantine=self._quarantine,
        )

    def score_grouped(
        self,
        groups: Sequence[Sequence[Sketch]],
        segments: Sequence[TraceSegment],
        *,
        deadline: float | None = None,
        min_results: int = 0,
    ) -> list[list[ScoredHandler]]:
        self._prepare(segments)
        groups = [list(group) for group in groups]
        order = wave_order(
            [len(group) for group in groups], min_results
        )
        tasks = [(group, groups[group][rank]) for group, rank in order]
        if tasks:
            self._waves.fused_waves += 1
            self._waves.fused_tasks += len(tasks)
            self._waves.peak_in_flight = max(self._waves.peak_in_flight, 1)
            self._waves.note_occupancy(1.0)
            if self.context is not None:
                self.context.emit(
                    WaveDispatched(
                        groups=len(groups), tasks=len(tasks), workers=1
                    )
                )
        mandatory = sum(min(len(group), min_results) for group in groups)
        incumbents = [float("inf")] * len(groups)
        flat = _score_grouped_serially(
            self.scorer,
            tasks,
            segments,
            deadline,
            mandatory,
            incumbents,
            watchdog_seconds=self.watchdog_seconds,
            fault_plan=self.fault_plan,
            quarantine=self._quarantine,
        )
        return _scatter(order, flat, len(groups))

    def cache_stats(self) -> CacheStats | None:
        snapshots = [
            scorer.cache.stats()
            for scorer in self._scorers.values()
            if scorer.cache is not None
        ]
        if not snapshots:
            return None
        return CacheStats(
            hits=sum(snap.hits for snap in snapshots),
            misses=sum(snap.misses for snap in snapshots),
            entries=sum(snap.entries for snap in snapshots),
        )

    def scoring_stats(self) -> ScoringStats:
        totals = list(_COUNTER_ZEROS)
        for scorer in self._scorers.values():
            for index, value in enumerate(scorer.counters.as_tuple()):
                totals[index] += value
        waves = self._waves
        return ScoringStats(
            batched_waves=totals[0],
            lb_pruned=totals[1],
            dp_abandoned=totals[2],
            candidates_pruned=totals[3],
            warm_start_pruned=totals[4],
            fused_waves=waves.fused_waves,
            fused_tasks=waves.fused_tasks,
            peak_in_flight=waves.peak_in_flight,
            mean_occupancy=round(waves.mean_occupancy, 4),
            batched_dtw_sweeps=totals[5],
            envelope_precompute_ms=round(totals[6], 3),
        )

    def stats(self) -> tuple[CacheStats | None, ScoringStats]:
        return (self.cache_stats(), self.scoring_stats())

    def close(self, *, wait: bool = False) -> None:
        pass


# ----------------------------------------------------------------------
# Worker-side state for PooledExecutor.  Installed by the initializer at
# pool spawn; segments are refreshed by _broadcast_segments.

_worker_scorer: "Scorer | None" = None
_worker_segments: "Sequence[TraceSegment] | None" = None
_worker_barrier = None
_worker_faults: FaultPlan | None = None
_worker_generation = 0
_worker_watchdog: float | None = None
#: The attached shared-memory plane, as ``(name, SharedMemory)``.
#: One attach per pool lifetime per plane; replaced (and the old
#: mapping closed) when a broadcast ships a different plane.
_worker_plane: "tuple[str, object] | None" = None


def _attach_plane_segments(handle: PlaneHandle) -> "list":
    """Materialize the working set from a plane handle (worker side)."""
    global _worker_plane
    if _worker_plane is not None and _worker_plane[0] != handle.name:
        try:
            _worker_plane[1].close()
        except BufferError:
            # The scorer's table LRU may still hold views into the old
            # plane; the mapping stays alive with them and is reclaimed
            # when the worker exits.
            pass
        _worker_plane = None
    if _worker_plane is None:
        _worker_plane = (handle.name, attach_plane(handle))
    return plane_segments(_worker_plane[1], handle)


@dataclass(frozen=True)
class _WorkerFailure:
    """Picklable marker a worker returns instead of raising.

    Keeping candidate failures *inside* the task result means one bad
    sketch never disturbs the pool machinery — the parent converts the
    marker into a quarantine record and a worst-case score.
    """

    sketch: str
    reason: str  # "timeout" | "exception"
    detail: str


def _init_worker(
    barrier,
    scorer_config: tuple,
    cache_entries: int | None,
    segments: "Sequence[TraceSegment] | None",
    fault_plan: FaultPlan | None,
    generation: int,
    watchdog_seconds: float | None,
) -> None:
    from repro.synth.scoring import Scorer

    global _worker_scorer, _worker_segments, _worker_barrier
    global _worker_faults, _worker_generation, _worker_watchdog
    (
        metric_name,
        constant_pool,
        completion_cap,
        seed,
        max_replay_rows,
        series_budget,
        batch,
        batch_dtw,
        table_cache_entries,
    ) = scorer_config
    _worker_scorer = Scorer(
        metric_name=metric_name,
        constant_pool=constant_pool,
        completion_cap=completion_cap,
        seed=seed,
        max_replay_rows=max_replay_rows,
        series_budget=series_budget,
        cache=ScoreCache(cache_entries) if cache_entries else None,
        batch=batch,
        batch_dtw=batch_dtw,
        table_cache_entries=table_cache_entries,
    )
    _worker_segments = segments
    _worker_barrier = barrier
    _worker_faults = fault_plan
    _worker_generation = generation
    _worker_watchdog = watchdog_seconds


def _worker_cache_counts() -> tuple[int, int, int]:
    cache = _worker_scorer.cache if _worker_scorer is not None else None
    if cache is None:
        return (0, 0, 0)
    return (cache.hits, cache.misses, len(cache))


def _worker_scoring_counts() -> tuple:
    if _worker_scorer is None:
        return _COUNTER_ZEROS
    return _worker_scorer.counters.as_tuple()


def _broadcast_segments(
    payload: "Sequence[TraceSegment] | PlaneHandle | None",
) -> tuple[int, tuple[int, int, int], tuple]:
    """Install a new working set (or just report stats when ``None``).

    *payload* is either the pickled segment list (legacy path) or a
    :class:`~repro.runtime.shm.PlaneHandle` naming a shared-memory
    plane this worker attaches and rebuilds views over — the zero-copy
    path.  Returns ``(pid, cache_counts, scoring_counts)`` so the
    parent can aggregate run-wide cache and batched-scoring telemetry.
    The barrier wait is what guarantees each worker executes exactly
    one broadcast task: a worker that finished its task blocks until
    every sibling has one, so the pool cannot route two broadcasts to
    the same worker.
    """
    global _worker_segments
    if isinstance(payload, PlaneHandle):
        _worker_segments = _attach_plane_segments(payload)
    elif payload is not None:
        _worker_segments = payload
    if _worker_barrier is not None:
        _worker_barrier.wait(timeout=_PRIME_TIMEOUT_SECONDS)
    return (os.getpid(), _worker_cache_counts(), _worker_scoring_counts())


def _install_worker_scorer(
    payload: tuple,
) -> tuple[int, tuple[int, int, int], tuple]:
    """Swap this worker's scorer in place (scheduler job switch).

    Returns the OUTGOING scorer's cumulative counters: the parent folds
    them into its retired totals before zeroing this pid's map entry,
    so run-wide sums never lose or double-count work.  Barrier-
    synchronized like :func:`_broadcast_segments` — every worker swaps
    exactly once.
    """
    from repro.synth.scoring import Scorer

    global _worker_scorer
    old_cache = _worker_cache_counts()
    old_scoring = _worker_scoring_counts()
    scorer_config, cache_entries = payload
    (
        metric_name,
        constant_pool,
        completion_cap,
        seed,
        max_replay_rows,
        series_budget,
        batch,
        batch_dtw,
        table_cache_entries,
    ) = scorer_config
    _worker_scorer = Scorer(
        metric_name=metric_name,
        constant_pool=constant_pool,
        completion_cap=completion_cap,
        seed=seed,
        max_replay_rows=max_replay_rows,
        series_budget=series_budget,
        cache=ScoreCache(cache_entries) if cache_entries else None,
        batch=batch,
        batch_dtw=batch_dtw,
        table_cache_entries=table_cache_entries,
    )
    if _worker_barrier is not None:
        _worker_barrier.wait(timeout=_PRIME_TIMEOUT_SECONDS)
    return (os.getpid(), old_cache, old_scoring)


def _reset_worker_stats() -> int:
    """Zero this worker's scorer telemetry (cache contents survive)."""
    if _worker_scorer is not None:
        _zero_scorer_counters(_worker_scorer)
    if _worker_barrier is not None:
        _worker_barrier.wait(timeout=_PRIME_TIMEOUT_SECONDS)
    return os.getpid()


def _score_one(sketch: Sketch) -> "ScoredHandler | _WorkerFailure":
    assert _worker_scorer is not None and _worker_segments is not None
    text = str(sketch)
    try:
        with watchdog(_worker_watchdog):
            apply_sketch_faults(
                _worker_faults,
                text,
                in_worker=True,
                generation=_worker_generation,
            )
            return _worker_scorer.score_sketch(sketch, _worker_segments)
    except SketchTimeout:
        return _WorkerFailure(
            text, "timeout", f"exceeded {_worker_watchdog:.3g}s watchdog"
        )
    except Exception as exc:
        return _WorkerFailure(text, "exception", f"{type(exc).__name__}: {exc}")


def _score_one_bounded(
    task: "tuple[Sketch, float | None]",
) -> "tuple[ScoredHandler | _WorkerFailure, float]":
    """Score one fused-wave task: ``(sketch, incumbent bound)``.

    The bound is the submitting parent's snapshot of the sketch's group
    incumbent — possibly stale, which is always sound (a stale bound is
    looser and only prunes less).  Returns ``(outcome, busy_seconds)``;
    the parent sums busy seconds into per-wave occupancy telemetry.
    """
    sketch, bound = task
    assert _worker_scorer is not None and _worker_segments is not None
    text = str(sketch)
    started = time.perf_counter()
    try:
        with watchdog(_worker_watchdog):
            apply_sketch_faults(
                _worker_faults,
                text,
                in_worker=True,
                generation=_worker_generation,
            )
            outcome: ScoredHandler | _WorkerFailure = (
                _worker_scorer.score_sketch(
                    sketch, _worker_segments, bound=bound
                )
            )
    except SketchTimeout:
        outcome = _WorkerFailure(
            text, "timeout", f"exceeded {_worker_watchdog:.3g}s watchdog"
        )
    except Exception as exc:
        outcome = _WorkerFailure(
            text, "exception", f"{type(exc).__name__}: {exc}"
        )
    return outcome, time.perf_counter() - started


def _score_chunk_bounded(
    chunk: "list[tuple[int, Sketch, float | None]]",
) -> "list[tuple[ScoredHandler | _WorkerFailure, float]]":
    """Score a run of fused-wave tasks ``(group, sketch, bound)`` in one
    submission.

    Chunking amortizes per-task IPC on large fused waves — the parent
    sizes chunks with :func:`derive_chunksize`, so small waves keep
    per-task dispatch and fault granularity.  Each task's submitted
    bound is merged with a chunk-local incumbent: a result earlier in
    the chunk tightens later same-group members immediately, at
    in-process freshness, without waiting for the parent round-trip.
    """
    local: dict[int, float] = {}
    results: "list[tuple[ScoredHandler | _WorkerFailure, float]]" = []
    for group, sketch, bound in chunk:
        warm = local.get(group, math.inf)
        if bound is not None and bound < warm:
            warm = bound
        outcome, seconds = _score_one_bounded(
            (sketch, warm if math.isfinite(warm) else None)
        )
        if (
            not isinstance(outcome, _WorkerFailure)
            and outcome.distance < local.get(group, math.inf)
        ):
            local[group] = outcome.distance
        results.append((outcome, seconds))
    return results


class _PoolBroken(Exception):
    """Internal: a wave died mid-flight; carries the completed prefix."""

    def __init__(
        self,
        completed: list,
        reason: str,
        detail: str,
        *,
        blame_next: bool,
    ) -> None:
        super().__init__(detail)
        self.completed = completed
        self.reason = reason  # "worker-crash" | "hang"
        self.detail = detail
        #: Whether the first incomplete sketch is the likely culprit
        #: (crashes: yes; hangs: the hung sketch was already quarantined).
        self.blame_next = blame_next


class PooledExecutor:
    """Persistent process-pool scoring with re-priming and supervision."""

    def __init__(
        self,
        scorer: Scorer,
        workers: int,
        *,
        context: RunContext | None = None,
        min_parallel: int = MIN_PARALLEL_SKETCHES,
        policy: SupervisionPolicy | None = None,
        watchdog_seconds: float | None = None,
        fault_plan: FaultPlan | None = None,
        use_shm: bool = True,
    ):
        if workers < 2:
            raise ValueError("PooledExecutor needs workers >= 2")
        self.scorer = scorer
        self.workers = workers
        self.context = context
        self.min_parallel = min_parallel
        self.watchdog_seconds = watchdog_seconds
        self.fault_plan = fault_plan
        self.supervisor = Supervisor(policy)
        self.quarantined: list[Quarantined] = []
        self._pool: ProcessPoolExecutor | None = None
        self._barrier = None
        self._segments_token: tuple[int, ...] | None = None
        self._segments: list[TraceSegment] | None = None
        self._epoch = -1
        self._degraded = False
        self._crash_strikes: dict[str, int] = {}
        self._broadcast_faults_left = (
            fault_plan.broadcast_failures if fault_plan is not None else 0
        )
        self.pools_spawned = 0
        #: Spawns the lifecycle asked for (first spawn, respawn after an
        #: explicit ``close()``, per-working-set respawns without fork).
        #: Everything beyond these is a crash-driven rebuild.
        self._planned_spawns = 0
        self._expect_spawn = True
        #: Every scorer this executor has run waves for (a scheduler
        #: adopts one per job); stats aggregate over all of them.
        self._scorers: dict[int, Scorer] = {id(scorer): scorer}
        self._prepared_token: tuple[int, ...] | None = None
        #: Scorer config the pool's workers currently have installed.
        self._installed_config: tuple | None = None
        #: Cache (hits, misses) and scoring counters of worker scorers
        #: that were replaced by an install broadcast — their work
        #: happened and stays in the run-wide sums.
        self._retired_cache = [0, 0]
        self._retired_scoring = list(_COUNTER_ZEROS)
        self._waves = _WaveTelemetry()
        #: Latest cumulative cache counters per worker pid.
        self._worker_cache: dict[int, tuple[int, int, int]] = {}
        #: Latest cumulative batched-scoring counters per worker pid.
        self._worker_scoring: dict[int, tuple] = {}
        methods = multiprocessing.get_all_start_methods()
        self._mp_context = (
            multiprocessing.get_context("fork") if "fork" in methods else None
        )
        #: Zero-copy segment plane (``--no-shm`` turns it off).  Without
        #: fork the pool bakes segments into the initializer, so the
        #: broadcast path the plane replaces never runs — fall back.
        self.use_shm = use_shm and self._mp_context is not None
        #: Planes this executor owns, LRU by working-set/data-knob key.
        #: A scheduler multiplexing N jobs alternates working sets, so a
        #: small LRU (not a single slot) keeps each job's plane warm.
        self._planes: "OrderedDict[tuple, SegmentPlane]" = OrderedDict()
        #: Peak bytes of concurrently live planes (telemetry).
        self.shm_bytes = 0
        #: Estimated pickled-broadcast bytes the plane path avoided:
        #: plane bytes × workers per segment broadcast (each worker
        #: would have received its own pickled copy of these arrays).
        self.broadcast_bytes_saved = 0

    # ------------------------------------------------------------------

    def _emit(self, event) -> None:
        if self.context is not None:
            self.context.emit(event)

    @property
    def degraded(self) -> bool:
        """True once supervision has fallen back to serial scoring."""
        return self._degraded

    @property
    def pool_rebuilds(self) -> int:
        """Pools spawned beyond what the lifecycle planned (the run's
        crash-driven rebuild count)."""
        return max(0, self.pools_spawned - self._planned_spawns)

    def adopt_scorer(self, scorer: Scorer) -> None:
        """Point subsequent waves at *scorer* (scheduler job switches).

        Worker-side installation is deferred to the next :meth:`_prime`,
        which broadcasts the swap only when the scorer's config actually
        differs from what the pool is running.
        """
        self._scorers.setdefault(id(scorer), scorer)
        self.scorer = scorer

    def reset_stats(self) -> None:
        """Zero all cumulative counters (between jobs sharing the
        executor) without touching cache *contents* — worker caches stay
        warm, only the accounting restarts."""
        self._waves = _WaveTelemetry()
        self.quarantined = []
        self._crash_strikes.clear()
        self._retired_cache = [0, 0]
        self._retired_scoring = list(_COUNTER_ZEROS)
        self.shm_bytes = sum(
            plane.nbytes for plane in self._planes.values()
        )
        self.broadcast_bytes_saved = 0
        for scorer in self._scorers.values():
            _zero_scorer_counters(scorer)
        self._worker_cache.clear()
        self._worker_scoring.clear()
        if self._pool is not None and self._mp_context is not None:
            try:
                futures = [
                    self._pool.submit(_reset_worker_stats)
                    for _ in range(self.workers)
                ]
                for future in futures:
                    future.result(timeout=_PRIME_TIMEOUT_SECONDS * 2)
            except Exception:
                pass  # a wedged pool surfaces on the next wave, not here

    def _scorer_config(self) -> tuple:
        scorer = self.scorer
        return (
            scorer.metric_name,
            tuple(scorer.constant_pool),
            scorer.completion_cap,
            scorer.seed,
            scorer.max_replay_rows,
            scorer.series_budget,
            scorer.batch,
            scorer.batch_dtw,
            scorer.table_cache_entries,
        )

    def _cache_entries(self) -> int | None:
        cache = self.scorer.cache
        return cache.max_entries if cache is not None else None

    def _spawn_pool(self, segments: Sequence[TraceSegment] | None) -> None:
        if self._mp_context is not None:
            self._barrier = self._mp_context.Barrier(self.workers)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._mp_context,
            initializer=_init_worker,
            initargs=(
                self._barrier,
                self._scorer_config(),
                self._cache_entries(),
                list(segments) if segments is not None else None,
                self.fault_plan,
                self.pools_spawned + 1,  # pool generation, 1-based
                self.watchdog_seconds,
            ),
        )
        self.pools_spawned += 1
        if self._expect_spawn:
            self._planned_spawns += 1
            self._expect_spawn = False
        self._installed_config = self._scorer_config()
        self._emit(PoolSpawned(workers=self.workers))

    def _shutdown_pool(self, *, wait: bool = False) -> None:
        # ``wait=False`` by default: rebuild paths must never block on a
        # hung worker (a fault-injected hang can sleep for an hour).
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None
            self._barrier = None
        self._segments_token = None

    def _degrade(self, reason: str) -> None:
        """Give up on pooled scoring for the rest of the run."""
        self._shutdown_pool()
        self._release_planes()
        self._degraded = True
        self._emit(DegradedToSerial(reason=reason))

    def _release_planes(self) -> None:
        """Unlink every plane this executor owns (idempotent)."""
        while self._planes:
            self._planes.popitem(last=False)[1].close()

    def _plane_for(
        self, token: tuple[int, ...], segments: Sequence[TraceSegment]
    ) -> SegmentPlane | None:
        """The plane for this working set under the scorer's data knobs,
        building (and LRU-evicting) as needed; ``None`` means the input
        cannot be packed and the pickled path must carry the broadcast.

        Keyed on the data-shaping knobs too: two jobs sharing segments
        but differing in ``max_replay_rows``/``series_budget`` (or
        metric — envelopes only exist for DTW) need different arrays.
        """
        scorer = self.scorer
        key = (
            token,
            scorer.metric_name,
            scorer.max_replay_rows,
            scorer.series_budget,
        )
        plane = self._planes.get(key)
        if plane is not None:
            self._planes.move_to_end(key)
            return plane
        plane = SegmentPlane.build(scorer.prepare_segments(segments))
        if plane is None:
            return None
        self._planes[key] = plane
        while len(self._planes) > _PLANE_LRU_ENTRIES:
            # Evicted planes may still be mapped by workers (another
            # job's views): unlinking only removes the name, the pages
            # survive until those mappings are replaced or exit.
            self._planes.popitem(last=False)[1].close()
        self.shm_bytes = max(
            self.shm_bytes,
            sum(plane.nbytes for plane in self._planes.values()),
        )
        return plane

    def _prepare(self, segments: Sequence[TraceSegment]) -> None:
        """Once-per-working-set eager precompute for inline scoring."""
        token = (id(self.scorer), *(id(segment) for segment in segments))
        if token != self._prepared_token:
            self.scorer.prepare_segments(segments)
            self._prepared_token = token

    def _quarantine(
        self, sketch: Sketch, reason: str, detail: str
    ) -> ScoredHandler:
        from repro.synth.scoring import ScoredHandler

        record = Quarantined(sketch=str(sketch), reason=reason, detail=detail)
        self.quarantined.append(record)
        self._emit(
            SketchQuarantined(sketch=record.sketch, reason=reason, detail=detail)
        )
        return ScoredHandler(sketch.expr, WORST_DISTANCE)

    def _resolve_outcome(self, sketch: Sketch, outcome) -> ScoredHandler:
        if isinstance(outcome, _WorkerFailure):
            return self._quarantine(sketch, outcome.reason, outcome.detail)
        return outcome

    # ------------------------------------------------------------------

    def _broadcast(
        self, payload: "Sequence[TraceSegment] | PlaneHandle | None"
    ) -> None:
        """Run one barrier-synchronized task on every worker."""
        assert self._pool is not None
        if payload is not None and self._broadcast_faults_left > 0:
            self._broadcast_faults_left -= 1
            raise FaultInjected("injected broadcast failure")
        futures = [
            self._pool.submit(_broadcast_segments, payload)
            for _ in range(self.workers)
        ]
        for future in futures:
            pid, cache_counts, scoring_counts = future.result(
                timeout=_PRIME_TIMEOUT_SECONDS * 2
            )
            self._worker_cache[pid] = cache_counts
            self._worker_scoring[pid] = scoring_counts

    def _install_scorer(self, config: tuple) -> None:
        """Broadcast a scorer swap to every worker.

        The returned outgoing counters are folded into the retired
        totals and the per-pid map entries zeroed (the fresh worker
        scorers restart their cumulative counts from zero), so stats
        sums never lose or double-count work across job switches.
        """
        assert self._pool is not None
        payload = (config, self._cache_entries())
        futures = [
            self._pool.submit(_install_worker_scorer, payload)
            for _ in range(self.workers)
        ]
        for future in futures:
            pid, cache_counts, scoring_counts = future.result(
                timeout=_PRIME_TIMEOUT_SECONDS * 2
            )
            # Hits/misses are cumulative (keep them); entries are a
            # point-in-time gauge of a cache that no longer exists.
            self._retired_cache[0] += cache_counts[0]
            self._retired_cache[1] += cache_counts[1]
            for index in range(len(_COUNTER_ZEROS)):
                self._retired_scoring[index] += scoring_counts[index]
            self._worker_cache[pid] = (0, 0, 0)
            self._worker_scoring[pid] = _COUNTER_ZEROS
        self._installed_config = config

    def _prime(self, segments: Sequence[TraceSegment]) -> None:
        """Install the current scorer and *segments* in the pool,
        surviving broadcast failures.

        A failed broadcast (wedged worker, broken barrier) gets exactly
        one pool rebuild; a second consecutive failure means the pool
        cannot be kept alive on this host, and the executor degrades to
        serial instead of propagating — the run continues either way.
        """
        if self._degraded:
            return
        token = tuple(id(segment) for segment in segments)
        config = self._scorer_config()
        same_segments = (
            self._pool is not None and token == self._segments_token
        )
        if same_segments and config == self._installed_config:
            return
        segments = list(segments)
        segments_shipped = False
        if self._mp_context is None:
            # No fork: bake scorer + segments into the initializer.
            self._shutdown_pool()
            self._expect_spawn = True
            self._spawn_pool(segments)
            segments_shipped = True
        else:
            if self._pool is None:
                self._spawn_pool(None)
                same_segments = False
            rebuilt = False
            while True:
                try:
                    if config != self._installed_config:
                        self._install_scorer(config)
                    if not same_segments:
                        plane = (
                            self._plane_for(token, segments)
                            if self.use_shm
                            else None
                        )
                        payload: object = (
                            plane.handle if plane is not None else segments
                        )
                        self._broadcast(payload)
                        if plane is not None:
                            # Each worker would otherwise have received
                            # its own pickled copy of these arrays.
                            self.broadcast_bytes_saved += (
                                plane.nbytes * self.workers
                            )
                        segments_shipped = True
                    break
                except Exception as exc:
                    # A wedged/dead worker broke the barrier.
                    self._shutdown_pool()
                    self._emit(
                        WorkerCrashed(
                            reason="broadcast",
                            detail=f"{type(exc).__name__}: {exc}",
                        )
                    )
                    if rebuilt:
                        self._degrade("segment broadcast failed twice")
                        return
                    rebuilt = True
                    self._spawn_pool(None)
                    same_segments = False
                    self._emit(
                        PoolRebuilt(
                            rebuilds=self.pool_rebuilds, backoff_seconds=0.0
                        )
                    )
        self._segments = segments
        self._segments_token = token
        if segments_shipped:
            # A pure scorer swap leaves the working set (and its primed
            # epoch) untouched — no SegmentsPrimed for those.
            self._epoch += 1
            self._emit(
                SegmentsPrimed(
                    epoch=self._epoch, segment_count=len(segments)
                )
            )

    # ------------------------------------------------------------------

    def _score_degraded(
        self,
        sketches: Sequence[Sketch],
        segments: Sequence[TraceSegment],
        deadline: float | None,
        min_results: int,
    ) -> list[ScoredHandler]:
        """Serial fallback (tiny waves and post-degradation scoring)."""
        self._prepare(segments)
        return _score_serially(
            self.scorer,
            sketches,
            segments,
            deadline,
            min_results,
            watchdog_seconds=self.watchdog_seconds,
            fault_plan=self.fault_plan,
            quarantine=self._quarantine,
        )

    def _backstop_seconds(self) -> float | None:
        """Parent-side bound on one future when a watchdog is configured.

        The in-worker SIGALRM normally fires first; the backstop only
        trips for hangs the alarm cannot interrupt (e.g. C code holding
        the GIL), and is sized so queueing behind busy siblings never
        false-positives: results are consumed in submission order, so by
        the time future *i* is awaited it is running or next in line.
        """
        if self.watchdog_seconds is None:
            return None
        return self.watchdog_seconds * 4.0 + 10.0

    def _wait_bound(
        self,
        index: int,
        min_results: int,
        deadline: float | None,
        backstop: float | None,
    ) -> tuple[float | None, str | None]:
        """``(timeout, binding)`` for one future; binding names which
        limit would fire ("deadline" cuts the wave, "backstop" means a
        wedged worker)."""
        if index < min_results:
            # min_results sketches must be scored even past the deadline,
            # but a configured watchdog still bounds the wait — this is
            # the path that used to block forever on a hung worker.
            return (backstop, "backstop" if backstop is not None else None)
        if deadline is not None:
            remaining = deadline - time.perf_counter()
            if backstop is None or remaining <= backstop:
                return (remaining, "deadline")
            return (backstop, "backstop")
        return (backstop, "backstop" if backstop is not None else None)

    def _score_wave(
        self,
        sketches: Sequence[Sketch],
        deadline: float | None,
        min_results: int,
    ) -> list[ScoredHandler]:
        """Score one wave on the live pool; raise :class:`_PoolBroken`
        (carrying the completed prefix) if the pool dies under it."""
        assert self._pool is not None
        completed: list[ScoredHandler] = []
        backstop = self._backstop_seconds()
        if deadline is None and backstop is None:
            # Fast path: chunked map, results in submission order.
            chunk = derive_chunksize(len(sketches), self.workers)
            iterator = self._pool.map(_score_one, sketches, chunksize=chunk)
            try:
                for sketch in sketches:
                    outcome = next(iterator)
                    completed.append(self._resolve_outcome(sketch, outcome))
            except StopIteration:  # pragma: no cover - map yields len(sketches)
                pass
            except BrokenProcessPool as exc:
                raise _PoolBroken(
                    completed, "worker-crash", str(exc) or "pool broken",
                    blame_next=True,
                ) from exc
            return completed
        futures = [self._pool.submit(_score_one, s) for s in sketches]
        cut_short = False
        for index, (sketch, future) in enumerate(zip(sketches, futures)):
            if cut_short:
                future.cancel()
                continue
            timeout, binding = self._wait_bound(
                index, min_results, deadline, backstop
            )
            if timeout is not None and timeout <= 0 and binding == "deadline":
                cut_short = True
                future.cancel()
                continue
            try:
                outcome = future.result(timeout=timeout)
            except FutureTimeoutError:
                if binding == "deadline":
                    cut_short = True
                    future.cancel()
                    continue
                # Backstop: the worker escaped its in-process watchdog —
                # quarantine the sketch and declare the pool wedged.
                completed.append(
                    self._quarantine(
                        sketch,
                        "timeout",
                        f"no result within {timeout:.3g}s backstop",
                    )
                )
                for later in futures[index + 1 :]:
                    later.cancel()
                raise _PoolBroken(
                    completed, "hang", f"worker hung on {sketch}",
                    blame_next=False,
                )
            except BrokenProcessPool as exc:
                for later in futures[index + 1 :]:
                    later.cancel()
                raise _PoolBroken(
                    completed, "worker-crash", str(exc) or "pool broken",
                    blame_next=True,
                ) from exc
            completed.append(self._resolve_outcome(sketch, outcome))
        return completed

    def score(
        self,
        sketches: Sequence[Sketch],
        segments: Sequence[TraceSegment],
        *,
        deadline: float | None = None,
        min_results: int = 0,
    ) -> list[ScoredHandler]:
        if self._degraded or len(sketches) < self.min_parallel:
            # Tiny waves stay in-process (shares the parent-side cache).
            return self._score_degraded(
                sketches, segments, deadline, min_results
            )
        results: list[ScoredHandler] = []
        offset = 0
        while True:
            remaining = sketches[offset:]
            if len(remaining) == 0:
                return results
            self._prime(segments)
            if self._degraded:
                results.extend(
                    self._score_degraded(
                        remaining,
                        segments,
                        deadline,
                        max(0, min_results - len(results)),
                    )
                )
                return results
            try:
                results.extend(
                    self._score_wave(
                        remaining, deadline, max(0, min_results - len(results))
                    )
                )
                self.supervisor.record_success()
                return results
            except _PoolBroken as broken:
                # Keep the contiguous completed prefix; only the suffix
                # is re-scored after recovery.
                results.extend(broken.completed)
                offset = len(results)
                self._emit(
                    WorkerCrashed(reason=broken.reason, detail=broken.detail)
                )
                if broken.blame_next and offset < len(sketches):
                    culprit = sketches[offset]
                    text = str(culprit)
                    strikes = self._crash_strikes.get(text, 0) + 1
                    self._crash_strikes[text] = strikes
                    if strikes >= _CRASH_STRIKES:
                        # The pool died twice with this sketch first in
                        # line: treat it as poison and skip it.
                        results.append(
                            self._quarantine(
                                culprit,
                                "worker-crash",
                                f"pool broke {strikes}x scoring this sketch",
                            )
                        )
                        offset += 1
                if self.supervisor.next_action() == "degrade":
                    self._degrade(
                        f"{self.supervisor.consecutive_failures} consecutive"
                        " pool failures"
                    )
                    continue
                backoff = self.supervisor.backoff()
                self._shutdown_pool()
                self._emit(
                    PoolRebuilt(
                        rebuilds=self.supervisor.rebuilds,
                        backoff_seconds=backoff,
                    )
                )
                # Loop: _prime respawns the pool and re-primes segments.

    def _score_wave_grouped(
        self,
        tasks: Sequence[tuple[int, Sketch]],
        deadline: float | None,
        min_results: int,
        incumbents: list[float],
    ) -> list[ScoredHandler]:
        """One fused wave on the live pool, pipelined through a bounded
        in-flight window.

        Unlike :meth:`_score_wave`'s all-at-once submission, tasks enter
        the pool in :func:`derive_chunksize`-sized chunks, at most
        ``workers × WAVE_WINDOW_PER_WORKER`` chunks at a time: each
        consumed chunk tightens its groups' incumbents *before* later
        chunks are submitted, so the bounds piggybacked on submissions
        stay warm (and workers tighten further within a chunk — see
        :func:`_score_chunk_bounded`).  Results are consumed in
        submission order (the positional contract), and
        :class:`_PoolBroken` carries the flat completed prefix exactly
        as the per-bucket path does; a broken chunk is simply re-scored
        from its first task.

        The wave opens with a *leader primer*: while any group still has
        an infinite incumbent, only the chunks holding the first
        ``primer`` tasks — the round-robin prefix with each fresh
        group's first member, the mandatory prefix the deadline contract
        already pins — are in flight.  Their exact distances seed the
        incumbents before the window floods, so the bulk of the wave is
        submitted with real bounds instead of the stale infinities a
        full-depth pipeline would freeze in (crash-retry suffixes arrive
        with warm incumbents and skip the primer entirely).
        """
        assert self._pool is not None
        completed: list[ScoredHandler] = []
        backstop = self._backstop_seconds()
        chunk_size = derive_chunksize(len(tasks), self.workers)
        # One chunk = one same-group run (capped at the chunk size), so
        # in-chunk incumbent tightening always applies; the wave order
        # round-robins these runs across groups (see :func:`wave_order`).
        chunks: list[list[tuple[int, Sketch]]] = []
        for task in tasks:
            if (
                chunks
                and chunks[-1][-1][0] == task[0]
                and len(chunks[-1]) < chunk_size
            ):
                chunks[-1].append(task)
            else:
                chunks.append([task])
        window = max(self.workers * WAVE_WINDOW_PER_WORKER, 1)
        fresh_groups = {
            group
            for group, _ in tasks
            if not math.isfinite(incumbents[group])
        }
        primer = min(len(fresh_groups), len(tasks))
        primer_chunks = 0
        covered = 0
        for chunk in chunks:
            if covered >= primer:
                break
            covered += len(chunk)
            primer_chunks += 1
        pending: deque = deque()  # (chunk, future) FIFO
        next_chunk = 0
        busy_seconds = 0.0
        wall_started = time.perf_counter()

        def top_up() -> None:
            nonlocal next_chunk
            while (
                next_chunk < len(chunks)
                and len(pending) < window
                and (len(completed) >= primer or next_chunk < primer_chunks)
            ):
                chunk = chunks[next_chunk]
                payload = [
                    (
                        group,
                        sketch,
                        incumbents[group]
                        if math.isfinite(incumbents[group])
                        else None,
                    )
                    for group, sketch in chunk
                ]
                pending.append(
                    (chunk, self._pool.submit(_score_chunk_bounded, payload))
                )
                next_chunk += 1
            self._waves.peak_in_flight = max(
                self._waves.peak_in_flight,
                sum(len(chunk) for chunk, _ in pending),
            )

        def drain_pending() -> None:
            while pending:
                pending.popleft()[1].cancel()

        def note_occupancy() -> None:
            wall = time.perf_counter() - wall_started
            if wall > 0 and completed:
                self._waves.note_occupancy(
                    min(1.0, busy_seconds / (wall * self.workers))
                )

        top_up()
        cut_short = False
        while pending:
            chunk, future = pending.popleft()
            if cut_short:
                future.cancel()
                continue
            timeout, binding = self._wait_bound(
                len(completed), min_results, deadline, backstop
            )
            if timeout is not None and binding == "backstop":
                # One future now carries len(chunk) tasks of work.
                timeout = timeout * len(chunk)
            if timeout is not None and timeout <= 0 and binding == "deadline":
                cut_short = True
                future.cancel()
                continue
            try:
                outcomes = future.result(timeout=timeout)
            except FutureTimeoutError:
                if binding == "deadline":
                    cut_short = True
                    future.cancel()
                    continue
                # The worker-side watchdog attributes per-task hangs; the
                # parent backstop cannot see inside the chunk, so blame
                # falls on its head (exact when chunks are single-task,
                # the fault-injection and small-wave regime).
                head = chunk[0][1]
                completed.append(
                    self._quarantine(
                        head,
                        "timeout",
                        f"no result within {timeout:.3g}s backstop",
                    )
                )
                drain_pending()
                note_occupancy()
                raise _PoolBroken(
                    completed, "hang", f"worker hung on {head}",
                    blame_next=False,
                )
            except BrokenProcessPool as exc:
                drain_pending()
                note_occupancy()
                raise _PoolBroken(
                    completed, "worker-crash", str(exc) or "pool broken",
                    blame_next=True,
                ) from exc
            for (group, sketch), (outcome, seconds) in zip(chunk, outcomes):
                busy_seconds += seconds
                scored = self._resolve_outcome(sketch, outcome)
                completed.append(scored)
                if scored.distance < incumbents[group]:
                    incumbents[group] = scored.distance
            top_up()
        note_occupancy()
        return completed

    def score_grouped(
        self,
        groups: Sequence[Sequence[Sketch]],
        segments: Sequence[TraceSegment],
        *,
        deadline: float | None = None,
        min_results: int = 0,
    ) -> list[list[ScoredHandler]]:
        groups = [list(group) for group in groups]
        sizes = [len(group) for group in groups]
        order = wave_order(
            sizes,
            min_results,
            run_length=derive_chunksize(sum(sizes), self.workers),
        )
        tasks = [(group, groups[group][rank]) for group, rank in order]
        mandatory = sum(min(len(group), min_results) for group in groups)
        incumbents = [float("inf")] * len(groups)
        if tasks:
            self._waves.fused_waves += 1
            self._waves.fused_tasks += len(tasks)
            self._emit(
                WaveDispatched(
                    groups=len(groups),
                    tasks=len(tasks),
                    workers=self.workers,
                )
            )
        if self._degraded or len(tasks) < self.min_parallel:
            # The threshold judges the *flattened* wave: sub-threshold
            # buckets that used to leave the pool idle one score() call
            # at a time now ride the fused dispatch with everything else.
            if tasks:
                self._waves.peak_in_flight = max(
                    self._waves.peak_in_flight, 1
                )
                self._waves.note_occupancy(1.0 / self.workers)
            self._prepare(segments)
            flat = _score_grouped_serially(
                self.scorer,
                tasks,
                segments,
                deadline,
                mandatory,
                incumbents,
                watchdog_seconds=self.watchdog_seconds,
                fault_plan=self.fault_plan,
                quarantine=self._quarantine,
            )
            return _scatter(order, flat, len(groups))
        flat: list[ScoredHandler] = []
        while True:
            remaining = tasks[len(flat):]
            if not remaining:
                break
            self._prime(segments)
            if self._degraded:
                flat.extend(
                    _score_grouped_serially(
                        self.scorer,
                        remaining,
                        segments,
                        deadline,
                        mandatory,
                        incumbents,
                        start_index=len(flat),
                        watchdog_seconds=self.watchdog_seconds,
                        fault_plan=self.fault_plan,
                        quarantine=self._quarantine,
                    )
                )
                break
            try:
                flat.extend(
                    self._score_wave_grouped(
                        remaining,
                        deadline,
                        max(0, mandatory - len(flat)),
                        incumbents,
                    )
                )
                self.supervisor.record_success()
                break
            except _PoolBroken as broken:
                # Same recovery as score(): keep the flat completed
                # prefix, blame/strike the head of the suffix, rebuild
                # or degrade — incumbents survive, so the retried suffix
                # starts as warm as the wave left it.
                flat.extend(broken.completed)
                offset = len(flat)
                self._emit(
                    WorkerCrashed(reason=broken.reason, detail=broken.detail)
                )
                if broken.blame_next and offset < len(tasks):
                    group, culprit = tasks[offset]
                    text = str(culprit)
                    strikes = self._crash_strikes.get(text, 0) + 1
                    self._crash_strikes[text] = strikes
                    if strikes >= _CRASH_STRIKES:
                        flat.append(
                            self._quarantine(
                                culprit,
                                "worker-crash",
                                f"pool broke {strikes}x scoring this sketch",
                            )
                        )
                if self.supervisor.next_action() == "degrade":
                    self._degrade(
                        f"{self.supervisor.consecutive_failures} consecutive"
                        " pool failures"
                    )
                    continue
                backoff = self.supervisor.backoff()
                self._shutdown_pool()
                self._emit(
                    PoolRebuilt(
                        rebuilds=self.supervisor.rebuilds,
                        backoff_seconds=backoff,
                    )
                )
                # Loop: _prime respawns the pool and re-primes segments.
        return _scatter(order, flat, len(groups))

    def _refresh_worker_counters(self) -> None:
        """One broadcast refreshing cache *and* scoring counters at once
        (``stats()`` reads both snapshots off a single round-trip)."""
        if self._pool is not None and self._mp_context is not None:
            try:
                self._broadcast(None)
            except Exception:
                pass  # stale counters are better than a crashed run

    def _assemble_cache_stats(self) -> CacheStats | None:
        parents = [
            scorer.cache.stats()
            for scorer in self._scorers.values()
            if scorer.cache is not None
        ]
        if not parents:
            return None
        hits = sum(entry[0] for entry in self._worker_cache.values())
        misses = sum(entry[1] for entry in self._worker_cache.values())
        entries = sum(entry[2] for entry in self._worker_cache.values())
        return CacheStats(
            hits=hits + self._retired_cache[0]
            + sum(snap.hits for snap in parents),
            misses=misses + self._retired_cache[1]
            + sum(snap.misses for snap in parents),
            entries=entries + sum(snap.entries for snap in parents),
        )

    def _assemble_scoring_stats(self) -> ScoringStats:
        totals = [
            sum(entry[index] for entry in self._worker_scoring.values())
            + self._retired_scoring[index]
            for index in range(len(_COUNTER_ZEROS))
        ]
        for scorer in self._scorers.values():
            for index, value in enumerate(scorer.counters.as_tuple()):
                totals[index] += value
        waves = self._waves
        return ScoringStats(
            batched_waves=totals[0],
            lb_pruned=totals[1],
            dp_abandoned=totals[2],
            candidates_pruned=totals[3],
            warm_start_pruned=totals[4],
            fused_waves=waves.fused_waves,
            fused_tasks=waves.fused_tasks,
            peak_in_flight=waves.peak_in_flight,
            mean_occupancy=round(waves.mean_occupancy, 4),
            batched_dtw_sweeps=totals[5],
            envelope_precompute_ms=round(totals[6], 3),
            shm_bytes=self.shm_bytes,
            broadcast_bytes_saved=self.broadcast_bytes_saved,
        )

    def cache_stats(self) -> CacheStats | None:
        """Aggregate cache counters: workers (as last reported) + parent."""
        if all(
            scorer.cache is None for scorer in self._scorers.values()
        ):
            return None
        self._refresh_worker_counters()
        return self._assemble_cache_stats()

    def scoring_stats(self) -> ScoringStats:
        """Aggregate batched-scoring counters: workers + parent scorer.

        Worker counters are refreshed by the same broadcast that reports
        cache stats; counters from workers lost to a rebuild stay in the
        sum (they describe work that really happened).  The parent
        scorer's counters cover tiny and degraded waves scored inline.
        """
        self._refresh_worker_counters()
        return self._assemble_scoring_stats()

    def stats(self) -> tuple[CacheStats | None, ScoringStats]:
        """Both telemetry snapshots off ONE worker broadcast.

        ``cache_stats()`` + ``scoring_stats()`` back-to-back each pay a
        barrier-synchronized round-trip across the pool; callers that
        want both (the refinement loop, every iteration) should use this
        instead and pay for one.
        """
        self._refresh_worker_counters()
        return (self._assemble_cache_stats(), self._assemble_scoring_stats())

    def close(self, *, wait: bool = False) -> None:
        """Shut the pool down; safe to call any number of times.

        The executor stays usable: the next wave respawns the pool, and
        that respawn is a *planned* spawn, not a rebuild — sequential
        runs sharing one executor don't inflate ``pool_rebuilds``.

        ``wait=True`` blocks until the worker processes have exited —
        callers that own a healthy pool (the scheduler after a fleet
        drains) use it to avoid racing interpreter teardown.  Leave it
        off on paths that may hold a hung worker.

        Every shared-memory plane is unlinked here: the executor is the
        plane owner, and a closed executor must leave ``/dev/shm``
        exactly as it found it.  The next wave's ``_prime`` rebuilds a
        fresh plane along with the pool.
        """
        self._shutdown_pool(wait=wait)
        self._release_planes()
        self._expect_spawn = True

    def __enter__(self) -> "PooledExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_executor(
    scorer: Scorer,
    workers: int,
    context: RunContext | None = None,
    *,
    policy: SupervisionPolicy | None = None,
    watchdog_seconds: float | None = None,
    fault_plan: FaultPlan | None = None,
    use_shm: bool = True,
) -> ScoringExecutor:
    """The executor for a run: pooled when ``workers > 1``."""
    if workers > 1:
        return PooledExecutor(
            scorer,
            workers,
            context=context,
            policy=policy,
            watchdog_seconds=watchdog_seconds,
            fault_plan=fault_plan,
            use_shm=use_shm,
        )
    return SerialExecutor(
        scorer,
        context=context,
        watchdog_seconds=watchdog_seconds,
        fault_plan=fault_plan,
    )
