"""Scoring executors: the shared execution substrate for synthesis.

The paper distributes candidate scoring with Ray across a cluster (§5);
locally the same embarrassing parallelism maps onto a process pool.  The
pre-runtime code forked a fresh ``ProcessPoolExecutor`` — and re-shipped
the whole segment working set — *per bucket per iteration*; here the
substrate is explicit:

:class:`SerialExecutor`
    scores in the calling process (deterministic, zero overhead; the
    default everywhere).

:class:`PooledExecutor`
    creates the process pool **once per synthesis run**, primes workers
    with the scorer configuration at spawn, and re-primes the segment
    working set only when it actually changes.  Re-priming is a
    broadcast: one barrier-synchronized task per worker, so every worker
    installs the new segments exactly once (the barrier keeps the pool
    from handing all the priming tasks to a single worker).  The barrier
    rides into workers through fork inheritance; on platforms without
    ``fork`` the executor degrades to rebuilding the pool per working
    set — still at most one pool per *working set* rather than per wave.

Both enforce a wall-clock ``deadline`` *inside* a scoring wave: the
serial path checks it between sketches, the pooled path bounds how long
it waits on each future and cancels the rest, so a single large bucket
can no longer overshoot ``time_budget_seconds`` unboundedly.
``min_results`` sketches are always scored even past the deadline (the
refinement loop needs every live bucket to receive at least one score to
produce a ranking).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import TYPE_CHECKING, Protocol, Sequence

from repro.runtime.cache import ScoreCache
from repro.runtime.context import RunContext
from repro.runtime.events import CacheStats, PoolSpawned, SegmentsPrimed

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.synth.scoring import ScoredHandler, Scorer
    from repro.synth.sketch import Sketch
    from repro.trace.model import TraceSegment

__all__ = [
    "ScoringExecutor",
    "SerialExecutor",
    "PooledExecutor",
    "make_executor",
    "derive_chunksize",
]

#: Waves smaller than this never leave the calling process: the IPC cost
#: of shipping a task exceeds scoring it inline.
MIN_PARALLEL_SKETCHES = 4

#: How long a priming broadcast may take before the pool is declared
#: wedged and rebuilt.
_PRIME_TIMEOUT_SECONDS = 120.0


def derive_chunksize(tasks: int, workers: int) -> int:
    """Chunk size for ``pool.map``: ~4 chunks per worker.

    A fixed chunk size (the old code hardcoded 8) serializes small waves
    onto one worker: 10 tasks in chunks of 8 is two chunks, so at most
    two workers ever run.  Deriving it from the wave keeps every worker
    busy while still amortizing IPC on large waves.
    """
    if tasks <= 0 or workers <= 0:
        return 1
    return max(1, -(-tasks // (workers * 4)))


class ScoringExecutor(Protocol):
    """Scores sketch waves against a segment working set."""

    def score(
        self,
        sketches: Sequence[Sketch],
        segments: Sequence[TraceSegment],
        *,
        deadline: float | None = None,
        min_results: int = 0,
    ) -> list[ScoredHandler]:
        """Score *sketches*; results align positionally with a prefix of
        *sketches* (the full wave unless *deadline* cut it short)."""
        ...

    def cache_stats(self) -> CacheStats | None:
        """Cumulative score-cache counters, if caching is enabled."""
        ...

    def close(self) -> None: ...


def _score_serially(
    scorer: Scorer,
    sketches: Sequence[Sketch],
    segments: Sequence[TraceSegment],
    deadline: float | None,
    min_results: int,
) -> list[ScoredHandler]:
    results: list[ScoredHandler] = []
    for index, sketch in enumerate(sketches):
        if (
            deadline is not None
            and index >= min_results
            and time.perf_counter() >= deadline
        ):
            break
        results.append(scorer.score_sketch(sketch, segments))
    return results


class SerialExecutor:
    """In-process scoring; the deterministic default."""

    def __init__(self, scorer: Scorer, context: RunContext | None = None):
        self.scorer = scorer
        self.context = context

    def score(
        self,
        sketches: Sequence[Sketch],
        segments: Sequence[TraceSegment],
        *,
        deadline: float | None = None,
        min_results: int = 0,
    ) -> list[ScoredHandler]:
        return _score_serially(
            self.scorer, sketches, segments, deadline, min_results
        )

    def cache_stats(self) -> CacheStats | None:
        cache = self.scorer.cache
        return cache.stats() if cache is not None else None

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# Worker-side state for PooledExecutor.  Installed by the initializer at
# pool spawn; segments are refreshed by _broadcast_segments.

_worker_scorer: "Scorer | None" = None
_worker_segments: "Sequence[TraceSegment] | None" = None
_worker_barrier = None


def _init_worker(
    barrier,
    scorer_config: tuple,
    cache_entries: int | None,
    segments: "Sequence[TraceSegment] | None",
) -> None:
    from repro.synth.scoring import Scorer

    global _worker_scorer, _worker_segments, _worker_barrier
    (
        metric_name,
        constant_pool,
        completion_cap,
        seed,
        max_replay_rows,
        series_budget,
    ) = scorer_config
    _worker_scorer = Scorer(
        metric_name=metric_name,
        constant_pool=constant_pool,
        completion_cap=completion_cap,
        seed=seed,
        max_replay_rows=max_replay_rows,
        series_budget=series_budget,
        cache=ScoreCache(cache_entries) if cache_entries else None,
    )
    _worker_segments = segments
    _worker_barrier = barrier


def _worker_cache_counts() -> tuple[int, int, int]:
    cache = _worker_scorer.cache if _worker_scorer is not None else None
    if cache is None:
        return (0, 0, 0)
    return (cache.hits, cache.misses, len(cache))


def _broadcast_segments(
    segments: Sequence[TraceSegment] | None,
) -> tuple[int, int, int, int]:
    """Install a new working set (or just report stats when ``None``).

    Returns ``(pid, cache_hits, cache_misses, cache_entries)`` so the
    parent can aggregate run-wide cache telemetry.  The barrier wait is
    what guarantees each worker executes exactly one broadcast task: a
    worker that finished its task blocks until every sibling has one,
    so the pool cannot route two broadcasts to the same worker.
    """
    global _worker_segments
    if segments is not None:
        _worker_segments = segments
    if _worker_barrier is not None:
        _worker_barrier.wait(timeout=_PRIME_TIMEOUT_SECONDS)
    return (os.getpid(), *_worker_cache_counts())


def _score_one(sketch: Sketch) -> ScoredHandler:
    assert _worker_scorer is not None and _worker_segments is not None
    return _worker_scorer.score_sketch(sketch, _worker_segments)


class PooledExecutor:
    """Persistent process-pool scoring with working-set re-priming."""

    def __init__(
        self,
        scorer: Scorer,
        workers: int,
        *,
        context: RunContext | None = None,
        min_parallel: int = MIN_PARALLEL_SKETCHES,
    ):
        if workers < 2:
            raise ValueError("PooledExecutor needs workers >= 2")
        self.scorer = scorer
        self.workers = workers
        self.context = context
        self.min_parallel = min_parallel
        self._pool: ProcessPoolExecutor | None = None
        self._barrier = None
        self._segments_token: tuple[int, ...] | None = None
        self._segments: list[TraceSegment] | None = None
        self._epoch = -1
        self.pools_spawned = 0
        #: Latest cumulative cache counters per worker pid.
        self._worker_cache: dict[int, tuple[int, int, int]] = {}
        methods = multiprocessing.get_all_start_methods()
        self._mp_context = (
            multiprocessing.get_context("fork") if "fork" in methods else None
        )

    # ------------------------------------------------------------------

    def _emit(self, event) -> None:
        if self.context is not None:
            self.context.emit(event)

    def _scorer_config(self) -> tuple:
        scorer = self.scorer
        return (
            scorer.metric_name,
            tuple(scorer.constant_pool),
            scorer.completion_cap,
            scorer.seed,
            scorer.max_replay_rows,
            scorer.series_budget,
        )

    def _cache_entries(self) -> int | None:
        cache = self.scorer.cache
        return cache.max_entries if cache is not None else None

    def _spawn_pool(self, segments: Sequence[TraceSegment] | None) -> None:
        if self._mp_context is not None:
            self._barrier = self._mp_context.Barrier(self.workers)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._mp_context,
            initializer=_init_worker,
            initargs=(
                self._barrier,
                self._scorer_config(),
                self._cache_entries(),
                list(segments) if segments is not None else None,
            ),
        )
        self.pools_spawned += 1
        self._emit(PoolSpawned(workers=self.workers))

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._barrier = None

    def _broadcast(
        self, segments: Sequence[TraceSegment] | None
    ) -> None:
        """Run one barrier-synchronized task on every worker."""
        assert self._pool is not None
        futures = [
            self._pool.submit(_broadcast_segments, segments)
            for _ in range(self.workers)
        ]
        for future in futures:
            pid, hits, misses, entries = future.result(
                timeout=_PRIME_TIMEOUT_SECONDS * 2
            )
            self._worker_cache[pid] = (hits, misses, entries)

    def _prime(self, segments: Sequence[TraceSegment]) -> None:
        token = tuple(id(segment) for segment in segments)
        if self._pool is not None and token == self._segments_token:
            return
        segments = list(segments)
        if self._pool is None:
            if self._mp_context is not None:
                # Barrier path: spawn empty, broadcast the working set.
                self._spawn_pool(None)
                self._broadcast(segments)
            else:
                # No fork: bake segments into the initializer instead.
                self._spawn_pool(segments)
        elif self._mp_context is not None:
            try:
                self._broadcast(segments)
            except Exception:
                # A wedged/dead worker broke the barrier: rebuild once.
                self._shutdown_pool()
                self._spawn_pool(segments if self._mp_context is None else None)
                if self._mp_context is not None:
                    self._broadcast(segments)
        else:
            self._shutdown_pool()
            self._spawn_pool(segments)
        self._segments = segments
        self._segments_token = token
        self._epoch += 1
        self._emit(
            SegmentsPrimed(epoch=self._epoch, segment_count=len(segments))
        )

    # ------------------------------------------------------------------

    def score(
        self,
        sketches: Sequence[Sketch],
        segments: Sequence[TraceSegment],
        *,
        deadline: float | None = None,
        min_results: int = 0,
    ) -> list[ScoredHandler]:
        if len(sketches) < self.min_parallel:
            # Tiny waves stay in-process (shares the parent-side cache).
            return _score_serially(
                self.scorer, sketches, segments, deadline, min_results
            )
        self._prime(segments)
        assert self._pool is not None
        if deadline is None:
            chunk = derive_chunksize(len(sketches), self.workers)
            return list(
                self._pool.map(_score_one, sketches, chunksize=chunk)
            )
        futures = [self._pool.submit(_score_one, s) for s in sketches]
        results: list[ScoredHandler] = []
        cut_short = False
        for index, future in enumerate(futures):
            if cut_short:
                future.cancel()
                continue
            if index < min_results:
                results.append(future.result())
                continue
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                cut_short = True
                future.cancel()
                continue
            try:
                results.append(future.result(timeout=remaining))
            except FutureTimeoutError:
                cut_short = True
                future.cancel()
        return results

    def cache_stats(self) -> CacheStats | None:
        """Aggregate cache counters: workers (as last reported) + parent."""
        if self.scorer.cache is None:
            return None
        if self._pool is not None and self._mp_context is not None:
            try:
                self._broadcast(None)  # refresh per-worker counters
            except Exception:
                pass  # stale counters are better than a crashed run
        hits = sum(entry[0] for entry in self._worker_cache.values())
        misses = sum(entry[1] for entry in self._worker_cache.values())
        entries = sum(entry[2] for entry in self._worker_cache.values())
        parent = self.scorer.cache.stats()
        return CacheStats(
            hits=hits + parent.hits,
            misses=misses + parent.misses,
            entries=entries + parent.entries,
        )

    def close(self) -> None:
        self._shutdown_pool()

    def __enter__(self) -> "PooledExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_executor(
    scorer: Scorer,
    workers: int,
    context: RunContext | None = None,
) -> ScoringExecutor:
    """The executor for a run: pooled when ``workers > 1``."""
    if workers > 1:
        return PooledExecutor(scorer, workers, context=context)
    return SerialExecutor(scorer, context=context)
