"""The wave protocol between a re-entrant synthesis core and its driver.

The refinement loop used to call its executor directly, which welded one
search to one executor to one process.  Splitting the loop into a
generator (``synthesize_core``) that *yields* these request objects and
receives the matching replies turns every executor interaction into an
explicit, schedulable message:

* the blocking wrapper (:func:`repro.synth.refinement.drive`) answers
  each request against a private executor, reproducing the classic
  one-run behavior bit for bit;
* the :class:`~repro.runtime.scheduler.Scheduler` answers requests from
  many cores against ONE shared executor, slicing each
  :class:`WaveRequest` at group (bucket) granularity so jobs interleave
  fairly — sound because group incumbents never cross groups and group
  minima are exact (see ``docs/SERVICE.md``).

Request flow, in order of appearance within one run::

    ScorerReady      -> (no reply)   driver binds/adopts an executor
    WaveRequest      -> WaveReply    score these groups on these segments
    StatsRequest     -> ExecutorSnapshot
    ProgressReport   -> (no reply)   anytime-answer beacon at checkpoints

The protocol deliberately knows nothing about buckets, DSLs, or traces:
``groups`` are opaque sketch sequences and ``segments`` an opaque working
set, so this module (and the scheduler built on it) depends only on the
runtime layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.runtime.events import CacheStats, ScoringStats
from repro.runtime.supervise import Quarantined

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.runtime.context import RunContext
    from repro.runtime.faults import FaultPlan

__all__ = [
    "ScorerReady",
    "WaveRequest",
    "WaveReply",
    "StatsRequest",
    "ExecutorSnapshot",
    "ProgressReport",
]


@dataclass(frozen=True)
class ScorerReady:
    """First request out of a core: the scorer this run needs bound to an
    executor.

    The blocking wrapper answers by creating a private executor with
    exactly these knobs; a scheduler records the scorer and adopts it
    onto its shared executor before each of the job's dispatches.  No
    reply value is expected.
    """

    scorer: Any  #: repro.synth.scoring.Scorer
    workers: int
    max_pool_rebuilds: int
    watchdog_seconds: float | None
    fault_plan: "FaultPlan | None"
    context: "RunContext"
    #: Broadcast segment working sets through the shared-memory plane
    #: (``repro.runtime.shm``) instead of pickling them per worker.
    #: Execution knob: results are bit-identical either way.
    use_shm: bool = True


@dataclass(frozen=True)
class WaveRequest:
    """Score *groups* against *segments*; reply with a :class:`WaveReply`.

    ``fused`` mirrors ``SynthesisConfig.fused_scheduling``: a fused
    request maps onto one ``score_grouped`` call, an unfused one onto
    ``score()`` per group.  A driver may split a fused request into
    several ``score_grouped`` calls at group boundaries — warm-start
    incumbents are per-group and group minima are exact, so any
    group-aligned slicing returns bit-identical rankings, checkpoints,
    and best handlers (``min_results`` is a per-group guarantee and
    carries into every slice unchanged).
    """

    groups: tuple  #: tuple of sketch sequences, one per bucket
    segments: Sequence  #: the working set (shared trace segments)
    deadline: float | None
    min_results: int
    fused: bool
    phase: str  #: "refinement" | "exhaustive"

    @property
    def tasks(self) -> int:
        """Flattened task count (what a fused dispatch would carry)."""
        return sum(len(group) for group in self.groups)


@dataclass(frozen=True)
class WaveReply:
    """Per-group result prefixes, positionally aligned with the request's
    groups, plus the run's cumulative quarantine log (the checkpoint
    writer persists it at iteration boundaries)."""

    grouped: tuple  #: tuple[list[ScoredHandler], ...]
    quarantined: tuple[Quarantined, ...] = ()


@dataclass(frozen=True)
class StatsRequest:
    """Ask for executor telemetry; reply with :class:`ExecutorSnapshot`.

    The blocking wrapper always answers with real cache/scoring
    snapshots (one pool broadcast); a scheduler may answer with ``None``
    for both — executor counters are fleet-wide there, not per-job — and
    the core then simply emits no stats events for that boundary.
    """

    final: bool = False


@dataclass(frozen=True)
class ExecutorSnapshot:
    """Reply to :class:`StatsRequest`."""

    cache: CacheStats | None
    scoring: ScoringStats | None
    #: Cumulative quarantine log attributed to THIS run/job.
    quarantined: tuple[Quarantined, ...]
    #: Pool rebuilds attributed to THIS run/job.
    pool_rebuilds: int
    degraded: bool


@dataclass(frozen=True)
class ProgressReport:
    """Anytime-answer beacon, yielded after every checkpoint boundary.

    No reply is expected.  The blocking wrapper ignores it; a scheduler
    uses it to refresh the job's result-store entry, renew its
    checkpoint lease, and emit a ``job_progress`` event.
    """

    iteration: int
    best_expression: str | None
    best_distance: float
    handlers_scored: int
    phase: str = "refinement"
