"""Typed run-telemetry events.

Every observable moment of a synthesis run is a small frozen dataclass
with a stable ``kind`` string.  Events carry *payload only*; the
:class:`~repro.runtime.context.RunContext` stamps each one with the
seconds elapsed since the run started when it fans the event out to the
configured sinks.  :func:`event_payload` renders any event as a plain
JSON-serializable dict (frozensets become sorted lists), which is the
schema the JSONL run log writes one line per event.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

__all__ = [
    "Event",
    "RunStarted",
    "PoolSpawned",
    "SegmentsPrimed",
    "SketchesDrawn",
    "BucketScored",
    "IterationFinished",
    "CacheStats",
    "ScoringStats",
    "WaveDispatched",
    "BudgetExceeded",
    "RunFinished",
    "WorkerCrashed",
    "PoolRebuilt",
    "DegradedToSerial",
    "SketchQuarantined",
    "TraceTriaged",
    "TraceRepairApplied",
    "DegradedInputs",
    "CheckpointSaved",
    "RunResumed",
    "JobSubmitted",
    "JobStarted",
    "JobPreempted",
    "JobProgress",
    "JobCompleted",
    "JobFailed",
    "LeaseStolen",
    "ServerStarted",
    "HeartbeatMissed",
    "JobTakenOver",
    "JobRetried",
    "JobQuarantined",
    "ServerDrained",
    "bucket_label",
    "event_payload",
]


def bucket_label(key: frozenset[str] | tuple[str, ...] | str) -> str:
    """Render a bucket's operator-set key as a stable, readable string."""
    if isinstance(key, str):
        return key
    return "+".join(sorted(key)) or "(empty)"


@dataclass(frozen=True)
class Event:
    """Base class: every event names its ``kind``."""

    kind: ClassVar[str] = "event"


@dataclass(frozen=True)
class RunStarted(Event):
    """A synthesis (or loss-handler) search began."""

    kind: ClassVar[str] = "run_started"
    run: str  # "synthesis" | "loss"
    dsl_name: str
    bucket_count: int
    segment_count: int
    workers: int


@dataclass(frozen=True)
class PoolSpawned(Event):
    """A process pool was created (at most once per run by design)."""

    kind: ClassVar[str] = "pool_spawned"
    workers: int


@dataclass(frozen=True)
class SegmentsPrimed(Event):
    """Workers received a new segment working set (epoch bumped)."""

    kind: ClassVar[str] = "segments_primed"
    epoch: int
    segment_count: int


@dataclass(frozen=True)
class SketchesDrawn(Event):
    """The bucket pool advanced its shared enumeration stream."""

    kind: ClassVar[str] = "sketches_drawn"
    target: int
    generated: int
    live_buckets: int


@dataclass(frozen=True)
class BucketScored(Event):
    """One bucket's sample wave finished scoring."""

    kind: ClassVar[str] = "bucket_scored"
    iteration: int
    bucket: str
    score: float
    sketches: int


@dataclass(frozen=True)
class IterationFinished(Event):
    """One refinement-loop iteration completed (ranking + top-k cut)."""

    kind: ClassVar[str] = "iteration_finished"
    index: int
    samples_per_bucket: int
    segment_count: int
    bucket_count: int
    kept: int
    best_distance: float
    handlers_scored: int
    elapsed_seconds: float


@dataclass(frozen=True)
class CacheStats(Event):
    """Score-cache counters at a point in time (cumulative for the run)."""

    kind: ClassVar[str] = "cache_stats"
    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class ScoringStats(Event):
    """Batched-scoring counters at a point in time (cumulative for the run).

    Mirrors :class:`repro.synth.scoring.ScoringCounters`: how many sketch
    waves took the batched fast path, how many candidate×segment distance
    computations the lower-bound cascade skipped (``lb_pruned``), how many
    DTW dynamic programs were abandoned mid-run (``dp_abandoned``), and how
    many whole candidates were discarded without a full score
    (``candidates_pruned``).
    """

    kind: ClassVar[str] = "scoring_stats"
    batched_waves: int
    lb_pruned: int
    dp_abandoned: int
    candidates_pruned: int
    #: Candidates pruned by a cross-sketch bucket incumbent (the fused
    #: scheduler's warm start) rather than a bound the sketch computed.
    warm_start_pruned: int = 0
    #: Fused cross-bucket waves dispatched (0 under per-bucket scheduling).
    fused_waves: int = 0
    #: Flattened tasks those fused waves carried.
    fused_tasks: int = 0
    #: Most tasks simultaneously in flight on the executor.
    peak_in_flight: int = 0
    #: Mean fraction of executor capacity kept busy per fused wave.
    mean_occupancy: float = 0.0
    #: Multi-lane banded-DTW sweeps (each replaces up to completion_cap
    #: scalar dynamic programs).
    batched_dtw_sweeps: int = 0
    #: Wall-clock spent eagerly building tables/envelopes once per
    #: working set (``Scorer.prepare_segments``).
    envelope_precompute_ms: float = 0.0
    #: Peak bytes of live shared-memory segment planes (0 = no plane).
    shm_bytes: int = 0
    #: Estimated pickled-broadcast bytes the zero-copy plane avoided
    #: (plane bytes × workers per segment broadcast).
    broadcast_bytes_saved: int = 0


@dataclass(frozen=True)
class WaveDispatched(Event):
    """One fused cross-bucket wave left for the executor.

    ``groups`` live buckets were flattened (round-robin interleaved)
    into ``tasks`` scoring tasks and dispatched onto an executor
    ``workers`` wide in a single pipelined pass — the per-iteration
    barrier count the fused scheduler collapses from B to 1.
    """

    kind: ClassVar[str] = "wave_dispatched"
    groups: int
    tasks: int
    workers: int


@dataclass(frozen=True)
class BudgetExceeded(Event):
    """The wall-clock budget tripped (possibly mid-wave)."""

    kind: ClassVar[str] = "budget_exceeded"
    phase: str
    budget_seconds: float
    elapsed_seconds: float


@dataclass(frozen=True)
class WorkerCrashed(Event):
    """The scoring pool lost a worker (or a priming broadcast failed)."""

    kind: ClassVar[str] = "worker_crashed"
    reason: str  # "worker-crash" | "hang" | "broadcast"
    detail: str


@dataclass(frozen=True)
class PoolRebuilt(Event):
    """Supervision replaced a broken pool (after backoff)."""

    kind: ClassVar[str] = "pool_rebuilt"
    rebuilds: int  #: cumulative rebuild count for the run
    backoff_seconds: float


@dataclass(frozen=True)
class DegradedToSerial(Event):
    """Too many consecutive pool failures: the run fell back to serial."""

    kind: ClassVar[str] = "degraded_to_serial"
    reason: str


@dataclass(frozen=True)
class SketchQuarantined(Event):
    """A candidate hung/raised/crashed and was scored worst-case instead."""

    kind: ClassVar[str] = "sketch_quarantined"
    sketch: str
    reason: str  # "timeout" | "exception" | "worker-crash"
    detail: str


@dataclass(frozen=True)
class TraceTriaged(Event):
    """Input triage finished with one trace (admit, repair, or refuse)."""

    kind: ClassVar[str] = "trace_triaged"
    trace: str  #: ``cca/environment`` label
    action: str  #: "clean" | "repaired" | "rejected"
    quality: float  #: post-repair quality score (1.0 for clean)
    defects: dict[str, int]  #: pre-repair defect histogram
    reason: str = ""  #: rejection reason (empty when admitted)


@dataclass(frozen=True)
class TraceRepairApplied(Event):
    """One repair pass changed a trace during triage."""

    kind: ClassVar[str] = "trace_repair"
    trace: str
    repair: str  #: repair pass name (e.g. "resort_time", "clock_jump")
    touched: int  #: records the pass modified or dropped
    detail: str = ""


@dataclass(frozen=True)
class DegradedInputs(Event):
    """The quorum guard ran out of high-quality segments.

    Scoring continued on the best available working set (never fewer
    than the configured minimum), but low-quality segments had to be
    backfilled in — the ranking rests on degraded inputs.
    """

    kind: ClassVar[str] = "degraded_inputs"
    total_segments: int
    usable: int  #: segments meeting the quality threshold
    excluded: int  #: low-quality segments dropped
    backfilled: int  #: low-quality segments kept to satisfy the quorum
    min_quorum: int


@dataclass(frozen=True)
class CheckpointSaved(Event):
    """Refinement state was persisted at an iteration boundary."""

    kind: ClassVar[str] = "checkpoint_saved"
    path: str
    iteration: int


@dataclass(frozen=True)
class RunResumed(Event):
    """A run restored refinement state from a checkpoint before looping."""

    kind: ClassVar[str] = "run_resumed"
    path: str
    iterations_restored: int


@dataclass(frozen=True)
class JobSubmitted(Event):
    """A reverse-engineering job entered the scheduler's queue."""

    kind: ClassVar[str] = "job_submitted"
    job_id: str
    priority: int


@dataclass(frozen=True)
class JobStarted(Event):
    """A job left the queue and began (or resumed) running."""

    kind: ClassVar[str] = "job_started"
    job_id: str
    resumed: bool


@dataclass(frozen=True)
class JobPreempted(Event):
    """The scheduler paused a job's wave mid-flight to run its peers.

    Emitted once per preemption (bucket-granular slice boundaries), so
    the count measures how finely the fairness policy interleaved jobs.
    """

    kind: ClassVar[str] = "job_preempted"
    job_id: str
    phase: str
    groups_remaining: int


@dataclass(frozen=True)
class JobProgress(Event):
    """A job's anytime answer improved past an iteration boundary."""

    kind: ClassVar[str] = "job_progress"
    job_id: str
    iteration: int
    best_distance: float
    expression: str | None
    handlers_scored: int


@dataclass(frozen=True)
class JobCompleted(Event):
    """A job finished; carries its headline result."""

    kind: ClassVar[str] = "job_completed"
    job_id: str
    best_distance: float
    expression: str
    iterations: int
    handlers_scored: int
    waves: int


@dataclass(frozen=True)
class JobFailed(Event):
    """A job raised; the fleet continues without it."""

    kind: ClassVar[str] = "job_failed"
    job_id: str
    error: str


@dataclass(frozen=True)
class LeaseStolen(Event):
    """Acquiring a job's checkpoint lease displaced a previous owner
    (expired TTL, or an explicit steal)."""

    kind: ClassVar[str] = "lease_stolen"
    job_id: str
    path: str
    previous_owner: str


@dataclass(frozen=True)
class ServerStarted(Event):
    """A serve daemon began its claim loop over a spool."""

    kind: ClassVar[str] = "server_started"
    server: str
    spool: str
    workers: int


@dataclass(frozen=True)
class HeartbeatMissed(Event):
    """A claim scan found a job whose lease owner stopped renewing.

    Emitted once per (job, heartbeat) by the first scan that observes
    the expiry; the observing server takes the job over after its
    jittered backoff elapses.
    """

    kind: ClassVar[str] = "heartbeat_missed"
    job_id: str
    owner: str  #: the silent lease holder (the presumed-dead server)
    age_seconds: float  #: seconds since the owner's last renewal
    ttl_seconds: float


@dataclass(frozen=True)
class JobTakenOver(Event):
    """A server claimed a job that was in flight on a dead peer."""

    kind: ClassVar[str] = "job_taken_over"
    job_id: str
    server: str
    previous_owner: str
    attempts: int  #: lifetime starts of this job, this one included


@dataclass(frozen=True)
class JobRetried(Event):
    """A job that previously crashed its server is being restarted.

    ``crashes`` counts the server deaths charged to the job so far;
    the restart waited out ``backoff_seconds`` of exponential backoff
    (beyond the lease TTL + takeover jitter) before this attempt.
    """

    kind: ClassVar[str] = "job_retried"
    job_id: str
    server: str
    attempts: int
    crashes: int
    backoff_seconds: float


@dataclass(frozen=True)
class JobQuarantined(Event):
    """A job exhausted its retry budget and was parked, not re-run.

    The fleet keeps serving every other job; the quarantined spec stays
    in the spool with a structured last-failure reason for triage
    (``repro fleet-status`` surfaces it).
    """

    kind: ClassVar[str] = "job_quarantined"
    job_id: str
    server: str  #: the server that made the quarantine decision
    attempts: int
    crashes: int
    reason: str  #: stable machine code, e.g. "retry-budget-exhausted"
    detail: str


@dataclass(frozen=True)
class ServerDrained(Event):
    """A serve daemon finished a graceful drain (SIGTERM): current slice
    completed, leases released, unfinished jobs requeued for peers."""

    kind: ClassVar[str] = "server_drained"
    server: str
    jobs_released: int
    slices_dispatched: int


@dataclass(frozen=True)
class RunFinished(Event):
    """The search returned; carries the headline result and phase timers."""

    kind: ClassVar[str] = "run_finished"
    run: str
    best_distance: float
    expression: str
    handlers_scored: int
    elapsed_seconds: float
    phase_seconds: dict[str, float]


def _jsonable(value: Any) -> Any:
    if isinstance(value, frozenset):
        return sorted(value)
    if isinstance(value, (set, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


def event_payload(event: Event) -> dict[str, Any]:
    """The event as a JSON-serializable dict, ``kind`` included."""
    payload: dict[str, Any] = {"event": event.kind}
    for field in dataclasses.fields(event):
        payload[field.name] = _jsonable(getattr(event, field.name))
    if isinstance(event, CacheStats):
        payload["hit_rate"] = round(event.hit_rate, 4)
    return payload
