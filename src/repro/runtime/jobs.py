"""Jobs: the unit of work a :class:`~repro.runtime.scheduler.Scheduler`
multiplexes.

A :class:`Job` wraps a *source* — a zero-argument callable returning a
re-entrant core generator (typically
``lambda: reverse_engineer_core(traces, ...)``) — plus queueing metadata
and the live progress the scheduler fills in as waves complete.  The
:class:`JobQueue` orders admission by priority (higher first), FIFO
within a priority.  The :class:`ResultStore` persists each job's anytime
answer as an append-only JSONL stream: the last line is always the
current best, so ``repro submit --wait`` (or any tail -f) reads live
progress without touching the scheduler.
"""

from __future__ import annotations

import enum
import heapq
import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.runtime.supervise import Quarantined

__all__ = ["Job", "JobState", "JobQueue", "ResultStore"]


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    #: Parked by the service layer after exhausting its retry budget
    #: (a poison job that kept killing its server); never scheduled.
    QUARANTINED = "quarantined"


@dataclass
class Job:
    """One reverse-engineering run, schedulable among many."""

    job_id: str
    #: Builds the job's core generator; called once, at start.  A fresh
    #: callable per job keeps traces/config lazy until admission.
    source: Callable[[], Generator]
    priority: int = 0
    #: Checkpoint file guarded by this job's lease (``None`` = no lease,
    #: the job is lost on a scheduler crash).
    checkpoint_path: str | None = None
    #: True when the source resumes from an existing checkpoint.
    resumed: bool = False
    #: A pre-acquired :class:`~repro.runtime.checkpoint.CheckpointLease`
    #: (claim-loop servers arbitrate ownership *before* submission); the
    #: scheduler renews it as the heartbeat and releases it at the end.
    #: ``None`` means the scheduler acquires its own lease at start.
    lease: Any = None
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- live progress, owned by the scheduler ----------------------------
    state: JobState = JobState.PENDING
    result: Any = None  #: PipelineReport / SynthesisResult when completed
    error: str | None = None
    best_expression: str | None = None
    best_distance: float = math.inf
    iterations_done: int = 0
    handlers_scored: int = 0
    waves_dispatched: int = 0
    slices_dispatched: int = 0
    preemptions: int = 0
    quarantined: list[Quarantined] = field(default_factory=list)
    pool_rebuilds: int = 0

    def snapshot(self) -> dict[str, Any]:
        """The job's anytime answer as one JSON-serializable dict."""
        return {
            "job_id": self.job_id,
            "state": self.state.value,
            "best_expression": self.best_expression,
            "best_distance": (
                self.best_distance
                if math.isfinite(self.best_distance)
                else None
            ),
            "iterations_done": self.iterations_done,
            "handlers_scored": self.handlers_scored,
            "waves_dispatched": self.waves_dispatched,
            "preemptions": self.preemptions,
            "error": self.error,
        }


class JobQueue:
    """Priority queue of pending jobs (higher priority first, FIFO ties)."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, job: Job) -> None:
        heapq.heappush(self._heap, (-job.priority, self._seq, job))
        self._seq += 1

    def pop(self) -> Job:
        return heapq.heappop(self._heap)[2]


class ResultStore:
    """Append-only JSONL anytime answers, one file per job.

    Every update appends the job's full snapshot, so the last line of
    ``results/<job_id>.jsonl`` is the current answer and the file as a
    whole is the job's progress history.  Appends are flushed line-writes
    of complete JSON documents; a torn tail (kill mid-write) is skipped
    by the reader, which takes the last line that parses.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, job_id: str) -> str:
        return os.path.join(self.root, f"{job_id}.jsonl")

    def update(self, job: Job) -> None:
        self.record(job.snapshot())

    def record(self, snapshot: dict[str, Any]) -> None:
        """Append a raw snapshot dict (``job_id`` required).

        The service layer uses this for states no live :class:`Job`
        carries — a quarantine verdict, or a drained job handed back to
        the queue — keeping the "last line is the current answer"
        contract for every state the spool can be in.
        """
        with open(
            self._path(str(snapshot["job_id"])), "a", encoding="utf-8"
        ) as handle:
            handle.write(json.dumps(snapshot, sort_keys=True) + "\n")
            handle.flush()

    def latest(self, job_id: str) -> dict[str, Any] | None:
        """The job's newest parseable snapshot, or ``None``."""
        try:
            with open(self._path(job_id), "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return None
        for line in reversed(lines):
            line = line.strip()
            if not line:
                continue
            try:
                return json.loads(line)
            except ValueError:
                continue
        return None

    def all_latest(self) -> dict[str, dict[str, Any]]:
        """Newest snapshot per job id present in the store."""
        snapshots: dict[str, dict[str, Any]] = {}
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return snapshots
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            job_id = name[: -len(".jsonl")]
            latest = self.latest(job_id)
            if latest is not None:
                snapshots[job_id] = latest
        return snapshots
