"""Shared execution substrate for synthesis runs.

``repro.runtime`` factors the *how* of a search out of the *what*: the
refinement loop and the loss-handler sweep describe the work, and this
package supplies the executors that run it (serial or a persistent
process pool), the cross-iteration score cache that deduplicates it, and
the typed run telemetry that makes a multi-minute search observable
(events -> sinks -> JSONL run log / console progress / in-memory
collector).  See ``docs/RUNTIME.md`` for the event schema and cache
keying.
"""

from repro.runtime.cache import DEFAULT_CACHE_ENTRIES, ScoreCache
from repro.runtime.checkpoint import (
    CheckpointWriter,
    RefinementCheckpoint,
    load_checkpoint,
)
from repro.runtime.context import RunContext
from repro.runtime.events import (
    BucketScored,
    BudgetExceeded,
    CacheStats,
    CheckpointSaved,
    DegradedInputs,
    DegradedToSerial,
    Event,
    IterationFinished,
    PoolRebuilt,
    PoolSpawned,
    RunFinished,
    RunResumed,
    RunStarted,
    ScoringStats,
    SegmentsPrimed,
    SketchQuarantined,
    SketchesDrawn,
    TraceRepairApplied,
    TraceTriaged,
    WaveDispatched,
    WorkerCrashed,
    bucket_label,
    event_payload,
)
from repro.runtime.executors import (
    PooledExecutor,
    ScoringExecutor,
    SerialExecutor,
    derive_chunksize,
    interleave_groups,
    make_executor,
    wave_order,
)
from repro.runtime.faults import FaultInjected, FaultPlan, apply_sketch_faults
from repro.runtime.supervise import (
    WORST_DISTANCE,
    Quarantined,
    SketchTimeout,
    SupervisionPolicy,
    Supervisor,
    watchdog,
)
from repro.runtime.sinks import (
    CollectorSink,
    ConsoleProgressSink,
    EventSink,
    JsonlSink,
)

__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "ScoreCache",
    "CheckpointWriter",
    "RefinementCheckpoint",
    "load_checkpoint",
    "RunContext",
    "WorkerCrashed",
    "PoolRebuilt",
    "DegradedToSerial",
    "SketchQuarantined",
    "TraceTriaged",
    "TraceRepairApplied",
    "DegradedInputs",
    "CheckpointSaved",
    "RunResumed",
    "FaultInjected",
    "FaultPlan",
    "apply_sketch_faults",
    "WORST_DISTANCE",
    "Quarantined",
    "SketchTimeout",
    "SupervisionPolicy",
    "Supervisor",
    "watchdog",
    "Event",
    "RunStarted",
    "PoolSpawned",
    "SegmentsPrimed",
    "SketchesDrawn",
    "BucketScored",
    "IterationFinished",
    "CacheStats",
    "ScoringStats",
    "WaveDispatched",
    "BudgetExceeded",
    "RunFinished",
    "bucket_label",
    "event_payload",
    "ScoringExecutor",
    "SerialExecutor",
    "PooledExecutor",
    "make_executor",
    "derive_chunksize",
    "interleave_groups",
    "wave_order",
    "EventSink",
    "CollectorSink",
    "JsonlSink",
    "ConsoleProgressSink",
]
