"""Event sinks: where run telemetry goes.

A sink receives ``(event, t)`` pairs — *t* is seconds since the run
started — and may buffer, print, or persist them.  Three implementations
cover the common needs: :class:`CollectorSink` (in-memory, for tests and
for building the post-run summary table), :class:`JsonlSink` (one JSON
object per line, the run-log format documented in ``docs/RUNTIME.md``)
and :class:`ConsoleProgressSink` (a human-readable progress line per
iteration).  Serial, no-sink execution is the default everywhere, so a
run with no sinks configured behaves exactly like the pre-runtime code.
"""

from __future__ import annotations

import json
import sys
from typing import IO, Iterator, Protocol

from repro.runtime.events import (
    BudgetExceeded,
    CacheStats,
    Event,
    IterationFinished,
    PoolSpawned,
    RunFinished,
    RunStarted,
    event_payload,
)

__all__ = ["EventSink", "CollectorSink", "JsonlSink", "ConsoleProgressSink"]


class EventSink(Protocol):
    """Anything that can receive timestamped run events."""

    def handle(self, event: Event, t: float) -> None: ...

    def close(self) -> None: ...


class CollectorSink:
    """Keeps every event in memory; the sink tests and summaries use."""

    def __init__(self) -> None:
        self.timeline: list[tuple[float, Event]] = []

    @property
    def events(self) -> list[Event]:
        return [event for _, event in self.timeline]

    def of_kind(self, kind: str) -> list[Event]:
        return [event for event in self.events if event.kind == kind]

    def last_of_kind(self, kind: str) -> Event | None:
        matches = self.of_kind(kind)
        return matches[-1] if matches else None

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.timeline)

    def handle(self, event: Event, t: float) -> None:
        self.timeline.append((t, event))

    def close(self) -> None:  # nothing to release
        pass


class JsonlSink:
    """Appends one JSON object per event to a file (the run log).

    Each line is ``{"event": <kind>, "t": <seconds>, ...payload}``.  The
    file is opened lazily on the first event so constructing the sink
    (e.g. from a CLI flag) costs nothing if the run dies before emitting.
    """

    def __init__(self, path: str):
        self.path = path
        self._file: IO[str] | None = None

    def handle(self, event: Event, t: float) -> None:
        if self._file is None:
            self._file = open(self.path, "w", encoding="utf-8")
        payload = event_payload(event)
        payload["t"] = round(t, 6)
        self._file.write(json.dumps(payload) + "\n")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class ConsoleProgressSink:
    """One line per notable event, for watching a long run from a shell."""

    def __init__(self, stream: IO[str] | None = None):
        self._stream = stream if stream is not None else sys.stderr
        self._cache: CacheStats | None = None

    def _say(self, text: str, t: float) -> None:
        self._stream.write(f"[{t:7.1f}s] {text}\n")
        self._stream.flush()

    def handle(self, event: Event, t: float) -> None:
        if isinstance(event, CacheStats):
            self._cache = event  # folded into the next iteration line
            return
        if isinstance(event, RunStarted):
            self._say(
                f"run started: DSL {event.dsl_name!r}, "
                f"{event.bucket_count} buckets, "
                f"{event.segment_count} segments, "
                f"workers={event.workers}",
                t,
            )
        elif isinstance(event, PoolSpawned):
            self._say(f"process pool spawned ({event.workers} workers)", t)
        elif isinstance(event, IterationFinished):
            cache = ""
            if self._cache is not None and self._cache.lookups:
                cache = f", cache {self._cache.hit_rate:.0%} hit"
            self._say(
                f"iter {event.index}: {event.bucket_count} buckets -> "
                f"kept {event.kept}, best {event.best_distance:.3f}, "
                f"{event.handlers_scored} handlers scored{cache}",
                t,
            )
        elif isinstance(event, BudgetExceeded):
            self._say(
                f"time budget of {event.budget_seconds:.1f}s exceeded "
                f"during {event.phase}",
                t,
            )
        elif isinstance(event, RunFinished):
            self._say(
                f"done: {event.expression}  "
                f"(distance {event.best_distance:.3f}, "
                f"{event.elapsed_seconds:.1f}s)",
                t,
            )

    def close(self) -> None:  # the stream is not ours to close
        pass
