"""Atomic JSONL checkpoints of refinement-loop state.

A synthesis run is hours of scoring whose *decisions* — which buckets
survived each top-k cut — compress to a few hundred bytes.  Everything
else about the loop is deterministic: the sketch stream enumerates in a
fixed order, working sets derive from ``(seed, iteration)``, and scores
are pure functions of (handler, segment).  So a checkpoint does not
persist sketches or scores at all; it records the decision log (the
:class:`~repro.synth.result.IterationRecord` per completed iteration)
plus the loop's scalar state, and resume *replays* the decisions against
a fresh bucket pool — draw the same targets, prune to the recorded
survivors — which reconstructs the exact pool state scoring left behind.
A killed run resumed this way converges to the same final ranking as an
uninterrupted one.

File format: JSON Lines, one complete checkpoint per line, newest last.
Every write rewrites the file through a temp-file + ``os.replace`` so a
kill mid-write can never produce a torn tail; the loader takes the last
line that parses, so even a hand-truncated file degrades to an older
checkpoint instead of an error.  A ``fingerprint`` of the run
configuration is stored and verified on resume — resuming with a
different DSL, seed, or schedule is refused rather than silently
diverging.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.runtime.supervise import Quarantined

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.synth.result import IterationRecord

__all__ = [
    "CHECKPOINT_VERSION",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_TAKEOVER_JITTER_FRACTION",
    "RefinementCheckpoint",
    "CheckpointWriter",
    "CheckpointLease",
    "LeaseState",
    "lease_path",
    "load_checkpoint",
    "read_lease",
    "takeover_delay",
]

CHECKPOINT_VERSION = 1

#: Default seconds a lease stays exclusive without a renewal.  Renewals
#: happen at every dispatched wave slice (the scheduler's heartbeat), so
#: 30s distinguishes "scheduler mid-slice" from "scheduler gone" with a
#: wide margin.
DEFAULT_LEASE_TTL = 30.0

#: Largest fraction of the TTL a server's jittered takeover backoff may
#: add after a peer's lease expires.  Takeover therefore always begins
#: within ``(1 + fraction) * ttl`` of the dead peer's last heartbeat.
DEFAULT_TAKEOVER_JITTER_FRACTION = 0.25

#: Seconds after which an abandoned ``.lease.lock`` (its holder crashed
#: between creating and removing it) is unilaterally cleaned up.  Claim
#: critical sections are a read + one small write — microseconds — so
#: anything older is wreckage, not contention.
_STALE_LOCK_SECONDS = 5.0


def takeover_delay(
    owner: str,
    job_id: str,
    ttl_seconds: float,
    *,
    max_fraction: float = DEFAULT_TAKEOVER_JITTER_FRACTION,
) -> float:
    """Deterministic per-(server, job) jitter before stealing an expired
    lease.

    When a server dies, every surviving peer notices the expiry on its
    next claim scan at the same moment; if all of them immediately raced
    to take over, N-1 would lose the race after burning a claim attempt
    (thundering herd).  Spreading takeovers by a stable hash of
    ``(owner, job_id)`` makes one server the de-facto first responder
    per job — different jobs elect different responders — while staying
    fully deterministic for tests (no RNG, no wall-clock seed).
    """
    digest = hashlib.sha256(
        f"{owner}\x00{job_id}".encode("utf-8")
    ).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(2**64)
    return ttl_seconds * max_fraction * fraction


@dataclass(frozen=True)
class RefinementCheckpoint:
    """Everything needed to resume a refinement loop at a boundary."""

    fingerprint: dict[str, Any]
    records: tuple  #: IterationRecord per completed iteration
    best_expression: str | None
    best_distance: float
    handlers_scored: int
    #: True when the loop's own stop condition (single bucket / stream
    #: exhausted) had already fired — resume skips straight to the
    #: exhaustive pass.
    loop_done: bool
    #: Schedule values for the *next* iteration (unchanged when
    #: ``loop_done``; the exhaustive pass reads ``next_segment_count``).
    next_samples: int
    next_keep: int
    next_segment_count: int
    quarantined: tuple[Quarantined, ...] = ()
    version: int = CHECKPOINT_VERSION


def _record_payload(record: "IterationRecord") -> dict[str, Any]:
    return {
        "index": record.index,
        "samples_per_bucket": record.samples_per_bucket,
        "segment_count": record.segment_count,
        "ranking": [[sorted(key), score] for key, score in record.ranking],
        "kept": [sorted(key) for key in record.kept],
        "handlers_scored": record.handlers_scored,
    }


def _record_from_payload(payload: dict[str, Any]) -> "IterationRecord":
    from repro.synth.result import IterationRecord

    return IterationRecord(
        index=int(payload["index"]),
        samples_per_bucket=int(payload["samples_per_bucket"]),
        segment_count=int(payload["segment_count"]),
        ranking=tuple(
            (frozenset(key), float(score))
            for key, score in payload["ranking"]
        ),
        kept=tuple(frozenset(key) for key in payload["kept"]),
        handlers_scored=int(payload["handlers_scored"]),
    )


def checkpoint_payload(checkpoint: RefinementCheckpoint) -> dict[str, Any]:
    """The checkpoint as one JSON-serializable dict (one JSONL line)."""
    return {
        "version": checkpoint.version,
        "fingerprint": checkpoint.fingerprint,
        "records": [_record_payload(r) for r in checkpoint.records],
        "best_expression": checkpoint.best_expression,
        "best_distance": (
            checkpoint.best_distance
            if checkpoint.best_distance == checkpoint.best_distance
            and abs(checkpoint.best_distance) != float("inf")
            else repr(checkpoint.best_distance)
        ),
        "handlers_scored": checkpoint.handlers_scored,
        "loop_done": checkpoint.loop_done,
        "next_samples": checkpoint.next_samples,
        "next_keep": checkpoint.next_keep,
        "next_segment_count": checkpoint.next_segment_count,
        "quarantined": [
            {"sketch": q.sketch, "reason": q.reason, "detail": q.detail}
            for q in checkpoint.quarantined
        ],
    }


def checkpoint_from_payload(payload: dict[str, Any]) -> RefinementCheckpoint:
    distance = payload["best_distance"]
    if isinstance(distance, str):  # "inf" / "-inf" / "nan" round-trip
        distance = float(distance)
    return RefinementCheckpoint(
        version=int(payload.get("version", CHECKPOINT_VERSION)),
        fingerprint=dict(payload["fingerprint"]),
        records=tuple(
            _record_from_payload(r) for r in payload["records"]
        ),
        best_expression=payload["best_expression"],
        best_distance=float(distance),
        handlers_scored=int(payload["handlers_scored"]),
        loop_done=bool(payload["loop_done"]),
        next_samples=int(payload["next_samples"]),
        next_keep=int(payload["next_keep"]),
        next_segment_count=int(payload["next_segment_count"]),
        quarantined=tuple(
            Quarantined(
                sketch=q["sketch"],
                reason=q["reason"],
                detail=q.get("detail", ""),
            )
            for q in payload.get("quarantined", [])
        ),
    )


class CheckpointWriter:
    """Appends checkpoints to a JSONL file, atomically.

    The whole file is rewritten through ``<path>.tmp`` + ``os.replace``
    on every write: checkpoint lines are tiny, and atomic replacement is
    the property that matters — a SIGKILL at any instant leaves either
    the previous complete file or the new complete file, never a torn
    line.  An existing file at *path* is extended, so ``--checkpoint X
    --resume X`` keeps one continuous history across restarts.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lines: list[str] = []
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                self._lines = [
                    line.rstrip("\n") for line in handle if line.strip()
                ]
        self.writes = 0

    def write(self, checkpoint: RefinementCheckpoint) -> None:
        self._lines.append(
            json.dumps(checkpoint_payload(checkpoint), sort_keys=True)
        )
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write("\n".join(self._lines) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self.writes += 1


def load_checkpoint(path: str) -> RefinementCheckpoint | None:
    """The newest usable checkpoint in *path*, or ``None``.

    Scans every line and keeps the last one that parses and carries the
    current schema version, so a corrupt or truncated tail falls back to
    the previous boundary instead of failing the resume.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return None
    newest: RefinementCheckpoint | None = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            candidate = checkpoint_from_payload(payload)
        except (ValueError, KeyError, TypeError):
            continue
        if candidate.version == CHECKPOINT_VERSION:
            newest = candidate
    return newest


# ----------------------------------------------------------------------
# Checkpoint leases: exclusive, expiring ownership of a checkpoint file.
#
# A scheduler multiplexing many jobs holds one lease per in-flight job
# and renews it at every iteration boundary (the same cadence the
# checkpoint itself is written).  A scheduler that dies stops renewing;
# once the TTL lapses any successor may acquire the lease and resume the
# job from its last checkpoint — that is the whole restart story, no
# registry or coordinator involved.  A *fresh* foreign lease refuses
# acquisition unless explicitly stolen, which is what keeps two live
# schedulers from scoring the same job concurrently.


def lease_path(checkpoint_path: str) -> str:
    """The sidecar lease file guarding *checkpoint_path*."""
    return f"{checkpoint_path}.lease"


@dataclass(frozen=True)
class LeaseState:
    """One parsed lease file."""

    owner: str
    acquired_at: float
    renewed_at: float
    ttl_seconds: float

    def expired(self, now: float) -> bool:
        return now - self.renewed_at >= self.ttl_seconds


def read_lease(path: str) -> LeaseState | None:
    """The lease at *path*, or ``None`` when absent or unparseable
    (a corrupt lease is treated as no lease: the writer crashed)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return LeaseState(
            owner=str(payload["owner"]),
            acquired_at=float(payload["acquired_at"]),
            renewed_at=float(payload["renewed_at"]),
            ttl_seconds=float(payload["ttl_seconds"]),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


class CheckpointLease:
    """Expiring exclusive ownership of one checkpoint file.

    ``acquire()`` succeeds when the lease file is absent, corrupt,
    already ours, or expired; a *fresh* foreign lease requires
    ``steal=True`` (operator override after a known-dead scheduler).
    ``displaced`` records the previous owner whenever an acquisition
    took the lease from someone else — callers surface it as a
    ``lease_stolen`` event.  Writes go through the same temp-file +
    ``os.replace`` dance as checkpoints, so a torn lease is impossible.

    The read-check-write inside ``acquire`` is serialized through a
    short-lived ``<lease>.lock`` sentinel (``O_CREAT | O_EXCL``): two
    servers racing for the same expired lease cannot both conclude they
    won — the loser observes the winner's fresh lease and backs off.
    A lock left behind by a crash mid-claim is reaped once it is older
    than a few seconds (the critical section is one read plus one tiny
    write), so a dead claimant never wedges the job.
    """

    def __init__(
        self,
        checkpoint_path: str,
        owner: str,
        ttl_seconds: float = DEFAULT_LEASE_TTL,
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = lease_path(checkpoint_path)
        self.owner = owner
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self.held = False
        self._acquired_at: float | None = None
        #: Owner of the foreign lease this acquisition displaced, if any.
        self.displaced: str | None = None

    def _write(self) -> None:
        payload = {
            "owner": self.owner,
            "acquired_at": self._acquired_at,
            "renewed_at": self._clock(),
            "ttl_seconds": self.ttl_seconds,
        }
        tmp = f"{self.path}.tmp.{self.owner}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    @property
    def _lock_path(self) -> str:
        return f"{self.path}.lock"

    def _try_lock(self) -> bool:
        """One attempt at the claim lock; reaps a stale leftover."""
        try:
            fd = os.open(
                self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            try:
                age = time.time() - os.path.getmtime(self._lock_path)
            except OSError:
                return False  # lock vanished mid-check: holder finished
            if age > _STALE_LOCK_SECONDS:
                try:  # crashed claimant: reap and retry next pass
                    os.remove(self._lock_path)
                except OSError:
                    pass
            return False
        except OSError:
            return False
        os.close(fd)
        return True

    def _unlock(self) -> None:
        try:
            os.remove(self._lock_path)
        except OSError:
            pass

    def acquire(self, *, steal: bool = False) -> bool:
        """Take the lease; ``False`` when a live foreign lease blocks it
        or a concurrent claimant holds the claim lock (retry later)."""
        if not self._try_lock():
            # A renewal of our own lease never contends: only acquire
            # takes the lock, and we would not re-acquire while held.
            return False
        try:
            current = read_lease(self.path)
            self.displaced = None
            if current is not None and current.owner != self.owner:
                if not current.expired(self._clock()) and not steal:
                    return False
                self.displaced = current.owner
            self._acquired_at = self._clock()
            self._write()
            self.held = True
            return True
        finally:
            self._unlock()

    def renew(self) -> None:
        """Refresh the TTL window; a no-op unless the lease is held."""
        if self.held:
            self._write()

    def release(self) -> None:
        """Drop the lease (missing file is fine: release is idempotent).

        Only removes the file while it still names us as owner — if a
        peer already stole the lease, deleting it would silently release
        *their* claim.
        """
        if not self.held:
            return
        self.held = False
        current = read_lease(self.path)
        if current is not None and current.owner != self.owner:
            return
        try:
            os.remove(self.path)
        except OSError:
            pass
