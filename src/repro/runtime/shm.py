"""Shared-memory segment plane: the zero-copy scoring data plane.

Priming a :class:`~repro.runtime.executors.PooledExecutor` used to
pickle the whole segment working set — every ``TraceSegment`` with its
parent trace's ACK stream — into each worker, which then re-derived the
scoring inputs (signal table, normalized observed series, downsample,
Keogh envelope) from scratch.  The plane inverts that: the parent builds
those arrays **once** (:meth:`~repro.synth.scoring.Scorer.prepare_segments`),
packs them into ONE ``multiprocessing.shared_memory`` block, and
broadcasts a small picklable :class:`PlaneHandle` (names, dtypes,
offsets) instead.  Workers attach once per pool lifetime and rebuild
numpy views over the same physical pages — no copies, no re-derivation.

Ownership is parent-side and fleet-safe: every working set gets its own
uniquely-named plane (``repro-plane-<pid>-<token>``), so N jobs
multiplexed on one scheduler never alias each other's planes, and the
executor unlinks every plane it created on close or degradation.
Workers attach read-only views and never unlink;
:func:`attach_plane` suppresses Python's resource-tracker registration
(which fires on *attach* before 3.13) so a worker exit never unlinks a
plane out from under the parent or its siblings.

Fallback contract: :meth:`SegmentPlane.build` returns ``None`` for
inputs it cannot pack (no segments, an empty series) and callers fall
back to the pickled broadcast path — results are bit-identical either
way, the plane only changes how bytes travel.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np
from multiprocessing import shared_memory

from repro.trace.signals import SignalTable

if TYPE_CHECKING:  # type-only: avoid a runtime cycle with repro.synth
    from repro.synth.scoring import _SegmentEntry

__all__ = [
    "PLANE_NAME_PREFIX",
    "PlaneHandle",
    "PlaneSegment",
    "SegmentPlane",
    "attach_plane",
    "plane_segments",
]

#: Every plane's shared-memory name starts with this, so leak checks
#: (and a human inspecting ``/dev/shm``) can attribute segments to us.
PLANE_NAME_PREFIX = "repro-plane-"

#: Array starts are rounded up to this many bytes inside the block.
_ALIGN = 64


@dataclass(frozen=True)
class _ArraySpec:
    """Where one packed array lives inside the plane."""

    offset: int
    size: int  # element count
    dtype: str  # numpy dtype string, e.g. "<f8"


@dataclass(frozen=True)
class _SegmentSpec:
    """Layout of one segment's scoring arrays inside the plane."""

    mss: float
    columns: tuple[tuple[str, _ArraySpec], ...]
    observed: _ArraySpec
    downsampled: _ArraySpec
    envelope: tuple[_ArraySpec, _ArraySpec] | None


@dataclass(frozen=True)
class PlaneHandle:
    """Picklable ticket for attaching to a :class:`SegmentPlane`.

    A handle is a name plus a layout — a few hundred bytes per segment
    regardless of how long the traces are — and is what
    ``_broadcast_segments`` ships instead of the pickled working set.
    """

    name: str
    nbytes: int
    segments: tuple[_SegmentSpec, ...]


class PlaneSegment:
    """Worker-side stand-in for a primed ``TraceSegment``.

    Scoring only ever needs the precomputed entry arrays, which this
    carries as views into the attached plane;
    :meth:`~repro.synth.scoring.Scorer._entry_for` recognizes the
    :meth:`plane_entry` attribute and rebuilds its ``_SegmentEntry``
    from the views instead of re-extracting signals.  Identity is
    stable for the lifetime of a broadcast (the worker holds one list
    per plane), so ``id()``-keyed score caches behave exactly as they
    do for real segments.
    """

    __slots__ = ("index", "_table", "_observed", "_downsampled", "_envelope")

    def __init__(
        self,
        index: int,
        table: SignalTable,
        observed: np.ndarray,
        downsampled: np.ndarray,
        envelope: tuple[np.ndarray, np.ndarray] | None,
    ) -> None:
        self.index = index
        self._table = table
        self._observed = observed
        self._downsampled = downsampled
        self._envelope = envelope

    def plane_entry(
        self,
    ) -> tuple[
        SignalTable,
        np.ndarray,
        np.ndarray,
        tuple[np.ndarray, np.ndarray] | None,
    ]:
        return (self._table, self._observed, self._downsampled, self._envelope)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlaneSegment(index={self.index}, rows={len(self._table)})"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SegmentPlane:
    """One shared-memory block holding every segment's scoring arrays.

    Built (and owned) by the parent process; :attr:`handle` is what
    travels to workers.  :meth:`close` both unmaps and unlinks — the
    plane's lifetime is bounded by its owning executor, never by the
    workers attached to it (POSIX keeps the pages alive for attached
    mappings after an unlink).
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, handle: PlaneHandle
    ) -> None:
        self._shm = shm
        self.handle = handle
        self._closed = False

    @property
    def name(self) -> str:
        return self.handle.name

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    @classmethod
    def build(
        cls, entries: "Sequence[_SegmentEntry]"
    ) -> "SegmentPlane | None":
        """Pack *entries* into a fresh plane, or ``None`` when the input
        cannot be packed (no segments, or an empty table/series) — the
        caller then falls back to the pickled broadcast path."""
        if not entries:
            return None
        staged: list[tuple[_ArraySpec, np.ndarray]] = []
        offset = 0

        def stage(array: np.ndarray) -> _ArraySpec | None:
            nonlocal offset
            array = np.ascontiguousarray(array)
            if array.ndim != 1 or array.size == 0:
                return None
            start = _aligned(offset)
            spec = _ArraySpec(
                offset=start, size=array.size, dtype=array.dtype.str
            )
            staged.append((spec, array))
            offset = start + array.nbytes
            return spec

        specs: list[_SegmentSpec] = []
        for entry in entries:
            table = entry.table
            if len(table) == 0:
                return None
            columns: list[tuple[str, _ArraySpec]] = []
            for name, column in table.columns.items():
                spec = stage(column)
                if spec is None:
                    return None
                columns.append((name, spec))
            observed = stage(entry.observed)
            downsampled = stage(entry.downsampled)
            if observed is None or downsampled is None:
                return None
            envelope = None
            if entry.envelope_cache is not None:
                lower = stage(entry.envelope_cache[0])
                upper = stage(entry.envelope_cache[1])
                if lower is None or upper is None:
                    return None
                envelope = (lower, upper)
            specs.append(
                _SegmentSpec(
                    mss=float(table.mss),
                    columns=tuple(columns),
                    observed=observed,
                    downsampled=downsampled,
                    envelope=envelope,
                )
            )
        shm = _create_block(offset)
        if shm is None:
            return None
        for spec, array in staged:
            np.ndarray(
                (spec.size,), dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
            )[:] = array
        handle = PlaneHandle(
            name=shm.name, nbytes=offset, segments=tuple(specs)
        )
        return cls(shm, handle)

    def close(self) -> None:
        """Unmap and unlink; idempotent, never raises."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - defensive
            pass


def _create_block(size: int) -> shared_memory.SharedMemory | None:
    """A uniquely-named block, or ``None`` when shm is unavailable."""
    for _ in range(4):
        name = f"{PLANE_NAME_PREFIX}{os.getpid()}-{secrets.token_hex(6)}"
        try:
            return shared_memory.SharedMemory(
                name=name, create=True, size=max(size, 1)
            )
        except FileExistsError:  # pragma: no cover - 48-bit collision
            continue
        except OSError:
            # No usable /dev/shm (exotic containers): fall back cleanly.
            return None
    return None  # pragma: no cover


def attach_plane(handle: PlaneHandle) -> shared_memory.SharedMemory:
    """Map an existing plane into this (worker) process.

    Before 3.13, *attaching* registers the segment with the resource
    tracker exactly as creating does, so a worker exit would unlink the
    plane out from under the parent and every sibling (and forked
    workers share the parent's tracker, so even an unregister-after-
    attach races the siblings' copies of the same name).  Suppressing
    registration around the attach restores attach-only semantics: the
    parent remains the sole registrant and the sole owner of the
    unlink.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=handle.name)
    finally:
        resource_tracker.register = original


def plane_segments(
    shm: shared_memory.SharedMemory, handle: PlaneHandle
) -> list[PlaneSegment]:
    """Rebuild the working set as read-only views into *shm*."""

    def view(spec: _ArraySpec) -> np.ndarray:
        array = np.ndarray(
            (spec.size,), dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        array.flags.writeable = False
        return array

    segments: list[PlaneSegment] = []
    for index, spec in enumerate(handle.segments):
        table = SignalTable(
            mss=spec.mss,
            columns={name: view(column) for name, column in spec.columns},
        )
        envelope = None
        if spec.envelope is not None:
            envelope = (view(spec.envelope[0]), view(spec.envelope[1]))
        segments.append(
            PlaneSegment(
                index=index,
                table=table,
                observed=view(spec.observed),
                downsampled=view(spec.downsampled),
                envelope=envelope,
            )
        )
    return segments
