"""Deterministic fault injection for the scoring runtime.

Recovery code that only runs when the cluster misbehaves is recovery
code that never runs in CI.  A :class:`FaultPlan` makes every failure
mode the executors guard against *injectable on demand*, keyed by the
canonical text of the sketch being scored, so tests can crash a specific
worker on a specific task, hang a specific candidate, or raise from the
scorer — deterministically, under both executors.

The plan is a frozen, picklable value: :class:`PooledExecutor` ships it
to workers through the pool initializer, and the serial path consults it
inline.  Production runs simply pass ``None`` (the default everywhere);
the checks compile down to one ``is None`` test per sketch.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "ServiceFaultPlan",
    "apply_sketch_faults",
    "apply_service_faults",
    "service_kill_due",
]

#: Exit code of a fault-plan server kill.  Distinct from any real error
#: path so harnesses can assert the death was the injected one.
SERVICE_KILL_EXIT_CODE = 70


class FaultInjected(RuntimeError):
    """An injected fault fired (raised for ``raise_on`` and serial crashes)."""


def _texts(sketches: Iterable) -> frozenset[str]:
    return frozenset(str(sketch) for sketch in sketches)


@dataclass(frozen=True)
class FaultPlan:
    """What to break, and where.

    Sketch-keyed faults match on the sketch's canonical text
    (``str(sketch)``).  ``crash_on`` hard-kills the worker process
    scoring the sketch (``os._exit``), which the parent observes as a
    ``BrokenProcessPool``; in serial mode — where a process cannot
    survive its own crash — it raises :class:`FaultInjected` instead and
    exercises the quarantine path.  ``crash_generations`` restricts
    crashes to specific pool generations (the first pool a run spawns is
    generation 1), so a test can model a *transient* crash: the rebuilt
    pool scores the same sketch cleanly.  ``broadcast_failures`` fails
    the first N segment-priming broadcasts in the parent, exercising the
    pool-rebuild branch of ``_prime``.
    """

    crash_on: frozenset[str] = frozenset()
    hang_on: frozenset[str] = frozenset()
    raise_on: frozenset[str] = frozenset()
    crash_generations: frozenset[int] | None = None
    hang_seconds: float = 3600.0
    broadcast_failures: int = 0

    @classmethod
    def make(
        cls,
        *,
        crash_on: Iterable = (),
        hang_on: Iterable = (),
        raise_on: Iterable = (),
        crash_generations: Iterable[int] | None = None,
        hang_seconds: float = 3600.0,
        broadcast_failures: int = 0,
    ) -> "FaultPlan":
        """Build a plan from sketches (or their texts) directly."""
        return cls(
            crash_on=_texts(crash_on),
            hang_on=_texts(hang_on),
            raise_on=_texts(raise_on),
            crash_generations=(
                frozenset(crash_generations)
                if crash_generations is not None
                else None
            ),
            hang_seconds=hang_seconds,
            broadcast_failures=broadcast_failures,
        )

    def is_empty(self) -> bool:
        return not (self.crash_on or self.hang_on or self.raise_on)


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Deterministic server-level failure injection for fleet chaos tests.

    Where :class:`FaultPlan` breaks individual scoring tasks, this plan
    kills the whole *server* — the scheduler process itself — exactly
    like a SIGKILL: ``os._exit``, no cleanup, leases and partial
    checkpoints left on disk.  The scheduler consults it after every
    dispatched wave slice, so production code and chaos tests share one
    mechanism (there is no test-only kill switch in the serve loop).

    ``kill_after_slices`` dies once the server has dispatched that many
    slices fleet-wide (the classic "server crashes mid-run").
    ``poison_jobs`` models a *job* that kills its server: the process
    dies once it has dispatched ``poison_after_slices`` slices of any
    named job — every server that picks the job up dies the same way,
    which is what drives the retry-budget/quarantine machinery.
    """

    kill_after_slices: int | None = None
    poison_jobs: frozenset[str] = frozenset()
    poison_after_slices: int = 1
    exit_code: int = SERVICE_KILL_EXIT_CODE

    @classmethod
    def make(
        cls,
        *,
        kill_after_slices: int | None = None,
        poison_jobs: Iterable[str] = (),
        poison_after_slices: int = 1,
        exit_code: int = SERVICE_KILL_EXIT_CODE,
    ) -> "ServiceFaultPlan":
        return cls(
            kill_after_slices=kill_after_slices,
            poison_jobs=frozenset(str(job) for job in poison_jobs),
            poison_after_slices=poison_after_slices,
            exit_code=exit_code,
        )

    def is_empty(self) -> bool:
        return self.kill_after_slices is None and not self.poison_jobs


def service_kill_due(
    plan: ServiceFaultPlan | None,
    *,
    job_id: str,
    job_slices: int,
    total_slices: int,
) -> bool:
    """Whether *plan* wants the server dead after this slice.

    Pure predicate (no exit) so tests can pin the trigger arithmetic
    without sacrificing a process; :func:`apply_service_faults` is the
    lethal wrapper the scheduler calls.
    """
    if plan is None:
        return False
    if (
        plan.kill_after_slices is not None
        and total_slices >= plan.kill_after_slices
    ):
        return True
    return (
        job_id in plan.poison_jobs
        and job_slices >= plan.poison_after_slices
    )


def apply_service_faults(
    plan: ServiceFaultPlan | None,
    *,
    job_id: str,
    job_slices: int,
    total_slices: int,
) -> None:
    """Die by ``os._exit`` when *plan* says so — a simulated SIGKILL."""
    if service_kill_due(
        plan, job_id=job_id, job_slices=job_slices, total_slices=total_slices
    ):
        os._exit(plan.exit_code)


def apply_sketch_faults(
    plan: FaultPlan | None,
    sketch_text: str,
    *,
    in_worker: bool,
    generation: int = 0,
) -> None:
    """Fire whatever fault *plan* holds for *sketch_text* (if any).

    Called at the top of every guarded scoring call, inside the watchdog
    window — an injected hang is interruptible exactly like a real one.
    """
    if plan is None:
        return
    if sketch_text in plan.crash_on and (
        plan.crash_generations is None
        or generation in plan.crash_generations
    ):
        if in_worker:
            os._exit(86)
        raise FaultInjected(f"injected crash for {sketch_text!r}")
    if sketch_text in plan.hang_on:
        time.sleep(plan.hang_seconds)
    if sketch_text in plan.raise_on:
        raise FaultInjected(f"injected scorer failure for {sketch_text!r}")
