"""Bounded cross-iteration score cache.

The refinement loop re-scores every sketch a surviving bucket has drawn
against each iteration's working set (the set changed, so scores must be
refreshed) — but the working sets *overlap*: the schedule grows them by
two segments per iteration, and the exhaustive pass reuses the final
set.  The per-(handler, segment) distance is a pure function of

    (canonical handler text, segment, metric, replay-budget knobs)

so those repeats can skip replay + DTW entirely.  :class:`ScoreCache` is
a bounded LRU memo over exactly that key with hit/miss counters, the
counters being how the benchmark proves the win.

Segments have no stable serial id, so the key uses ``id(segment)`` and
each entry pins the segment object and verifies identity on lookup —
the same discipline as ``Scorer.table_for`` (a freed segment's id can be
recycled by a new object; returning the old score would be silent
corruption).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.runtime.events import CacheStats
from repro.trace.model import TraceSegment

__all__ = ["ScoreCache", "DEFAULT_CACHE_ENTRIES"]

#: Default bound: ~100k floats plus keys is a few tens of MB, far below
#: the segment tables the scorer already holds.
DEFAULT_CACHE_ENTRIES = 100_000

_Key = tuple[str, int, str, int, int]


class ScoreCache:
    """LRU memo of per-(handler, segment) distances with counters."""

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[_Key, tuple[TraceSegment, float]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    @staticmethod
    def key(
        handler_text: str,
        segment: TraceSegment,
        metric: str,
        max_replay_rows: int,
        series_budget: int,
    ) -> _Key:
        return (
            handler_text,
            id(segment),
            metric,
            max_replay_rows,
            series_budget,
        )

    def get(self, key: _Key, segment: TraceSegment) -> float | None:
        """The cached distance, or ``None`` (counting a miss)."""
        entry = self._entries.get(key)
        if entry is not None and entry[0] is segment:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1]
        if entry is not None:  # id reuse by a different segment object
            del self._entries[key]
        self.misses += 1
        return None

    def put(self, key: _Key, segment: TraceSegment, value: float) -> None:
        self._entries[key] = (segment, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits, misses=self.misses, entries=len(self._entries)
        )

    def clear(self) -> None:
        self._entries.clear()
