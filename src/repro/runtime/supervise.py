"""Worker supervision and poison-sketch quarantine primitives.

The paper's scoring campaigns run for hours across a cluster (§5); at
that scale individual candidates and workers *will* misbehave, and the
run must outlive them (CC-Fuzz makes the same argument for CCA
evaluation under adversarial inputs).  This module holds the pieces the
executors build their fault tolerance from:

:func:`watchdog`
    a SIGALRM-based per-sketch timeout.  Scoring a candidate is pure
    Python, so an in-process alarm can always interrupt it; the alarm
    raises :class:`SketchTimeout`, which derives from ``BaseException``
    so no ``except Exception`` guard inside the scorer can swallow it.

:class:`Quarantined`
    the record kept for a candidate that hung, raised, or crashed its
    worker.  Quarantined sketches receive the worst-case score
    (:data:`WORST_DISTANCE`) so the wave still ranks, and the run report
    lists them instead of the run dying.

:class:`Supervisor`
    the pool-failure policy: bounded rebuilds with exponential backoff,
    then graceful degradation to serial scoring once
    ``max_pool_rebuilds`` consecutive failures show the pool cannot be
    kept alive on this host.

The supervision state machine (healthy -> rebuilding -> degraded) is
documented in ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "WORST_DISTANCE",
    "SketchTimeout",
    "watchdog",
    "watchdog_available",
    "Quarantined",
    "SupervisionPolicy",
    "Supervisor",
]

#: Score assigned to a quarantined sketch: worse than any real distance,
#: so a poisoned candidate can never win, but the bucket it came from
#: still ranks on its healthy samples.
WORST_DISTANCE = float("inf")


class SketchTimeout(BaseException):
    """A sketch exceeded its watchdog budget.

    Derives from ``BaseException`` deliberately: scoring guards catch
    ``Exception`` to convert candidate bugs into quarantine records, and
    the watchdog must pierce those guards to reach the executor.
    """


def watchdog_available() -> bool:
    """True when the SIGALRM watchdog can arm in this thread/platform."""
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def watchdog(seconds: float | None) -> Iterator[None]:
    """Raise :class:`SketchTimeout` if the body runs longer than *seconds*.

    A no-op when *seconds* is falsy or the platform/thread cannot arm
    SIGALRM (the itimer is Unix-only and signals deliver to the main
    thread); callers that need a hard guarantee pair this with a
    parent-side backstop timeout.
    """
    if not seconds or not watchdog_available():
        yield
        return

    def _trip(signum, frame):  # pragma: no cover - exercised via raise site
        raise SketchTimeout(f"sketch exceeded {seconds:.3g}s watchdog")

    previous = signal.signal(signal.SIGALRM, _trip)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class Quarantined:
    """One candidate removed from the run instead of killing it."""

    sketch: str  #: canonical sketch text
    reason: str  #: "timeout" | "exception" | "worker-crash"
    detail: str = ""


@dataclass(frozen=True)
class SupervisionPolicy:
    """How many pool failures to tolerate, and how to pace recovery."""

    #: Consecutive pool failures tolerated before degrading to serial;
    #: each tolerated failure triggers one pool rebuild.
    max_pool_rebuilds: int = 3
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0


class Supervisor:
    """Tracks pool failures and decides rebuild-vs-degrade.

    One instance lives for a whole run: ``rebuilds`` is cumulative (the
    telemetry number), ``consecutive_failures`` resets on every
    successfully completed wave, so a long run with occasional transient
    crashes keeps its pool, while a persistently failing pool degrades
    after ``max_pool_rebuilds`` strikes in a row.
    """

    def __init__(
        self,
        policy: SupervisionPolicy | None = None,
        *,
        sleep=time.sleep,
    ) -> None:
        self.policy = policy or SupervisionPolicy()
        self._sleep = sleep
        self.consecutive_failures = 0
        self.rebuilds = 0

    def record_success(self) -> None:
        """A wave completed: the pool is healthy again."""
        self.consecutive_failures = 0

    def next_action(self) -> str:
        """Record one pool failure; return ``"rebuild"`` or ``"degrade"``."""
        self.consecutive_failures += 1
        if self.consecutive_failures > self.policy.max_pool_rebuilds:
            return "degrade"
        return "rebuild"

    def backoff(self) -> float:
        """Sleep the exponential-backoff delay; return the seconds slept."""
        seconds = min(
            self.policy.backoff_base_seconds * (2.0 ** self.rebuilds),
            self.policy.backoff_cap_seconds,
        )
        self.rebuilds += 1
        if seconds > 0:
            self._sleep(seconds)
        return seconds
