"""The run context: one object threaded through a whole synthesis run.

A :class:`RunContext` owns the event sinks and the per-phase wall-clock
timers.  Emitting with no sinks configured is a no-op loop over an empty
list, so the default context adds nothing measurable to the serial path
— the property the bit-identical acceptance criterion rests on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.runtime.events import Event
from repro.runtime.sinks import EventSink

__all__ = ["RunContext"]


class RunContext:
    """Event emission + phase timing for one run.

    Usable as a context manager; ``close()`` flushes every sink.  The
    clock is injectable for tests.
    """

    def __init__(
        self,
        sinks: Iterable[EventSink] = (),
        *,
        clock=time.perf_counter,
    ) -> None:
        self.sinks: list[EventSink] = list(sinks)
        self._clock = clock
        self._t0 = clock()
        self.phase_seconds: dict[str, float] = {}
        self.events_emitted = 0

    # ------------------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since this context was created."""
        return self._clock() - self._t0

    def emit(self, event: Event) -> None:
        """Stamp *event* with the run-relative time and fan it out."""
        self.events_emitted += 1
        if not self.sinks:
            return
        t = self.elapsed()
        for sink in self.sinks:
            sink.handle(event, t)

    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        """Accumulate wall-clock seconds spent in *phase*.

        Re-entering a phase name adds to its total, so a phase split
        across loop iterations still reports one number.
        """
        started = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - started
            self.phase_seconds[phase] = (
                self.phase_seconds.get(phase, 0.0) + elapsed
            )

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "RunContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
