"""Plain-text rendering of tables and series for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in a
terminal (and in ``bench_output.txt``).  :func:`format_run_summary`
renders the telemetry a :class:`~repro.runtime.sinks.CollectorSink`
gathered over one synthesis run as the post-run summary table the CLI
prints.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.runtime.events import (
    CacheStats,
    DegradedInputs,
    DegradedToSerial,
    Event,
    HeartbeatMissed,
    IterationFinished,
    JobCompleted,
    JobFailed,
    JobPreempted,
    JobProgress,
    JobQuarantined,
    JobRetried,
    JobStarted,
    JobSubmitted,
    JobTakenOver,
    LeaseStolen,
    PoolRebuilt,
    PoolSpawned,
    RunFinished,
    ScoringStats,
    SegmentsPrimed,
    ServerDrained,
    ServerStarted,
    SketchQuarantined,
    TraceRepairApplied,
    TraceTriaged,
    WorkerCrashed,
)

__all__ = [
    "format_table",
    "sparkline",
    "format_series",
    "format_run_summary",
    "fleet_rollup",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in cells))
        if cells
        else len(headers[column])
        for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """A one-line unicode sparkline of *values* (resampled to *width*)."""
    if not len(values):
        return ""
    data = list(values)
    if len(data) > width:
        step = len(data) / width
        data = [data[int(index * step)] for index in range(width)]
    lo = min(data)
    hi = max(data)
    span = hi - lo or 1.0
    return "".join(
        _SPARK_CHARS[int((value - lo) / span * (len(_SPARK_CHARS) - 1))]
        for value in data
    )


def format_series(
    label: str, values: Sequence[float], *, width: int = 60
) -> str:
    """A labelled sparkline with min/max annotations."""
    if not len(values):
        return f"{label}: (empty)"
    return (
        f"{label:24s} {sparkline(values, width=width)} "
        f"[{min(values):.0f}..{max(values):.0f}]"
    )


def _format_bytes(count: int) -> str:
    """``4096 -> '4.0 KiB'``; keeps the summary readable at any scale."""
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{int(size)} B"  # pragma: no cover - unreachable


def fleet_rollup(events: Iterable[Event]) -> dict | None:
    """Aggregate the scheduler's ``job_*``/``lease_stolen`` events.

    Returns ``None`` when the stream holds no fleet telemetry (a plain
    single-run search), otherwise fleet-wide counters plus a per-job
    breakdown keyed by job id — the JSON half of the ``repro serve``
    summary.
    """
    per_job: dict[str, dict] = {}
    servers: dict[str, dict] = {}
    totals = {
        "submitted": 0,
        "completed": 0,
        "failed": 0,
        "resumed": 0,
        "preemptions": 0,
        "leases_stolen": 0,
        "heartbeats_missed": 0,
        "takeovers": 0,
        "retries": 0,
        "quarantined": 0,
        "drained": 0,
    }

    def job(job_id: str) -> dict:
        return per_job.setdefault(
            job_id,
            {
                "priority": 0,
                "state": "pending",
                "resumed": False,
                "preemptions": 0,
                "iterations": 0,
                "handlers_scored": 0,
                "waves": 0,
                "best_distance": None,
                "expression": None,
                "leases_stolen": 0,
                "takeovers": 0,
                "retries": 0,
                "crashes": 0,
                "error": None,
            },
        )

    def server(name: str) -> dict:
        return servers.setdefault(
            name,
            {
                "state": "serving",
                "jobs_taken_over": 0,
                "jobs_released": 0,
                "heartbeats_missed": 0,
            },
        )

    for event in events:
        if isinstance(event, JobSubmitted):
            totals["submitted"] += 1
            job(event.job_id)["priority"] = event.priority
        elif isinstance(event, JobStarted):
            entry = job(event.job_id)
            entry["state"] = "running"
            entry["resumed"] = event.resumed
            totals["resumed"] += int(event.resumed)
        elif isinstance(event, JobPreempted):
            totals["preemptions"] += 1
            job(event.job_id)["preemptions"] += 1
        elif isinstance(event, JobProgress):
            entry = job(event.job_id)
            entry["iterations"] = event.iteration
            entry["handlers_scored"] = event.handlers_scored
            entry["best_distance"] = event.best_distance
            entry["expression"] = event.expression
        elif isinstance(event, JobCompleted):
            totals["completed"] += 1
            entry = job(event.job_id)
            entry["state"] = "completed"
            entry["iterations"] = event.iterations
            entry["handlers_scored"] = event.handlers_scored
            entry["waves"] = event.waves
            entry["best_distance"] = event.best_distance
            entry["expression"] = event.expression
        elif isinstance(event, JobFailed):
            totals["failed"] += 1
            entry = job(event.job_id)
            entry["state"] = "failed"
            entry["error"] = event.error
        elif isinstance(event, LeaseStolen):
            totals["leases_stolen"] += 1
            job(event.job_id)["leases_stolen"] += 1
        elif isinstance(event, ServerStarted):
            server(event.server)
        elif isinstance(event, HeartbeatMissed):
            totals["heartbeats_missed"] += 1
            server(event.owner)["state"] = "dead"
            server(event.owner)["heartbeats_missed"] += 1
        elif isinstance(event, JobTakenOver):
            totals["takeovers"] += 1
            job(event.job_id)["takeovers"] += 1
            server(event.server)["jobs_taken_over"] += 1
            # The previous owner demonstrably stopped serving this job.
            previous = server(event.previous_owner)
            if previous["state"] == "serving":
                previous["state"] = "displaced"
        elif isinstance(event, JobRetried):
            totals["retries"] += 1
            entry = job(event.job_id)
            entry["retries"] += 1
            entry["crashes"] = event.crashes
        elif isinstance(event, JobQuarantined):
            totals["quarantined"] += 1
            entry = job(event.job_id)
            entry["state"] = "quarantined"
            entry["crashes"] = event.crashes
            entry["error"] = f"{event.reason}: {event.detail}"
        elif isinstance(event, ServerDrained):
            totals["drained"] += 1
            entry = server(event.server)
            entry["state"] = "drained"
            entry["jobs_released"] += event.jobs_released
    if not per_job and not servers:
        return None
    rollup = {**totals, "jobs": per_job}
    if servers:
        rollup["servers"] = servers
    return rollup


def format_run_summary(events: Iterable[Event]) -> str:
    """Render one run's event stream as a terminal summary.

    Shows the per-iteration schedule (samples, working set, surviving
    buckets, best distance), then one line each for the execution
    substrate (pools spawned, segment primes), the score cache, and the
    per-phase wall-clock split — everything a multi-minute search used
    to keep to itself.
    """
    events = list(events)
    iterations = [e for e in events if isinstance(e, IterationFinished)]
    lines: list[str] = []
    fleet = fleet_rollup(events)
    if fleet is not None:
        parts = [f"{fleet['submitted']} job(s) submitted"]
        if fleet["completed"]:
            parts.append(f"{fleet['completed']} completed")
        if fleet["failed"]:
            parts.append(f"{fleet['failed']} failed")
        if fleet["resumed"]:
            parts.append(f"{fleet['resumed']} resumed")
        parts.append(f"{fleet['preemptions']} preemption(s)")
        if fleet["leases_stolen"]:
            parts.append(f"{fleet['leases_stolen']} lease(s) stolen")
        if fleet["heartbeats_missed"]:
            parts.append(
                f"{fleet['heartbeats_missed']} heartbeat(s) missed"
            )
        if fleet["takeovers"]:
            parts.append(f"{fleet['takeovers']} takeover(s)")
        if fleet["retries"]:
            parts.append(f"{fleet['retries']} retry(ies)")
        if fleet["quarantined"]:
            parts.append(f"{fleet['quarantined']} quarantined")
        if fleet["drained"]:
            parts.append(f"{fleet['drained']} server(s) drained")
        lines.append(f"fleet:  {', '.join(parts)}")
        if fleet.get("servers"):
            lines.append(
                format_table(
                    ("server", "state", "taken_over", "released",
                     "hb_missed"),
                    [
                        (
                            name,
                            entry["state"],
                            entry["jobs_taken_over"],
                            entry["jobs_released"],
                            entry["heartbeats_missed"],
                        )
                        for name, entry in sorted(fleet["servers"].items())
                    ],
                    title="fleet servers",
                )
            )
        lines.append(
            format_table(
                ("job", "prio", "state", "resumed", "iters", "handlers",
                 "preempt", "best"),
                [
                    (
                        job_id,
                        entry["priority"],
                        entry["state"],
                        "yes" if entry["resumed"] else "no",
                        entry["iterations"],
                        entry["handlers_scored"],
                        entry["preemptions"],
                        "-"
                        if entry["best_distance"] is None
                        else f"{entry['best_distance']:.3f}",
                    )
                    for job_id, entry in sorted(fleet["jobs"].items())
                ],
                title="fleet jobs",
            )
        )
    triaged = [e for e in events if isinstance(e, TraceTriaged)]
    repairs = [e for e in events if isinstance(e, TraceRepairApplied)]
    if triaged:
        clean = sum(1 for e in triaged if e.action == "clean")
        repaired = sum(1 for e in triaged if e.action == "repaired")
        rejected = sum(1 for e in triaged if e.action == "rejected")
        parts = [f"{clean} clean"]
        if repaired:
            parts.append(f"{repaired} repaired")
        if rejected:
            parts.append(f"{rejected} rejected")
        lines.append(
            f"triage: {len(triaged)} trace(s) — {', '.join(parts)}, "
            f"{sum(e.touched for e in repairs)} record(s) touched"
        )
        problems = [e for e in triaged if e.action != "clean"]
        if problems:
            lines.append(
                format_table(
                    ("trace", "action", "quality", "defects"),
                    [
                        (
                            e.trace,
                            e.action,
                            f"{e.quality:.2f}",
                            ", ".join(
                                f"{code} x{count}"
                                for code, count in sorted(e.defects.items())
                            ),
                        )
                        for e in problems
                    ],
                    title="triaged traces",
                )
            )
    degraded_inputs = [e for e in events if isinstance(e, DegradedInputs)]
    if degraded_inputs:
        final_quorum = degraded_inputs[-1]
        lines.append(
            f"quorum: {final_quorum.usable}/{final_quorum.total_segments} "
            f"segment(s) usable, {final_quorum.excluded} excluded, "
            f"{final_quorum.backfilled} backfilled to hold the "
            f"{final_quorum.min_quorum}-segment quorum"
        )
    if iterations:
        rows = [
            (
                record.index,
                record.samples_per_bucket,
                record.segment_count,
                record.bucket_count,
                record.kept,
                f"{record.best_distance:.3f}",
                record.handlers_scored,
            )
            for record in iterations
        ]
        lines.append(
            format_table(
                ("iter", "N/bucket", "segments", "buckets", "kept",
                 "best", "handlers"),
                rows,
                title="run summary",
            )
        )
    pools = [e for e in events if isinstance(e, PoolSpawned)]
    primes = [e for e in events if isinstance(e, SegmentsPrimed)]
    if pools:
        lines.append(
            f"pools:  {len(pools)} spawned "
            f"({pools[0].workers} workers), "
            f"{len(primes)} segment prime(s)"
        )
    crashes = [e for e in events if isinstance(e, WorkerCrashed)]
    rebuilds = [e for e in events if isinstance(e, PoolRebuilt)]
    degraded = [e for e in events if isinstance(e, DegradedToSerial)]
    quarantines = [e for e in events if isinstance(e, SketchQuarantined)]
    if crashes or rebuilds or degraded or quarantines:
        parts = [
            f"{len(crashes)} worker crash(es)",
            f"{len(rebuilds)} pool rebuild(s)",
            f"{len(quarantines)} sketch(es) quarantined",
        ]
        if degraded:
            parts.append(f"degraded to serial ({degraded[-1].reason})")
        lines.append(f"faults: {', '.join(parts)}")
    if quarantines:
        lines.append(
            format_table(
                ("sketch", "reason", "detail"),
                [(q.sketch, q.reason, q.detail) for q in quarantines],
                title="quarantined sketches",
            )
        )
    caches = [e for e in events if isinstance(e, CacheStats)]
    if caches:
        final = caches[-1]
        lines.append(
            f"cache:  {final.hits} hits / {final.lookups} lookups "
            f"({final.hit_rate:.0%}), {final.entries} entries"
        )
    scorings = [e for e in events if isinstance(e, ScoringStats)]
    if scorings:
        final_scoring = scorings[-1]
        lines.append(
            f"prunes: {final_scoring.lb_pruned} lb_pruned, "
            f"{final_scoring.dp_abandoned} dp_abandoned, "
            f"{final_scoring.candidates_pruned} candidates dropped over "
            f"{final_scoring.batched_waves} batched_waves"
        )
        if final_scoring.fused_waves:
            lines.append(
                f"waves:  {final_scoring.fused_waves} fused wave(s) carrying "
                f"{final_scoring.fused_tasks} task(s), "
                f"peak {final_scoring.peak_in_flight} in flight, "
                f"{final_scoring.mean_occupancy:.0%} mean occupancy, "
                f"{final_scoring.warm_start_pruned} warm-start prune(s)"
            )
        if (
            final_scoring.batched_dtw_sweeps
            or final_scoring.envelope_precompute_ms
        ):
            lines.append(
                f"dtw:    {final_scoring.batched_dtw_sweeps} batched "
                f"sweep(s), envelopes precomputed in "
                f"{final_scoring.envelope_precompute_ms:.1f}ms"
            )
        if final_scoring.shm_bytes:
            lines.append(
                f"plane:  {_format_bytes(final_scoring.shm_bytes)} "
                f"shared-memory segment plane, "
                f"{_format_bytes(final_scoring.broadcast_bytes_saved)} "
                f"of pickled broadcast avoided"
            )
    finals = [e for e in events if isinstance(e, RunFinished)]
    if finals and finals[-1].phase_seconds:
        split = ", ".join(
            f"{phase} {seconds:.2f}s"
            for phase, seconds in finals[-1].phase_seconds.items()
        )
        lines.append(f"phases: {split}")
    return "\n".join(lines) if lines else "(no run telemetry collected)"
