"""Plain-text rendering of tables and series for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in a
terminal (and in ``bench_output.txt``).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "sparkline", "format_series"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in cells))
        if cells
        else len(headers[column])
        for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """A one-line unicode sparkline of *values* (resampled to *width*)."""
    if not len(values):
        return ""
    data = list(values)
    if len(data) > width:
        step = len(data) / width
        data = [data[int(index * step)] for index in range(width)]
    lo = min(data)
    hi = max(data)
    span = hi - lo or 1.0
    return "".join(
        _SPARK_CHARS[int((value - lo) / span * (len(_SPARK_CHARS) - 1))]
        for value in data
    )


def format_series(
    label: str, values: Sequence[float], *, width: int = 60
) -> str:
    """A labelled sparkline with min/max annotations."""
    if not len(values):
        return f"{label}: (empty)"
    return (
        f"{label:24s} {sparkline(values, width=width)} "
        f"[{min(values):.0f}..{max(values):.0f}]"
    )
