"""Ablations of the design choices DESIGN.md calls out.

Not a paper table — these isolate the knobs §3.2/§4.3/§4.4 argue for:

* **metric**: searching under DTW vs Euclidean (the paper picks DTW);
* **segment selection**: diversity-seeking vs uniform random (§3.2);
* **bucketed refinement vs flat sampling**: the same scoring budget
  spent through Algorithm 1 vs on one undifferentiated sample stream.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import BENCH_SYNTHESIS
from repro.dsl import RENO_DSL, with_budget
from repro.dsl.parser import parse
from repro.reporting import format_table
from repro.synth.enumerator import enumerate_sketches
from repro.synth.refinement import SynthesisConfig, synthesize
from repro.synth.scoring import Scorer
from repro.trace.selection import select_diverse_segments

DSL = with_budget(RENO_DSL, max_depth=3, max_nodes=5)


def _truth_scorer(metric: str = "dtw") -> Scorer:
    return Scorer(metric_name=metric, series_budget=96)


def test_ablation_search_metric(benchmark, store, report):
    """Search under each metric, then judge both winners under DTW on a
    held-out segment set (the search metric is the treatment)."""
    segments = store.segments("reno", limit=8)
    train, held_out = segments[:5], segments[5:] or segments[:2]

    winners = {}
    for metric in ("dtw", "euclidean"):
        config = SynthesisConfig(
            metric=metric,
            initial_samples=8,
            initial_keep=4,
            completion_cap=12,
            max_iterations=2,
            exhaustive_cap=150,
            series_budget=96,
        )
        result = synthesize(train, DSL, config)
        winners[metric] = result

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    judge = _truth_scorer("dtw")
    rows = []
    for metric, result in winners.items():
        held = judge.score_handler(result.best.handler, held_out)
        rows.append([metric, result.expression, f"{held:.2f}"])
    report()
    report(
        format_table(
            ["search metric", "winning handler", "held-out DTW"],
            rows,
            title="Ablation: search metric (judged under DTW)",
        )
    )
    # Both searches must produce usable handlers; DTW's winner must not
    # be badly worse than Euclidean's on held-out data.
    dtw_held = judge.score_handler(winners["dtw"].best.handler, held_out)
    euclid_held = judge.score_handler(
        winners["euclidean"].best.handler, held_out
    )
    assert dtw_held <= euclid_held * 1.5


def test_ablation_segment_selection(benchmark, store, report):
    """Diverse selection should cover at least the spread of conditions
    uniform random does (measured as pairwise shape spread)."""
    from repro.trace.selection import segment_shape, shape_distance

    segments = store.segments("reno", limit=50)
    if len(segments) < 8:
        pytest.skip("not enough segments for a selection ablation")

    def spread(picked):
        shapes = [segment_shape(segment) for segment in picked]
        return max(
            shape_distance(a, b) for a in shapes for b in shapes
        )

    diverse = benchmark.pedantic(
        lambda: select_diverse_segments(segments, 6, rng=random.Random(0)),
        rounds=1,
        iterations=1,
    )
    uniform_spreads = []
    for seed in range(5):
        rng = random.Random(seed)
        uniform_spreads.append(spread(rng.sample(segments, 6)))
    diverse_spread = spread(diverse)
    mean_uniform = sum(uniform_spreads) / len(uniform_spreads)
    report()
    report(
        "Ablation: segment selection spread — "
        f"diverse {diverse_spread:.3f} vs uniform mean {mean_uniform:.3f}"
    )
    assert diverse_spread >= 0.8 * mean_uniform


def test_ablation_bucketed_vs_flat(benchmark, store, report):
    """Algorithm 1 vs a flat sample of the same number of sketches."""
    segments = store.segments("reno", limit=4)
    result = synthesize(segments, DSL, BENCH_SYNTHESIS)

    flat_budget = result.total_sketches_drawn
    scorer = Scorer(
        series_budget=BENCH_SYNTHESIS.series_budget,
        completion_cap=BENCH_SYNTHESIS.completion_cap,
    )

    def flat_search():
        best = None
        for index, sketch in enumerate(enumerate_sketches(DSL)):
            if index >= flat_budget:
                break
            scored = scorer.score_sketch(sketch, segments)
            if best is None or scored.distance < best.distance:
                best = scored
        return best

    flat_best = benchmark.pedantic(flat_search, rounds=1, iterations=1)
    report()
    report(
        "Ablation: bucketed refinement vs flat enumeration "
        f"({flat_budget} sketches each) — refinement {result.distance:.2f}, "
        f"flat {flat_best.distance:.2f}"
    )
    # With equal sketch budgets the bucketed loop must be competitive:
    # its prioritization cannot lose badly to a blind prefix scan.
    assert result.distance <= flat_best.distance * 1.5


def test_ablation_noise_tolerance(benchmark, report):
    """The optimization formulation's reason to exist (§2.2): the true
    handler keeps winning as measurement noise grows, long after exact
    matching has become impossible."""
    from repro.trace.collect import CollectionConfig, collect_segments
    from repro.trace.noise import NoiseModel
    from benchmarks.conftest import BENCH_ENVIRONMENTS

    truth = parse("cwnd + 0.7 * reno_inc")
    rival = parse("0.8 * ack_rate * min_rtt")
    scorer = _truth_scorer()

    levels = (0.0, 0.05, 0.1, 0.2)
    rows = []
    margins = []
    for level in levels:
        config = CollectionConfig(
            duration=12.0,
            environments=BENCH_ENVIRONMENTS[:2],
            noise=NoiseModel(
                jitter_std=level / 20.0,
                dropout=level,
                cwnd_error=level / 2.0,
                seed=31,
            ),
            max_acks_per_trace=8000,
        )
        segments = collect_segments("reno", config, max_segments=4)
        truth_score = scorer.score_handler(truth, segments)
        rival_score = scorer.score_handler(rival, segments)
        margins.append(rival_score / truth_score)
        rows.append(
            [f"{level:.0%}", f"{truth_score:.2f}", f"{rival_score:.2f}"]
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report()
    report(
        format_table(
            ["noise level", "true handler DTW", "rival handler DTW"],
            rows,
            title="Ablation: distance formulation under measurement noise",
        )
    )
    # The true handler wins at every noise level.
    assert all(margin > 1.0 for margin in margins)
