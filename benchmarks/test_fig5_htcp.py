"""Figure 5 — HTCP traces: a plain Reno-variant scores 'low enough'.

The paper's surprise (§5.3): although H-TCP's window growth has an
inflection (its additive gain grows with loss age), the simple handler
``cwnd + reno_inc`` achieves a distance so close to the delay-aware
fine-tuned handler that the search never explores deeper.  We reproduce
the comparison: on HTCP traces, the Reno-variant handler's distance must
be within a small factor of the fine-tuned HTCP handler's — and far
below a flat baseline's.
"""

from __future__ import annotations

import pytest

from repro.dsl.parser import parse
from repro.handlers import FINETUNED_TEXT, SYNTHESIZED_TEXT
from repro.reporting import format_series, format_table
from repro.synth.replay import replay_on_segment
from repro.synth.scoring import Scorer


@pytest.fixture(scope="module")
def distances(store):
    segments = store.segments("htcp")
    scorer = Scorer(series_budget=96)
    return {
        "reno-variant (synthesized)": scorer.score_handler(
            parse(SYNTHESIZED_TEXT["htcp"]), segments
        ),
        "fine-tuned HTCP": scorer.score_handler(
            parse(FINETUNED_TEXT["htcp"]), segments
        ),
        "flat baseline": scorer.score_handler(parse("2 * mss"), segments),
    }, segments


def test_fig5_htcp_reno_variant(benchmark, distances, store, report):
    scores, segments = distances
    scorer = Scorer(series_budget=96)
    benchmark.pedantic(
        lambda: scorer.score_handler(
            parse(SYNTHESIZED_TEXT["htcp"]), segments[:2]
        ),
        rounds=3,
        iterations=1,
    )

    report()
    report(
        format_table(
            ["handler", "DTW distance on HTCP traces"],
            [[name, f"{value:.2f}"] for name, value in scores.items()],
            title="Figure 5: Reno-variant vs fine-tuned handler on HTCP traces",
        )
    )
    segment = segments[0]
    synth, observed = replay_on_segment(
        parse(SYNTHESIZED_TEXT["htcp"]), segment
    )
    report(format_series("observed HTCP cwnd", list(observed)))
    report(format_series("reno-variant replay", list(synth)))

    reno_variant = scores["reno-variant (synthesized)"]
    finetuned = scores["fine-tuned HTCP"]
    flat = scores["flat baseline"]

    # Paper shape: 56.24 vs 54.53 — within ~10% of each other.  We allow
    # a 2x factor at this scale; the point is "low enough that the search
    # stops", i.e. far below the baseline and comparable to fine-tuned.
    assert reno_variant < flat * 0.6
    assert reno_variant < 2.0 * finetuned
