"""CI gate for the batched-scoring speedup.

Compares the batched/scalar throughput *ratio* from a fresh
``BENCH_scoring.json`` (emitted by
``test_perf_kernels.py::test_perf_scoring_throughput``) against the
pinned ``BASELINE_scoring.json``.  Ratios are machine-portable where
absolute candidate rates are not: both paths run on the same runner in
the same process, so a shared slowdown cancels out and only a relative
regression of the batched path moves the number.

Fails (exit 1) when the fresh speedup is less than half the pinned
baseline — a >2x slowdown of the fast path relative to the reference.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).parent


def main() -> int:
    fresh_path = HERE / "BENCH_scoring.json"
    baseline_path = HERE / "BASELINE_scoring.json"
    if not fresh_path.exists():
        print(
            "check_scoring_regression: BENCH_scoring.json missing — run "
            "test_perf_kernels.py::test_perf_scoring_throughput first",
            file=sys.stderr,
        )
        return 1

    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    speedup = float(fresh["speedup"])
    pinned = float(baseline["speedup"])
    floor = pinned / 2.0

    print(
        f"batched-scoring speedup: fresh {speedup:.1f}x vs pinned "
        f"{pinned:.1f}x (floor {floor:.1f}x)"
    )
    if speedup < floor:
        print(
            f"REGRESSION: fresh speedup {speedup:.1f}x is below half the "
            f"pinned baseline ({pinned:.1f}x); the batched path slowed "
            "down by more than 2x relative to the scalar reference",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
