"""Benchmark harness: one module per paper table/figure (see DESIGN.md).

Run with ``pytest benchmarks/ --benchmark-only``.  Each module prints the
reproduced rows/series (via the ``report`` fixture, which bypasses
pytest's capture) and asserts the qualitative shape of the paper's
result; ``EXPERIMENTS.md`` records paper-vs-measured for every entry.
"""
