#!/usr/bin/env python
"""Chaos smoke: kill a subset of a three-server fleet, lose no work.

CI's fast answer to "does the claim-loop fleet actually survive dead
servers?":

1. ``repro submit`` queues a two-job fleet into a fresh spool (traces
   collected from the simulator, no fixture files);
2. a **sequential reference** serve completes a twin spool start to
   finish on one server — its result snapshots and checkpoint files are
   the ground truth;
3. three ``repro serve`` daemons share the chaos spool.  The first
   (which claims every job before the peers boot) and the second carry
   ``--exit-after-slices`` fault plans, so they die by ``os._exit(70)``
   mid-run — no cleanup, no lease release, exactly like ``kill -9``.
   The third runs no fault plan and must carry the fleet home;
4. the checks: every job ends ``done`` with at least one takeover
   charged, the served answers match the sequential reference exactly,
   and each job's checkpoint file is **byte-identical** to the
   reference run's — crash, heartbeat expiry, jittered takeover, and
   resume may not move the refinement stream by a bit.

Exit code 0 when every check passes; 1 with a per-case report
otherwise.  Runs in a couple of minutes — this is a smoke test, not
the full ``tests/test_fleet.py`` harness.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.service import JobLedger, fleet_status, serve  # noqa: E402

JOB_IDS = ("chaos-one", "chaos-two")
DURATION = 8.0
BANDWIDTH = 10.0
RTT = 50.0

SUBMIT_FLAGS = [
    "--cca", "reno",
    "--duration", str(DURATION),
    "--bandwidth", str(BANDWIDTH),
    "--rtt", str(RTT),
    "--dsl", "reno",
    "--max-depth", "3",
    "--max-nodes", "4",
    "--samples", "4",
    "--keep", "3",
    "--iterations", "2",
]

SERVE_FLAGS = [
    "--quantum", "3",
    "--lease-ttl", "1",
    "--claim-interval", "0.2",
    "--retry-backoff", "0.5",
]


def submit_fleet(spool: str) -> list[str]:
    failures: list[str] = []
    for job_id in JOB_IDS:
        code = cli_main(
            ["submit", "--spool", spool, "--job-id", job_id, *SUBMIT_FLAGS]
        )
        if code != 0:
            failures.append(f"submit {job_id}: exit {code}")
    return failures


def spawn_server(spool: str, server_id: str, *extra: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH")])
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--spool", spool, "--server-id", server_id,
            *SERVE_FLAGS, *extra,
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def run_chaos_fleet(spool: str) -> tuple[int, list[str]]:
    first = spawn_server(spool, "s1", "--exit-after-slices", "3")
    time.sleep(0.5)  # s1 claims every job before the peers boot
    second = spawn_server(spool, "s2", "--exit-after-slices", "3")
    third = spawn_server(spool, "s3")
    failures: list[str] = []
    codes = {}
    for name, proc in (("s1", first), ("s2", second), ("s3", third)):
        out, err = proc.communicate(timeout=300)
        codes[name] = proc.returncode
        del out
        if name == "s1" and proc.returncode != 70:
            failures.append(
                f"s1: exit {proc.returncode}, expected the injected kill "
                f"(70) (stderr: {err.strip()[:200]})"
            )
        if name == "s2" and proc.returncode not in (0, 70):
            failures.append(
                f"s2: exit {proc.returncode} "
                f"(stderr: {err.strip()[:200]})"
            )
        if name == "s3" and proc.returncode != 0:
            failures.append(
                f"s3 (the survivor): exit {proc.returncode} "
                f"(stderr: {err.strip()[:200]})"
            )
    print(f"chaos fleet exits: {json.dumps(codes)}")
    killed = sum(1 for code in codes.values() if code == 70)
    return killed, failures


def check_recovery(reference: str, chaos: str, ref_snaps: dict) -> list[str]:
    failures: list[str] = []
    ledger = JobLedger(os.path.join(chaos, "state"))
    status = fleet_status(chaos)
    for job_id in JOB_IDS:
        record = ledger.read(job_id)
        if record.state != "done":
            failures.append(
                f"{job_id}: ledger state {record.state!r}, expected done "
                f"({record.last_failure or 'no failure recorded'})"
            )
            continue
        if record.crashes < 1:
            failures.append(
                f"{job_id}: no takeover charged — both jobs were in "
                "flight on s1 when it died"
            )
        snap = status["jobs"][job_id]
        ref = ref_snaps[job_id]
        if snap["best_expression"] != ref["best_expression"]:
            failures.append(
                f"{job_id}: expression diverged from the sequential "
                f"reference ({snap['best_expression']!r} vs "
                f"{ref['best_expression']!r})"
            )
        if abs(snap["best_distance"] - ref["best_distance"]) > 1e-9:
            failures.append(
                f"{job_id}: distance diverged from the sequential "
                f"reference ({snap['best_distance']!r} vs "
                f"{ref['best_distance']!r})"
            )
        ref_ckpt = os.path.join(reference, "checkpoints", f"{job_id}.jsonl")
        chaos_ckpt = os.path.join(chaos, "checkpoints", f"{job_id}.jsonl")
        with open(ref_ckpt, "rb") as handle:
            ref_bytes = handle.read()
        with open(chaos_ckpt, "rb") as handle:
            chaos_bytes = handle.read()
        if chaos_bytes != ref_bytes:
            failures.append(
                f"{job_id}: checkpoint stream diverged "
                f"({len(chaos_bytes)} vs {len(ref_bytes)} bytes)"
            )
    return failures


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        reference = os.path.join(tmp, "reference")
        chaos = os.path.join(tmp, "chaos")
        failures = submit_fleet(reference) + submit_fleet(chaos)
        ref_snaps: dict = {}
        if not failures:
            ref_snaps = serve(reference, quantum_tasks=3)
            for job_id in JOB_IDS:
                state = ref_snaps.get(job_id, {}).get("state")
                if state != "completed":
                    failures.append(
                        f"reference serve: {job_id} ended {state!r}"
                    )
        killed = 0
        if not failures:
            killed, chaos_failures = run_chaos_fleet(chaos)
            failures += chaos_failures
        if not failures:
            failures += check_recovery(reference, chaos, ref_snaps)
    if failures:
        print(f"CHAOS SMOKE: {len(failures)} failure(s)")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"CHAOS SMOKE OK: {killed} of 3 fleet servers killed mid-run; "
        "survivors took every job over within one lease TTL and "
        "finished the fleet with results and checkpoints byte-identical "
        "to the sequential reference"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
