"""Fleet-throughput benchmark for synthesis-as-a-service.

Runs the same N reverse-engineering jobs three ways at ``workers=4`` —
**sequential** (each job drives its own private pool through the
blocking ``synthesize``, the pre-service workflow), **fleet** (all jobs
multiplexed through ONE :class:`~repro.runtime.scheduler.Scheduler` and
its shared persistent pool at the service's default quantum), and
**fair fleet** (same scheduler with a quantum below the wave size, so
every wave is sliced and jobs preempt each other round-robin) — asserts
the per-job results are bit-identical across all modes, and emits
``BENCH_fleet.json`` at the repo root with jobs/minute and
pool-occupancy telemetry.  ``check_fleet_regression.py`` gates CI on
the headline ``throughput_ratio`` (sequential vs default-quantum fleet)
against the pinned ``benchmarks/BASELINE_fleet.json``.

The ratio is what travels across runners: both modes score the same
waves on the same machine in the same process, so a shared slowdown
cancels and only a relative regression of the scheduler path (slicing
overhead, lost pool reuse, priming churn from scorer adoption) moves
the number.  The fair-fleet numbers are telemetry, not a gate: they
record the fairness tax (extra slice barriers and per-switch scorer
adoption) that the quantum knob trades against job latency.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cca import make_cca  # noqa: E402
from repro.dsl import RENO_DSL, with_budget  # noqa: E402
from repro.netsim import Environment, simulate  # noqa: E402
from repro.runtime.jobs import Job  # noqa: E402
from repro.runtime.scheduler import (  # noqa: E402
    DEFAULT_QUANTUM_TASKS,
    Scheduler,
)
from repro.synth.refinement import (  # noqa: E402
    SynthesisConfig,
    synthesize,
    synthesize_core,
)
from repro.trace import segment_trace  # noqa: E402

WORKERS = 4
REPS = 2
N_JOBS = 4

#: Below the ~41-task refinement wave each job emits (bucket groups of
#: roughly 4..12 sketches), so in fair-fleet mode every wave is cut into
#: multiple slices and jobs genuinely interleave with preemption.
FAIR_QUANTUM = 16

DSL = with_budget(RENO_DSL, max_depth=3, max_nodes=4)

#: Real scoring per job (no cross-iteration cache), sized so one job is
#: seconds, not minutes — the fleet effect under test is pool reuse and
#: wave interleaving, not raw kernel speed.
CONFIG = SynthesisConfig(
    initial_samples=12,
    initial_keep=4,
    completion_cap=8,
    max_iterations=1,
    exhaustive_cap=120,
    workers=WORKERS,
    cache_scores=False,
    series_budget=512,
    max_replay_rows=1536,
)


def _job_segments():
    trace = simulate(
        make_cca("reno"),
        Environment(bandwidth_mbps=10.0, rtt_ms=50.0),
        duration=20.0,
    )
    segments = segment_trace(trace)
    # Distinct (overlapping) working sets: distinct searches, shared pool.
    return [segments[index : index + 5] for index in range(N_JOBS)]


def _essentials(result):
    return (
        result.best.handler,
        result.best.distance,
        tuple(result.iterations),
        result.total_handlers_scored,
    )


def _measure_sequential(job_segments) -> dict:
    started = time.perf_counter()
    results = [
        synthesize(segments, DSL, CONFIG) for segments in job_segments
    ]
    seconds = time.perf_counter() - started
    return {
        "results": results,
        "seconds": round(seconds, 3),
        "jobs_per_minute": round(N_JOBS * 60.0 / max(seconds, 1e-9), 2),
    }


def _measure_fleet(job_segments, quantum: int) -> dict:
    scheduler = Scheduler(workers=WORKERS, quantum_tasks=quantum)
    for index, segments in enumerate(job_segments):
        scheduler.submit(
            Job(
                job_id=f"job{index}",
                source=(
                    lambda segments=segments: synthesize_core(
                        segments, DSL, CONFIG
                    )
                ),
            )
        )
    started = time.perf_counter()
    completed = scheduler.run()
    seconds = time.perf_counter() - started
    executor = scheduler._executor
    _, scoring = executor.stats() if executor is not None else (None, None)
    scheduler.close()
    return {
        "results": [
            completed[f"job{index}"].result for index in range(N_JOBS)
        ],
        "seconds": round(seconds, 3),
        "jobs_per_minute": round(N_JOBS * 60.0 / max(seconds, 1e-9), 2),
        "preemptions": sum(
            job.preemptions for job in completed.values()
        ),
        "slices": scheduler.slices_dispatched,
        "peak_in_flight": scoring.peak_in_flight if scoring else 0,
        "mean_occupancy": scoring.mean_occupancy if scoring else 0.0,
    }


def _best(runs: list[dict]) -> dict:
    return min(runs, key=lambda run: run["seconds"])


def _strip(run: dict) -> dict:
    return {key: value for key, value in run.items() if key != "results"}


def main() -> int:
    job_segments = _job_segments()
    print(
        f"fleet_bench: jobs={N_JOBS}, workers={WORKERS}, "
        f"quantum={DEFAULT_QUANTUM_TASKS} (fair: {FAIR_QUANTUM}), "
        f"reps={REPS} (min wins)"
    )
    sequential_runs: list[dict] = []
    fleet_runs: list[dict] = []
    fair_runs: list[dict] = []
    for rep in range(REPS):
        sequential_runs.append(_measure_sequential(job_segments))
        fleet_runs.append(
            _measure_fleet(job_segments, DEFAULT_QUANTUM_TASKS)
        )
        fair_runs.append(_measure_fleet(job_segments, FAIR_QUANTUM))
        print(
            f"  rep {rep}: sequential "
            f"{sequential_runs[-1]['seconds']:.2f}s, fleet "
            f"{fleet_runs[-1]['seconds']:.2f}s, fair fleet "
            f"{fair_runs[-1]['seconds']:.2f}s"
        )

    reference = [
        _essentials(result) for result in sequential_runs[0]["results"]
    ]
    for run in sequential_runs[1:] + fleet_runs + fair_runs:
        if [_essentials(result) for result in run["results"]] != reference:
            print(
                "fleet_bench: fleet and sequential runs DISAGREE — "
                "scheduler multiplexing is no longer bit-identical",
                file=sys.stderr,
            )
            return 1
    if any(run["preemptions"] == 0 for run in fair_runs):
        print(
            "fleet_bench: fair-fleet run never preempted — quantum "
            f"{FAIR_QUANTUM} no longer slices the refinement wave, so "
            "the interleaving path went unmeasured",
            file=sys.stderr,
        )
        return 1

    sequential = _best(sequential_runs)
    fleet = _best(fleet_runs)
    fair = _best(fair_runs)
    ratio = sequential["seconds"] / max(fleet["seconds"], 1e-9)
    fairness_tax = fair["seconds"] / max(fleet["seconds"], 1e-9)
    payload = {
        "benchmark": "fleet_service",
        "jobs": N_JOBS,
        "workers": WORKERS,
        "quantum_tasks": DEFAULT_QUANTUM_TASKS,
        "fair_quantum_tasks": FAIR_QUANTUM,
        "reps": REPS,
        "throughput_ratio": round(ratio, 2),
        "fairness_tax": round(fairness_tax, 2),
        "fleet": _strip(fleet),
        "fair_fleet": _strip(fair),
        "sequential": _strip(sequential),
        "note": (
            "throughput_ratio: wall-clock of N sequential synthesize() "
            "runs (one private pool each) over the same N jobs "
            "multiplexed through one Scheduler with a shared persistent "
            "pool at the default quantum; min of REPS runs per mode, "
            "results asserted bit-identical. fairness_tax: fair-fleet "
            "(quantum below the wave size, preemptive round-robin) over "
            "default-quantum fleet. check_fleet_regression.py gates CI "
            "on throughput_ratio against benchmarks/BASELINE_fleet.json."
        ),
    }
    out = REPO_ROOT / "BENCH_fleet.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"fleet_bench: sequential {sequential['seconds']:.2f}s "
        f"({sequential['jobs_per_minute']:.1f} jobs/min) vs fleet "
        f"{fleet['seconds']:.2f}s ({fleet['jobs_per_minute']:.1f} "
        f"jobs/min) -> {ratio:.2f}x, "
        f"{fleet['mean_occupancy']:.0%} mean occupancy"
    )
    print(
        f"fleet_bench: fair fleet {fair['seconds']:.2f}s "
        f"({fair['jobs_per_minute']:.1f} jobs/min), "
        f"{fair['preemptions']} preemptions -> "
        f"fairness tax {fairness_tax:.2f}x"
    )
    print(f"fleet_bench: wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
