"""Figure 4 — BBR: synthesized vs fine-tuned handler, trace by trace.

The paper's synthesized BBR handler pulses via ``cwnd % 2.7 == 0`` while
the fine-tuned one pulses via ``rtts_since_loss % 8 == 0``.  Figure 4
shows that *neither dominates*: on some traces the fine-tuned handler's
aligned pulses score lower (4a), on others the synthesized handler wins
(4b) — a limitation of DTW's shift-tolerance.  Here we replay both on
every collected BBR segment and report the per-segment winner.
"""

from __future__ import annotations

import pytest

from repro.dsl.parser import parse
from repro.handlers import FINETUNED_TEXT, SYNTHESIZED_TEXT
from repro.reporting import format_series, format_table
from repro.synth.replay import replay_on_segment
from repro.synth.scoring import Scorer


@pytest.fixture(scope="module")
def per_segment(store):
    segments = store.segments("bbr", limit=8)
    scorer = Scorer(series_budget=96)
    synthesized = parse(SYNTHESIZED_TEXT["bbr"])
    finetuned = parse(FINETUNED_TEXT["bbr"])
    flat = parse("2 * mss")
    rows = []
    for segment in segments:
        rows.append(
            (
                segment,
                scorer.score_handler(synthesized, [segment]),
                scorer.score_handler(finetuned, [segment]),
                scorer.score_handler(flat, [segment]),
            )
        )
    return rows


def test_fig4_bbr_pulse_handlers(benchmark, per_segment, store, report):
    scorer = Scorer(series_budget=96)
    segments = store.segments("bbr", limit=2)
    benchmark.pedantic(
        lambda: scorer.score_handler(
            parse(SYNTHESIZED_TEXT["bbr"]), segments
        ),
        rounds=3,
        iterations=1,
    )

    display = []
    for segment, synth, fine, flat in per_segment:
        winner = "synthesized" if synth < fine else "fine-tuned"
        display.append(
            [segment.label, f"{synth:.2f}", f"{fine:.2f}", f"{flat:.2f}", winner]
        )
    report()
    report(
        format_table(
            ["BBR trace segment", "synthesized DTW", "fine-tuned DTW", "flat DTW", "winner"],
            display,
            title="Figure 4: per-trace distances of the two BBR pulse handlers",
        )
    )

    # Visual counterpart of Figures 4a/4b: observed vs both replays on
    # the first segment.
    segment = per_segment[0][0]
    synth_series, observed = replay_on_segment(
        parse(SYNTHESIZED_TEXT["bbr"]), segment
    )
    fine_series, _ = replay_on_segment(parse(FINETUNED_TEXT["bbr"]), segment)
    report()
    report(format_series("observed BBR cwnd", list(observed)))
    report(format_series("synthesized replay", list(synth_series)))
    report(format_series("fine-tuned replay", list(fine_series)))

    # Shape check 1: both handlers beat the flat baseline on most
    # segments — they capture BBR's rate-anchored window.
    both_reasonable = sum(
        1 for _, synth, fine, flat in per_segment if synth < flat and fine < flat
    )
    assert both_reasonable >= 0.6 * len(per_segment)

    # Shape check 2 (the figure's message): the distances differ
    # per-trace, and neither handler wins by an order of magnitude
    # everywhere.
    ratios = [fine / synth for _, synth, fine, _ in per_segment]
    assert min(ratios) < 3.0 and max(ratios) > 1 / 3.0
