"""§6.1 — search-efficiency walkthrough for Reno.

The paper's census: the depth-3 Reno-DSL space holds ~2 billion raw
trees; enumeration constraints cut it to 1,617 sketches across 218
buckets and ~101,000 concrete handlers, and the refinement loop returns
``cwnd + .7 * reno_inc`` after scoring roughly a third of the viable
space.  This bench reproduces the same census on our Reno DSL and runs
the loop, reporting how much of the viable space was actually scored.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SYNTHESIS
from repro.dsl import RENO_DSL, with_budget
from repro.synth.buckets import bucket_key_for, coherent_op_sets
from repro.synth.enumerator import enumerate_sketches
from repro.synth.refinement import synthesize

DSL = with_budget(RENO_DSL, max_depth=3, max_nodes=7)


@pytest.fixture(scope="module")
def census():
    sketches = list(enumerate_sketches(DSL))
    pool = len(DSL.constant_pool)
    handlers = sum(sketch.completion_count(pool) for sketch in sketches)
    buckets: dict[frozenset, int] = {}
    for sketch in sketches:
        key = bucket_key_for(sketch)
        buckets[key] = buckets.get(key, 0) + 1
    return sketches, handlers, buckets


def test_sec61_space_census(benchmark, census, report):
    sketches, handlers, buckets = census
    benchmark.pedantic(
        lambda: sum(1 for _ in enumerate_sketches(DSL)), rounds=1, iterations=1
    )

    report()
    report("Section 6.1: Reno-DSL search-space census (depth 3, 7 nodes)")
    report(f"  DSL components:            {DSL.component_count}")
    report(f"  viable sketches:           {len(sketches)}")
    report(f"  concrete handlers:         {handlers}")
    report(f"  non-empty buckets:         {len(buckets)}")
    report(f"  coherent bucket keys:      {len(coherent_op_sets(DSL))}")
    largest = max(buckets.values())
    report(f"  largest bucket (sketches): {largest}")

    # Paper shape: thousands of viable sketches (they report 1,617 at
    # depth 3), ~1e5 concrete handlers, buckets in the dozens-to-hundreds.
    assert 500 <= len(sketches) <= 200_000
    assert handlers >= 10 * len(sketches)
    assert 10 <= len(buckets) <= len(coherent_op_sets(DSL))


def test_sec61_search_explores_fraction(benchmark, census, store, report):
    sketches, handlers, _ = census
    segments = store.segments("reno")
    result = benchmark.pedantic(
        lambda: synthesize(segments, DSL, BENCH_SYNTHESIS),
        rounds=1,
        iterations=1,
    )
    sketch_fraction = result.total_sketches_drawn / len(sketches)
    handler_fraction = result.total_handlers_scored / handlers
    report()
    report(f"Refinement loop on Reno ({DSL.name}):")
    report(f"  returned handler:     {result.expression}")
    report(f"  distance:             {result.distance:.2f}")
    report(f"  initial buckets:      {result.initial_bucket_count}")
    report(f"  sketches generated:   {result.total_sketches_drawn} / {len(sketches)}"
            f" ({sketch_fraction:.1%} of the viable sketches)")
    report(f"  handlers scored:      {result.total_handlers_scored} / {handlers}"
            f" ({handler_fraction:.2%} of the concrete handlers)")

    # Paper shape ("exploring only about a third of the viable search
    # space"): generating sketches is cheap in our enumerator, so the
    # economic measure of exploration is how many *concrete handlers*
    # were simulated and scored — a small fraction of the full space.
    assert result.total_handlers_scored < handlers / 2
    assert "cwnd" in result.expression
    # Reno's structure: additive increase present.
    assert "+" in result.expression or "reno_inc" in result.expression
