"""Table 2 — synthesized vs fine-tuned handler distances, per CCA.

For every Table 2 row we replay the paper-reported *synthesized* handler
and the expert *fine-tuned* handler against freshly collected traces of
the ground-truth CCA and report the DTW distances side by side (the
paper's columns 2 and 4).  Absolute values differ from the paper's (our
traces come from the simulator substrate and distances are per-segment
means), but the shape must hold:

* both handlers track their own CCA far better than a degenerate
  flat-window baseline;
* for the Reno-family rows, both handlers land close to each other
  (the paper's synthesized and fine-tuned distances match on most rows).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SYNTHESIS
from repro.dsl.parser import parse
from repro.handlers import FINETUNED_TEXT, SYNTHESIZED_TEXT
from repro.reporting import format_table
from repro.synth.scoring import Scorer

#: Rows where replaying the reference expressions makes sense on our
#: traces.  (CDG/HighSpeed/BIC have no synthesized expression in Table 2.)
ROWS = tuple(SYNTHESIZED_TEXT)

_BASELINE = "2 * mss"  # degenerate flat-window handler


def _scorer() -> Scorer:
    return Scorer(
        completion_cap=BENCH_SYNTHESIS.completion_cap,
        series_budget=BENCH_SYNTHESIS.series_budget,
        max_replay_rows=BENCH_SYNTHESIS.max_replay_rows,
    )


@pytest.fixture(scope="module")
def table2(store):
    scorer = _scorer()
    rows = []
    for name in ROWS:
        segments = store.segments(name)
        if not segments:
            rows.append((name, None, None, None))
            continue
        synth = scorer.score_handler(parse(SYNTHESIZED_TEXT[name]), segments)
        fine = (
            scorer.score_handler(parse(FINETUNED_TEXT[name]), segments)
            if name in FINETUNED_TEXT
            else None
        )
        base = scorer.score_handler(parse(_BASELINE), segments)
        rows.append((name, synth, fine, base))
    return rows


def test_table2_handler_distances(benchmark, table2, store, report):
    segments = store.segments("reno")
    scorer = _scorer()
    benchmark.pedantic(
        lambda: scorer.score_handler(
            parse(SYNTHESIZED_TEXT["reno"]), segments
        ),
        rounds=3,
        iterations=1,
    )

    display = []
    for name, synth, fine, base in table2:
        display.append(
            [
                name,
                SYNTHESIZED_TEXT[name],
                f"{synth:.2f}" if synth is not None else "-",
                f"{fine:.2f}" if fine is not None else "-",
                f"{base:.2f}" if base is not None else "-",
            ]
        )
    report()
    report(
        format_table(
            ["CCA", "synthesized handler (paper)", "DTW", "fine-tuned DTW", "flat baseline DTW"],
            display,
            title="Table 2: handler distances on collected traces (per-segment mean DTW, segments units)",
        )
    )

    evaluated = [row for row in table2 if row[1] is not None]
    assert len(evaluated) >= 15

    # Shape check 1: reference handlers beat the degenerate baseline on
    # the wide majority of rows (students 4/5 ARE flat windows, so the
    # baseline legitimately ties there).
    wins = sum(1 for _, synth, _, base in evaluated if synth < base * 1.05)
    assert wins >= 0.7 * len(evaluated), f"only {wins}/{len(evaluated)} rows beat baseline"

    # Shape check 2: Reno-family synthesized ~ fine-tuned (paper: equal
    # expressions for reno/scalable/hybla/yeah/veno rows).
    for name in ("reno", "scalable", "veno", "yeah", "hybla"):
        row = next(r for r in table2 if r[0] == name)
        _, synth, fine, _ = row
        assert fine is not None
        assert synth == pytest.approx(fine, rel=0.25), name


def test_table2_handlers_track_own_cca(benchmark, store, report):
    """Cross-check: Reno's handler scores better on Reno traces than on
    Vegas traces once both are normalized by the flat baseline."""
    scorer = _scorer()
    reno_handler = parse(SYNTHESIZED_TEXT["reno"])

    def ratio(cca_name: str) -> float:
        segments = store.segments(cca_name)
        own = scorer.score_handler(reno_handler, segments)
        base = scorer.score_handler(parse(_BASELINE), segments)
        return own / base

    reno_ratio = benchmark.pedantic(
        lambda: ratio("reno"), rounds=1, iterations=1
    )
    vegas_ratio = ratio("vegas")
    report(
        f"\nReno handler relative distance: on reno traces {reno_ratio:.3f}, "
        f"on vegas traces {vegas_ratio:.3f}"
    )
    assert reno_ratio < vegas_ratio
