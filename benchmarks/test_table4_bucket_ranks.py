"""Table 4 — where the fine-tuned handler's bucket ranks during search.

For each CCA we run the first two refinement-loop iterations and record
the rank of the bucket containing the fine-tuned handler (its operator
set is the bucket discriminator).  The paper's shape:

* after iteration 1, the fine-tuned bucket ranks inside the top handful
  out of dozens-to-hundreds of buckets for almost every CCA — the loop
  correctly discards the vast majority of the space;
* the search never needs to visit most buckets at all.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SYNTHESIS
from repro.dsl import ast
from repro.dsl.families import family, with_budget
from repro.dsl.parser import parse
from repro.handlers import FINETUNED_TEXT, PAPER_FAMILY
from repro.reporting import format_table
from repro.synth.refinement import synthesize

#: CCAs benched: the Table 4 rows whose fine-tuned handlers we encode.
TARGETS = ("reno", "scalable", "westwood", "vegas", "veno", "hybla", "lp")

def _dsl_for(name: str):
    """The CCA's family DSL, budgeted so its fine-tuned handler fits.

    Table 4 measures where the fine-tuned handler's *bucket* ranks, so
    the search budget must at least admit that handler (the paper's
    fine-tuned handlers are written "with the same depth and within the
    same DSL" as the search).  Vegas-family handlers need more nodes
    than the Reno-family ones.
    """
    handler = parse(FINETUNED_TEXT[name])
    max_nodes = max(7, ast.node_count(handler))
    max_depth = max(4, ast.depth(handler))
    return with_budget(
        family(PAPER_FAMILY[name]), max_depth=max_depth, max_nodes=max_nodes
    )


@pytest.fixture(scope="module")
def ranks(store):
    rows = []
    for name in TARGETS:
        segments = store.segments(name)
        dsl = _dsl_for(name)
        result = synthesize(segments, dsl, BENCH_SYNTHESIS)
        fine_key = ast.operators_used(parse(FINETUNED_TEXT[name]))
        per_iteration = []
        for record in result.iterations[:2]:
            per_iteration.append(
                (record.rank_of(fine_key), record.bucket_count)
            )
        rows.append((name, fine_key, per_iteration, result))
    return rows


def test_table4_bucket_ranks(benchmark, ranks, store, report):
    benchmark.pedantic(
        lambda: synthesize(
            store.segments("reno"), _dsl_for("reno"), BENCH_SYNTHESIS
        ),
        rounds=1,
        iterations=1,
    )

    display = []
    for name, key, per_iteration, result in ranks:
        cells = [
            f"{rank}/{total}" if rank is not None else f"-/{total}"
            for rank, total in per_iteration
        ]
        while len(cells) < 2:
            cells.append("-")
        display.append(
            [name, "{" + ",".join(sorted(key)) + "}", cells[0], cells[1]]
        )
    report()
    report(
        format_table(
            ["CCA", "fine-tuned bucket", "pos. after iter 1", "pos. after iter 2"],
            display,
            title="Table 4: rank of the fine-tuned handler's bucket per iteration",
        )
    )

    # Shape check 1: iteration 1 sees many buckets (the partition is real).
    for name, _, per_iteration, _ in ranks:
        _, total = per_iteration[0]
        assert total >= 10, name

    # Shape check 2: for most CCAs the fine-tuned bucket is ranked in the
    # upper half after iteration 1 (the paper's ranks are 1-7 out of
    # 7-218) — i.e. the bucket score is informative, not random.
    informative = 0
    for name, _, per_iteration, _ in ranks:
        rank, total = per_iteration[0]
        if rank is not None and rank <= max(total // 2, 5):
            informative += 1
    assert informative >= 0.7 * len(ranks)


def test_search_discards_most_of_the_space(ranks, benchmark, report):
    """§6.2's headline: e.g. for BBR, 122 of 127 buckets were correctly
    discarded after one iteration.  Here: every run keeps at most the
    configured top-k (plus ties) of a much larger bucket set."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, _, per_iteration, result in ranks:
        first = result.iterations[0]
        assert len(first.kept) < first.bucket_count, name
        discarded = first.bucket_count - len(first.kept)
        report(
            f"{name}: discarded {discarded}/{first.bucket_count} buckets "
            f"after iteration 1"
        )
        assert discarded >= first.bucket_count // 2, name
