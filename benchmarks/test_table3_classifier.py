"""Table 3 — classifier outputs per CCA.

Gordon classifies the kernel CCAs; CCAnalyzer classifies the (UDP)
student CCAs.  Targets are probed with measurement noise, so this is not
an identity match against the reference library.  The paper's shape:

* Gordon labels most of its known CCAs correctly (it got 10/13 rows
  right, misreading Westwood, Hybla and Veno);
* CCAs outside Gordon's library (LP, NV) come back Unknown;
* every student CCA is Unknown to CCAnalyzer, with a closest-CCA hint.
"""

from __future__ import annotations

import pytest

from repro.cca.registry import STUDENT_NAMES
from repro.classify import (
    CCANALYZER_KNOWN_CCAS,
    GORDON_KNOWN_CCAS,
    CcaAnalyzer,
    GordonClassifier,
)
from repro.reporting import format_table

KERNEL_TARGETS = (
    "bbr",
    "reno",
    "westwood",
    "scalable",
    "lp",
    "hybla",
    "htcp",
    "illinois",
    "vegas",
    "veno",
    "nv",
    "yeah",
    "cubic",
)


def _noisy_probe(cca_name: str):
    """Probe the target with the classifier's own protocol plus noise.

    A classifier compares its probes against a reference library built
    under the same protocol (duration, probe environments, ack caps);
    only the measurement noise differs between reference and target.
    Re-using the synthesis trace store here would bake a protocol
    mismatch into every verdict.
    """
    from benchmarks.conftest import BENCH_NOISE
    from repro.classify.base import probe_config
    from repro.trace.collect import CollectionConfig, collect_traces

    base = probe_config()
    config = CollectionConfig(
        duration=base.duration,
        environments=base.environments,
        noise=BENCH_NOISE,
        max_acks_per_trace=base.max_acks_per_trace,
    )
    return collect_traces(cca_name, config)


@pytest.fixture(scope="module")
def verdicts():
    gordon = GordonClassifier()
    analyzer = CcaAnalyzer()
    rows = []
    for name in KERNEL_TARGETS:
        rows.append((name, "Gordon", gordon.classify(_noisy_probe(name))))
    for name in STUDENT_NAMES:
        rows.append(
            (name, "CCAnalyzer", analyzer.classify(_noisy_probe(name)))
        )
    return rows


def test_table3_classifier_outputs(benchmark, verdicts, report):
    gordon = GordonClassifier()
    probes = _noisy_probe("reno")
    benchmark.pedantic(
        lambda: gordon.classify(probes), rounds=3, iterations=1
    )

    display = [
        [
            name,
            tool,
            verdict.render(),
            "OK" if verdict.label == name else ("unknown" if verdict.is_unknown else "WRONG"),
        ]
        for name, tool, verdict in verdicts
    ]
    report()
    report(
        format_table(
            ["CCA", "classifier", "output", "vs truth"],
            display,
            title="Table 3: classifier outputs (noisy probes)",
        )
    )

    kernel = [(n, v) for n, tool, v in verdicts if tool == "Gordon"]
    in_library = [
        (name, verdict)
        for name, verdict in kernel
        if name in GORDON_KNOWN_CCAS
    ]
    correct = sum(1 for name, verdict in in_library if verdict.label == name)
    # Paper shape: most in-library CCAs classified correctly (Gordon was
    # right on 10 of its 13 kernel rows).
    assert correct >= 0.6 * len(in_library), f"{correct}/{len(in_library)}"

    # CCAs outside Gordon's library must never be claimed as themselves.
    for name, verdict in kernel:
        if name not in GORDON_KNOWN_CCAS:
            assert verdict.label != name

    # Students: all Unknown, each with a closest-CCA hint from the
    # analyzer's library (the paper reports CDG/Vegas/Scalable hints).
    students = [(n, v) for n, tool, v in verdicts if tool == "CCAnalyzer"]
    unknown = sum(1 for _, verdict in students if verdict.is_unknown)
    assert unknown >= len(students) - 1
    for _, verdict in students:
        assert verdict.closest in CCANALYZER_KNOWN_CCAS
