"""End-to-end wave-scheduling and zero-copy hot-path benchmarks.

Default mode runs the same multi-bucket synthesis at ``workers=4`` in
both scheduling modes — per-bucket scoring barriers (``fused_scheduling=
False``) and the fused pipelined dispatch — asserts the results are
bit-identical, and emits ``BENCH_e2e.json`` at the repo root with the
scoring-phase wall clock, handler throughput, and pool-occupancy
telemetry of both modes.  ``check_e2e_regression.py`` gates CI on the
speedup ratio against the pinned ``benchmarks/BASELINE_e2e.json``.

``--multicore`` measures the zero-copy scoring hot path instead: the
same ``workers=4`` fused synthesis with the shared-memory segment plane
and the batched anti-diagonal DTW kernel ON versus OFF
(``shm_plane=False, batch_dtw=False`` — pickled broadcasts and the
scalar kernel).  Every run writes a refinement checkpoint; the harness
asserts all runs' results are bit-identical AND all checkpoint files
are byte-identical before reporting, then emits ``BENCH_e2e_mp.json``
gated by ``check_e2e_regression.py --multicore`` against
``benchmarks/BASELINE_e2e_mp.json``.

The workload is the shape the refinement loop actually runs: the reno
grammar at a small budget fans out to ~5 live buckets of uneven sizes,
so a fused wave carries dozens of interleaved tasks and the per-bucket
incumbent bounds warm-start the scoring cascade across the whole
iteration.  Each mode runs ``REPS`` times and the *minimum* scoring
time is compared — the standard noise-robust estimator, since both
modes suffer the same interference on a shared runner.  The speedup is
a ratio of two runs on the same machine in the same process, portable
across runners the way absolute rates are not; its magnitude is still
hardware-dependent (single-core containers only see the warm-start
pruning win; multi-core runners add the barrier-elimination win on
top).
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cca import make_cca  # noqa: E402
from repro.dsl import RENO_DSL, with_budget  # noqa: E402
from repro.netsim import Environment, simulate  # noqa: E402
from repro.runtime import CollectorSink, RunContext  # noqa: E402
from repro.runtime.events import ScoringStats  # noqa: E402
from repro.synth.refinement import SynthesisConfig, synthesize  # noqa: E402
from repro.trace import segment_trace  # noqa: E402

WORKERS = 4
REPS = 3

DSL = with_budget(RENO_DSL, max_depth=3, max_nodes=4)

#: One big refinement iteration over every live bucket, scored for
#: real (no cross-iteration cache, generous replay budgets): the
#: scoring phase is the run, which is exactly what the fused scheduler
#: changes.
CONFIG = SynthesisConfig(
    initial_samples=24,
    initial_keep=4,
    completion_cap=8,
    max_iterations=1,
    exhaustive_cap=120,
    workers=WORKERS,
    cache_scores=False,
    series_budget=512,
    max_replay_rows=1536,
)

SCORING_PHASES = ("refinement", "exhaustive")


def _segments():
    trace = simulate(
        make_cca("reno"),
        Environment(bandwidth_mbps=10.0, rtt_ms=50.0),
        duration=20.0,
    )
    return segment_trace(trace)[:6]


def _essentials(result):
    return (
        result.best.handler,
        result.best.distance,
        tuple(result.iterations),
        result.total_handlers_scored,
    )


def _measure(segments, **overrides) -> dict:
    collector = CollectorSink()
    started = time.perf_counter()
    with RunContext([collector]) as ctx:
        result = synthesize(
            segments,
            DSL,
            replace(CONFIG, **overrides),
            context=ctx,
        )
        wall = time.perf_counter() - started
        scoring_seconds = sum(
            ctx.phase_seconds.get(phase, 0.0) for phase in SCORING_PHASES
        )
    stats = [e for e in collector.events if isinstance(e, ScoringStats)]
    final = stats[-1] if stats else ScoringStats(0, 0, 0, 0)
    return {
        "result": result,
        "wall_seconds": round(wall, 3),
        "scoring_seconds": round(scoring_seconds, 3),
        "handlers_scored": result.total_handlers_scored,
        "handlers_per_sec": round(
            result.total_handlers_scored / max(scoring_seconds, 1e-9), 1
        ),
        "fused_waves": final.fused_waves,
        "fused_tasks": final.fused_tasks,
        "peak_in_flight": final.peak_in_flight,
        "mean_occupancy": final.mean_occupancy,
        "warm_start_pruned": final.warm_start_pruned,
        "batched_dtw_sweeps": final.batched_dtw_sweeps,
        "envelope_precompute_ms": final.envelope_precompute_ms,
        "shm_bytes": final.shm_bytes,
        "broadcast_bytes_saved": final.broadcast_bytes_saved,
    }


def _best(runs: list[dict]) -> dict:
    return min(runs, key=lambda run: run["scoring_seconds"])


def _run_multicore() -> int:
    """Zero-copy hot path (plane + batched DTW) vs pickled scalar."""
    import tempfile

    segments = _segments()
    print(
        f"e2e_bench --multicore: workers={WORKERS}, "
        f"segments={len(segments)}, reps={REPS} (min wins)"
    )
    off_runs: list[dict] = []
    on_runs: list[dict] = []
    checkpoints: list[bytes] = []
    with tempfile.TemporaryDirectory() as tmp:
        for rep in range(REPS):
            for mode, runs, overrides in (
                ("off", off_runs, {"shm_plane": False, "batch_dtw": False}),
                ("on", on_runs, {}),
            ):
                path = Path(tmp) / f"{mode}_{rep}.jsonl"
                runs.append(
                    _measure(
                        segments, checkpoint_path=str(path), **overrides
                    )
                )
                checkpoints.append(path.read_bytes())
            print(
                f"  rep {rep}: pickled+scalar "
                f"{off_runs[-1]['scoring_seconds']:.2f}s, zero-copy "
                f"{on_runs[-1]['scoring_seconds']:.2f}s"
            )

    reference = _essentials(off_runs[0]["result"])
    for run in off_runs[1:] + on_runs:
        if _essentials(run["result"]) != reference:
            print(
                "e2e_bench: zero-copy and pickled-scalar runs DISAGREE — "
                "the hot path is no longer bit-identical",
                file=sys.stderr,
            )
            return 1
    if any(blob != checkpoints[0] for blob in checkpoints[1:]):
        print(
            "e2e_bench: checkpoint files DIVERGE across hot-path modes — "
            "the transport/kernel knobs leaked into the decision log",
            file=sys.stderr,
        )
        return 1

    off = _best(off_runs)
    on = _best(on_runs)
    speedup = off["scoring_seconds"] / max(on["scoring_seconds"], 1e-9)
    strip = ("result",)
    payload = {
        "benchmark": "e2e_zero_copy_hot_path",
        "workers": WORKERS,
        "reps": REPS,
        "segments": len(segments),
        "buckets": off["result"].initial_bucket_count,
        "handlers_scored": on["handlers_scored"],
        "speedup": round(speedup, 2),
        "checkpoints_byte_identical": True,
        "zero_copy": {
            key: value for key, value in on.items() if key not in strip
        },
        "pickled_scalar": {
            key: value for key, value in off.items() if key not in strip
        },
        "note": (
            "Scoring-phase wall-clock ratio of the workers=4 fused run "
            "with pickled broadcasts + scalar DTW vs the shared-memory "
            "segment plane + batched anti-diagonal DTW kernel; min of "
            "REPS runs per mode, results asserted bit-identical and "
            "checkpoints byte-identical. check_e2e_regression.py "
            "--multicore gates CI against benchmarks/BASELINE_e2e_mp.json."
        ),
    }
    out = REPO_ROOT / "BENCH_e2e_mp.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"e2e_bench: pickled+scalar {off['scoring_seconds']:.2f}s vs "
        f"zero-copy {on['scoring_seconds']:.2f}s -> {speedup:.2f}x speedup "
        f"({on['batched_dtw_sweeps']} batched DTW sweeps, "
        f"{on['shm_bytes']} B plane, "
        f"{on['broadcast_bytes_saved']} B broadcast avoided)"
    )
    print(f"e2e_bench: wrote {out}")
    return 0


def main() -> int:
    if "--multicore" in sys.argv[1:]:
        return _run_multicore()
    segments = _segments()
    print(
        f"e2e_bench: workers={WORKERS}, segments={len(segments)}, "
        f"reps={REPS} (min wins)"
    )
    plain_runs: list[dict] = []
    fused_runs: list[dict] = []
    for rep in range(REPS):
        plain_runs.append(_measure(segments, fused_scheduling=False))
        fused_runs.append(_measure(segments, fused_scheduling=True))
        print(
            f"  rep {rep}: per-bucket "
            f"{plain_runs[-1]['scoring_seconds']:.2f}s, fused "
            f"{fused_runs[-1]['scoring_seconds']:.2f}s"
        )

    reference = _essentials(plain_runs[0]["result"])
    for run in plain_runs[1:] + fused_runs:
        if _essentials(run["result"]) != reference:
            print(
                "e2e_bench: fused and per-bucket runs DISAGREE — the "
                "scheduling modes are no longer bit-identical",
                file=sys.stderr,
            )
            return 1

    plain = _best(plain_runs)
    fused = _best(fused_runs)
    speedup = plain["scoring_seconds"] / max(fused["scoring_seconds"], 1e-9)
    strip = ("result",)
    plain_extra = (
        "fused_waves", "fused_tasks", "peak_in_flight", "mean_occupancy",
        "warm_start_pruned",
    )
    payload = {
        "benchmark": "e2e_wave_scheduling",
        "workers": WORKERS,
        "reps": REPS,
        "segments": len(segments),
        "buckets": plain["result"].initial_bucket_count,
        "handlers_scored": fused["handlers_scored"],
        "speedup": round(speedup, 2),
        "fused": {
            key: value for key, value in fused.items() if key not in strip
        },
        "per_bucket": {
            key: value
            for key, value in plain.items()
            if key not in strip + plain_extra
        },
        "note": (
            "Scoring-phase (refinement+exhaustive) wall-clock ratio of "
            "per-bucket barriers vs one fused pipelined dispatch per "
            "iteration; min of REPS runs per mode, same workload, "
            "results asserted bit-identical. check_e2e_regression.py "
            "gates CI against benchmarks/BASELINE_e2e.json."
        ),
    }
    out = REPO_ROOT / "BENCH_e2e.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"e2e_bench: per-bucket {plain['scoring_seconds']:.2f}s vs fused "
        f"{fused['scoring_seconds']:.2f}s -> {speedup:.2f}x speedup "
        f"({fused['warm_start_pruned']} warm-start prunes, "
        f"{fused['mean_occupancy']:.0%} mean occupancy)"
    )
    print(f"e2e_bench: wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
