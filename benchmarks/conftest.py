"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one of the paper's evaluation tables or
figures at laptop scale: the environment matrix, trace durations, and
search budgets are reduced (the paper used a cluster for up to 48 h per
CCA) while the algorithms are unchanged, so the *shape* of each result —
who wins, by what rough factor, where crossovers fall — is preserved.

Traces are collected once per CCA and cached for the whole session.
"""

from __future__ import annotations

import sys

import pytest

from repro.netsim import Environment
from repro.synth.refinement import SynthesisConfig
from repro.trace.collect import CollectionConfig, collect_traces
from repro.trace.model import Trace, TraceSegment
from repro.trace.noise import NoiseModel
from repro.trace.segmentation import segment_trace
from repro.trace.selection import select_diverse_segments

#: The scaled environment matrix: spans the paper's 5–15 Mbps x 10–100 ms.
BENCH_ENVIRONMENTS = (
    Environment(bandwidth_mbps=5.0, rtt_ms=25.0),
    Environment(bandwidth_mbps=10.0, rtt_ms=50.0),
    Environment(bandwidth_mbps=15.0, rtt_ms=80.0),
)

#: Per-trace simulated duration, seconds.
BENCH_DURATION = 15.0

#: Mild measurement noise applied to every "collected" trace, so the
#: optimization formulation is exercised the way the paper motivates it.
BENCH_NOISE = NoiseModel(
    jitter_std=0.002, dropout=0.02, cwnd_error=0.02, seed=13
)

#: Search budgets shared by the synthesis-driving benchmarks.
BENCH_SYNTHESIS = SynthesisConfig(
    initial_samples=8,
    initial_keep=5,
    completion_cap=12,
    max_iterations=2,
    exhaustive_cap=250,
    series_budget=96,
    max_replay_rows=320,
)


@pytest.fixture
def report(capfd):
    """A print function that bypasses pytest's fd-level capture.

    Benchmarks print the reproduced table/figure rows; this keeps them
    visible in a plain ``pytest benchmarks/ --benchmark-only`` run (and
    in ``bench_output.txt``).
    """

    def _write(text: str = "") -> None:
        with capfd.disabled():
            print(text, file=sys.stdout, flush=True)

    return _write


def bench_collection() -> CollectionConfig:
    return CollectionConfig(
        duration=BENCH_DURATION,
        environments=BENCH_ENVIRONMENTS,
        noise=BENCH_NOISE,
        max_acks_per_trace=10_000,
    )


class TraceStore:
    """Session-wide cache of collected traces and segments per CCA."""

    def __init__(self) -> None:
        self._traces: dict[str, list[Trace]] = {}

    def traces(self, cca_name: str) -> list[Trace]:
        if cca_name not in self._traces:
            self._traces[cca_name] = collect_traces(
                cca_name, bench_collection()
            )
        return self._traces[cca_name]

    def segments(
        self, cca_name: str, *, limit: int = 6
    ) -> list[TraceSegment]:
        all_segments: list[TraceSegment] = []
        for trace in self.traces(cca_name):
            all_segments.extend(segment_trace(trace))
        if len(all_segments) > limit:
            all_segments = select_diverse_segments(all_segments, limit)
        return all_segments


@pytest.fixture(scope="session")
def store() -> TraceStore:
    return TraceStore()
