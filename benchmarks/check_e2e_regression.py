"""CI gates for the end-to-end speedup ratios.

Default mode compares the fused/per-bucket scoring-phase *ratio* from a
fresh ``BENCH_e2e.json`` (emitted at the repo root by ``e2e_bench.py``)
against the pinned ``BASELINE_e2e.json``; ``--multicore`` compares the
zero-copy hot-path ratio (shared-memory plane + batched DTW vs pickled
broadcasts + scalar kernel) from ``BENCH_e2e_mp.json`` (emitted by
``e2e_bench.py --multicore``) against ``BASELINE_e2e_mp.json``.  Ratios
are machine-portable where absolute wall-clock is not: both modes run
the same workload on the same runner in the same process, so a shared
slowdown cancels out and only a relative regression of the fast path
moves the number.

Fails (exit 1) when the fresh speedup is less than half the pinned
baseline — the fast path lost more than half its advantage over its
reference.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).parent
REPO_ROOT = HERE.parent

GATES = {
    "fused": {
        "fresh": "BENCH_e2e.json",
        "baseline": "BASELINE_e2e.json",
        "label": "wave-scheduling",
        "loser": "the fused scheduler",
        "reference": "the per-bucket reference",
        "hint": "benchmarks/e2e_bench.py",
    },
    "multicore": {
        "fresh": "BENCH_e2e_mp.json",
        "baseline": "BASELINE_e2e_mp.json",
        "label": "zero-copy hot-path",
        "loser": "the shm plane + batched DTW path",
        "reference": "the pickled scalar reference",
        "hint": "benchmarks/e2e_bench.py --multicore",
    },
}


def main() -> int:
    gate = GATES["multicore" if "--multicore" in sys.argv[1:] else "fused"]
    fresh_path = REPO_ROOT / gate["fresh"]
    baseline_path = HERE / gate["baseline"]
    if not fresh_path.exists():
        print(
            f"check_e2e_regression: {gate['fresh']} missing — run "
            f"{gate['hint']} first",
            file=sys.stderr,
        )
        return 1

    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    speedup = float(fresh["speedup"])
    pinned = float(baseline["speedup"])
    floor = pinned / 2.0

    print(
        f"{gate['label']} speedup: fresh {speedup:.2f}x vs pinned "
        f"{pinned:.2f}x (floor {floor:.2f}x)"
    )
    if speedup < floor:
        print(
            f"REGRESSION: fresh speedup {speedup:.2f}x is below half the "
            f"pinned baseline ({pinned:.2f}x); {gate['loser']} lost "
            f"more than half its advantage over {gate['reference']}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
