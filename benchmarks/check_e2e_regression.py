"""CI gate for the fused wave-scheduling speedup.

Compares the fused/per-bucket scoring-phase *ratio* from a fresh
``BENCH_e2e.json`` (emitted at the repo root by ``e2e_bench.py``)
against the pinned ``BASELINE_e2e.json``.  Ratios are machine-portable
where absolute wall-clock is not: both modes run the same workload on
the same runner in the same process, so a shared slowdown cancels out
and only a relative regression of the fused scheduler moves the number.

Fails (exit 1) when the fresh speedup is less than half the pinned
baseline — the fused path lost more than half its advantage over the
per-bucket reference.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).parent
REPO_ROOT = HERE.parent


def main() -> int:
    fresh_path = REPO_ROOT / "BENCH_e2e.json"
    baseline_path = HERE / "BASELINE_e2e.json"
    if not fresh_path.exists():
        print(
            "check_e2e_regression: BENCH_e2e.json missing — run "
            "benchmarks/e2e_bench.py first",
            file=sys.stderr,
        )
        return 1

    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    speedup = float(fresh["speedup"])
    pinned = float(baseline["speedup"])
    floor = pinned / 2.0

    print(
        f"wave-scheduling speedup: fresh {speedup:.2f}x vs pinned "
        f"{pinned:.2f}x (floor {floor:.2f}x)"
    )
    if speedup < floor:
        print(
            f"REGRESSION: fresh speedup {speedup:.2f}x is below half the "
            f"pinned baseline ({pinned:.2f}x); the fused scheduler lost "
            "more than half its advantage over the per-bucket reference",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
