#!/usr/bin/env python
"""Corrupt-trace fuzz smoke: the ingestion guard against the full corpus.

CI's fast answer to "did a change break trace triage?":

1. collect one clean reference trace;
2. for every corruption class x a fixed seed matrix, write the corrupted
   document and drive the real ``repro validate`` CLI over it, checking
   the exit code against the class's declared expectation (repairable
   admits with exit 0, refused exits 1 — a crash fails the job);
3. run the clean differential: synthesis over the clean trace with
   triage off and triage on must produce the identical handler and
   distance.

Exit code 0 when every check passes; 1 with a per-case report otherwise.
Runs in well under a minute — this is a smoke test, not the full
``tests/integration/test_triage_differential.py`` harness.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.dsl import RENO_DSL, with_budget
from repro.netsim.environments import Environment
from repro.pipeline import reverse_engineer
from repro.synth.refinement import SynthesisConfig
from repro.trace.collect import CollectionConfig, collect_traces
from repro.trace.corrupt import CORRUPTIONS, corrupt_trace
from repro.trace.io import save_trace

SEED_MATRIX = (0, 1, 2)

FAST = SynthesisConfig(
    initial_samples=4,
    initial_keep=2,
    completion_cap=6,
    max_iterations=1,
    exhaustive_cap=50,
)


def collect_reference():
    return collect_traces(
        "reno",
        CollectionConfig(
            duration=8.0,
            environments=(Environment(bandwidth_mbps=10.0, rtt_ms=50.0),),
            max_acks_per_trace=4000,
        ),
    )


def check_validate_cli(trace, workdir: Path) -> list[str]:
    failures: list[str] = []
    for name, spec in sorted(CORRUPTIONS.items()):
        for seed in SEED_MATRIX:
            sample = corrupt_trace(trace, name, seed)
            path = workdir / f"{name}-{seed}.json"
            path.write_text(sample.text)
            try:
                code = cli_main(["validate", str(path)])
            except SystemExit as exc:  # argparse-level exits are a bug here
                failures.append(f"{name}[{seed}]: CLI exited via {exc!r}")
                continue
            except Exception as exc:  # noqa: BLE001 - a crash IS the finding
                failures.append(f"{name}[{seed}]: CLI crashed: {exc!r}")
                continue
            expected = 0 if spec.expectation == "repairable" else 1
            if code != expected:
                failures.append(
                    f"{name}[{seed}]: exit {code}, expected {expected} "
                    f"({spec.expectation})"
                )
    return failures


def check_clean_differential(traces) -> list[str]:
    dsl = with_budget(RENO_DSL, max_depth=2, max_nodes=3)
    off = reverse_engineer(traces, dsl=dsl, config=FAST)
    on = reverse_engineer(
        traces, dsl=dsl, config=FAST, trace_policy="repair"
    )
    failures: list[str] = []
    if on.expression != off.expression:
        failures.append(
            "clean differential: expression diverged "
            f"({on.expression!r} vs {off.expression!r})"
        )
    if on.distance != off.distance:
        failures.append(
            "clean differential: distance diverged "
            f"({on.distance!r} vs {off.distance!r})"
        )
    return failures


def main() -> int:
    traces = collect_reference()
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        clean_path = workdir / "clean.json"
        save_trace(traces[0], clean_path)
        failures = []
        if cli_main(["validate", str(clean_path)]) != 0:
            failures.append("clean trace: validate refused it")
        failures += check_validate_cli(traces[0], workdir)
    failures += check_clean_differential(traces)
    cases = len(CORRUPTIONS) * len(SEED_MATRIX)
    if failures:
        print(f"FUZZ SMOKE: {len(failures)} failure(s) over {cases} cases")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"FUZZ SMOKE OK: {cases} corrupt cases behaved as declared; "
        "clean differential bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
