"""Figure 6 — impact of the input DSL on student-CCA synthesis.

The paper synthesizes student CCAs under three DSLs: Delay-7 (delay
signals, 7-node cap), Delay-11 (same signals, bigger budget) and
Vegas-11 (adds the vegas-diff macro).  The shape:

* for student 1 (a delay-threshold triangle), the richer budget helps
  and the Vegas macro helps further — Vegas-11 finds the best handler;
* for student 3 (pure rate-based, no vegas-diff dependence), Vegas-11's
  *larger* space is not better — Delay-11 does at least as well within
  the same search effort (the macro only bloats the space).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SYNTHESIS
from repro.dsl.families import DELAY_DSL, VEGAS_DSL, with_budget
from repro.reporting import format_table
from repro.synth.refinement import synthesize

DSLS = {
    "Delay-7": with_budget(DELAY_DSL, max_depth=4, max_nodes=7),
    "Delay-11": with_budget(DELAY_DSL, max_depth=4, max_nodes=11),
    "Vegas-11": with_budget(VEGAS_DSL, max_depth=4, max_nodes=11),
}


@pytest.fixture(scope="module")
def results(store):
    outcome: dict[str, dict[str, object]] = {}
    for student in ("student1", "student3"):
        segments = store.segments(student)
        outcome[student] = {
            label: synthesize(segments, dsl, BENCH_SYNTHESIS)
            for label, dsl in DSLS.items()
        }
    return outcome


def test_fig6_dsl_impact(benchmark, results, store, report):
    benchmark.pedantic(
        lambda: synthesize(
            store.segments("student1"), DSLS["Delay-7"], BENCH_SYNTHESIS
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for student, by_dsl in results.items():
        for label, result in by_dsl.items():
            rows.append(
                [student, label, f"{result.distance:.2f}", result.expression]
            )
    report()
    report(
        format_table(
            ["CCA", "input DSL", "best distance", "synthesized handler"],
            rows,
            title="Figure 6: best handler per input DSL",
        )
    )

    student1 = results["student1"]
    # Shape check 1 (Fig 6a): the vegas-diff macro DSL matches student 1
    # at least as well as the smallest delay DSL.
    assert (
        student1["Vegas-11"].distance
        <= student1["Delay-7"].distance * 1.05
    )

    student3 = results["student3"]
    # Shape check 2 (Fig 6b): for a CCA that does not use vegas-diff,
    # the macro buys nothing — Delay-11 is at least as good as Vegas-11
    # under the same search effort.
    assert (
        student3["Delay-11"].distance
        <= student3["Vegas-11"].distance * 1.25
    )

    # Every synthesized handler beats a pathological distance.
    for by_dsl in results.values():
        for result in by_dsl.values():
            assert result.distance < float("inf")
