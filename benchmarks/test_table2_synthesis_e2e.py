"""Table 2 (end-to-end) — full-pipeline synthesis for selected CCAs.

Running every Table 2 row through the complete search is a cluster-scale
job in the paper (up to 48 h per CCA); this bench runs the unchanged
pipeline at laptop budgets on a representative subset covering the three
structural families the paper's results fall into:

* Reno-family (reno, scalable): additive-increase handlers on reno_inc;
* Vegas-family (vegas): a delay-conditional handler;
* degenerate student rows (student4/student5): bare constant handlers.

The shape to preserve is §5.3/§5.4/§5.6's: the synthesized expression
uses the family's signature ingredients and scores close to the expert
fine-tuned handler.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SYNTHESIS
from repro.dsl import ast
from repro.dsl.families import family, with_budget
from repro.dsl.parser import parse
from repro.handlers import FINETUNED_TEXT, PAPER_FAMILY
from repro.reporting import format_table
from repro.synth.refinement import synthesize
from repro.synth.scoring import Scorer

TARGETS = ("reno", "scalable", "vegas", "student4", "student5")
_BUDGETS = {"max_depth": 3, "max_nodes": 5}


@pytest.fixture(scope="module")
def outcomes(store):
    rows = {}
    for name in TARGETS:
        segments = store.segments(name)
        dsl = with_budget(family(PAPER_FAMILY[name]), **_BUDGETS)
        result = synthesize(segments, dsl, BENCH_SYNTHESIS)
        fine = None
        if name in FINETUNED_TEXT:
            scorer = Scorer(
                series_budget=BENCH_SYNTHESIS.series_budget,
                max_replay_rows=BENCH_SYNTHESIS.max_replay_rows,
            )
            fine = scorer.score_handler(parse(FINETUNED_TEXT[name]), segments)
        rows[name] = (result, fine)
    return rows


def test_table2_synthesis_end_to_end(benchmark, outcomes, store, report):
    benchmark.pedantic(
        lambda: synthesize(
            store.segments("student4"),
            with_budget(family("vegas"), **_BUDGETS),
            BENCH_SYNTHESIS,
        ),
        rounds=1,
        iterations=1,
    )

    display = []
    for name, (result, fine) in outcomes.items():
        display.append(
            [
                name,
                result.expression,
                f"{result.distance:.2f}",
                f"{fine:.2f}" if fine is not None else "-",
            ]
        )
    report()
    report(
        format_table(
            ["CCA", "synthesized handler", "DTW", "fine-tuned DTW"],
            display,
            title="Table 2 (end-to-end): full-pipeline synthesis at laptop budgets",
        )
    )

    # Shape check 1: Reno-family rows synthesize additive handlers whose
    # distance is within a modest factor of the expert handler's.
    for name in ("reno", "scalable"):
        result, fine = outcomes[name]
        assert result.distance <= max(2.5 * fine, fine + 1.5), name
        used = ast.signals_used(result.best.handler) | ast.macros_used(
            result.best.handler
        )
        assert "cwnd" in used or "reno_inc" in used, name

    # Shape check 2: degenerate students synthesize tiny constant-window
    # handlers (the paper returned `mss` and `2 * mss`).
    for name in ("student4", "student5"):
        result, _ = outcomes[name]
        assert result.best.distance < 3.0, name
        assert ast.depth(result.best.handler) <= 3, name

    # Shape check 3: the Vegas search returns something meaningfully
    # better than a flat window.
    vegas_result, _ = outcomes["vegas"]
    scorer = Scorer(series_budget=BENCH_SYNTHESIS.series_budget)
    flat = scorer.score_handler(parse("2 * mss"), store.segments("vegas"))
    assert vegas_result.distance < flat
