"""Figure 3 — distance metrics' tolerance to constant error.

BBR traces; expert handlers for BBR, Reno, Vegas and Cubic.  Every
concrete constant in every handler is scaled by a multiplicative error
from 0.1x to 10x, and for each metric we check whether the (mis-scaled)
BBR handler still has the smallest distance to the BBR traces.  The
paper's shape (Figure 3): DTW stays correct over the widest error range;
point-wise metrics flip to a wrong CCA sooner.

BBR traces for this study are collected over deeper (4-BDP) buffers:
BBRv1 overwhelms a 1-BDP droptail queue with constant loss, chopping the
trace into short recovery ramps in which *any* additive handler fits;
the paper's BBR traces show long loss-free PROBE_BW stretches, and a
deep buffer reproduces that regime (cf. Ware et al. on BBR's
buffer-dependent behavior).
"""

from __future__ import annotations

import pytest

from repro.dsl import ast
from repro.dsl.parser import parse
from repro.handlers import FINETUNED_TEXT
from repro.reporting import format_table
from repro.synth.scoring import Scorer

ERRORS = (0.1, 0.2, 0.5, 0.8, 1.0, 1.25, 2.0, 5.0, 10.0)
METRICS = ("dtw", "euclidean", "manhattan", "correlation")
RIVALS = ("reno", "vegas", "cubic")


def _scale_constants(expr: ast.NumExpr, factor: float) -> ast.NumExpr:
    def rec(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Const) and not node.is_hole:
            return ast.Const(node.value * factor)
        kids = ast.children(node)
        if not kids:
            return node
        return ast.with_children(node, tuple(rec(child) for child in kids))

    return rec(expr)


@pytest.fixture(scope="module")
def bbr_segments():
    from benchmarks.conftest import BENCH_NOISE
    from repro.netsim import Environment
    from repro.trace.collect import CollectionConfig, collect_segments

    environments = tuple(
        Environment(bw, rtt, queue_bdp=4.0)
        for bw, rtt in ((5, 25), (10, 50), (15, 80))
    )
    config = CollectionConfig(
        duration=15.0,
        environments=environments,
        noise=BENCH_NOISE,
        max_acks_per_trace=10_000,
    )
    return collect_segments("bbr", config, max_segments=5)


@pytest.fixture(scope="module")
def tolerance(bbr_segments):
    segments = bbr_segments
    bbr = parse(FINETUNED_TEXT["bbr"])
    rivals = {name: parse(FINETUNED_TEXT[name]) for name in RIVALS}
    outcome: dict[str, list[bool]] = {}
    for metric in METRICS:
        scorer = Scorer(metric_name=metric, series_budget=96)
        correct: list[bool] = []
        for error in ERRORS:
            bbr_score = scorer.score_handler(
                _scale_constants(bbr, error), segments
            )
            rival_best = min(
                scorer.score_handler(_scale_constants(handler, error), segments)
                for handler in rivals.values()
            )
            correct.append(bbr_score < rival_best)
        outcome[metric] = correct
    return outcome


def _widest_correct_run(flags: list[bool]) -> int:
    best = run = 0
    for flag in flags:
        run = run + 1 if flag else 0
        best = max(best, run)
    return best


def test_fig3_metric_tolerance(benchmark, tolerance, bbr_segments, report):
    scorer = Scorer(metric_name="dtw", series_budget=96)
    segments = bbr_segments
    bbr = parse(FINETUNED_TEXT["bbr"])
    benchmark.pedantic(
        lambda: scorer.score_handler(bbr, segments), rounds=3, iterations=1
    )

    rows = [
        [metric]
        + ["ok" if flag else "WRONG" for flag in tolerance[metric]]
        + [str(_widest_correct_run(tolerance[metric]))]
        for metric in METRICS
    ]
    report()
    report(
        format_table(
            ["metric"] + [f"x{error:g}" for error in ERRORS] + ["max run"],
            rows,
            title="Figure 3: is the mis-scaled BBR handler still closest? (WRONG = red region)",
        )
    )

    # Shape check 1: with no error (x1), every metric that sees magnitude
    # prefers the true handler.
    unit_index = ERRORS.index(1.0)
    for metric in ("dtw", "euclidean", "manhattan"):
        assert tolerance[metric][unit_index], metric

    # Shape check 2 (the paper's headline): DTW's correct region is at
    # least as wide as every *scale-aware* metric's.  Correlation is
    # scale-invariant, so it stays "correct" across the whole sweep by
    # construction — which is exactly why it is not a viable search
    # metric (check 3): it cannot discriminate constant values at all.
    dtw_run = _widest_correct_run(tolerance["dtw"])
    for metric in ("euclidean", "manhattan"):
        assert dtw_run >= _widest_correct_run(tolerance[metric]), metric

    # Shape check 3: DTW can tell a correctly-scaled handler from a
    # 5x-mis-scaled one (it must, to concretize constants); correlation
    # cannot.
    segments = bbr_segments
    bbr = parse(FINETUNED_TEXT["bbr"])
    dtw_scorer = Scorer(metric_name="dtw", series_budget=96)
    corr_scorer = Scorer(metric_name="correlation", series_budget=96)
    dtw_true = dtw_scorer.score_handler(bbr, segments)
    dtw_scaled = dtw_scorer.score_handler(_scale_constants(bbr, 5.0), segments)
    corr_true = corr_scorer.score_handler(bbr, segments)
    corr_scaled = corr_scorer.score_handler(
        _scale_constants(bbr, 5.0), segments
    )
    report()
    report(
        f"scale discrimination: dtw {dtw_true:.2f} vs {dtw_scaled:.2f} "
        f"(x5); correlation {corr_true:.3f} vs {corr_scaled:.3f} (x5)"
    )
    assert dtw_scaled > 1.5 * dtw_true
    assert corr_scaled < corr_true + 0.25


def test_fig3_extreme_error_breaks_all_scale_aware_metrics(tolerance, benchmark):
    """At 10x constant error the handler is a different algorithm; no
    scale-aware metric should still prefer it *everywhere* across the
    sweep (sanity that the sweep actually stresses the metrics)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    stressed = sum(
        0 if all(tolerance[metric]) else 1
        for metric in ("euclidean", "manhattan", "correlation")
    )
    assert stressed >= 1
