"""Extension bench — loss-handler synthesis across the Reno family.

Not a paper table: this exercises the §3 generalization claim ("the
technique generalizes to other events") that the paper leaves
unevaluated.  For each loss-based CCA we synthesize a cwnd-on-loss
handler and compare the implied decrease factor with the algorithm's
documented beta.
"""

from __future__ import annotations

import pytest

from repro.dsl import RENO_DSL, with_budget
from repro.dsl.evaluate import evaluate
from repro.reporting import format_table
from repro.synth.loss_handler import synthesize_loss_handler

DSL = with_budget(RENO_DSL, max_depth=2, max_nodes=3)

#: (CCA, documented multiplicative-decrease factor).
TARGETS = (
    ("reno", 0.5),
    ("scalable", 0.875),
    ("cubic", 0.7),
    ("bic", 0.8),
)

_PROBE_ENV = {
    "cwnd": 100_000.0,
    "mss": 1500.0,
    "acked_bytes": 1500.0,
    "time_since_loss": 1.0,
}


@pytest.fixture(scope="module")
def results(store):
    rows = []
    for name, beta in TARGETS:
        result = synthesize_loss_handler(store.traces(name), DSL)
        implied = evaluate(result.handler, _PROBE_ENV) / _PROBE_ENV["cwnd"]
        rows.append((name, beta, result, implied))
    return rows


def test_ext_loss_handler_synthesis(benchmark, results, store, report):
    benchmark.pedantic(
        lambda: synthesize_loss_handler(store.traces("reno"), DSL),
        rounds=1,
        iterations=1,
    )

    display = [
        [
            name,
            result.expression,
            f"{implied:.2f}",
            f"{beta:.2f}",
            f"{result.error:.3f}",
            str(result.samples),
        ]
        for name, beta, result, implied in results
    ]
    report()
    report(
        format_table(
            ["CCA", "loss handler", "implied beta", "documented beta", "median err", "samples"],
            display,
            title="Extension: synthesized cwnd-on-loss handlers",
        )
    )

    by_name = {name: implied for name, _, _, implied in results}
    # Shape: gentler-decrease CCAs imply larger factors than Reno's.
    assert by_name["scalable"] > by_name["reno"]
    # Every implied factor is a genuine decrease.
    for name, _, _, implied in results:
        assert 0.05 < implied < 1.1, name
    # Reno's factor lands near one half (wide band: visible post-loss
    # windows include recovery effects).
    assert 0.3 <= by_name["reno"] <= 0.75
