"""Performance benchmarks of the synthesis hot kernels.

Not a paper table: these pin the compute kernels the refinement loop
lives in — DTW scoring, compiled-handler replay, sketch enumeration and
the discrete-event simulator — so regressions in any of them (they have
all been optimized: vectorized DTW rows, compiled handlers, the shared
enumeration stream) show up as benchmark deltas rather than as
mysteriously slow paper benches.
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cca import make_cca
from repro.distance import dtw_distance
from repro.dsl import RENO_DSL, with_budget
from repro.dsl.compiled import compile_handler
from repro.dsl.evaluate import evaluate
from repro.dsl.parser import parse
from repro.netsim import Environment, simulate
from repro.synth.enumerator import enumerate_sketches
from repro.synth.replay import replay_handler

HANDLER = "cwnd + ((vegas_diff < 1) ? 0.7 * reno_inc : 0)"


def test_perf_dtw(benchmark):
    rng = np.random.default_rng(0)
    a, b = rng.random(256), rng.random(256)
    result = benchmark(lambda: dtw_distance(a, b))
    assert result >= 0


def test_perf_compiled_eval(benchmark):
    compiled = compile_handler(parse(HANDLER))
    env = {
        "cwnd": 30000.0,
        "mss": 1500.0,
        "acked_bytes": 1500.0,
        "rtt": 0.06,
        "min_rtt": 0.05,
        "ack_rate": 1e6,
    }
    args = [env[name] for name in compiled.signals]
    value = benchmark(lambda: compiled(*args))
    assert np.isfinite(value)


def test_perf_interpreted_eval(benchmark):
    """The tree-walking reference; the compiled path above should be
    several times faster (both are kept: the interpreter is the
    semantic oracle)."""
    expr = parse(HANDLER)
    env = {
        "cwnd": 30000.0,
        "mss": 1500.0,
        "acked_bytes": 1500.0,
        "rtt": 0.06,
        "min_rtt": 0.05,
        "ack_rate": 1e6,
    }
    value = benchmark(lambda: evaluate(expr, env))
    assert np.isfinite(value)


def test_perf_replay(benchmark, store):
    segments = store.segments("reno", limit=1)
    from repro.trace.signals import extract_signals

    table = extract_signals(segments[0]).coalesce(384)
    handler = parse("cwnd + 0.7 * reno_inc")
    series = benchmark(lambda: replay_handler(handler, table))
    assert len(series) == len(table)


def test_perf_enumeration(benchmark):
    dsl = with_budget(RENO_DSL, max_depth=3, max_nodes=5)

    def first_500():
        return sum(
            1 for _ in itertools.islice(enumerate_sketches(dsl), 500)
        )

    count = benchmark(first_500)
    assert count == 500


def test_perf_simulator(benchmark):
    env = Environment(bandwidth_mbps=10, rtt_ms=50)

    def run():
        return simulate(make_cca("reno"), env, duration=5.0)

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(trace.acks) > 100


def test_perf_score_cache_saves_replays(benchmark, store, monkeypatch):
    """The cross-iteration score cache measurably reduces
    ``replay_handler`` invocations over a multi-iteration refinement run.

    Pinned on the *counters*, not wall-clock: an uncached run replays
    once per (handler, segment) scoring; a cached run replays only on
    misses, and the saved replays equal the cache's hit counter exactly
    (the schedules are identical, so lookups == uncached replays).
    """
    import repro.synth.scoring as scoring_module
    from repro.runtime import CollectorSink, RunContext
    from repro.synth.refinement import SynthesisConfig, synthesize

    real_replay = scoring_module.replay_handler
    calls = {"n": 0}

    def counting_replay(*args, **kwargs):
        calls["n"] += 1
        return real_replay(*args, **kwargs)

    monkeypatch.setattr(scoring_module, "replay_handler", counting_replay)

    segments = store.segments("reno", limit=3)
    dsl = with_budget(RENO_DSL, max_depth=4, max_nodes=7)
    base = dict(
        initial_samples=4,
        initial_keep=2,
        completion_cap=4,
        max_iterations=3,
        exhaustive_cap=40,
        initial_segments=2,
        # The batched path replays via replay_batch, not replay_handler;
        # this benchmark pins the scalar path's replay counters.
        batch_scoring=False,
    )

    def run(cache: bool):
        calls["n"] = 0
        collector = CollectorSink()
        result = synthesize(
            segments,
            dsl,
            SynthesisConfig(cache_scores=cache, **base),
            context=RunContext([collector]),
        )
        return result, calls["n"], collector.last_of_kind("cache_stats")

    uncached_result, uncached_replays, _ = run(cache=False)
    cached_result, cached_replays, stats = run(cache=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    assert len(cached_result.iterations) >= 2  # schedule actually deepened
    assert stats is not None and stats.hits > 0
    # Caching never changes results, only work:
    assert cached_result.best.distance == uncached_result.best.distance
    assert cached_replays == stats.misses
    assert uncached_replays == stats.hits + stats.misses
    assert uncached_replays - cached_replays == stats.hits


#: Two-hole sketches x an 8-constant pool = exactly 64 concretizations
#: each, matching the completion cap the speedup target is pinned at.
SCORING_SKETCHES = (
    "c0 * cwnd + c1 * mss",
    "(rtt > ewma_rtt) ? cwnd - c0 * mss : cwnd + c1 * mss",
    "cwnd + c0 * acked_bytes + c1 * mss",
)

SCORING_POOL = (0.25, 0.5, 0.7, 1.0, 1.5, 2.0, 3.0, 4.0)

#: Minimum batched/scalar throughput ratio; measured ~8x on the dev
#: box, asserted with headroom so the gate survives noisy CI runners.
SCORING_MIN_SPEEDUP = 5.0


def test_perf_scoring_throughput(benchmark, store, report):
    """Batched sketch scoring is >= 5x the scalar reference path at
    ``completion_cap=64`` — the tentpole speedup claim.

    Both paths score the same sketches over the same segments with
    fresh scorers (each builds its own table cache), results are
    asserted bit-identical, and the run emits ``BENCH_scoring.json``
    for the CI regression gate (``check_scoring_regression.py``).
    """
    from repro.dsl.parser import parse as parse_expr
    from repro.dsl.printer import to_text
    from repro.synth.scoring import Scorer
    from repro.synth.sketch import Sketch

    segments = store.segments("reno", limit=4)
    sketches = [
        Sketch.from_expr(parse_expr(text)) for text in SCORING_SKETCHES
    ]
    candidates = len(SCORING_POOL) ** 2 * len(sketches)

    def run(batch: bool):
        best = float("inf")
        results = counters = None
        for _ in range(3):  # best-of-3 damps scheduler noise
            scorer = Scorer(
                constant_pool=SCORING_POOL,
                completion_cap=64,
                seed=0,
                batch=batch,
            )
            start = time.perf_counter()
            results = [
                scorer.score_sketch(sketch, segments)
                for sketch in sketches
            ]
            best = min(best, time.perf_counter() - start)
            counters = scorer.counters
        return results, candidates / best, counters

    scalar_results, scalar_rate, _ = run(batch=False)
    batched_results, batched_rate, counters = run(batch=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # The fast path never changes the answer, only the work:
    for batched, scalar in zip(batched_results, scalar_results):
        assert batched.distance == scalar.distance
        assert to_text(batched.handler) == to_text(scalar.handler)
    assert counters.batched_waves == len(sketches)
    assert counters.lb_pruned + counters.dp_abandoned > 0

    speedup = batched_rate / scalar_rate
    report(f"scoring throughput @cap=64 over {len(segments)} segments:")
    report(f"  scalar  {scalar_rate:9.0f} candidates/s")
    report(f"  batched {batched_rate:9.0f} candidates/s  ({speedup:.1f}x)")

    payload = {
        "kernel": "sketch_scoring",
        "completion_cap": 64,
        "segments": len(segments),
        "sketches": len(sketches),
        "candidates": candidates,
        "scalar_candidates_per_sec": scalar_rate,
        "batched_candidates_per_sec": batched_rate,
        "speedup": speedup,
    }
    out = Path(__file__).with_name("BENCH_scoring.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= SCORING_MIN_SPEEDUP
