"""Performance benchmarks of the synthesis hot kernels.

Not a paper table: these pin the compute kernels the refinement loop
lives in — DTW scoring, compiled-handler replay, sketch enumeration and
the discrete-event simulator — so regressions in any of them (they have
all been optimized: vectorized DTW rows, compiled handlers, the shared
enumeration stream) show up as benchmark deltas rather than as
mysteriously slow paper benches.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.cca import make_cca
from repro.distance import dtw_distance
from repro.dsl import RENO_DSL, with_budget
from repro.dsl.compiled import compile_handler
from repro.dsl.evaluate import evaluate
from repro.dsl.parser import parse
from repro.netsim import Environment, simulate
from repro.synth.enumerator import enumerate_sketches
from repro.synth.replay import replay_handler

HANDLER = "cwnd + ((vegas_diff < 1) ? 0.7 * reno_inc : 0)"


def test_perf_dtw(benchmark):
    rng = np.random.default_rng(0)
    a, b = rng.random(256), rng.random(256)
    result = benchmark(lambda: dtw_distance(a, b))
    assert result >= 0


def test_perf_compiled_eval(benchmark):
    compiled = compile_handler(parse(HANDLER))
    env = {
        "cwnd": 30000.0,
        "mss": 1500.0,
        "acked_bytes": 1500.0,
        "rtt": 0.06,
        "min_rtt": 0.05,
        "ack_rate": 1e6,
    }
    args = [env[name] for name in compiled.signals]
    value = benchmark(lambda: compiled(*args))
    assert np.isfinite(value)


def test_perf_interpreted_eval(benchmark):
    """The tree-walking reference; the compiled path above should be
    several times faster (both are kept: the interpreter is the
    semantic oracle)."""
    expr = parse(HANDLER)
    env = {
        "cwnd": 30000.0,
        "mss": 1500.0,
        "acked_bytes": 1500.0,
        "rtt": 0.06,
        "min_rtt": 0.05,
        "ack_rate": 1e6,
    }
    value = benchmark(lambda: evaluate(expr, env))
    assert np.isfinite(value)


def test_perf_replay(benchmark, store):
    segments = store.segments("reno", limit=1)
    from repro.trace.signals import extract_signals

    table = extract_signals(segments[0]).coalesce(384)
    handler = parse("cwnd + 0.7 * reno_inc")
    series = benchmark(lambda: replay_handler(handler, table))
    assert len(series) == len(table)


def test_perf_enumeration(benchmark):
    dsl = with_budget(RENO_DSL, max_depth=3, max_nodes=5)

    def first_500():
        return sum(
            1 for _ in itertools.islice(enumerate_sketches(dsl), 500)
        )

    count = benchmark(first_500)
    assert count == 500


def test_perf_simulator(benchmark):
    env = Environment(bandwidth_mbps=10, rtt_ms=50)

    def run():
        return simulate(make_cca("reno"), env, duration=5.0)

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(trace.acks) > 100


def test_perf_score_cache_saves_replays(benchmark, store, monkeypatch):
    """The cross-iteration score cache measurably reduces
    ``replay_handler`` invocations over a multi-iteration refinement run.

    Pinned on the *counters*, not wall-clock: an uncached run replays
    once per (handler, segment) scoring; a cached run replays only on
    misses, and the saved replays equal the cache's hit counter exactly
    (the schedules are identical, so lookups == uncached replays).
    """
    import repro.synth.scoring as scoring_module
    from repro.runtime import CollectorSink, RunContext
    from repro.synth.refinement import SynthesisConfig, synthesize

    real_replay = scoring_module.replay_handler
    calls = {"n": 0}

    def counting_replay(*args, **kwargs):
        calls["n"] += 1
        return real_replay(*args, **kwargs)

    monkeypatch.setattr(scoring_module, "replay_handler", counting_replay)

    segments = store.segments("reno", limit=3)
    dsl = with_budget(RENO_DSL, max_depth=4, max_nodes=7)
    base = dict(
        initial_samples=4,
        initial_keep=2,
        completion_cap=4,
        max_iterations=3,
        exhaustive_cap=40,
        initial_segments=2,
    )

    def run(cache: bool):
        calls["n"] = 0
        collector = CollectorSink()
        result = synthesize(
            segments,
            dsl,
            SynthesisConfig(cache_scores=cache, **base),
            context=RunContext([collector]),
        )
        return result, calls["n"], collector.last_of_kind("cache_stats")

    uncached_result, uncached_replays, _ = run(cache=False)
    cached_result, cached_replays, stats = run(cache=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    assert len(cached_result.iterations) >= 2  # schedule actually deepened
    assert stats is not None and stats.hits > 0
    # Caching never changes results, only work:
    assert cached_result.best.distance == uncached_result.best.distance
    assert cached_replays == stats.misses
    assert uncached_replays == stats.hits + stats.misses
    assert uncached_replays - cached_replays == stats.hits
