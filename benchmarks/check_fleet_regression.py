"""CI gate for fleet (synthesis-as-a-service) throughput.

Compares the sequential-vs-fleet *throughput ratio* from a fresh
``BENCH_fleet.json`` (emitted at the repo root by ``fleet_bench.py``)
against the pinned ``BASELINE_fleet.json``.  Ratios are machine-portable
where absolute wall-clock is not: both modes run the same jobs on the
same runner in the same process, so a shared slowdown cancels out and
only a relative regression of the scheduler path (slicing overhead,
lost pool reuse, priming churn from scorer adoption) moves the number.

Fails (exit 1) when the fresh ratio is less than half the pinned
baseline — multiplexing through the shared scheduler lost more than
half its standing against back-to-back sequential runs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).parent
REPO_ROOT = HERE.parent


def main() -> int:
    fresh_path = REPO_ROOT / "BENCH_fleet.json"
    baseline_path = HERE / "BASELINE_fleet.json"
    if not fresh_path.exists():
        print(
            "check_fleet_regression: BENCH_fleet.json missing — run "
            "benchmarks/fleet_bench.py first",
            file=sys.stderr,
        )
        return 1

    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    ratio = float(fresh["throughput_ratio"])
    pinned = float(baseline["throughput_ratio"])
    floor = pinned / 2.0

    print(
        f"fleet throughput ratio: fresh {ratio:.2f}x vs pinned "
        f"{pinned:.2f}x (floor {floor:.2f}x); fair-fleet tax fresh "
        f"{fresh.get('fairness_tax', 0.0):.2f}x vs pinned "
        f"{baseline.get('fairness_tax', 0.0):.2f}x (not gated)"
    )
    if ratio < floor:
        print(
            f"REGRESSION: fresh fleet throughput {ratio:.2f}x is below "
            f"half the pinned baseline ({pinned:.2f}x); the shared "
            "scheduler lost more than half its standing against "
            "back-to-back sequential runs",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
