#!/usr/bin/env python
"""Service smoke: the full crash-recovery story through the real CLI.

CI's fast answer to "did a change break synthesis-as-a-service?":

1. ``repro submit`` queues a two-job fleet into a fresh spool (specs
   collected from the simulator, no fixture files);
2. a first ``repro serve`` is killed mid-fleet via the test-only
   ``--exit-after-slices`` switch (the process dies with ``os._exit(70)``
   exactly like a SIGKILL: leases and partial checkpoints stay on disk);
3. a successor ``repro serve --steal-leases`` must recover the whole
   fleet from the spool and report every job completed;
4. the differential: each job's served answer must match a direct
   in-process ``reverse_engineer`` run over the same traces and config —
   crash, steal, and resume may not move the result by a bit.

Exit code 0 when every check passes; 1 with a per-case report
otherwise.  Runs in well under a minute — this is a smoke test, not the
full ``tests/test_service.py`` / ``tests/runtime/test_scheduler.py``
harness.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.dsl import family, with_budget  # noqa: E402
from repro.netsim.environments import Environment  # noqa: E402
from repro.pipeline import reverse_engineer  # noqa: E402
from repro.synth.refinement import SynthesisConfig  # noqa: E402
from repro.trace.collect import CollectionConfig, collect_traces  # noqa: E402

JOB_IDS = ("smoke-one", "smoke-two")
DURATION = 8.0
BANDWIDTH = 10.0
RTT = 50.0

SUBMIT_FLAGS = [
    "--cca", "reno",
    "--duration", str(DURATION),
    "--bandwidth", str(BANDWIDTH),
    "--rtt", str(RTT),
    "--dsl", "reno",
    "--max-depth", "3",
    "--max-nodes", "4",
    "--samples", "4",
    "--keep", "3",
    "--iterations", "2",
]


def submit_fleet(spool: str) -> list[str]:
    failures: list[str] = []
    for job_id in JOB_IDS:
        code = cli_main(
            ["submit", "--spool", spool, "--job-id", job_id, *SUBMIT_FLAGS]
        )
        if code != 0:
            failures.append(f"submit {job_id}: exit {code}")
    return failures


def crash_first_serve(spool: str) -> list[str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH")])
    )
    killed = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve",
            "--spool", spool, "--quantum", "3",
            "--exit-after-slices", "4",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    failures: list[str] = []
    if killed.returncode != 70:
        failures.append(
            f"killed serve: exit {killed.returncode}, expected 70 "
            f"(stderr: {killed.stderr.strip()[:200]})"
        )
    leases = [
        name
        for name in os.listdir(os.path.join(spool, "checkpoints"))
        if name.endswith(".lease")
    ]
    if not leases:
        failures.append("killed serve left no leases behind")
    return failures


def recover_fleet(spool: str) -> tuple[dict | None, list[str]]:
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = cli_main(
            [
                "serve", "--spool", spool, "--quantum", "3",
                "--steal-leases", "--report", "json",
            ]
        )
    if code != 0:
        return None, [f"recovery serve: exit {code}"]
    try:
        payload = json.loads(stdout.getvalue())
    except json.JSONDecodeError as exc:
        return None, [f"recovery serve: unparseable JSON report: {exc}"]
    failures: list[str] = []
    fleet = payload.get("fleet") or {}
    if fleet.get("leases_stolen", 0) < 1:
        failures.append("recovery serve stole no leases")
    return payload, failures


def check_differential(payload: dict) -> list[str]:
    traces = collect_traces(
        "reno",
        CollectionConfig(
            duration=DURATION,
            environments=(
                Environment(bandwidth_mbps=BANDWIDTH, rtt_ms=RTT),
            ),
        ),
    )
    direct = reverse_engineer(
        traces,
        dsl=with_budget(family("reno"), max_depth=3, max_nodes=4),
        config=SynthesisConfig(
            metric="dtw", initial_samples=4, initial_keep=3, max_iterations=2
        ),
    )
    failures: list[str] = []
    for job_id in JOB_IDS:
        snap = payload["jobs"].get(job_id)
        if snap is None:
            failures.append(f"{job_id}: missing from the recovery report")
            continue
        if snap["state"] != "completed":
            failures.append(
                f"{job_id}: state {snap['state']!r} "
                f"({snap.get('error') or 'no error recorded'})"
            )
            continue
        if snap["best_expression"] != direct.expression:
            failures.append(
                f"{job_id}: expression diverged after crash recovery "
                f"({snap['best_expression']!r} vs {direct.expression!r})"
            )
        if abs(snap["best_distance"] - direct.distance) > 1e-9:
            failures.append(
                f"{job_id}: distance diverged after crash recovery "
                f"({snap['best_distance']!r} vs {direct.distance!r})"
            )
    return failures


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        spool = os.path.join(tmp, "spool")
        failures = submit_fleet(spool)
        if not failures:
            failures += crash_first_serve(spool)
        if not failures:
            payload, recover_failures = recover_fleet(spool)
            failures += recover_failures
            if payload is not None:
                failures += check_differential(payload)
    if failures:
        print(f"SERVICE SMOKE: {len(failures)} failure(s)")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        "SERVICE SMOKE OK: fleet submitted, killed mid-run (exit 70, "
        "leases on disk), recovered with --steal-leases; every job's "
        "answer bit-identical to the direct run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
