"""Tests for the Table 2 expert-handler tables."""

import pytest

from repro.cca.registry import ALL_CCAS
from repro.dsl import ast, depth, is_simplifiable
from repro.errors import ReproError
from repro.handlers import (
    FINETUNED_TEXT,
    PAPER_FAMILY,
    SYNTHESIZED_TEXT,
    finetuned_handler,
    synthesized_reference,
)


def test_synthesized_covers_table2_rows():
    # 13 kernel CCAs (CDG/HighSpeed/BIC were not synthesized) + 7 students.
    assert len(SYNTHESIZED_TEXT) == 20
    assert "cdg" not in SYNTHESIZED_TEXT
    assert "highspeed" not in SYNTHESIZED_TEXT
    assert "bic" not in SYNTHESIZED_TEXT


def test_finetuned_covers_kernel_rows_only():
    assert len(FINETUNED_TEXT) == 13
    assert all(not name.startswith("student") for name in FINETUNED_TEXT)


def test_all_names_are_registered_ccas():
    for name in list(SYNTHESIZED_TEXT) + list(FINETUNED_TEXT):
        assert name in ALL_CCAS


def test_expressions_parse():
    for name in SYNTHESIZED_TEXT:
        expr = synthesized_reference(name)
        assert isinstance(expr, ast.NumExpr)
    for name in FINETUNED_TEXT:
        assert isinstance(finetuned_handler(name), ast.NumExpr)


def test_expressions_have_no_holes():
    for name in SYNTHESIZED_TEXT:
        assert not ast.holes(synthesized_reference(name)), name


def test_max_depth_bounded():
    """Abagnale produces 'arithmetically simple expressions, with a
    maximum AST depth of 5' (§5) — macros count as leaves."""
    for name in SYNTHESIZED_TEXT:
        assert depth(synthesized_reference(name)) <= 5, name


def test_expressions_irreducible():
    for name, getter in (
        ("synth", synthesized_reference),
        ("fine", finetuned_handler),
    ):
        table = SYNTHESIZED_TEXT if name == "synth" else FINETUNED_TEXT
        for cca in table:
            assert not is_simplifiable(getter(cca)), (name, cca)


def test_unknown_name_raises():
    with pytest.raises(ReproError):
        synthesized_reference("bogus")
    with pytest.raises(ReproError):
        finetuned_handler("student1")


def test_family_map_covers_all_rows():
    for name in SYNTHESIZED_TEXT:
        assert name in PAPER_FAMILY
    from repro.dsl.families import FAMILIES

    assert set(PAPER_FAMILY.values()) <= set(FAMILIES)


def test_reno_variants_share_structure():
    """§5.3: Reno, Westwood, Scalable, LP synthesize to the same shape."""
    shapes = set()
    for name in ("reno", "westwood", "scalable", "lp"):
        expr = synthesized_reference(name)
        ops = ast.operators_used(expr)
        shapes.add(ops)
    assert all(ops <= {"+", "*"} for ops in shapes)


def test_vegas_variants_use_conditionals():
    """§5.4: Vegas-family handlers branch on vegas_diff."""
    for name in ("vegas", "veno", "nv", "yeah"):
        expr = synthesized_reference(name)
        assert "cond" in ast.operators_used(expr), name
        assert "vegas_diff" in ast.macros_used(expr), name
