"""End-to-end pipeline tests (scaled down to stay fast)."""

import pytest

from repro.dsl import RENO_DSL, with_budget
from repro.errors import SynthesisError
from repro.pipeline import reverse_engineer, reverse_engineer_cca
from repro.synth.refinement import SynthesisConfig
from repro.trace.collect import CollectionConfig

FAST = SynthesisConfig(
    initial_samples=6,
    initial_keep=3,
    completion_cap=8,
    max_iterations=2,
    exhaustive_cap=100,
)

TINY_DSL = with_budget(RENO_DSL, max_depth=3, max_nodes=5)


@pytest.fixture(scope="module")
def reno_traces(env_matrix):
    from repro.trace.collect import collect_traces

    return collect_traces(
        "reno",
        CollectionConfig(
            duration=10.0, environments=env_matrix, max_acks_per_trace=6000
        ),
    )


def test_explicit_dsl_skips_classifier_choice(reno_traces):
    report = reverse_engineer(reno_traces, dsl=TINY_DSL, config=FAST)
    assert report.dsl.name == TINY_DSL.name
    assert report.distance < float("inf")
    assert report.expression
    assert report.segment_count > 0


def test_report_summary_renders(reno_traces):
    report = reverse_engineer(reno_traces, dsl=TINY_DSL, config=FAST)
    summary = report.summary()
    assert "handler:" in summary
    assert "classifier:" in summary


def test_budget_overrides(reno_traces):
    report = reverse_engineer(
        reno_traces, dsl=RENO_DSL, config=FAST, max_depth=3, max_nodes=4
    )
    assert report.dsl.max_nodes == 4
    assert report.dsl.name.endswith("-4")


def test_unknown_classifier_rejected(reno_traces):
    with pytest.raises(SynthesisError):
        reverse_engineer(reno_traces, classifier="bogus")


def test_lossless_traces_rejected(env_matrix):
    """A trace with no losses and too few ACKs yields no segments."""
    from repro.trace.model import Trace

    with pytest.raises(SynthesisError):
        reverse_engineer([Trace("x", "y", 1500)], dsl=TINY_DSL, config=FAST)


def test_reverse_engineer_cca_wrapper(env_matrix):
    report = reverse_engineer_cca(
        "reno",
        collection=CollectionConfig(
            duration=8.0, environments=env_matrix[:2], max_acks_per_trace=4000
        ),
        dsl=TINY_DSL,
        config=FAST,
    )
    assert report.result.total_handlers_scored > 0
