"""Multi-flow simulator tests: sharing, fairness, known pathologies."""

import pytest

from repro.cca import make_cca
from repro.errors import SimulationError
from repro.netsim import Environment, fairness_report, simulate_competition


@pytest.fixture(scope="module")
def env():
    return Environment(bandwidth_mbps=10, rtt_ms=50, queue_bdp=1.0)


@pytest.fixture(scope="module")
def reno_pair(env):
    return simulate_competition(
        [make_cca("reno"), make_cca("reno")], env, duration=25.0
    )


def test_requires_flows(env):
    with pytest.raises(SimulationError):
        simulate_competition([], env)


def test_mss_mismatch(env):
    with pytest.raises(SimulationError):
        simulate_competition([make_cca("reno", mss=9000)], env)


def test_start_times_length_checked(env):
    with pytest.raises(SimulationError):
        simulate_competition(
            [make_cca("reno")], env, start_times=[0.0, 1.0]
        )


def test_one_trace_per_flow(reno_pair):
    assert len(reno_pair) == 2
    assert all(trace.cca_name == "reno" for trace in reno_pair)
    assert all(len(trace.acks) > 100 for trace in reno_pair)


def test_total_throughput_bounded(reno_pair, env):
    total = sum(trace.acks[-1].ack_seq for trace in reno_pair)
    elapsed = max(trace.acks[-1].time for trace in reno_pair)
    assert total / elapsed <= env.bandwidth_bytes_per_sec * 1.01


def test_link_shared_not_duplicated(reno_pair, env):
    """Two flows together cannot exceed the link; each alone gets less
    than the whole."""
    for trace in reno_pair:
        rate = trace.acks[-1].ack_seq / trace.acks[-1].time
        assert rate < env.bandwidth_bytes_per_sec


def test_reno_vs_reno_is_fair(reno_pair):
    report = fairness_report(reno_pair, window=(10.0, 25.0))
    assert report["jain_index"] > 0.9


def test_bbr_starves_reno(env):
    """The Ware et al. result the paper cites: BBRv1 takes a grossly
    unfair share against loss-based flows at shallow buffers."""
    traces = simulate_competition(
        [make_cca("bbr"), make_cca("reno")], env, duration=25.0
    )
    report = fairness_report(traces, window=(10.0, 25.0))
    assert report["share_0_bbr"] > 0.65
    assert report["jain_index"] < 0.9


def test_late_start_converges(env):
    traces = simulate_competition(
        [make_cca("reno"), make_cca("reno")],
        env,
        duration=30.0,
        start_times=[0.0, 5.0],
    )
    report = fairness_report(traces, window=(20.0, 30.0))
    assert report["jain_index"] > 0.8


def test_fairness_report_structure(reno_pair):
    report = fairness_report(reno_pair)
    assert set(report) == {
        "jain_index",
        "total_rate",
        "share_0_reno",
        "share_1_reno",
    }
    assert report["share_0_reno"] + report["share_1_reno"] == pytest.approx(
        1.0
    )


def test_three_flows(env):
    traces = simulate_competition(
        [make_cca("reno"), make_cca("cubic"), make_cca("vegas")],
        env,
        duration=20.0,
    )
    assert len(traces) == 3
    report = fairness_report(traces, window=(8.0, 20.0))
    assert 0.0 < report["jain_index"] <= 1.0
    # Delay-based Vegas famously loses to loss-based competition.
    assert report["share_2_vegas"] <= report["share_1_cubic"] + 0.05
