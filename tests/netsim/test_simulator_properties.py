"""Cross-environment invariants of the simulator (short runs)."""

import pytest

from repro.cca import make_cca
from repro.netsim import Environment, simulate


def _delivered(cca_name, env, duration=6.0):
    trace = simulate(make_cca(cca_name), env, duration=duration)
    return trace.acks[-1].ack_seq if trace.acks else 0


def test_more_bandwidth_more_bytes():
    slow = _delivered("reno", Environment(5, 50))
    fast = _delivered("reno", Environment(15, 50))
    assert fast > slow


def test_shorter_rtt_ramps_faster():
    short = _delivered("reno", Environment(10, 10))
    long = _delivered("reno", Environment(10, 100))
    assert short > long


def test_deeper_buffer_fewer_losses():
    shallow = simulate(
        make_cca("reno"), Environment(10, 50, queue_bdp=0.5), duration=10.0
    )
    deep = simulate(
        make_cca("reno"), Environment(10, 50, queue_bdp=4.0), duration=10.0
    )
    assert len(deep.losses) <= len(shallow.losses)


def test_deeper_buffer_higher_max_rtt():
    shallow = simulate(
        make_cca("reno"), Environment(10, 50, queue_bdp=0.5), duration=10.0
    )
    deep = simulate(
        make_cca("reno"), Environment(10, 50, queue_bdp=4.0), duration=10.0
    )

    def max_rtt(trace):
        return max(
            ack.rtt_sample for ack in trace.acks if ack.rtt_sample is not None
        )

    assert max_rtt(deep) > max_rtt(shallow)


@pytest.mark.parametrize("cca_name", ["reno", "cubic", "vegas", "bbr"])
def test_no_ack_for_unsent_data(cca_name):
    env = Environment(10, 50)
    trace = simulate(make_cca(cca_name), env, duration=6.0)
    max_possible = env.bandwidth_bytes_per_sec * 6.0 + env.max_cwnd_bytes
    assert trace.acks[-1].ack_seq <= max_possible


@pytest.mark.parametrize("cca_name", ["reno", "vegas"])
def test_inflight_never_negative(cca_name):
    trace = simulate(make_cca(cca_name), Environment(10, 50), duration=6.0)
    assert all(ack.inflight_bytes >= 0 for ack in trace.acks)


def test_cwnd_records_positive_everywhere():
    for cca_name in ("reno", "cubic", "bbr", "student4"):
        trace = simulate(make_cca(cca_name), Environment(5, 25), duration=6.0)
        assert all(ack.cwnd_bytes >= trace.mss for ack in trace.acks)


# Hypothesis sweep: core conservation invariants hold across the whole
# environment envelope the paper's testbed spans.
from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    bandwidth=st.floats(min_value=5.0, max_value=15.0),
    rtt=st.floats(min_value=10.0, max_value=100.0),
    queue=st.floats(min_value=0.5, max_value=4.0),
)
@settings(max_examples=10, deadline=None)
def test_invariants_across_environment_envelope(bandwidth, rtt, queue):
    env = Environment(bandwidth_mbps=bandwidth, rtt_ms=rtt, queue_bdp=queue)
    trace = simulate(make_cca("reno"), env, duration=4.0)
    assert trace.acks, env.label
    times = [ack.time for ack in trace.acks]
    assert all(b >= a for a, b in zip(times, times[1:]))
    seqs = [ack.ack_seq for ack in trace.acks]
    assert all(b >= a for a, b in zip(seqs, seqs[1:]))
    # Delivery never exceeds what the link could carry.
    assert seqs[-1] <= env.bandwidth_bytes_per_sec * 4.0 + env.max_cwnd_bytes
    # RTT samples never undercut the propagation floor.
    samples = [a.rtt_sample for a in trace.acks if a.rtt_sample is not None]
    assert min(samples) >= env.base_rtt_sec * 0.999
