"""Environment matrix tests."""

import pytest

from repro.netsim.environments import Environment, default_matrix


def test_derived_quantities():
    env = Environment(bandwidth_mbps=10.0, rtt_ms=50.0)
    assert env.bandwidth_bytes_per_sec == 1.25e6
    assert env.base_rtt_sec == 0.05
    assert env.bdp_bytes == 62_500
    assert env.queue_capacity_bytes == 62_500  # 1 BDP


def test_queue_floor_of_four_segments():
    env = Environment(bandwidth_mbps=1.0, rtt_ms=2.0, queue_bdp=0.5)
    assert env.queue_capacity_bytes == 4 * env.mss


def test_max_cwnd_cap():
    env = Environment(bandwidth_mbps=10.0, rtt_ms=50.0)
    assert env.max_cwnd_bytes == 4 * (env.bdp_bytes + env.queue_capacity_bytes)


def test_label():
    assert Environment(5.0, 25.0).label == "5mbps-25ms"


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        Environment(bandwidth_mbps=0.0, rtt_ms=50.0)
    with pytest.raises(ValueError):
        Environment(bandwidth_mbps=5.0, rtt_ms=-1.0)
    with pytest.raises(ValueError):
        Environment(bandwidth_mbps=5.0, rtt_ms=50.0, queue_bdp=0.0)


def test_default_matrix_spans_paper_ranges():
    matrix = default_matrix()
    bandwidths = {env.bandwidth_mbps for env in matrix}
    rtts = {env.rtt_ms for env in matrix}
    assert min(bandwidths) >= 5.0 and max(bandwidths) <= 15.0
    assert min(rtts) >= 10.0 and max(rtts) <= 100.0
    assert len(matrix) == len(bandwidths) * len(rtts)


def test_default_matrix_custom_axes():
    matrix = default_matrix(bandwidths_mbps=(8.0,), rtts_ms=(20.0, 40.0))
    assert [env.label for env in matrix] == ["8mbps-20ms", "8mbps-40ms"]
