"""Simulator integration tests: conservation, dynamics, loss processes."""

import numpy as np
import pytest

from repro.cca import make_cca
from repro.errors import SimulationError
from repro.netsim import Environment, Simulator, simulate


def test_mss_mismatch_rejected(small_env):
    cca = make_cca("reno", mss=9000)
    with pytest.raises(SimulationError):
        Simulator(cca, small_env)


def test_trace_metadata(reno_trace, small_env):
    assert reno_trace.cca_name == "reno"
    assert reno_trace.environment_label == small_env.label
    assert reno_trace.meta["bandwidth_mbps"] == 10.0


def test_ack_times_monotonic(reno_trace):
    times = reno_trace.times()
    assert np.all(np.diff(times) >= 0)


def test_cumulative_acks_monotonic(reno_trace):
    seqs = [ack.ack_seq for ack in reno_trace.acks]
    assert all(b >= a for a, b in zip(seqs, seqs[1:]))


def test_throughput_bounded_by_link(reno_trace, small_env):
    delivered = reno_trace.acks[-1].ack_seq
    elapsed = reno_trace.acks[-1].time
    assert delivered / elapsed <= small_env.bandwidth_bytes_per_sec * 1.01


def test_reno_achieves_reasonable_utilization(reno_trace, small_env):
    delivered = reno_trace.acks[-1].ack_seq
    elapsed = reno_trace.acks[-1].time
    assert delivered / elapsed >= 0.5 * small_env.bandwidth_bytes_per_sec


def test_rtt_samples_at_least_base_rtt(reno_trace, small_env):
    samples = [
        ack.rtt_sample for ack in reno_trace.acks if ack.rtt_sample is not None
    ]
    assert samples
    assert min(samples) >= small_env.base_rtt_sec * 0.999


def test_rtt_bounded_by_queue_delay(reno_trace, small_env):
    max_queue_delay = (
        small_env.queue_capacity_bytes / small_env.bandwidth_bytes_per_sec
    )
    samples = [
        ack.rtt_sample for ack in reno_trace.acks if ack.rtt_sample is not None
    ]
    # Base RTT + full queue + one in-service packet is the physical max.
    bound = small_env.base_rtt_sec + max_queue_delay + 2 * (
        small_env.mss / small_env.bandwidth_bytes_per_sec
    )
    assert max(samples) <= bound * 1.01


def test_loss_based_cca_experiences_losses(reno_trace):
    assert len(reno_trace.losses) >= 2


def test_reno_sawtooth_window_reduction(reno_trace):
    """Across each loss, the visible window must eventually drop ~50%."""
    losses = reno_trace.loss_times()
    cwnd = reno_trace.cwnd_series()
    times = reno_trace.times()
    checked = 0
    for loss_time in losses[1:4]:
        before = cwnd[(times > loss_time - 0.5) & (times <= loss_time)]
        after = cwnd[(times > loss_time) & (times < loss_time + 0.5)]
        if len(before) and len(after):
            assert after.min() < before.max()
            checked += 1
    assert checked


def test_duration_respected(small_env):
    trace = simulate(make_cca("reno"), small_env, duration=5.0)
    assert trace.acks[-1].time <= 5.0


def test_max_acks_respected(small_env):
    trace = simulate(make_cca("reno"), small_env, max_acks=100, duration=30.0)
    assert len(trace.acks) <= 100


def test_vegas_holds_near_bdp(vegas_trace, small_env):
    cwnd = np.array(
        [ack.cwnd_bytes for ack in vegas_trace.acks if not ack.dupack]
    )
    # Steady-state Vegas sits near BDP + alpha..beta packets.
    tail = cwnd[len(cwnd) // 2 :]
    assert small_env.bdp_bytes * 0.8 <= tail.mean() <= small_env.bdp_bytes * 1.6


def test_vegas_avoids_losses(vegas_trace):
    assert len(vegas_trace.losses) <= 2


def test_determinism(small_env):
    first = simulate(make_cca("reno"), small_env, duration=6.0)
    second = simulate(make_cca("reno"), small_env, duration=6.0)
    assert len(first.acks) == len(second.acks)
    assert first.acks[-1].ack_seq == second.acks[-1].ack_seq
    assert [l.time for l in first.losses] == [l.time for l in second.losses]


def test_all_data_eventually_delivered(small_env):
    """In-order delivery: the receiver's cumulative ACK keeps advancing
    despite losses (no permanent stall)."""
    trace = simulate(make_cca("reno"), small_env, duration=15.0)
    last_quarter = [a.ack_seq for a in trace.acks[-len(trace.acks) // 4 :]]
    assert last_quarter[-1] > last_quarter[0]
