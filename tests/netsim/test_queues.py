"""Droptail queue unit tests."""

from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue


def _packet(seq=0, size=1500):
    return Packet(seq=seq, size=size, send_time=0.0)


def test_fifo_order():
    queue = DropTailQueue(10_000)
    first, second = _packet(0), _packet(1500)
    assert queue.offer(first) and queue.offer(second)
    assert queue.pop() is first
    assert queue.pop() is second


def test_backlog_accounting():
    queue = DropTailQueue(10_000)
    queue.offer(_packet())
    assert queue.backlog_bytes == 1500
    queue.offer(_packet(1500))
    assert queue.backlog_bytes == 3000
    queue.pop()
    assert queue.backlog_bytes == 1500


def test_tail_drop_on_overflow():
    queue = DropTailQueue(3000)
    assert queue.offer(_packet(0))
    assert queue.offer(_packet(1500))
    assert not queue.offer(_packet(3000))
    assert queue.drops == 1
    assert len(queue) == 2


def test_exact_fit_is_accepted():
    queue = DropTailQueue(1500)
    assert queue.offer(_packet())
    assert queue.backlog_bytes == 1500


def test_is_empty():
    queue = DropTailQueue(3000)
    assert queue.is_empty
    queue.offer(_packet())
    assert not queue.is_empty
    queue.pop()
    assert queue.is_empty


def test_drop_then_space_frees():
    queue = DropTailQueue(1500)
    queue.offer(_packet(0))
    assert not queue.offer(_packet(1500))
    queue.pop()
    assert queue.offer(_packet(3000))
