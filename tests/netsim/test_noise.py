"""Measurement-noise model tests."""

import pytest

from repro.trace.noise import NoiseModel, apply_noise


def test_noop_returns_same_object(reno_trace):
    assert apply_noise(reno_trace, NoiseModel()) is reno_trace


def test_input_not_mutated(reno_trace):
    before = len(reno_trace.acks)
    first_time = reno_trace.acks[0].time
    apply_noise(reno_trace, NoiseModel(jitter_std=0.01, dropout=0.2, seed=1))
    assert len(reno_trace.acks) == before
    assert reno_trace.acks[0].time == first_time


def test_dropout_removes_records(reno_trace):
    noisy = apply_noise(reno_trace, NoiseModel(dropout=0.3, seed=2))
    ratio = len(noisy.acks) / len(reno_trace.acks)
    assert 0.6 < ratio < 0.8


def test_jitter_keeps_time_monotonic(reno_trace):
    noisy = apply_noise(reno_trace, NoiseModel(jitter_std=0.005, seed=3))
    times = [ack.time for ack in noisy.acks]
    assert all(b >= a for a, b in zip(times, times[1:]))


def test_cwnd_error_perturbs_but_stays_positive(reno_trace):
    noisy = apply_noise(reno_trace, NoiseModel(cwnd_error=0.1, seed=4))
    assert all(ack.cwnd_bytes > 0 for ack in noisy.acks)
    changed = sum(
        1
        for a, b in zip(reno_trace.acks, noisy.acks)
        if a.cwnd_bytes != b.cwnd_bytes
    )
    assert changed > len(noisy.acks) * 0.9


def test_loss_dropout_hides_losses(reno_trace):
    noisy = apply_noise(reno_trace, NoiseModel(loss_dropout=1.0, seed=5))
    assert not noisy.losses
    partial = apply_noise(reno_trace, NoiseModel(loss_dropout=0.5, seed=5))
    assert 0 < len(partial.losses) <= len(reno_trace.losses)


def test_seeded_determinism(reno_trace):
    model = NoiseModel(jitter_std=0.01, dropout=0.1, seed=7)
    first = apply_noise(reno_trace, model)
    second = apply_noise(reno_trace, model)
    assert [a.time for a in first.acks] == [a.time for a in second.acks]


def test_meta_marks_noisy(reno_trace):
    noisy = apply_noise(reno_trace, NoiseModel(dropout=0.1, seed=1))
    assert noisy.meta.get("noisy") == 1.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"dropout": 1.0},
        {"dropout": -0.1},
        {"loss_dropout": 1.5},
        {"jitter_std": -1.0},
        {"cwnd_error": -0.5},
    ],
)
def test_invalid_parameters(kwargs):
    with pytest.raises(ValueError):
        NoiseModel(**kwargs)
