"""CLI tests: argument plumbing and the collect/classify/zoo commands.

Synthesize is exercised with a tiny budget; classify reuses a reduced
scope via the traces file produced by collect.
"""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_zoo_lists_all(capsys):
    assert main(["zoo"]) == 0
    out = capsys.readouterr().out
    for name in ("reno", "cubic", "bbr", "student7"):
        assert name in out


def test_collect_writes_archive(tmp_path, capsys):
    out = tmp_path / "reno.json"
    csv = tmp_path / "reno.csv"
    code = main(
        [
            "collect",
            "--cca",
            "reno",
            "--out",
            str(out),
            "--csv",
            str(csv),
            "--bandwidth",
            "10",
            "--rtt",
            "50",
            "--duration",
            "6",
        ]
    )
    assert code == 0
    data = json.loads(out.read_text())
    assert len(data["traces"]) == 1
    assert csv.read_text().startswith("time,ack_seq")
    assert "wrote 1 traces" in capsys.readouterr().out


def test_collect_with_noise(tmp_path):
    out = tmp_path / "noisy.json"
    main(
        [
            "collect", "--cca", "reno", "--out", str(out),
            "--bandwidth", "10", "--rtt", "50", "--duration", "6",
            "--dropout", "0.1", "--seed", "3",
        ]
    )
    data = json.loads(out.read_text())
    assert data["traces"][0]["meta"].get("noisy") == 1.0


def test_synthesize_from_archive(tmp_path, capsys):
    out = tmp_path / "reno.json"
    main(
        [
            "collect", "--cca", "reno", "--out", str(out),
            "--bandwidth", "10", "--rtt", "50", "--duration", "10",
        ]
    )
    code = main(
        [
            "synthesize",
            "--traces",
            str(out),
            "--dsl",
            "reno",
            "--max-depth",
            "2",
            "--max-nodes",
            "3",
            "--samples",
            "4",
            "--iterations",
            "1",
            "--time-budget",
            "30",
        ]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "handler:" in text
    assert "DSL 'reno-3'" in text


def test_synthesize_run_log_and_json_report(tmp_path, capsys):
    """--run-log writes parseable JSONL covering every iteration, and
    --report json emits a machine-readable result document."""
    archive = tmp_path / "reno.json"
    main(
        [
            "collect", "--cca", "reno", "--out", str(archive),
            "--bandwidth", "10", "--rtt", "50", "--duration", "10",
        ]
    )
    capsys.readouterr()
    run_log = tmp_path / "run.jsonl"
    code = main(
        [
            "synthesize",
            "--traces", str(archive),
            "--dsl", "reno",
            "--max-depth", "2",
            "--max-nodes", "3",
            "--samples", "4",
            "--iterations", "1",
            "--run-log", str(run_log),
            "--report", "json",
        ]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["dsl"] == "reno-3"
    assert report["handler"]
    assert report["iterations"]
    assert report["cache"]["hits"] >= 0
    assert "phase_seconds" in report

    events = [
        json.loads(line) for line in run_log.read_text().splitlines()
    ]
    kinds = [event["event"] for event in events]
    # Input triage (on by default) logs its verdicts before the search.
    assert all(kind == "trace_triaged" for kind in kinds[: kinds.index("run_started")])
    assert "run_started" in kinds
    assert kinds[-1] == "run_finished"
    iteration_events = [e for e in events if e["event"] == "iteration_finished"]
    assert len(iteration_events) == len(report["iterations"])
    assert all("t" in event for event in events)


def test_synthesize_progress_and_summary_table(tmp_path, capsys):
    archive = tmp_path / "reno.json"
    main(
        [
            "collect", "--cca", "reno", "--out", str(archive),
            "--bandwidth", "10", "--rtt", "50", "--duration", "10",
        ]
    )
    capsys.readouterr()
    code = main(
        [
            "synthesize",
            "--traces", str(archive),
            "--dsl", "reno",
            "--max-depth", "2",
            "--max-nodes", "3",
            "--samples", "4",
            "--iterations", "1",
            "--progress",
            "--no-cache",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "handler:" in captured.out
    assert "run summary" in captured.out  # the telemetry table
    assert "iter 1" in captured.err  # --progress writes to stderr
    assert "cache:" not in captured.out  # --no-cache drops cache stats


def test_missing_input_errors():
    with pytest.raises(SystemExit):
        main(["synthesize", "--dsl", "reno"])


def test_unknown_cca_rejected_by_parser():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["collect", "--cca", "nope", "--out", "x"])


def test_race_reports_shares(capsys):
    code = main(
        [
            "race", "--cca", "reno", "reno",
            "--bandwidth-mbps", "10", "--rtt-ms", "40", "--duration", "10",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "share_0_reno" in out
    assert "jain_index" in out


def test_race_rejects_unknown_cca():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["race", "--cca", "notacca"])


def test_stats_command(tmp_path, capsys):
    out = tmp_path / "t.json"
    main(
        [
            "collect", "--cca", "reno", "--out", str(out),
            "--bandwidth", "10", "--rtt", "50", "--duration", "8",
        ]
    )
    capsys.readouterr()
    assert main(["stats", "--traces", str(out)]) == 0
    text = capsys.readouterr().out
    assert "goodput" in text and "rtt min/p50/p95" in text


def test_synthesize_checkpoint_and_resume_flags(tmp_path, capsys):
    """--checkpoint writes a resumable file and --resume replays it
    through the same CLI invocation."""
    archive = tmp_path / "reno.json"
    main(
        [
            "collect", "--cca", "reno", "--out", str(archive),
            "--bandwidth", "10", "--rtt", "50", "--duration", "10",
        ]
    )
    capsys.readouterr()
    ckpt = tmp_path / "run.ckpt"
    base = [
        "synthesize",
        "--traces", str(archive),
        "--dsl", "reno",
        "--max-depth", "2", "--max-nodes", "3",
        "--samples", "4", "--iterations", "1",
    ]
    assert main(base + ["--checkpoint", str(ckpt)]) == 0
    first = capsys.readouterr().out
    assert ckpt.exists() and ckpt.read_text().strip()
    assert main(base + ["--resume", str(ckpt)]) == 0
    second = capsys.readouterr().out

    def handler_line(text):
        return next(l for l in text.splitlines() if l.startswith("handler:"))

    assert handler_line(second) == handler_line(first)


def test_synthesize_parser_accepts_resilience_flags():
    args = build_parser().parse_args(
        [
            "synthesize", "--traces", "t.json",
            "--checkpoint", "c.jsonl", "--resume", "c.jsonl",
            "--max-pool-rebuilds", "2", "--watchdog", "15",
        ]
    )
    assert args.checkpoint == "c.jsonl"
    assert args.resume == "c.jsonl"
    assert args.max_pool_rebuilds == 2
    assert args.watchdog == 15.0


def test_synthesize_no_batch_and_scoring_report(tmp_path, capsys):
    """--report json carries the batched-scoring counters, --no-batch
    zeroes them without changing the result, and the text summary names
    the prune counters."""
    archive = tmp_path / "reno.json"
    main(
        [
            "collect", "--cca", "reno", "--out", str(archive),
            "--bandwidth", "10", "--rtt", "50", "--duration", "10",
        ]
    )
    capsys.readouterr()
    base = [
        "synthesize", "--traces", str(archive), "--dsl", "reno",
        "--max-depth", "2", "--max-nodes", "3",
        "--samples", "4", "--iterations", "1",
    ]
    assert main(base + ["--report", "json"]) == 0
    batched = json.loads(capsys.readouterr().out)
    assert batched["scoring"]["batched_waves"] > 0
    assert batched["scoring"]["lb_pruned"] > 0

    assert main(base + ["--no-batch", "--report", "json"]) == 0
    scalar = json.loads(capsys.readouterr().out)
    assert scalar["scoring"]["batched_waves"] == 0
    assert scalar["handler"] == batched["handler"]
    assert scalar["distance"] == batched["distance"]

    assert main(base) == 0
    text = capsys.readouterr().out
    assert "lb_pruned" in text and "dp_abandoned" in text


# ---------------------------------------------------------------------------
# repro validate


@pytest.fixture()
def trace_archive(tmp_path):
    archive = tmp_path / "reno.json"
    main(
        [
            "collect", "--cca", "reno", "--out", str(archive),
            "--bandwidth", "10", "--rtt", "50", "--duration", "10",
        ]
    )
    return archive


def test_validate_clean_archive(trace_archive, capsys):
    capsys.readouterr()
    assert main(["validate", str(trace_archive)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert "0 refused" in out


def test_validate_repairable_corruption(trace_archive, tmp_path, capsys):
    from repro.trace.corrupt import corrupt_trace
    from repro.trace.io import load_traces

    trace = load_traces(trace_archive)[0]
    hostile = tmp_path / "hostile.json"
    hostile.write_text(corrupt_trace(trace, "duplicate_acks", seed=0).text)
    capsys.readouterr()
    assert main(["validate", str(hostile)]) == 0
    out = capsys.readouterr().out
    assert "REPAIRED" in out
    assert "duplicate_ack" in out
    # Strict policy refuses the same document and signals failure.
    assert main(["validate", str(hostile), "--policy", "strict"]) == 1
    assert "REFUSED" in capsys.readouterr().out


def test_validate_unloadable_document(tmp_path, capsys):
    garbage = tmp_path / "garbage.json"
    garbage.write_text('{"version": 1, "acks"')
    capsys.readouterr()
    assert main(["validate", str(garbage)]) == 1
    out = capsys.readouterr().out
    assert "unloadable" in out


def test_validate_json_report(trace_archive, tmp_path, capsys):
    from repro.trace.corrupt import corrupt_trace
    from repro.trace.io import load_traces

    trace = load_traces(trace_archive)[0]
    hostile = tmp_path / "hostile.json"
    hostile.write_text(corrupt_trace(trace, "record_shuffle", seed=0).text)
    capsys.readouterr()
    code = main(["validate", str(trace_archive), str(hostile), "--json"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["policy"] == "repair"
    assert report["failures"] == 0
    actions = {entry["action"] for entry in report["reports"]}
    assert "repaired" in actions
    repaired = next(
        e for e in report["reports"] if e["action"] == "repaired"
    )
    assert repaired["defects"]
    assert repaired["repairs"]
    assert 0.0 <= repaired["quality"] <= 1.0


def test_validate_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["validate", "x.json", "--policy", "yolo"])


def test_synthesize_trace_policy_off_matches_default(tmp_path, capsys):
    archive = tmp_path / "reno.json"
    main(
        [
            "collect", "--cca", "reno", "--out", str(archive),
            "--bandwidth", "10", "--rtt", "50", "--duration", "10",
        ]
    )
    capsys.readouterr()
    base = [
        "synthesize", "--traces", str(archive), "--dsl", "reno",
        "--max-depth", "2", "--max-nodes", "3", "--samples", "4",
        "--iterations", "1", "--report", "json",
    ]
    assert main(base + ["--trace-policy", "off"]) == 0
    off = json.loads(capsys.readouterr().out)
    assert main(base) == 0
    on = json.loads(capsys.readouterr().out)
    # Clean traces: triage on/off must not change the outcome...
    assert on["handler"] == off["handler"]
    assert on["distance"] == off["distance"]
    # ...but only the triaged run reports input telemetry.
    assert off["triage"] is None
    assert on["triage"]["accepted"] >= 1
    assert on["triage"]["rejected"] == 0
