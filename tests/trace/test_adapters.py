"""External-log adapter tests: imported traces feed the full pipeline."""

import pytest

from repro.errors import TraceError
from repro.trace.adapters import from_ack_log, from_packet_log
from repro.trace.segmentation import infer_loss_times, segment_trace
from repro.trace.signals import extract_signals


def _synthetic_capture(n_segments=200, mss=1500, rtt=0.05, drop_at=120):
    """A hand-built capture: steady clocked transfer with one drop."""
    data = []
    acks = []
    t = 0.0
    for index in range(n_segments):
        t = index * 0.01
        end = (index + 1) * mss
        data.append((t, end))
        if index == drop_at:
            continue  # this segment is lost in the network
        ack_value = end if index < drop_at else drop_at * mss
        if index > drop_at + 2 and index < drop_at + 10:
            ack_value = drop_at * mss  # dupacks while the hole persists
        elif index >= drop_at + 10:
            ack_value = end  # retransmission repaired the hole
        acks.append((t + rtt, ack_value))
    return data, acks


class TestPacketLog:
    def test_roundtrip_structure(self):
        data, acks = _synthetic_capture()
        trace = from_packet_log(data, acks, cca_name="mystery")
        assert trace.cca_name == "mystery"
        assert len(trace.acks) == len(acks)
        times = [ack.time for ack in trace.acks]
        assert times == sorted(times)

    def test_rtt_recovered(self):
        data, acks = _synthetic_capture()
        trace = from_packet_log(data, acks)
        samples = [
            ack.rtt_sample
            for ack in trace.acks
            if ack.rtt_sample is not None
        ]
        assert samples
        assert all(abs(sample - 0.05) < 1e-9 for sample in samples)

    def test_dupacks_marked(self):
        data, acks = _synthetic_capture()
        trace = from_packet_log(data, acks)
        assert any(ack.dupack for ack in trace.acks)

    def test_loss_inferred_from_import(self):
        data, acks = _synthetic_capture()
        trace = from_packet_log(data, acks)
        assert len(infer_loss_times(trace)) >= 1

    def test_segmentation_pipeline_works(self):
        data, acks = _synthetic_capture(n_segments=400, drop_at=200)
        trace = from_packet_log(data, acks)
        segments = segment_trace(trace)
        assert segments
        table = extract_signals(segments[0])
        assert len(table) > 0

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            from_packet_log([], [(0.1, 1500)])
        with pytest.raises(TraceError):
            from_packet_log([(0.0, 1500)], [])

    def test_inflight_window_estimate(self):
        # Send 4 segments, ack the first: 3 remain in flight.
        data = [(0.00, 1500), (0.01, 3000), (0.02, 4500), (0.03, 6000)]
        acks = [(0.05, 1500)]
        trace = from_packet_log(data, acks)
        assert trace.acks[0].cwnd_bytes == 4500.0


class TestAckLog:
    def test_basic_rows(self):
        rows = [
            (0.05 * (index + 1), 1500 * (index + 1), 0.05)
            for index in range(30)
        ]
        trace = from_ack_log(rows)
        assert len(trace.acks) == 30
        assert all(not ack.dupack for ack in trace.acks)

    def test_explicit_cwnd_column(self):
        rows = [(0.05, 1500, 0.05), (0.10, 3000, 0.05)]
        trace = from_ack_log(rows, cwnd=[10_000.0, 12_000.0])
        assert [ack.cwnd_bytes for ack in trace.acks] == [10_000.0, 12_000.0]

    def test_cwnd_length_checked(self):
        with pytest.raises(TraceError):
            from_ack_log([(0.05, 1500, 0.05)], cwnd=[1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            from_ack_log([])

    def test_rate_window_estimate(self):
        # 1500 B every 10 ms with 50 ms RTT -> ~7.5 kB windows.
        rows = [
            (0.01 * (index + 1), 1500 * (index + 1), 0.05)
            for index in range(50)
        ]
        trace = from_ack_log(rows)
        tail = [ack.cwnd_bytes for ack in trace.acks[20:]]
        assert all(6000 <= value <= 9000 for value in tail)
