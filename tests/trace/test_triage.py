"""Unit tests for the input triage guard (validate → repair → admit)."""

import math

import pytest

from repro.errors import TraceError
from repro.runtime import CollectorSink, RunContext, TraceRepairApplied, TraceTriaged
from repro.trace.model import AckRecord, LossRecord, Trace
from repro.trace.triage import (
    DEFECT_CLASSES,
    FATAL_DEFECTS,
    REPAIRABLE_DEFECTS,
    TriagePolicy,
    repair_trace,
    trace_quality,
    triage_trace,
    triage_traces,
    validate_trace,
)


def ack(time, seq=0, acked=1460, rtt=0.05, cwnd=14600.0, inflight=14600,
        dupack=False):
    return AckRecord(
        time=time,
        ack_seq=seq,
        acked_bytes=acked,
        rtt_sample=rtt,
        cwnd_bytes=cwnd,
        inflight_bytes=inflight,
        dupack=dupack,
    )


def make_trace(acks, losses=(), mss=1460):
    return Trace(
        cca_name="test",
        environment_label="lab",
        mss=mss,
        acks=list(acks),
        losses=list(losses),
    )


def well_formed(n=20):
    return make_trace(
        [ack(time=0.05 * i, seq=1460 * (i + 1)) for i in range(n)]
    )


# ---------------------------------------------------------------------------
# Stage 1: validation


def test_clean_trace_reports_clean():
    report = validate_trace(well_formed())
    assert report.is_clean
    assert report.total == 0
    assert "clean" in report.render()


def test_detects_non_monotonic_time():
    trace = well_formed()
    trace.acks[3], trace.acks[7] = trace.acks[7], trace.acks[3]
    report = validate_trace(trace)
    assert report.has("non_monotonic_time")
    assert report.defects[0].index is not None


def test_detects_nonfinite_fields():
    trace = well_formed()
    trace.acks[4] = ack(0.2, seq=1460 * 5, cwnd=float("nan"))
    trace.acks[5] = ack(0.25, seq=1460 * 6, rtt=float("inf"))
    report = validate_trace(trace)
    assert report.counts["nonfinite_field"] == 2


def test_detects_negative_fields():
    trace = well_formed()
    trace.acks[2] = ack(0.1, seq=1460 * 3, cwnd=-10.0)
    report = validate_trace(trace)
    assert report.has("negative_field")


def test_detects_duplicate_acks():
    trace = well_formed()
    trace.acks.insert(5, trace.acks[5])
    report = validate_trace(trace)
    assert report.counts["duplicate_ack"] == 1


def test_detects_ack_seq_regression():
    trace = well_formed()
    trace.acks[6] = ack(0.3, seq=1)  # cumulative ack goes backwards
    report = validate_trace(trace)
    assert report.has("ack_seq_regression")


def test_dupacks_do_not_count_as_regression():
    trace = well_formed()
    trace.acks.insert(6, ack(0.28, seq=1460, acked=0, dupack=True))
    report = validate_trace(trace)
    assert not report.has("ack_seq_regression")


def test_detects_clock_jump():
    trace = well_formed()
    trace.acks.append(ack(500.0, seq=1460 * 21))
    report = validate_trace(trace)
    assert report.has("clock_jump")


def test_detects_loss_outside_span_and_duplicate_epochs():
    trace = make_trace(
        [ack(time=0.05 * i, seq=1460 * (i + 1)) for i in range(20)],
        losses=[
            LossRecord(time=0.5),
            LossRecord(time=0.5),  # duplicated epoch
            LossRecord(time=1e6),  # far outside the ack span
        ],
    )
    report = validate_trace(trace)
    assert report.has("duplicate_loss")
    assert report.has("loss_outside_span")


def test_empty_and_no_rtt_are_fatal():
    assert validate_trace(make_trace([])).fatal == ("empty_trace",)
    no_rtt = make_trace([ack(0.05 * i, seq=1460 * (i + 1), rtt=None)
                         for i in range(5)])
    assert "no_rtt_samples" in validate_trace(no_rtt).fatal
    assert FATAL_DEFECTS == {"empty_trace", "no_rtt_samples"}


def test_every_defect_class_is_classified():
    for code in DEFECT_CLASSES:
        assert code in REPAIRABLE_DEFECTS or code in FATAL_DEFECTS


def test_defect_records_capped_but_counts_exact():
    trace = make_trace(
        [ack(time=0.05 * i, seq=1460 * (i + 1), cwnd=float("nan"))
         for i in range(100)]
        + [ack(5.1, seq=1460 * 101)]
    )
    report = validate_trace(trace)
    assert report.counts["nonfinite_field"] == 100
    materialized = [d for d in report.defects if d.code == "nonfinite_field"]
    assert len(materialized) == 32


# ---------------------------------------------------------------------------
# Stage 2: repair


def test_repair_is_pure_and_clean_trace_untouched():
    trace = well_formed()
    before = list(trace.acks)
    repaired, actions = repair_trace(trace)
    assert repaired is trace  # no defects → same object
    assert actions == []
    assert trace.acks == before


def test_repair_resorts_shuffled_records():
    trace = well_formed()
    trace.acks[3], trace.acks[7] = trace.acks[7], trace.acks[3]
    repaired, actions = repair_trace(trace)
    times = [a.time for a in repaired.acks]
    assert times == sorted(times)
    assert any(a.repair == "resort_time" for a in actions)
    assert validate_trace(repaired).is_clean


def test_repair_dedups_duplicate_acks():
    trace = well_formed()
    trace.acks.insert(5, trace.acks[5])
    repaired, actions = repair_trace(trace)
    assert len(repaired.acks) == 20
    assert any(a.repair == "duplicate_acks" for a in actions)


def test_repair_interpolates_nan_cwnd():
    trace = well_formed()
    trace.acks[4] = ack(0.2, seq=1460 * 5, cwnd=float("nan"))
    repaired, _ = repair_trace(trace)
    value = repaired.acks[4].cwnd_bytes
    assert math.isfinite(value)
    assert value == pytest.approx(14600.0)


def test_repair_excises_nonfinite_times_and_counters():
    trace = well_formed()
    trace.acks[4] = ack(float("nan"), seq=1460 * 5)
    trace.acks[6] = ack(0.3, seq=1460 * 7, acked=float("inf"))
    repaired, _ = repair_trace(trace)
    assert len(repaired.acks) == 18
    assert validate_trace(repaired).is_clean


def test_repair_deskews_large_clock_jump():
    trace = well_formed(40)
    # Inject a +300 s skew over the second half: too long to truncate.
    for index in range(20, 40):
        trace.acks[index] = ack(
            trace.acks[index].time + 300.0, seq=trace.acks[index].ack_seq
        )
    repaired, actions = repair_trace(trace)
    assert len(repaired.acks) == 40  # de-skewed, not dropped
    gaps = [
        b.time - a.time
        for a, b in zip(repaired.acks, repaired.acks[1:])
    ]
    assert max(gaps) < 1.0
    assert any(a.repair == "clock_jump" for a in actions)


def test_repair_truncates_trailing_garbage():
    trace = well_formed(40)
    trace.acks.append(ack(1e5, seq=1460 * 41))
    repaired, actions = repair_trace(trace)
    assert len(repaired.acks) == 40
    action = next(a for a in actions if a.repair == "clock_jump")
    assert "truncated" in action.detail


def test_repair_cleans_loss_records():
    trace = make_trace(
        [ack(time=0.05 * i, seq=1460 * (i + 1)) for i in range(20)],
        losses=[
            LossRecord(time=0.5),
            LossRecord(time=0.5),
            LossRecord(time=1e6),
        ],
    )
    repaired, actions = repair_trace(trace)
    assert len(repaired.losses) == 1
    assert any(a.repair == "loss_records" for a in actions)


def test_quality_reflects_touched_fraction():
    trace = well_formed(10)
    trace.acks.insert(5, trace.acks[5])
    repaired, actions = repair_trace(trace)
    quality = trace_quality(trace, actions)
    assert 0.0 < quality < 1.0
    assert quality == pytest.approx(1.0 - 1 / 11)


# ---------------------------------------------------------------------------
# Stage 3: policy + admission


def test_policy_rejects_unknown_mode():
    with pytest.raises(TraceError):
        TriagePolicy(mode="yolo")
    with pytest.raises(TraceError):
        TriagePolicy(min_quality=1.5)


def test_clean_trace_is_same_object():
    trace = well_formed()
    result = triage_trace(trace, TriagePolicy())
    assert result.action == "clean"
    assert result.trace is trace  # bit-identical downstream behavior
    assert result.quality == 1.0
    assert "quality" not in trace.meta


def test_strict_refuses_any_defect():
    trace = well_formed()
    trace.acks.insert(5, trace.acks[5])
    result = triage_trace(trace, TriagePolicy(mode="strict"))
    assert result.action == "rejected"
    assert not result.accepted
    assert "strict" in result.reason


def test_repair_mode_admits_repaired_trace_with_meta():
    trace = well_formed()
    trace.acks.insert(5, trace.acks[5])
    result = triage_trace(trace, TriagePolicy(mode="repair"))
    assert result.action == "repaired"
    assert result.trace is not trace
    assert result.trace.meta["quality"] == pytest.approx(result.quality)
    assert "duplicate_ack" in result.trace.meta["triage_defects"]
    assert "duplicate_acks" in result.trace.meta["triage_repairs"]


def test_fatal_defects_refused_under_every_policy():
    for mode in ("strict", "repair", "permissive"):
        result = triage_trace(make_trace([]), TriagePolicy(mode=mode))
        assert result.action == "rejected"
        assert "fatal" in result.reason


def test_quality_floor_refuses_mangled_trace():
    trace = well_formed(10)
    for index in range(7):
        trace.acks[index] = ack(
            float("nan"), seq=trace.acks[index].ack_seq
        )
    result = triage_trace(trace, TriagePolicy(min_quality=0.9))
    assert result.action == "rejected"
    assert "below policy floor" in result.reason


def test_triage_traces_emits_telemetry():
    sink = CollectorSink()
    ctx = RunContext(sinks=[sink])
    clean = well_formed()
    dirty = well_formed()
    dirty.acks.insert(5, dirty.acks[5])
    summary = triage_traces([clean, dirty], TriagePolicy(), context=ctx)
    assert summary.accepted == 2
    assert summary.repaired == 1
    triaged = [e for e in sink.events if isinstance(e, TraceTriaged)]
    assert [e.action for e in triaged] == ["clean", "repaired"]
    repairs = [e for e in sink.events if isinstance(e, TraceRepairApplied)]
    assert repairs and repairs[0].repair == "duplicate_acks"


def test_triage_traces_raises_when_all_refused():
    with pytest.raises(TraceError, match="refused every trace"):
        triage_traces([make_trace([])], TriagePolicy())


def test_repair_is_deterministic():
    def dirty():
        trace = well_formed(30)
        trace.acks[3], trace.acks[11] = trace.acks[11], trace.acks[3]
        trace.acks.insert(5, trace.acks[5])
        trace.acks[20] = ack(1.0, seq=1460 * 21, cwnd=float("nan"))
        return trace

    first, _ = repair_trace(dirty())
    second, _ = repair_trace(dirty())
    assert first.acks == second.acks
    assert first.losses == second.losses
