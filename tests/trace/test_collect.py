"""Collection-harness tests."""

import pytest

from repro.netsim import Environment
from repro.trace.collect import (
    CollectionConfig,
    collect_segments,
    collect_traces,
)
from repro.trace.noise import NoiseModel


@pytest.fixture(scope="module")
def quick_config(env_matrix):
    return CollectionConfig(
        duration=8.0, environments=env_matrix, max_acks_per_trace=4000
    )


def test_one_trace_per_environment(quick_config, env_matrix):
    traces = collect_traces("reno", quick_config)
    assert len(traces) == len(env_matrix)
    assert [t.environment_label for t in traces] == [
        env.label for env in env_matrix
    ]


def test_default_config_spans_matrix():
    config = CollectionConfig()
    assert len(config.environments) == 15


def test_quick_variant_is_smaller():
    config = CollectionConfig()
    quick = config.quick()
    assert quick.duration <= config.duration
    assert len(quick.environments) <= len(config.environments)


def test_noise_applied(env_matrix):
    config = CollectionConfig(
        duration=6.0,
        environments=env_matrix[:1],
        noise=NoiseModel(dropout=0.2, seed=3),
    )
    noisy = collect_traces("reno", config)[0]
    clean = collect_traces(
        "reno", CollectionConfig(duration=6.0, environments=env_matrix[:1])
    )[0]
    assert len(noisy.acks) < len(clean.acks)
    assert noisy.meta.get("noisy") == 1.0


def test_collect_segments_caps(quick_config):
    segments = collect_segments("reno", quick_config, max_segments=4)
    assert 0 < len(segments) <= 4


def test_max_acks_cap(env_matrix):
    config = CollectionConfig(
        duration=30.0, environments=env_matrix[:1], max_acks_per_trace=500
    )
    trace = collect_traces("reno", config)[0]
    assert len(trace.acks) <= 500
