"""Congestion-signal extraction tests."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.model import AckRecord, Trace, TraceSegment
from repro.trace.segmentation import segment_trace
from repro.trace.signals import SIGNAL_NAMES, extract_signals


@pytest.fixture(scope="module")
def table(reno_trace):
    segments = segment_trace(reno_trace)
    return extract_signals(segments[1])


def test_all_columns_present(table):
    for name in SIGNAL_NAMES:
        assert name in table.columns
        assert len(table.columns[name]) == len(table)


def test_time_monotonic(table):
    assert np.all(np.diff(table["time"]) >= 0)


def test_min_max_rtt_envelope(table):
    assert np.all(table["min_rtt"] <= table["rtt"] + 1e-12)
    assert np.all(table["max_rtt"] >= table["rtt"] - 1e-12)
    # Running min never increases; running max never decreases.
    assert np.all(np.diff(table["min_rtt"]) <= 1e-12)
    assert np.all(np.diff(table["max_rtt"]) >= -1e-12)


def test_rates_positive(table):
    assert np.all(table["ack_rate"] > 0)


def test_time_since_loss_resets_at_losses(reno_trace):
    segments = segment_trace(reno_trace)
    inner = [s for s in segments if s.preceding_loss_time > 0]
    assert inner, "need a post-loss segment"
    table = extract_signals(inner[0])
    # First ACK after a loss: small loss age; grows along the segment.
    assert table["time_since_loss"][0] < table["time_since_loss"][-1]
    assert np.all(table["time_since_loss"] > 0)


def test_environment_at_uses_candidate_cwnd(table):
    env = table.environment_at(0, cwnd=123456.0)
    assert env["cwnd"] == 123456.0
    assert env["mss"] == table.mss
    assert set(env) >= {"rtt", "min_rtt", "max_rtt", "ack_rate", "wmax"}


def test_ewma_smoother_than_raw(table):
    raw_var = np.var(np.diff(table["rtt"]))
    smooth_var = np.var(np.diff(table["ewma_rtt"]))
    assert smooth_var <= raw_var + 1e-15


def test_coalesce_preserves_acked_total(table):
    merged = table.coalesce(max_rows=32)
    assert len(merged) == 32
    assert merged["acked_bytes"].sum() == pytest.approx(
        table["acked_bytes"].sum()
    )


def test_coalesce_noop_when_short(table):
    assert table.coalesce(max_rows=10**6) is table


def test_coalesce_keeps_cwnd_range(table):
    merged = table.coalesce(max_rows=32)
    assert merged["cwnd"].min() >= table["cwnd"].min() - 1e-9
    assert merged["cwnd"].max() <= table["cwnd"].max() + 1e-9


def test_wmax_estimate(table):
    assert table.wmax == pytest.approx(table["cwnd"][0] / 0.7)


# ---------------------------------------------------------------------------
# Hostile-input guards


def _segment(acks):
    trace = Trace(
        cca_name="test", environment_label="lab", mss=1460, acks=list(acks)
    )
    return TraceSegment(
        trace=trace, start=0, stop=len(acks), preceding_loss_time=0.0
    )


def _ack(time, seq, rtt, cwnd=14600.0, acked=1460, inflight=14600):
    return AckRecord(
        time=time,
        ack_seq=seq,
        acked_bytes=acked,
        rtt_sample=rtt,
        cwnd_bytes=cwnd,
        inflight_bytes=inflight,
    )


def test_head_rtt_none_run_backfills_from_first_sample():
    acks = [_ack(0.05 * i, 1460 * (i + 1), None) for i in range(4)]
    acks += [_ack(0.05 * (4 + i), 1460 * (5 + i), 0.08) for i in range(4)]
    table = extract_signals(_segment(acks))
    # The leading missing-sample run carries the first real RTT instead
    # of a fabricated value poisoning min_rtt for the whole flow.
    assert np.all(table["rtt"] == pytest.approx(0.08))
    assert table["min_rtt"][0] == pytest.approx(0.08)


def test_all_rtt_missing_raises():
    acks = [_ack(0.05 * i, 1460 * (i + 1), None) for i in range(6)]
    with pytest.raises(TraceError, match="no usable RTT"):
        extract_signals(_segment(acks))


def test_nonfinite_rtt_treated_as_missing():
    acks = [_ack(0.05 * i, 1460 * (i + 1), 0.05) for i in range(6)]
    acks[3] = _ack(0.15, 1460 * 4, float("inf"))
    table = extract_signals(_segment(acks))
    assert np.all(np.isfinite(table["rtt"]))
    assert np.all(np.isfinite(table["max_rtt"]))
    assert table["max_rtt"][-1] == pytest.approx(0.05)


def test_nonfinite_cwnd_carries_last_finite():
    acks = [_ack(0.05 * i, 1460 * (i + 1), 0.05, cwnd=14600.0 + i)
            for i in range(6)]
    acks[2] = _ack(0.10, 1460 * 3, 0.05, cwnd=float("nan"))
    table = extract_signals(_segment(acks))
    assert np.all(np.isfinite(table["cwnd"]))
    assert table["cwnd"][2] == pytest.approx(14601.0)


def test_leading_nonfinite_cwnd_backfills():
    acks = [_ack(0.05 * i, 1460 * (i + 1), 0.05, cwnd=float("nan"))
            for i in range(3)]
    acks += [_ack(0.05 * (3 + i), 1460 * (4 + i), 0.05, cwnd=20000.0)
             for i in range(3)]
    table = extract_signals(_segment(acks))
    assert np.all(table["cwnd"][:3] == pytest.approx(20000.0))


def test_no_finite_cwnd_raises():
    acks = [_ack(0.05 * i, 1460 * (i + 1), 0.05, cwnd=float("nan"))
            for i in range(6)]
    with pytest.raises(TraceError, match="no finite cwnd"):
        extract_signals(_segment(acks))


def test_nonfinite_time_raises():
    acks = [_ack(0.05 * i, 1460 * (i + 1), 0.05) for i in range(6)]
    acks[3] = _ack(float("nan"), 1460 * 4, 0.05)
    with pytest.raises(TraceError, match="non-finite timestamps"):
        extract_signals(_segment(acks))
