"""Congestion-signal extraction tests."""

import numpy as np
import pytest

from repro.trace.segmentation import segment_trace
from repro.trace.signals import SIGNAL_NAMES, extract_signals


@pytest.fixture(scope="module")
def table(reno_trace):
    segments = segment_trace(reno_trace)
    return extract_signals(segments[1])


def test_all_columns_present(table):
    for name in SIGNAL_NAMES:
        assert name in table.columns
        assert len(table.columns[name]) == len(table)


def test_time_monotonic(table):
    assert np.all(np.diff(table["time"]) >= 0)


def test_min_max_rtt_envelope(table):
    assert np.all(table["min_rtt"] <= table["rtt"] + 1e-12)
    assert np.all(table["max_rtt"] >= table["rtt"] - 1e-12)
    # Running min never increases; running max never decreases.
    assert np.all(np.diff(table["min_rtt"]) <= 1e-12)
    assert np.all(np.diff(table["max_rtt"]) >= -1e-12)


def test_rates_positive(table):
    assert np.all(table["ack_rate"] > 0)


def test_time_since_loss_resets_at_losses(reno_trace):
    segments = segment_trace(reno_trace)
    inner = [s for s in segments if s.preceding_loss_time > 0]
    assert inner, "need a post-loss segment"
    table = extract_signals(inner[0])
    # First ACK after a loss: small loss age; grows along the segment.
    assert table["time_since_loss"][0] < table["time_since_loss"][-1]
    assert np.all(table["time_since_loss"] > 0)


def test_environment_at_uses_candidate_cwnd(table):
    env = table.environment_at(0, cwnd=123456.0)
    assert env["cwnd"] == 123456.0
    assert env["mss"] == table.mss
    assert set(env) >= {"rtt", "min_rtt", "max_rtt", "ack_rate", "wmax"}


def test_ewma_smoother_than_raw(table):
    raw_var = np.var(np.diff(table["rtt"]))
    smooth_var = np.var(np.diff(table["ewma_rtt"]))
    assert smooth_var <= raw_var + 1e-15


def test_coalesce_preserves_acked_total(table):
    merged = table.coalesce(max_rows=32)
    assert len(merged) == 32
    assert merged["acked_bytes"].sum() == pytest.approx(
        table["acked_bytes"].sum()
    )


def test_coalesce_noop_when_short(table):
    assert table.coalesce(max_rows=10**6) is table


def test_coalesce_keeps_cwnd_range(table):
    merged = table.coalesce(max_rows=32)
    assert merged["cwnd"].min() >= table["cwnd"].min() - 1e-9
    assert merged["cwnd"].max() <= table["cwnd"].max() + 1e-9


def test_wmax_estimate(table):
    assert table.wmax == pytest.approx(table["cwnd"][0] / 0.7)
