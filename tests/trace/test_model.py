"""Trace/segment data-model tests."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.model import AckRecord, LossRecord, Trace, TraceSegment


def _trace(n=20, mss=1500):
    acks = [
        AckRecord(
            time=0.05 * index,
            ack_seq=1500 * (index + 1),
            acked_bytes=1500,
            rtt_sample=0.05 + 0.001 * index if index % 3 else None,
            cwnd_bytes=15_000 + 100.0 * index,
            inflight_bytes=15_000,
        )
        for index in range(n)
    ]
    return Trace(
        cca_name="test",
        environment_label="x",
        mss=mss,
        acks=acks,
        losses=[LossRecord(0.31, "dupack")],
    )


def test_invalid_mss():
    with pytest.raises(TraceError):
        Trace(cca_name="x", environment_label="y", mss=0)


def test_len_and_duration():
    trace = _trace(20)
    assert len(trace) == 20
    assert trace.duration == pytest.approx(0.05 * 19)


def test_empty_trace_duration():
    assert Trace("x", "y", 1500).duration == 0.0


def test_cwnd_series():
    series = _trace().cwnd_series()
    assert series[0] == 15_000
    assert np.all(np.diff(series) == 100.0)


def test_rtt_series_forward_fills():
    trace = _trace()
    series = trace.rtt_series()
    assert len(series) == len(trace)
    assert not np.isnan(series).any()
    # Index 3 has a real sample; index 0 had None and is back-filled.
    assert series[0] == series[1]


def test_rtt_series_requires_samples():
    trace = _trace(5)
    for ack in trace.acks:
        ack.rtt_sample = None
    with pytest.raises(TraceError):
        trace.rtt_series()


def test_segment_bounds_validation():
    trace = _trace(10)
    with pytest.raises(TraceError):
        TraceSegment(trace, start=5, stop=5, preceding_loss_time=0.0)
    with pytest.raises(TraceError):
        TraceSegment(trace, start=0, stop=99, preceding_loss_time=0.0)


def test_segment_views():
    trace = _trace(10)
    segment = TraceSegment(trace, start=2, stop=8, preceding_loss_time=0.1)
    assert len(segment) == 6
    assert segment.mss == 1500
    assert segment.times()[0] == pytest.approx(0.10)
    assert segment.cwnd_series()[0] == 15_200
    assert list(segment.iter_acks()) == trace.acks[2:8]
    assert "test" in segment.label
