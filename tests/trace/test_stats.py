"""Trace-statistics tests."""

import pytest

from repro.errors import TraceError
from repro.trace.model import Trace
from repro.trace.stats import summarize


@pytest.fixture(scope="module")
def stats(reno_trace):
    return summarize(reno_trace)


def test_empty_trace_rejected():
    with pytest.raises(TraceError):
        summarize(Trace("x", "y", 1500))


def test_duration_positive(stats, reno_trace):
    assert 0 < stats.duration <= reno_trace.duration + 1e-9


def test_goodput_below_link_rate(stats, small_env):
    assert 0 < stats.goodput_bps <= small_env.bandwidth_mbps * 1e6


def test_utilization(stats, small_env):
    utilization = stats.utilization(small_env.bandwidth_mbps * 1e6)
    assert 0.5 < utilization <= 1.0


def test_utilization_validates_bandwidth(stats):
    with pytest.raises(ValueError):
        stats.utilization(0.0)


def test_rtt_ordering(stats):
    assert stats.rtt_min <= stats.rtt_p50 <= stats.rtt_p95 <= stats.rtt_max


def test_rtt_inflation_at_least_one(stats):
    assert stats.rtt_inflation() >= 1.0


def test_cwnd_percentiles_ordered(stats):
    assert stats.cwnd_p10 <= stats.cwnd_mean <= stats.cwnd_p90 * 1.5


def test_loss_accounting(stats, reno_trace):
    assert stats.loss_events == len(reno_trace.losses)
    assert stats.loss_rate_per_sec == pytest.approx(
        stats.loss_events / stats.duration
    )


def test_dupack_fraction_in_range(stats):
    assert 0.0 <= stats.dupack_fraction < 1.0


def test_vegas_lower_inflation_than_reno(reno_trace, vegas_trace):
    """Delay-based Vegas queues less: smaller median RTT inflation."""
    assert (
        summarize(vegas_trace).rtt_inflation()
        < summarize(reno_trace).rtt_inflation()
    )


def test_delivered_bytes_positive(stats):
    assert stats.delivered_bytes > 0
    assert stats.ack_count > 0
