"""Trace serialization tests."""

import io

import pytest

from repro.errors import TraceError
from repro.trace.io import (
    export_csv,
    load_trace,
    load_traces,
    save_trace,
    save_traces,
    trace_from_dict,
    trace_to_dict,
)


def test_dict_roundtrip(reno_trace):
    rebuilt = trace_from_dict(trace_to_dict(reno_trace))
    assert rebuilt.cca_name == reno_trace.cca_name
    assert rebuilt.mss == reno_trace.mss
    assert len(rebuilt.acks) == len(reno_trace.acks)
    assert rebuilt.acks[5] == reno_trace.acks[5]
    assert rebuilt.losses == reno_trace.losses
    assert rebuilt.meta == reno_trace.meta


def test_file_roundtrip(reno_trace, tmp_path):
    path = tmp_path / "trace.json"
    save_trace(reno_trace, path)
    loaded = load_trace(path)
    assert loaded.acks[-1] == reno_trace.acks[-1]


def test_bundle_roundtrip(reno_trace, vegas_trace, tmp_path):
    path = tmp_path / "bundle.json"
    save_traces([reno_trace, vegas_trace], path)
    loaded = load_traces(path)
    assert [t.cca_name for t in loaded] == ["reno", "vegas"]


def test_version_check():
    with pytest.raises(TraceError):
        trace_from_dict({"version": 99})


def test_csv_export(reno_trace, tmp_path):
    sink = io.StringIO()
    export_csv(reno_trace, sink)
    lines = sink.getvalue().splitlines()
    assert lines[0].startswith("time,ack_seq")
    assert len(lines) == len(reno_trace.acks) + 1
    # File-path variant too.
    path = tmp_path / "trace.csv"
    export_csv(reno_trace, path)
    assert path.read_text().splitlines()[0] == lines[0]


def test_dupack_flag_survives(reno_trace):
    rebuilt = trace_from_dict(trace_to_dict(reno_trace))
    originals = [ack.dupack for ack in reno_trace.acks]
    assert [ack.dupack for ack in rebuilt.acks] == originals
