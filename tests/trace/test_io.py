"""Trace serialization tests."""

import io
import json

import pytest

from repro.errors import TraceError
from repro.trace.io import (
    export_csv,
    load_trace,
    load_trace_file,
    load_traces,
    save_trace,
    save_traces,
    trace_from_dict,
    trace_to_dict,
)
from repro.trace.model import Trace


def test_dict_roundtrip(reno_trace):
    rebuilt = trace_from_dict(trace_to_dict(reno_trace))
    assert rebuilt.cca_name == reno_trace.cca_name
    assert rebuilt.mss == reno_trace.mss
    assert len(rebuilt.acks) == len(reno_trace.acks)
    assert rebuilt.acks[5] == reno_trace.acks[5]
    assert rebuilt.losses == reno_trace.losses
    assert rebuilt.meta == reno_trace.meta


def test_file_roundtrip(reno_trace, tmp_path):
    path = tmp_path / "trace.json"
    save_trace(reno_trace, path)
    loaded = load_trace(path)
    assert loaded.acks[-1] == reno_trace.acks[-1]


def test_bundle_roundtrip(reno_trace, vegas_trace, tmp_path):
    path = tmp_path / "bundle.json"
    save_traces([reno_trace, vegas_trace], path)
    loaded = load_traces(path)
    assert [t.cca_name for t in loaded] == ["reno", "vegas"]


def test_version_check():
    with pytest.raises(TraceError):
        trace_from_dict({"version": 99})


def test_csv_export(reno_trace, tmp_path):
    sink = io.StringIO()
    export_csv(reno_trace, sink)
    lines = sink.getvalue().splitlines()
    assert lines[0].startswith("time,ack_seq")
    assert len(lines) == len(reno_trace.acks) + 1
    # File-path variant too.
    path = tmp_path / "trace.csv"
    export_csv(reno_trace, path)
    assert path.read_text().splitlines()[0] == lines[0]


def test_dupack_flag_survives(reno_trace):
    rebuilt = trace_from_dict(trace_to_dict(reno_trace))
    originals = [ack.dupack for ack in reno_trace.acks]
    assert [ack.dupack for ack in rebuilt.acks] == originals


# ---------------------------------------------------------------------------
# Hostile-document handling: actionable errors, never a bare crash


def test_unknown_version_error_names_path(reno_trace, tmp_path):
    path = tmp_path / "drift.json"
    data = trace_to_dict(reno_trace)
    data["version"] = 99
    path.write_text(json.dumps(data))
    with pytest.raises(TraceError) as err:
        load_trace(path)
    message = str(err.value)
    assert str(path) in message
    assert "99" in message  # the offending version
    assert "version" in message  # what this reader speaks


def test_malformed_arity_error_names_record(reno_trace, tmp_path):
    path = tmp_path / "cut.json"
    data = trace_to_dict(reno_trace)
    data["acks"][17] = data["acks"][17][:3]
    path.write_text(json.dumps(data))
    with pytest.raises(TraceError) as err:
        load_trace(path)
    message = str(err.value)
    assert str(path) in message
    assert "acks[17]" in message


def test_type_confusion_error_names_cell(reno_trace, tmp_path):
    path = tmp_path / "typed.json"
    data = trace_to_dict(reno_trace)
    data["acks"][4][0] = str(data["acks"][4][0])
    path.write_text(json.dumps(data))
    with pytest.raises(TraceError) as err:
        load_trace(path)
    assert "acks[4]" in str(err.value)


def test_truncated_document_error_is_structured(reno_trace, tmp_path):
    path = tmp_path / "cut.json"
    text = json.dumps(trace_to_dict(reno_trace))
    path.write_text(text[: len(text) // 2])
    with pytest.raises(TraceError, match="truncated or corrupt"):
        load_trace(path)


def test_non_object_document_rejected():
    with pytest.raises(TraceError, match="JSON object"):
        trace_from_dict([1, 2, 3])


def test_missing_keys_listed():
    with pytest.raises(TraceError, match="cca_name"):
        trace_from_dict({"version": 1})


def test_bad_mss_rejected(reno_trace):
    data = trace_to_dict(reno_trace)
    data["mss"] = -1460
    with pytest.raises(TraceError, match="mss"):
        trace_from_dict(data)
    data["mss"] = True  # bool is not an acceptable integer
    with pytest.raises(TraceError, match="mss"):
        trace_from_dict(data)


def test_bundle_error_names_item_index(reno_trace, tmp_path):
    path = tmp_path / "bundle.json"
    save_traces([reno_trace, reno_trace], path)
    data = json.loads(path.read_text())
    data["traces"][1]["acks"][0] = [0.0]
    path.write_text(json.dumps(data))
    with pytest.raises(TraceError, match=r"\[1\]"):
        load_traces(path)


def test_load_trace_file_sniffs_both_shapes(reno_trace, vegas_trace, tmp_path):
    single = tmp_path / "one.json"
    bundle = tmp_path / "many.json"
    save_trace(reno_trace, single)
    save_traces([reno_trace, vegas_trace], bundle)
    assert [t.cca_name for t in load_trace_file(single)] == ["reno"]
    assert [t.cca_name for t in load_trace_file(bundle)] == ["reno", "vegas"]


def test_export_csv_empty_trace_writes_header_only():
    empty = Trace(cca_name="x", environment_label="lab", mss=1460)
    sink = io.StringIO()
    export_csv(empty, sink)
    lines = sink.getvalue().splitlines()
    assert len(lines) == 1
    assert lines[0].startswith("time,ack_seq")
