"""Corruption-corpus tests: determinism, triage outcomes, io round-trips.

The hypothesis properties pin the contract the triage layer gives the
loader: any document — well-formed, corrupted, or random garbage — either
loads (and triages to a structured verdict) or raises a structured
:class:`TraceError`.  Nothing in the ingestion path may crash with a bare
``ValueError``/``KeyError``/``IndexError``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.trace.corrupt import (
    CORRUPTIONS,
    REFUSED,
    REPAIRABLE,
    corrupt_trace,
    corruption_corpus,
)
from repro.trace.io import trace_from_dict, trace_to_dict
from repro.trace.model import AckRecord, Trace
from repro.trace.triage import TriagePolicy, triage_trace


def _load_text(text: str) -> Trace:
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise TraceError(str(exc)) from exc
    return trace_from_dict(data)


# ---------------------------------------------------------------------------
# Corpus mechanics


def test_corpus_covers_every_class(reno_trace):
    corpus = corruption_corpus(reno_trace, seeds=(0, 1))
    assert len(corpus) == 2 * len(CORRUPTIONS)
    assert {s.corruption for s in corpus} == set(CORRUPTIONS)
    assert set(REPAIRABLE) | set(REFUSED) == set(CORRUPTIONS)
    assert not set(REPAIRABLE) & set(REFUSED)


def test_corruption_is_deterministic(reno_trace):
    for name in CORRUPTIONS:
        first = corrupt_trace(reno_trace, name, seed=7)
        second = corrupt_trace(reno_trace, name, seed=7)
        assert first.text == second.text
    # ...and seed-sensitive for at least the randomized classes.
    assert (
        corrupt_trace(reno_trace, "clock_jump", seed=0).text
        != corrupt_trace(reno_trace, "clock_jump", seed=1).text
    )


def test_corruption_does_not_mutate_input(reno_trace):
    before = trace_to_dict(reno_trace)
    corrupt_trace(reno_trace, "record_shuffle", seed=3)
    corrupt_trace(reno_trace, "negative_mss", seed=3)
    assert trace_to_dict(reno_trace) == before


def test_corruptions_actually_corrupt(reno_trace):
    pristine = json.dumps(trace_to_dict(reno_trace))
    for name in CORRUPTIONS:
        sample = corrupt_trace(reno_trace, name, seed=0)
        assert sample.text != pristine, f"{name} was a no-op"


# ---------------------------------------------------------------------------
# Expected triage outcome per class (the differential contract)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("name", sorted(REPAIRABLE))
def test_repairable_classes_are_admitted(reno_trace, name, seed):
    sample = corrupt_trace(reno_trace, name, seed)
    trace = _load_text(sample.text)  # must load: content damage only
    result = triage_trace(trace, TriagePolicy(mode="repair"))
    assert result.accepted, f"{name}[{seed}] refused: {result.reason}"
    if result.action == "repaired":
        assert result.repairs, "admitted without logging a repair"
        assert result.trace.meta["quality"] == pytest.approx(result.quality)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("name", sorted(REFUSED))
def test_refused_classes_are_cleanly_refused(reno_trace, name, seed):
    sample = corrupt_trace(reno_trace, name, seed)
    try:
        trace = _load_text(sample.text)
    except TraceError:
        return  # structured refusal at the loader: the expected path
    result = triage_trace(trace, TriagePolicy(mode="repair"))
    assert result.action == "rejected", f"{name}[{seed}] slipped through"
    assert result.reason


def test_strict_policy_refuses_every_corruption(reno_trace):
    for sample in corruption_corpus(reno_trace, seeds=(0,)):
        try:
            trace = _load_text(sample.text)
        except TraceError:
            continue
        result = triage_trace(trace, TriagePolicy(mode="strict"))
        assert result.action == "rejected", sample.corruption


# ---------------------------------------------------------------------------
# Hypothesis: io round-trip + ingestion never crashes


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=4, max_value=40))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.001, max_value=0.5, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    acks = []
    time = 0.0
    seq = 0
    for index, gap in enumerate(gaps):
        time += gap
        dupack = draw(st.booleans()) and index > 0
        if not dupack:
            seq += draw(st.integers(min_value=1, max_value=3)) * 1460
        acks.append(
            AckRecord(
                time=time,
                ack_seq=seq,
                acked_bytes=0 if dupack else 1460,
                rtt_sample=draw(
                    st.one_of(
                        st.none(),
                        st.floats(
                            min_value=1e-3, max_value=2.0, allow_nan=False
                        ),
                    )
                ),
                cwnd_bytes=draw(
                    st.floats(min_value=1460.0, max_value=1e6, allow_nan=False)
                ),
                inflight_bytes=draw(st.integers(min_value=0, max_value=10**6)),
                dupack=dupack,
            )
        )
    return Trace(
        cca_name="hyp",
        environment_label="fuzz",
        mss=1460,
        acks=acks,
    )


@given(trace=traces())
@settings(max_examples=40, deadline=None)
def test_roundtrip_identity(trace):
    rebuilt = trace_from_dict(trace_to_dict(trace))
    assert rebuilt.acks == trace.acks
    assert rebuilt.losses == trace.losses
    assert rebuilt.mss == trace.mss


@given(
    trace=traces(),
    name=st.sampled_from(sorted(CORRUPTIONS)),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=80, deadline=None)
def test_ingestion_never_crashes_on_corpus(trace, name, seed):
    """Corrupted documents load-or-TraceError; triage returns a verdict."""
    sample = corrupt_trace(trace, name, seed)
    try:
        loaded = _load_text(sample.text)
    except TraceError:
        return  # structured refusal: fine
    result = triage_trace(loaded, TriagePolicy(mode="repair"))
    assert result.action in ("clean", "repaired", "rejected")
    if result.accepted:
        # Whatever was admitted must be internally consistent.
        times = [ack.time for ack in result.trace.acks]
        assert times == sorted(times)


@given(text=st.text(max_size=200))
@settings(max_examples=60, deadline=None)
def test_loader_survives_arbitrary_text(text):
    with pytest.raises(TraceError):
        _load_text(text)
