"""Cross-process determinism of seeded randomness.

Noise injection and concretization sampling must not depend on Python's
per-process string-hash randomization: two runs of the same experiment
(e.g. a test and a benchmark) must see identical "random" perturbations.
These tests pin the seeding scheme by value.
"""

import subprocess
import sys
import textwrap


def _run_snippet(code: str) -> str:
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        capture_output=True,
        text=True,
        check=True,
    ).stdout.strip()


_NOISE_SNIPPET = """
    from repro.cca import make_cca
    from repro.netsim import Environment, simulate
    from repro.trace.noise import NoiseModel, apply_noise

    trace = simulate(make_cca("reno"), Environment(10, 50), duration=5.0)
    noisy = apply_noise(trace, NoiseModel(jitter_std=0.01, dropout=0.2, seed=9))
    print(len(noisy.acks), round(noisy.acks[10].time, 9))
"""

_CONCRETIZE_SNIPPET = """
    from repro.dsl.parser import parse
    from repro.synth.concretize import concretize_all
    from repro.synth.sketch import Sketch

    sketch = Sketch.from_expr(parse("(c0 < c1) ? c2 * cwnd : c3 * cwnd"))
    pool = tuple(float(v) for v in range(10))
    handlers = concretize_all(sketch, pool, cap=10, seed=4)
    print("|".join(str(h) for h in handlers[:3]))
"""


def test_noise_stable_across_processes():
    first = _run_snippet(_NOISE_SNIPPET)
    second = _run_snippet(_NOISE_SNIPPET)
    assert first == second and first


def test_concretization_sampling_stable_across_processes():
    first = _run_snippet(_CONCRETIZE_SNIPPET)
    second = _run_snippet(_CONCRETIZE_SNIPPET)
    assert first == second and first
