"""Loss-inference and segmentation tests."""

from repro.trace.model import AckRecord, LossRecord, Trace
from repro.trace.segmentation import (
    DUPACK_THRESHOLD,
    infer_loss_times,
    segment_trace,
)


def _dupack_trace():
    """A hand-built trace: 30 good ACKs, a triple-dupack episode, 30 more."""
    acks = []
    t = 0.0
    seq = 0
    for _ in range(30):
        t += 0.01
        seq += 1500
        acks.append(AckRecord(t, seq, 1500, 0.05, 30_000.0, 30_000))
    for _ in range(DUPACK_THRESHOLD + 1):
        t += 0.01
        acks.append(AckRecord(t, seq, 0, None, 30_000.0, 30_000, dupack=True))
    for _ in range(30):
        t += 0.01
        seq += 1500
        acks.append(AckRecord(t, seq, 1500, 0.05, 15_000.0, 15_000))
    return Trace("hand", "env", 1500, acks=acks)


def test_infer_from_triple_dupacks():
    trace = _dupack_trace()
    losses = infer_loss_times(trace)
    assert len(losses) == 1
    assert 0.30 < losses[0] < 0.36


def test_explicit_records_merged():
    trace = _dupack_trace()
    trace.losses.append(LossRecord(0.33, "dupack"))  # same event, recorded
    assert len(infer_loss_times(trace)) == 1
    trace.losses.append(LossRecord(0.55, "timeout"))  # distinct event
    assert len(infer_loss_times(trace)) == 2


def test_two_dupacks_not_a_loss():
    trace = _dupack_trace()
    # Strip one dupack so the run is below threshold.
    dupack_rows = [a for a in trace.acks if a.dupack]
    trace.acks.remove(dupack_rows[0])
    trace.acks.remove(dupack_rows[1])
    assert infer_loss_times(trace) == []


def test_segments_split_at_loss():
    segments = segment_trace(_dupack_trace(), min_acks=5)
    assert len(segments) == 2
    first, second = segments
    assert first.stop <= second.start
    # Segment ACK ranges do not include dupacks' zero-progress rows.
    assert all(not ack.dupack for ack in first.acks if ack.acked_bytes)


def test_min_acks_filter():
    segments = segment_trace(_dupack_trace(), min_acks=31)
    assert segments == []


def test_real_trace_segments(reno_trace):
    segments = segment_trace(reno_trace)
    assert segments
    losses = infer_loss_times(reno_trace)
    assert len(losses) >= len(reno_trace.losses)
    for segment in segments:
        assert len(segment) >= 12
        assert segment.start < segment.stop


def test_segments_ordered_and_disjoint(reno_trace):
    segments = segment_trace(reno_trace)
    for left, right in zip(segments, segments[1:]):
        assert left.stop <= right.start


def test_non_monotonic_time_raises_with_index():
    import pytest

    from repro.errors import TraceError

    trace = _dupack_trace()
    trace.acks[5], trace.acks[10] = trace.acks[10], trace.acks[5]
    with pytest.raises(TraceError, match="triage"):
        segment_trace(trace)


def test_nonfinite_time_raises():
    import pytest

    from repro.errors import TraceError

    trace = _dupack_trace()
    trace.acks[5] = AckRecord(
        float("nan"), trace.acks[5].ack_seq, 1500, 0.05, 30_000.0, 30_000
    )
    with pytest.raises(TraceError, match="non-finite"):
        segment_trace(trace)
