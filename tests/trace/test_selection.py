"""Diverse segment-selection tests (§3.2 strategy)."""

import random

import numpy as np

from repro.trace.selection import (
    segment_shape,
    select_diverse_segments,
    shape_distance,
)


def test_shape_is_fixed_length(reno_segments):
    shape = segment_shape(reno_segments[0])
    assert shape.shape == (64,)
    assert np.isfinite(shape).all()


def test_shape_scale_invariance(reno_segments):
    """The signature divides by the mean, so absolute window size drops out."""
    shape = segment_shape(reno_segments[1])
    assert shape.mean() == 1.0 or abs(shape.mean() - 1.0) < 1e-9


def test_shape_distance_identity(reno_segments):
    shape = segment_shape(reno_segments[0])
    assert shape_distance(shape, shape) == 0.0


def test_select_all_when_count_exceeds(reno_segments):
    picked = select_diverse_segments(reno_segments, len(reno_segments) + 5)
    assert picked == list(reno_segments)


def test_select_exact_count(reno_segments):
    if len(reno_segments) < 5:
        return
    picked = select_diverse_segments(reno_segments, 4, rng=random.Random(1))
    assert len(picked) == 4
    assert len({id(segment) for segment in picked}) == 4


def test_selection_deterministic_with_seed(reno_segments):
    if len(reno_segments) < 5:
        return
    first = select_diverse_segments(reno_segments, 4, rng=random.Random(9))
    second = select_diverse_segments(reno_segments, 4, rng=random.Random(9))
    assert [id(s) for s in first] == [id(s) for s in second]


def test_selection_prefers_diversity(reno_segments):
    """The farthest-pairing half must include at least one segment far
    from its anchor, compared to uniform sampling of the same size."""
    if len(reno_segments) < 6:
        return
    picked = select_diverse_segments(reno_segments, 4, rng=random.Random(3))
    shapes = [segment_shape(segment) for segment in picked]
    spread = max(
        shape_distance(a, b) for a in shapes for b in shapes
    )
    assert spread > 0.0
