"""Integration: the full pipeline recovers family structure end-to-end.

Scaled-down versions of the paper's §5 headline results: synthesis over
real (simulated) traces recovers handlers with the right *ingredients* —
Reno-family rows produce additive `reno_inc`-style growth; degenerate
constant-window CCAs produce constant handlers.
"""

import pytest

from repro.dsl import ast
from repro.dsl.families import RENO_DSL, VEGAS_DSL, with_budget
from repro.netsim import Environment
from repro.synth.refinement import SynthesisConfig, synthesize
from repro.synth.scoring import Scorer
from repro.trace.collect import CollectionConfig, collect_segments

FAST = SynthesisConfig(
    initial_samples=8,
    initial_keep=4,
    completion_cap=12,
    max_iterations=2,
    exhaustive_cap=200,
    series_budget=96,
)


def _segments(cca_name):
    config = CollectionConfig(
        duration=12.0,
        environments=(
            Environment(bandwidth_mbps=5, rtt_ms=25),
            Environment(bandwidth_mbps=10, rtt_ms=50),
        ),
        max_acks_per_trace=8000,
    )
    return collect_segments(cca_name, config, max_segments=5)


@pytest.mark.slow
def test_reno_synthesis_recovers_additive_structure():
    segments = _segments("reno")
    dsl = with_budget(RENO_DSL, max_depth=3, max_nodes=5)
    result = synthesize(segments, dsl, FAST)
    handler = result.best.handler
    # The window must appear (stateful growth), and the handler must beat
    # both a flat window and an over-aggressive strawman.
    used = ast.signals_used(handler) | ast.macros_used(handler)
    assert "cwnd" in used
    scorer = Scorer(series_budget=96)
    from repro.dsl.parser import parse

    assert result.distance < scorer.score_handler(parse("2 * mss"), segments)
    assert result.distance < scorer.score_handler(
        parse("cwnd + acked_bytes"), segments
    )


@pytest.mark.slow
def test_constant_window_cca_synthesizes_constant():
    segments = _segments("student5")
    dsl = with_budget(VEGAS_DSL, max_depth=3, max_nodes=5)
    result = synthesize(segments, dsl, FAST)
    # The paper's result for student 5 was `2 * mss`: a constant handler
    # with essentially zero distance.
    assert result.distance < 1.0
    assert ast.depth(result.best.handler) <= 3


@pytest.mark.slow
def test_interrupted_search_returns_best_so_far():
    segments = _segments("reno")
    dsl = with_budget(RENO_DSL, max_depth=3, max_nodes=5)
    config = SynthesisConfig(
        initial_samples=8,
        initial_keep=4,
        completion_cap=8,
        max_iterations=5,
        exhaustive_cap=50,
        time_budget_seconds=3.0,
        series_budget=96,
    )
    result = synthesize(segments, dsl, config)
    assert result.best.distance < float("inf")
    assert result.elapsed_seconds < 60
