"""The triage differential harness (the tentpole's acceptance gate).

Three properties, end to end through :func:`reverse_engineer`:

1. **Clean differential** — on well-formed traces, a run with triage on
   is *bit-identical* to a run with triage off: same ranking, same
   distances, same expression.  Triage must be a pure guard, never a
   behavior change for good input.
2. **Hostile corpus** — every corruption class in
   :mod:`repro.trace.corrupt` is either repaired (the pipeline completes
   and logs the repair) or cleanly refused (a structured error, never a
   crash or a silent mis-rank).
3. **Quorum floor** — with low-quality traces in the mix, the scored
   working set never drops below the configured minimum, and degraded
   runs say so.
"""

import json

import pytest

from repro.dsl import RENO_DSL, with_budget
from repro.errors import SynthesisError, TraceError
from repro.pipeline import reverse_engineer
from repro.runtime import CollectorSink, DegradedInputs, RunContext
from repro.synth.refinement import SynthesisConfig
from repro.synth.scoring import QuorumConfig
from repro.trace.collect import CollectionConfig, collect_traces
from repro.trace.corrupt import REFUSED, REPAIRABLE, corrupt_trace
from repro.trace.io import trace_from_dict
from repro.trace.triage import TriagePolicy, triage_trace

FAST = SynthesisConfig(
    initial_samples=6,
    initial_keep=3,
    completion_cap=8,
    max_iterations=2,
    exhaustive_cap=100,
)

TINY_DSL = with_budget(RENO_DSL, max_depth=3, max_nodes=5)


@pytest.fixture(scope="module")
def clean_traces(env_matrix):
    return collect_traces(
        "reno",
        CollectionConfig(
            duration=10.0, environments=env_matrix, max_acks_per_trace=6000
        ),
    )


def _load(sample):
    return trace_from_dict(json.loads(sample.text))


# ---------------------------------------------------------------------------
# 1. Clean differential: triage on == triage off, bit for bit


def test_clean_traces_rank_identically_with_triage_on_and_off(clean_traces):
    off = reverse_engineer(clean_traces, dsl=TINY_DSL, config=FAST)
    on = reverse_engineer(
        clean_traces,
        dsl=TINY_DSL,
        config=FAST,
        trace_policy="repair",
        quorum=QuorumConfig(),
    )
    assert on.expression == off.expression
    assert on.distance == off.distance  # bit-identical, not approx
    assert on.segment_count == off.segment_count
    ranked_on = [
        (c.distance, str(c.handler)) for c in on.result.ranking
    ] if hasattr(on.result, "ranking") else None
    ranked_off = [
        (c.distance, str(c.handler)) for c in off.result.ranking
    ] if hasattr(off.result, "ranking") else None
    assert ranked_on == ranked_off
    # Triage confirmed every trace clean; quorum excluded nothing.
    assert on.triage is not None
    assert on.triage.accepted == len(clean_traces)
    assert on.triage.repaired == 0
    assert on.quorum is not None and not on.quorum.excluded


def test_clean_traces_admitted_as_same_objects(clean_traces):
    for trace in clean_traces:
        result = triage_trace(trace, TriagePolicy())
        assert result.trace is trace  # identity, the root of bit-equality


# ---------------------------------------------------------------------------
# 2. Hostile corpus: repaired or cleanly refused, end to end


@pytest.mark.parametrize("name", sorted(REPAIRABLE))
def test_repairable_corruption_still_synthesizes(clean_traces, name):
    sample = corrupt_trace(clean_traces[0], name, seed=0)
    hostile = [_load(sample)] + list(clean_traces[1:])
    sink = CollectorSink()
    report = reverse_engineer(
        hostile,
        dsl=TINY_DSL,
        config=FAST,
        trace_policy="repair",
        context=RunContext(sinks=[sink]),
    )
    assert report.distance < float("inf")
    triaged = sink.of_kind("trace_triaged")
    assert triaged, "triage left no telemetry"
    # Either the corruption survived serialization as a defect (then a
    # repair event was logged) or it round-tripped to clean; silent
    # admission of a defective trace is the failure mode this pins.
    repaired = [e for e in triaged if e.action == "repaired"]
    if repaired:
        assert sink.of_kind("trace_repair")


@pytest.mark.parametrize("name", sorted(REFUSED))
def test_refused_corruption_never_crashes(clean_traces, name):
    sample = corrupt_trace(clean_traces[0], name, seed=0)
    try:
        hostile = _load(sample)
    except (TraceError, ValueError):
        return  # refused at the loader with a structured error
    result = triage_trace(hostile, TriagePolicy())
    assert result.action == "rejected"
    assert result.reason


def test_all_traces_refused_is_a_structured_failure(clean_traces):
    empty = trace_from_dict(
        json.loads(corrupt_trace(clean_traces[0], "empty_acks", seed=0).text)
    )
    with pytest.raises(SynthesisError, match="refused every trace"):
        reverse_engineer(
            [empty], dsl=TINY_DSL, config=FAST, trace_policy="repair"
        )


# ---------------------------------------------------------------------------
# 3. Quorum floor under degraded inputs


def test_quorum_floor_holds_for_degraded_inputs(clean_traces):
    # Mark every trace low-quality after a forced repair: dupe one ack in
    # each so triage repairs them and records a sub-threshold quality.
    hostile = []
    for trace in clean_traces:
        copy = trace_from_dict(json.loads(
            corrupt_trace(trace, "duplicate_acks", seed=1).text
        ))
        hostile.append(copy)
    sink = CollectorSink()
    report = reverse_engineer(
        hostile,
        dsl=TINY_DSL,
        config=FAST,
        trace_policy="repair",
        quorum=QuorumConfig(min_segments=2, quality_threshold=1.0),
        context=RunContext(sinks=[sink]),
    )
    # Every segment is below the (impossible) threshold, so the quorum
    # backfilled exactly the floor and flagged the run as degraded.
    assert report.quorum is not None
    assert len(report.quorum.kept) >= 2
    assert report.quorum.degraded
    degraded = [
        e for e in sink.events if isinstance(e, DegradedInputs)
    ]
    assert degraded and degraded[0].min_quorum == 2
    assert report.segment_count == len(report.quorum.kept)
    assert "degraded" in report.summary()
