"""Integration: the optimization formulation tolerates noisy traces.

The paper's central argument against decision-problem synthesizers
(Mister880): with measurement noise, no candidate reproduces the trace
*exactly*, so exact matching rejects even the true algorithm, while a
distance-minimizing formulation still ranks it best (§2.2, §3).

These tests replay the expert Reno handler against noisy Reno traces and
check (a) the distance degrades gracefully with noise, (b) the correct
handler still beats rivals under substantial noise, and (c) an
exact-match criterion — Mister880's — fails even for the truth.
"""

import numpy as np
import pytest

from repro.dsl.parser import parse
from repro.synth.replay import replay_handler
from repro.synth.scoring import Scorer
from repro.trace.collect import CollectionConfig, collect_segments
from repro.trace.noise import NoiseModel

RENO = "cwnd + 0.7 * reno_inc"
RIVALS = ("2 * mss", "cwnd + 8 * rtt * reno_inc", "0.8 * ack_rate * min_rtt")


def _segments(env_matrix, noise: NoiseModel):
    config = CollectionConfig(
        duration=10.0,
        environments=env_matrix[:2],
        noise=noise,
        max_acks_per_trace=6000,
    )
    return collect_segments("reno", config, max_segments=4)


@pytest.fixture(scope="module")
def noisy_segments(env_matrix):
    return _segments(
        env_matrix,
        NoiseModel(jitter_std=0.003, dropout=0.08, cwnd_error=0.05, seed=21),
    )


@pytest.fixture(scope="module")
def clean_segments(env_matrix):
    return _segments(env_matrix, NoiseModel())


def test_distance_degrades_gracefully(clean_segments, noisy_segments):
    scorer = Scorer(series_budget=96)
    clean = scorer.score_handler(parse(RENO), clean_segments)
    noisy = scorer.score_handler(parse(RENO), noisy_segments)
    assert noisy >= clean * 0.5  # noise can't make it *better* by much
    assert noisy < clean + 5.0  # ...nor catastrophically worse


def test_true_handler_still_wins_under_noise(noisy_segments):
    scorer = Scorer(series_budget=96)
    truth = scorer.score_handler(parse(RENO), noisy_segments)
    for rival in RIVALS:
        assert truth < scorer.score_handler(parse(rival), noisy_segments), rival


def test_exact_match_fails_on_noise(noisy_segments):
    """Mister880's criterion: the candidate must reproduce the observed
    outputs exactly.  Even the true algorithm cannot."""
    scorer = Scorer(series_budget=96)
    table = scorer.table_for(noisy_segments[0])
    synthesized = replay_handler(parse(RENO), table)
    observed = table.observed_cwnd()
    assert not np.allclose(synthesized, observed, rtol=1e-3)


def test_exact_match_criterion_would_also_fail_clean(clean_segments):
    """Even without injected noise, vantage-point effects (dupack gaps,
    loss-epoch boundaries) break exact matching — distance is the only
    workable criterion."""
    scorer = Scorer(series_budget=96)
    table = scorer.table_for(clean_segments[0])
    synthesized = replay_handler(parse(RENO), table)
    observed = table.observed_cwnd()
    assert not np.array_equal(synthesized, observed)
    # ...while the distance is small relative to the window scale.
    distance = scorer.score_handler(parse(RENO), clean_segments[:1])
    assert distance < observed.mean() / table.mss
