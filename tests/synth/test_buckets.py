"""Bucketization tests (§4.4)."""

import itertools

import pytest

from repro.dsl import CUBIC_DSL, RENO_DSL, ast, with_budget
from repro.synth.buckets import (
    Bucket,
    bucket_key_for,
    coherent_op_sets,
    make_buckets,
)
from repro.synth.enumerator import enumerate_sketches
from repro.synth.sketch import Sketch

SMALL_RENO = with_budget(RENO_DSL, max_depth=3, max_nodes=5)


def test_coherence_rules():
    keys = coherent_op_sets(RENO_DSL)
    for key in keys:
        has_cond = "cond" in key
        has_pred = bool(key & {"cmp", "modeq"})
        assert has_cond == has_pred, key


def test_empty_key_present():
    assert frozenset() in coherent_op_sets(RENO_DSL)


def test_key_count_reno():
    # 4 arithmetic ops -> 16 subsets; cond variants: none, {cond,cmp},
    # {cond,modeq}, {cond,cmp,modeq} -> 16 * 4 = 64.
    assert len(coherent_op_sets(RENO_DSL)) == 64


def test_key_count_cubic_dsl():
    # Cubic adds cube/cbrt: 6 free ops -> 64 subsets * 4 = 256.
    assert len(coherent_op_sets(CUBIC_DSL)) == 256


def test_buckets_partition_the_space():
    """Every enumerated sketch lands in exactly one coherent bucket."""
    keys = set(coherent_op_sets(SMALL_RENO))
    for sketch in itertools.islice(enumerate_sketches(SMALL_RENO), 300):
        assert bucket_key_for(sketch) in keys


def test_bucket_draw_extends_monotonically():
    bucket = Bucket(dsl=SMALL_RENO, key=frozenset({"+"}))
    first = bucket.draw(5)
    assert len(first) == 5
    second = bucket.draw(8)
    assert len(second) == 3
    assert bucket.drawn[:5] == first


def test_bucket_draw_idempotent_at_target():
    bucket = Bucket(dsl=SMALL_RENO, key=frozenset({"+"}))
    bucket.draw(5)
    assert bucket.draw(5) == []


def test_bucket_exhaustion():
    bucket = Bucket(dsl=SMALL_RENO, key=frozenset())
    bucket.draw(10_000)
    assert bucket.exhausted
    # Leaf-only sketches: the DSL's leaves that are bytes-valued.
    assert all(sketch.size == 1 for sketch in bucket.drawn)


def test_bucket_members_match_key():
    bucket = Bucket(dsl=SMALL_RENO, key=frozenset({"+", "*"}))
    for sketch in bucket.draw(50):
        assert ast.operators_used(sketch.expr) == frozenset({"+", "*"})


def test_make_buckets_unique_keys():
    buckets = make_buckets(SMALL_RENO)
    keys = [bucket.key for bucket in buckets]
    assert len(keys) == len(set(keys))


def test_bucket_label():
    assert Bucket(dsl=SMALL_RENO, key=frozenset()).label == "{}"
    assert (
        Bucket(dsl=SMALL_RENO, key=frozenset({"+", "cmp"})).label == "{+,cmp}"
    )
