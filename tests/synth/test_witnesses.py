"""Tests for constructive bucket witnesses (the SMT-model analogue)."""

import pytest

from repro.dsl import RENO_DSL, VEGAS_DSL, ast, is_simplifiable, with_budget
from repro.dsl.typecheck import infer_unit
from repro.synth.buckets import coherent_op_sets
from repro.synth.enumerator import bucket_witnesses, min_feasible_size
from repro.units import BYTES

DSL = with_budget(VEGAS_DSL, max_depth=5, max_nodes=17)


def test_witnesses_use_exact_operator_set():
    key = frozenset({"*", "+", "cmp", "cond"})
    witnesses = bucket_witnesses(DSL, key, count=4)
    assert witnesses
    for sketch in witnesses:
        assert sketch.operators == key


def test_witnesses_satisfy_all_enumeration_constraints():
    for key in (
        frozenset({"+", "cmp", "cond"}),
        frozenset({"*", "/", "modeq", "cond"}),
        frozenset({"+", "-"}),
    ):
        for sketch in bucket_witnesses(DSL, key, count=4):
            assert sketch.size <= DSL.max_nodes
            assert sketch.depth <= DSL.max_depth
            assert not is_simplifiable(sketch.expr), str(sketch)
            unit = infer_unit(sketch.expr)
            assert unit is None or unit == BYTES


def test_witnesses_unique():
    key = frozenset({"+", "cmp", "cond"})
    witnesses = bucket_witnesses(DSL, key, count=4)
    exprs = [sketch.expr for sketch in witnesses]
    assert len(exprs) == len(set(exprs))


def test_incoherent_key_yields_nothing():
    assert bucket_witnesses(DSL, frozenset({"cond"})) == []
    assert bucket_witnesses(DSL, frozenset({"cmp"})) == []


def test_most_coherent_buckets_get_witnesses():
    """Across all coherent keys, only a small minority (infeasible under
    the node budget or witness-shape limitations) may come back empty."""
    empty = 0
    feasible = 0
    for key in coherent_op_sets(DSL):
        if min_feasible_size(key) > DSL.max_nodes:
            continue
        feasible += 1
        if not bucket_witnesses(DSL, key, count=2):
            empty += 1
    assert feasible > 30
    assert empty <= 0.25 * feasible


def test_reno_dsl_witnesses():
    dsl = with_budget(RENO_DSL, max_depth=4, max_nodes=9)
    witnesses = bucket_witnesses(dsl, frozenset({"+", "cmp", "cond"}), count=3)
    assert witnesses
    for sketch in witnesses:
        assert ast.signals_used(sketch.expr) <= set(dsl.signals)
