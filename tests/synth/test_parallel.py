"""Parallel-scoring tests: worker results must match serial results."""

import pytest

from repro.dsl.parser import parse
from repro.synth.parallel import score_sketches
from repro.synth.scoring import Scorer
from repro.synth.sketch import Sketch

SKETCH_TEXTS = [
    "cwnd + c0 * reno_inc",
    "cwnd + reno_inc",
    "c0 * mss",
    "cwnd + mss",
    "(c0 < c1) ? cwnd + mss : cwnd",
]


@pytest.fixture(scope="module")
def sketches():
    return [Sketch.from_expr(parse(text)) for text in SKETCH_TEXTS]


@pytest.fixture(scope="module")
def scorer():
    return Scorer(constant_pool=(0.5, 1.0), completion_cap=8)


def test_serial_alignment(scorer, sketches, reno_segments):
    working = reno_segments[:2]
    results = score_sketches(scorer, sketches, working, workers=1)
    assert len(results) == len(sketches)
    for sketch, result in zip(sketches, results):
        assert scorer.score_sketch(sketch, working).distance == pytest.approx(
            result.distance
        )


def test_parallel_matches_serial(scorer, sketches, reno_segments):
    working = reno_segments[:2]
    serial = score_sketches(scorer, sketches, working, workers=1)
    parallel = score_sketches(scorer, sketches, working, workers=2)
    assert [r.distance for r in parallel] == pytest.approx(
        [r.distance for r in serial]
    )
    assert [r.handler for r in parallel] == [r.handler for r in serial]


def test_small_batches_stay_serial(scorer, sketches, reno_segments):
    # Fewer than 4 sketches never forks (pure serial path).
    results = score_sketches(
        scorer, sketches[:2], reno_segments[:1], workers=8
    )
    assert len(results) == 2
