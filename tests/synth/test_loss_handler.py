"""Loss-handler synthesis extension tests.

Ground truth: Reno halves on loss, Scalable cuts to 7/8, Westwood sets
the window to its bandwidth-delay estimate.  The extension should
recover multiplicative-decrease structure with roughly the right factor.
"""

import pytest

from repro.cca import make_cca
from repro.dsl import RENO_DSL, ast, with_budget
from repro.dsl.evaluate import evaluate
from repro.errors import SynthesisError
from repro.netsim import Environment, simulate
from repro.synth.loss_handler import (
    extract_loss_samples,
    synthesize_loss_handler,
)

DSL = with_budget(RENO_DSL, max_depth=2, max_nodes=3)


@pytest.fixture(scope="module")
def reno_traces(env_matrix):
    return [
        simulate(make_cca("reno"), env, duration=20.0) for env in env_matrix
    ]


@pytest.fixture(scope="module")
def scalable_traces(env_matrix):
    return [
        simulate(make_cca("scalable"), env, duration=20.0)
        for env in env_matrix
    ]


def test_extract_loss_samples(reno_traces):
    samples = extract_loss_samples(reno_traces[1])
    assert len(samples) >= 1
    for sample in samples:
        assert sample.cwnd_before > 0
        assert sample.cwnd_after > 0
        assert sample.env["cwnd"] == sample.cwnd_before
        # Loss reactions shrink the window.
        assert sample.cwnd_after < sample.cwnd_before * 1.2


def test_too_few_samples_rejected():
    from repro.trace.model import Trace

    with pytest.raises(SynthesisError):
        synthesize_loss_handler([Trace("x", "y", 1500)], DSL)


def test_reno_loss_handler_is_multiplicative_decrease(reno_traces):
    result = synthesize_loss_handler(reno_traces, DSL)
    assert result.error < 0.35
    # Evaluate the recovered handler at a reference state: it must cut
    # the window to roughly half (Reno's beta in [0.4, 0.75] here, since
    # the visible post-loss window includes recovery effects).
    env = {
        "cwnd": 100_000.0,
        "mss": 1500.0,
        "acked_bytes": 1500.0,
        "time_since_loss": 1.0,
    }
    predicted = evaluate(result.handler, env)
    assert 0.3 * env["cwnd"] <= predicted <= 0.8 * env["cwnd"]


def test_scalable_cuts_less_than_reno(reno_traces, scalable_traces):
    """Scalable's 0.875 decrease must yield a gentler recovered factor
    than Reno's 0.5."""
    env = {
        "cwnd": 100_000.0,
        "mss": 1500.0,
        "acked_bytes": 1500.0,
        "time_since_loss": 1.0,
    }
    reno = synthesize_loss_handler(reno_traces, DSL)
    scalable = synthesize_loss_handler(scalable_traces, DSL)
    assert evaluate(scalable.handler, env) > evaluate(reno.handler, env)


def test_ranking_sorted_and_bounded(reno_traces):
    result = synthesize_loss_handler(reno_traces, DSL, keep_top=3)
    errors = [error for _, error in result.ranking]
    assert errors == sorted(errors)
    assert len(result.ranking) <= 3
    assert result.candidates_scored > 0
    assert result.expression


def test_handler_depends_on_state(reno_traces):
    """The winner must read the window (a pure constant cannot track
    multiplicative decrease across environments)."""
    result = synthesize_loss_handler(reno_traces, DSL)
    used = ast.signals_used(result.handler) | ast.macros_used(result.handler)
    assert used, result.expression
