"""Refinement-loop tests (Algorithm 1) on a tiny DSL so they stay fast."""

import pytest

from repro.dsl import RENO_DSL, with_budget
from repro.errors import SynthesisError
from repro.synth.refinement import SynthesisConfig, synthesize

TINY = with_budget(RENO_DSL, max_depth=3, max_nodes=4)

FAST = SynthesisConfig(
    initial_samples=6,
    initial_keep=3,
    completion_cap=8,
    max_iterations=2,
    exhaustive_cap=120,
)


@pytest.fixture(scope="module")
def result(reno_segments):
    return synthesize(reno_segments[:6], TINY, FAST)


def test_returns_best_handler(result):
    assert result.best.distance < float("inf")
    assert result.expression


def test_handler_has_no_holes(result):
    from repro.dsl import ast

    assert not ast.holes(result.best.handler)


def test_iteration_records(result):
    assert 1 <= len(result.iterations) <= 2
    first = result.iterations[0]
    assert first.index == 1
    assert first.samples_per_bucket == 6
    assert first.ranking  # non-empty ranking
    scores = [score for _, score in first.ranking]
    assert scores == sorted(scores)


def test_top_k_with_ties(result):
    first = result.iterations[0]
    cutoff_scores = dict(first.ranking)
    kept_scores = [cutoff_scores[key] for key in first.kept]
    dropped = [
        score for key, score in first.ranking if key not in set(first.kept)
    ]
    if dropped:
        assert max(kept_scores) <= min(dropped)


def test_schedule_growth(reno_segments):
    config = SynthesisConfig(
        initial_samples=4,
        initial_keep=4,
        completion_cap=4,
        max_iterations=3,
        exhaustive_cap=50,
    )
    result = synthesize(reno_segments[:6], TINY, config)
    samples = [record.samples_per_bucket for record in result.iterations]
    for earlier, later in zip(samples, samples[1:]):
        assert later == earlier * config.sample_growth


def test_segment_working_set_grows(reno_segments):
    config = SynthesisConfig(
        initial_samples=4,
        initial_keep=4,
        completion_cap=4,
        max_iterations=3,
        exhaustive_cap=50,
        initial_segments=2,
    )
    result = synthesize(reno_segments[:6], TINY, config)
    counts = [record.segment_count for record in result.iterations]
    assert counts == sorted(counts)


def test_empty_segments_rejected():
    with pytest.raises(SynthesisError):
        synthesize([], TINY, FAST)


def test_best_is_minimum_seen(result, reno_segments):
    """The returned distance must not exceed a known-good handler's score
    by an unreasonable margin — and must be the minimum of everything the
    loop scored (spot-check with the recorded bucket scores)."""
    final_ranking = result.iterations[-1].ranking
    assert result.best.distance <= min(score for _, score in final_ranking) + 1e-9


def test_time_budget_stops_early(reno_segments):
    config = SynthesisConfig(
        initial_samples=4,
        initial_keep=2,
        completion_cap=4,
        max_iterations=5,
        exhaustive_cap=10,
        time_budget_seconds=0.0,
    )
    result = synthesize(reno_segments[:4], TINY, config)
    assert len(result.iterations) == 1  # stopped right after iteration 1


def test_rank_of_helper(result):
    record = result.iterations[0]
    best_key = record.ranking[0][0]
    assert record.rank_of(best_key) == 1
    assert record.rank_of(frozenset({"definitely-not-a-key"})) is None


def test_summary_string(result):
    text = result.summary()
    assert "handlers scored" in text
    assert result.dsl_name in text


def test_exhaustive_phase_scores_fresh_only(reno_segments):
    """The final exhaustive pass must not re-score samples from the
    iteration phase (they are already reflected in best-so-far)."""
    config = SynthesisConfig(
        initial_samples=4,
        initial_keep=2,
        completion_cap=4,
        max_iterations=1,
        exhaustive_cap=30,
    )
    result = synthesize(reno_segments[:4], TINY, config)
    # handlers_scored strictly grows through the exhaustive phase (the
    # final bucket has more than 4 sketches in this DSL).
    assert result.total_handlers_scored > result.iterations[-1].handlers_scored


def test_custom_seed_changes_nothing_structural(reno_segments):
    """Different seeds may pick different working sets but the loop's
    termination structure is unchanged."""
    for seed in (0, 7):
        config = SynthesisConfig(
            initial_samples=4,
            initial_keep=2,
            completion_cap=4,
            max_iterations=2,
            exhaustive_cap=20,
            seed=seed,
        )
        result = synthesize(reno_segments[:5], TINY, config)
        assert result.best.distance < float("inf")
        assert result.initial_bucket_count == 64


def test_batch_scoring_off_is_bit_identical(reno_segments):
    """The batched fast path is an execution detail: rankings, survivors
    and the final handler match the scalar path exactly, while the
    telemetry shows the batched run actually pruned work."""
    from repro.runtime import CollectorSink, RunContext, ScoringStats

    config = dict(
        initial_samples=6,
        initial_keep=3,
        completion_cap=8,
        max_iterations=2,
        exhaustive_cap=120,
    )

    def run(batch: bool):
        collector = CollectorSink()
        with RunContext([collector]) as context:
            result = synthesize(
                reno_segments[:6],
                TINY,
                SynthesisConfig(batch_scoring=batch, **config),
                context=context,
            )
        return result, [
            e for e in collector.events if isinstance(e, ScoringStats)
        ]

    batched, batched_stats = run(True)
    scalar, scalar_stats = run(False)
    assert batched.expression == scalar.expression
    assert batched.best.distance == scalar.best.distance
    assert batched.iterations == scalar.iterations  # full ranking identity
    # One ScoringStats per iteration plus the final snapshot.
    assert len(batched_stats) == len(batched.iterations) + 1
    final = batched_stats[-1]
    assert final.batched_waves > 0
    assert final.lb_pruned > 0
    assert final.candidates_pruned > 0
    assert scalar_stats[-1].batched_waves == 0
    assert scalar_stats[-1].lb_pruned == 0
