"""Fused wave scheduling is an execution knob, not a search knob.

``fused_scheduling=True`` collapses the per-bucket scoring barriers into
one pipelined executor dispatch per iteration and threads warm-start
incumbent bounds through the wave.  Everything here pins the contract
that makes that safe to ship on by default: rankings, kept sets, the
best expression, and on-disk checkpoints are bit-identical with the
knob on or off, at one worker and at four, and a run checkpointed in
one mode resumes cleanly in the other.
"""

import json
from dataclasses import replace

import pytest

from repro.dsl import RENO_DSL, family, with_budget
from repro.runtime import CollectorSink, RunContext, WaveDispatched
from repro.runtime.events import ScoringStats
from repro.synth.refinement import (
    SynthesisConfig,
    _run_fingerprint,
    synthesize,
)

TINY = with_budget(RENO_DSL, max_depth=3, max_nodes=4)

FAST = SynthesisConfig(
    initial_samples=6,
    initial_keep=3,
    completion_cap=8,
    max_iterations=2,
    exhaustive_cap=120,
)


def _config(**overrides) -> SynthesisConfig:
    return replace(FAST, **overrides)


def _essentials(result):
    """Everything about a SynthesisResult except wall-clock time."""
    return (
        result.best.handler,
        result.best.distance,
        result.dsl_name,
        tuple(result.iterations),
        result.initial_bucket_count,
        result.total_handlers_scored,
        result.total_sketches_drawn,
    )


def _run(segments, config, collector=None):
    sinks = [collector] if collector is not None else []
    with RunContext(sinks) as ctx:
        return synthesize(segments[:6], TINY, config, context=ctx)


def test_fused_off_matches_fused_on_serial(reno_segments):
    fused = _run(reno_segments, _config(workers=1, fused_scheduling=True))
    plain = _run(reno_segments, _config(workers=1, fused_scheduling=False))
    assert _essentials(fused) == _essentials(plain)


def test_fused_off_matches_fused_on_parallel(reno_segments):
    fused = _run(reno_segments, _config(workers=4, fused_scheduling=True))
    plain = _run(reno_segments, _config(workers=4, fused_scheduling=False))
    assert _essentials(fused) == _essentials(plain)


def test_fused_parallel_matches_fused_serial(reno_segments):
    serial = _run(reno_segments, _config(workers=1))
    pooled = _run(reno_segments, _config(workers=4))
    assert _essentials(serial) == _essentials(pooled)


def test_fused_run_emits_wave_dispatched(reno_segments):
    collector = CollectorSink()
    _run(reno_segments, _config(workers=1), collector)
    waves = [e for e in collector.events if isinstance(e, WaveDispatched)]
    assert waves, "fused run must announce its dispatches"
    assert all(wave.groups >= 1 and wave.tasks >= 1 for wave in waves)
    stats = [e for e in collector.events if isinstance(e, ScoringStats)]
    assert stats[-1].fused_waves == len(waves)
    assert stats[-1].fused_tasks == sum(wave.tasks for wave in waves)


def test_unfused_run_stays_silent_about_waves(reno_segments):
    collector = CollectorSink()
    _run(reno_segments, _config(workers=1, fused_scheduling=False), collector)
    waves = [e for e in collector.events if isinstance(e, WaveDispatched)]
    assert waves == []
    stats = [e for e in collector.events if isinstance(e, ScoringStats)]
    assert stats[-1].fused_waves == 0


def test_fused_run_warm_starts_the_cascade(reno_segments):
    """Multi-bucket iterations must actually exercise the shared
    incumbent bounds (the whole point of fusing), not just match
    results."""
    collector = CollectorSink()
    _run(reno_segments, _config(workers=1, cache_scores=False), collector)
    stats = [e for e in collector.events if isinstance(e, ScoringStats)]
    assert stats[-1].warm_start_pruned > 0


def test_fused_excluded_from_run_fingerprint(reno_segments):
    on = _run_fingerprint(TINY, _config(fused_scheduling=True), 6)
    off = _run_fingerprint(TINY, _config(fused_scheduling=False), 6)
    assert on == off
    assert not any("fused" in key for key in on)


def test_checkpoints_byte_identical_across_modes(reno_segments, tmp_path):
    paths = {}
    for mode in (True, False):
        path = tmp_path / f"fused_{mode}.jsonl"
        _run(
            reno_segments,
            _config(fused_scheduling=mode, checkpoint_path=str(path)),
        )
        paths[mode] = path.read_text(encoding="utf-8")
    assert paths[True] == paths[False]
    assert paths[True].strip(), "checkpointed run must write boundaries"


# The resume tests need a DSL whose buckets survive iteration 1, so the
# second iteration genuinely replays from a mid-run boundary (same
# rationale as tests/synth/test_resume.py).
RESUME_DSL = with_budget(family("reno"), max_depth=4, max_nodes=7)

RESUME_CONFIG = SynthesisConfig(
    initial_samples=4,
    initial_keep=4,
    completion_cap=4,
    max_iterations=2,
    exhaustive_cap=30,
    series_budget=48,
    max_replay_rows=192,
)


def test_resume_crosses_scheduling_modes(reno_segments, tmp_path):
    """A run checkpointed fused resumes per-bucket (and converges to the
    same answer), because the knob is outside the fingerprint."""
    segments = reno_segments[:6]
    path = tmp_path / "fused.jsonl"
    full = synthesize(
        segments,
        RESUME_DSL,
        replace(RESUME_CONFIG, checkpoint_path=str(path)),
    )
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    partial = tmp_path / "killed.jsonl"
    partial.write_text(lines[0] + "\n")
    resumed = synthesize(
        segments,
        RESUME_DSL,
        replace(
            RESUME_CONFIG,
            resume_path=str(partial),
            fused_scheduling=False,
        ),
    )
    assert resumed.expression == full.expression
    assert resumed.distance == pytest.approx(full.distance)
    assert resumed.total_handlers_scored == full.total_handlers_scored
    assert [r.ranking for r in resumed.iterations] == [
        r.ranking for r in full.iterations
    ]


def test_checkpoint_fingerprint_carries_no_mode(reno_segments, tmp_path):
    path = tmp_path / "ckpt.jsonl"
    _run(reno_segments, _config(checkpoint_path=str(path)))
    line = path.read_text(encoding="utf-8").splitlines()[0]
    fingerprint = json.loads(line)["fingerprint"]
    assert not any("fused" in key for key in fingerprint)
