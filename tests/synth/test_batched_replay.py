"""Batched-scoring equivalence suite.

The batched fast path must be *bit-identical* to the scalar reference
path, not merely close: refinement rankings compare exact floats, and the
score cache stores them.  These tests pin that equivalence at both
levels — ``replay_batch`` row-for-row against ``replay_handler``
(including NaN/inf signal values and the clamp-to-cap divergence
handling), and ``Scorer.score_sketch`` with the cascade on against the
scalar loop — plus the satellite behaviors (table-cache LRU bound,
telemetry counters, non-DTW fallback).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import ast
from repro.dsl.compiled import compile_sketch_vector
from repro.dsl.parser import parse
from repro.dsl.printer import to_text
from repro.synth.concretize import concretization_assignments
from repro.synth.replay import replay_batch, replay_handler
from repro.synth.scoring import Scorer
from repro.synth.sketch import Sketch
from repro.trace.signals import SIGNAL_NAMES, SignalTable

#: Sketch shapes spanning the vector backend's branches: stateful /
#: stateless / signal-free lanes, holes in one or two positions,
#: conditionals, the modular test, cube/cbrt, and division.
SKETCH_TEXTS = [
    "cwnd + c0 * mss",
    "c0",
    "c0 * wmax + c1 * mss",
    "c0 * rtt + min_rtt",
    "(rtt > ewma_rtt) ? cwnd - c0 * mss : cwnd + c1 * mss",
    "cwnd + cube(c0) / cwnd",
    "cwnd + acked_bytes / rtt * c0",
    "(time % c0 == 0) ? cwnd + mss : cwnd",
    "cbrt(cwnd * c0)",
]

POOL = (0.5, 0.7, 1.0, 2.0)

#: Finite magnitudes stay below 1e30 so a scalar ``x ** 3`` cannot raise
#: OverflowError where the vector path would return inf — the paths are
#: compared on the domain where the scalar reference is defined.
_signal_value = st.one_of(
    st.floats(min_value=-1e30, max_value=1e30, allow_nan=False),
    st.sampled_from([float("inf"), float("-inf"), float("nan")]),
)


@st.composite
def signal_tables(draw):
    """A synthetic SignalTable with adversarial signal values.

    The observed cwnd stays finite and positive (it defines the clamp
    cap), but every other signal may be huge, infinite, or NaN — the
    values that exercise the clamp-to-cap divergence handling.
    """
    count = draw(st.integers(min_value=1, max_value=8))
    mss = draw(st.floats(min_value=100.0, max_value=3000.0))
    observed = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    columns = {"cwnd": np.array(observed)}
    for name in SIGNAL_NAMES:
        if name == "cwnd":
            continue
        columns[name] = np.array(
            draw(
                st.lists(_signal_value, min_size=count, max_size=count)
            )
        )
    columns["wmax"] = np.full(
        count, draw(st.floats(min_value=1.0, max_value=1e9, allow_nan=False))
    )
    return SignalTable(mss=mss, columns=columns)


def _assert_batch_matches_scalar(sketch: Sketch, table: SignalTable) -> None:
    vector = compile_sketch_vector(sketch.expr)
    assignments = list(
        concretization_assignments(sketch, POOL, cap=16, seed=0)
    )
    hole_ids = [hole.hole_id for hole in ast.holes(sketch.expr)]
    matrix = replay_batch(vector, assignments, table)
    assert matrix.shape == (len(assignments), len(table))
    for lane, values in enumerate(assignments):
        handler = ast.fill_holes(sketch.expr, dict(zip(hole_ids, values)))
        scalar = replay_handler(handler, table)
        np.testing.assert_array_equal(matrix[lane], scalar)


@pytest.mark.parametrize("text", SKETCH_TEXTS)
@given(table=signal_tables())
@settings(max_examples=25, deadline=None)
def test_replay_batch_bitwise_matches_scalar(text, table):
    _assert_batch_matches_scalar(Sketch.from_expr(parse(text)), table)


@given(table=signal_tables())
@settings(max_examples=25, deadline=None)
def test_replay_batch_single_lane(table):
    """K=1 exercises the degenerate broadcast shapes."""
    sketch = Sketch.from_expr(parse("cwnd + 0.5 * mss"))
    vector = compile_sketch_vector(sketch.expr)
    matrix = replay_batch(vector, [()], table)
    np.testing.assert_array_equal(
        matrix[0], replay_handler(sketch.expr, table)
    )


def test_replay_batch_empty_table():
    sketch = Sketch.from_expr(parse("cwnd + c0 * mss"))
    vector = compile_sketch_vector(sketch.expr)
    table = SignalTable(
        mss=1500.0,
        columns={"time": np.empty(0), "cwnd": np.empty(0)},
    )
    matrix = replay_batch(vector, [(0.5,), (1.0,)], table)
    assert matrix.shape == (2, 0)


def test_replay_batch_missing_signal_pins_to_cap():
    """Both paths score an unbindable candidate at the cap everywhere."""
    sketch = Sketch.from_expr(parse("cwnd + c0 * rtt"))
    vector = compile_sketch_vector(sketch.expr)
    table = SignalTable(
        mss=1500.0,
        columns={
            "time": np.array([0.0, 1.0]),
            "cwnd": np.array([3000.0, 4500.0]),
        },
    )
    matrix = replay_batch(vector, [(0.5,), (1.0,)], table)
    for lane, values in enumerate([(0.5,), (1.0,)]):
        handler = ast.fill_holes(sketch.expr, {0: values[0]})
        np.testing.assert_array_equal(
            matrix[lane], replay_handler(handler, table)
        )


@pytest.mark.parametrize("text", SKETCH_TEXTS)
def test_replay_batch_on_real_trace(text, reno_segments):
    from repro.trace.signals import extract_signals

    table = extract_signals(reno_segments[0]).coalesce(384)
    _assert_batch_matches_scalar(Sketch.from_expr(parse(text)), table)


# ------------------------------------------------------- scorer equivalence


@pytest.fixture(scope="module")
def working(reno_segments):
    return reno_segments[:4]


def _scorer(**overrides):
    defaults = dict(constant_pool=POOL, completion_cap=16, seed=0)
    defaults.update(overrides)
    return Scorer(**defaults)


@pytest.mark.parametrize("text", SKETCH_TEXTS)
def test_score_sketch_batch_matches_scalar(text, working):
    sketch = Sketch.from_expr(parse(text))
    batched = _scorer(batch=True).score_sketch(sketch, working)
    scalar = _scorer(batch=False).score_sketch(sketch, working)
    assert batched.distance == scalar.distance  # bit-identical, not approx
    assert to_text(batched.handler) == to_text(scalar.handler)


def test_batched_counters_advance(working):
    scorer = _scorer(batch=True)
    sketch = Sketch.from_expr(parse("c0 * cwnd + c1 * mss"))
    scorer.score_sketch(sketch, working)
    counters = scorer.counters
    assert counters.batched_waves == 1
    # 16 candidates over 4 segments: the cascade must have skipped work.
    assert counters.lb_pruned + counters.dp_abandoned > 0
    assert counters.candidates_pruned > 0
    assert counters.as_tuple() == (
        counters.batched_waves,
        counters.lb_pruned,
        counters.dp_abandoned,
        counters.candidates_pruned,
        counters.warm_start_pruned,
        counters.batched_dtw_sweeps,
        counters.envelope_precompute_ms,
    )
    # No incumbent bound was supplied, so warm-start pruning stays idle.
    assert counters.warm_start_pruned == 0


def test_scalar_path_leaves_counters_untouched(working):
    scorer = _scorer(batch=False)
    scorer.score_sketch(
        Sketch.from_expr(parse("c0 * cwnd + c1 * mss")), working
    )
    assert scorer.counters.as_tuple() == (0, 0, 0, 0, 0, 0, 0.0)


def test_non_dtw_metric_falls_back_to_scalar(working):
    sketch = Sketch.from_expr(parse("cwnd + c0 * mss"))
    batched = _scorer(metric_name="euclidean", batch=True)
    scored = batched.score_sketch(sketch, working)
    assert batched.counters.batched_waves == 0  # fell back
    reference = _scorer(metric_name="euclidean", batch=False).score_sketch(
        sketch, working
    )
    assert scored.distance == reference.distance


def test_table_cache_is_lru_capped(reno_segments):
    scorer = _scorer(table_cache_entries=2)
    assert len(reno_segments) >= 4
    for segment in reno_segments[:4]:
        scorer.table_for(segment)
    assert len(scorer._tables) == 2
    cached = [entry.segment for entry in scorer._tables.values()]
    assert reno_segments[2] in cached and reno_segments[3] in cached
    # A cached segment returns the identical table object (the memoized
    # column lists ride along with it).
    table = scorer.table_for(reno_segments[3])
    assert scorer.table_for(reno_segments[3]) is table
